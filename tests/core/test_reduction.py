"""Tests for the reduction algorithm — the four cases of Figure 2."""

import pytest

from repro.constants import VIRTUAL_ROOT
from repro.core.queries import BruteForceQueryService
from repro.core.reduction import reduce_update
from repro.core.updates import EdgeDeletion, EdgeInsertion, VertexDeletion, VertexInsertion
from repro.exceptions import UpdateError
from repro.graph.generators import gnp_random_graph, path_graph
from repro.graph.graph import UndirectedGraph
from repro.graph.traversal import static_dfs_forest
from repro.tree.dfs_tree import DFSTree


def build(graph):
    tree = DFSTree(static_dfs_forest(graph), root=VIRTUAL_ROOT)
    service = BruteForceQueryService(graph, tree)
    return tree, service


def test_back_edge_insertion_and_deletion_touch_nothing():
    g = path_graph(6)
    g.add_edge(0, 5)  # back edge w.r.t. the path DFS tree
    tree, service = build(g)
    res = reduce_update(EdgeDeletion(0, 5), tree, service)
    assert res.tree_unchanged and not res.tasks

    g2 = path_graph(6)
    tree2, service2 = build(g2)
    g2.add_edge(1, 4)
    res2 = reduce_update(EdgeInsertion(1, 4), tree2, service2)
    assert res2.tree_unchanged and not res2.tasks


def test_figure2_case_i_tree_edge_deletion():
    # Path 0-1-2-3-4 plus a back edge (1, 4); deleting tree edge (2, 3) must
    # reroot T(3) at 4 and hang it from 1 via the lowest edge (1, 4).
    g = path_graph(5)
    g.add_edge(1, 4)
    tree, _ = build(g)
    g.remove_edge(2, 3)
    service = BruteForceQueryService(g, tree)
    res = reduce_update(EdgeDeletion(2, 3), tree, service)
    assert len(res.tasks) == 1
    task = res.tasks[0]
    assert task.subtree_root == 3
    assert task.new_root == 4
    assert task.attach == 1


def test_tree_edge_deletion_disconnecting_component():
    g = path_graph(5)
    tree, _ = build(g)
    g.remove_edge(2, 3)
    service = BruteForceQueryService(g, tree)
    res = reduce_update(EdgeDeletion(2, 3), tree, service)
    task = res.tasks[0]
    assert task.subtree_root == 3
    assert task.attach == VIRTUAL_ROOT  # no remaining connection


def test_figure2_case_ii_cross_edge_insertion():
    # Star-ish tree: 0 is the root with children 1 and 3; 1 has child 2.
    g = UndirectedGraph(edges=[(0, 1), (1, 2), (0, 3)])
    tree, service = build(g)
    g.add_edge(2, 3)
    service = BruteForceQueryService(g, tree)
    res = reduce_update(EdgeInsertion(2, 3), tree, service)
    assert len(res.tasks) == 1
    task = res.tasks[0]
    # LCA(2, 3) = 0, its child towards 3 is 3: reroot T(3) at 3, hang from 2
    # (or the symmetric reduction, depending on endpoint ordering).
    assert {task.subtree_root, task.new_root} == {3} or task.new_root == 3
    assert task.attach == 2


def test_figure2_case_iii_vertex_deletion():
    # Vertex 1 has two child subtrees {2} and {3,4}; 2 has a back edge to 0,
    # the subtree {3,4} has none and must fall to the virtual root.
    g = UndirectedGraph(edges=[(0, 1), (1, 2), (1, 3), (3, 4), (0, 2)])
    tree, _ = build(g)
    g.remove_vertex(1)
    service = BruteForceQueryService(g, tree)
    res = reduce_update(VertexDeletion(1), tree, service)
    assert res.removed_vertices == [1]
    assert len(res.tasks) == 2
    by_root = {t.subtree_root: t for t in res.tasks}
    assert by_root[2].new_root == 2 and by_root[2].attach == 0
    assert by_root[3].attach == VIRTUAL_ROOT


def test_figure2_case_iv_vertex_insertion():
    # Path 0-1-2-3 and a new vertex 9 adjacent to 1 and 3: 9 hangs from the
    # shallower neighbour (1) and T(2) (containing 3) is rerooted at 3 under 9.
    g = path_graph(4)
    tree, service = build(g)
    g.add_vertex_with_edges(9, [1, 3])
    service = BruteForceQueryService(g, tree)
    res = reduce_update(VertexInsertion(9, (1, 3)), tree, service)
    assert res.parent_overrides == {9: 1}
    assert len(res.tasks) == 1
    task = res.tasks[0]
    assert task.subtree_root == 2 and task.new_root == 3 and task.attach == 9


def test_vertex_insertion_isolated_and_back_edges_only():
    g = path_graph(4)
    tree, service = build(g)
    res = reduce_update(VertexInsertion(7, ()), tree, service)
    assert res.parent_overrides == {7: VIRTUAL_ROOT} and not res.tasks

    g2 = path_graph(4)
    tree2, service2 = build(g2)
    g2.add_vertex_with_edges(8, [0, 2])
    service2 = BruteForceQueryService(g2, tree2)
    # 0 is an ancestor of 2, so attaching at 0 makes (8, 2)... the reduction
    # attaches at the shallower neighbour and must produce tasks only for
    # neighbours outside the root path.
    res2 = reduce_update(VertexInsertion(8, (0, 2)), tree2, service2)
    assert res2.parent_overrides == {8: 0}
    assert len(res2.tasks) == 1  # subtree containing 2 is rerooted at 2


def test_vertex_insertion_groups_neighbors_by_subtree():
    # Root 0 with child 1; 1 has children 2 and 3 in one subtree.
    g = UndirectedGraph(edges=[(0, 1), (1, 2), (2, 3)])
    tree, service = build(g)
    g.add_vertex_with_edges(5, [0, 2, 3])
    service = BruteForceQueryService(g, tree)
    res = reduce_update(VertexInsertion(5, (0, 2, 3)), tree, service)
    assert res.parent_overrides == {5: 0}
    # 2 and 3 live in the same subtree hanging from path(0, r): single task.
    assert len(res.tasks) == 1
    assert res.tasks[0].subtree_root == 1
    assert res.tasks[0].new_root in (2, 3)


def test_error_cases():
    g = path_graph(4)
    tree, service = build(g)
    with pytest.raises(UpdateError):
        reduce_update(EdgeInsertion(0, 99), tree, service)
    with pytest.raises(UpdateError):
        reduce_update(VertexDeletion(99), tree, service)
    with pytest.raises(UpdateError):
        reduce_update(VertexInsertion(2, ()), tree, service)  # already exists


def test_reduction_tasks_are_disjoint_on_random_graphs():
    for seed in range(3):
        g = gnp_random_graph(40, 0.12, seed=seed, connected=True)
        tree, _ = build(g)
        victim = max(g.vertices(), key=g.degree)
        g.remove_vertex(victim)
        service = BruteForceQueryService(g, tree)
        res = reduce_update(VertexDeletion(victim), tree, service)
        seen = set()
        for task in res.tasks:
            vertices = set(tree.subtree_vertices(task.subtree_root))
            assert not (vertices & seen)
            seen |= vertices
            assert task.new_root in vertices
            assert task.attach not in vertices
