"""Integration tests for the fully dynamic DFS driver."""

import pytest

from tests.helpers import make_updates, small_graph_family
from repro.constants import VIRTUAL_ROOT
from repro.core.dynamic_dfs import FullyDynamicDFS
from repro.core.updates import EdgeInsertion
from repro.exceptions import UpdateError
from repro.graph.generators import gnp_random_graph, path_graph
from repro.graph.validation import is_valid_dfs_forest


def test_maintains_valid_forest_under_mixed_updates_all_engines():
    for name, graph in small_graph_family():
        updates = make_updates(graph, 12, seed=hash(name) % 10**6)
        for engine in ("parallel", "sequential"):
            dyn = FullyDynamicDFS(graph, engine=engine, validate=True)
            dyn.apply_all(updates)
            assert dyn.is_valid(), (name, engine)


def test_d_service_and_brute_service_both_stay_valid():
    graph = gnp_random_graph(45, 0.1, seed=3, connected=True)
    updates = make_updates(graph, 20, seed=11)
    for service in ("d", "brute"):
        dyn = FullyDynamicDFS(graph, service=service, validate=True)
        dyn.apply_all(updates)
        assert dyn.is_valid()


def test_vertex_set_tracks_graph():
    graph = gnp_random_graph(30, 0.12, seed=5, connected=True)
    dyn = FullyDynamicDFS(graph, validate=True)
    dyn.delete_vertex(7)
    assert 7 not in dyn.tree
    assert not dyn.graph.has_vertex(7)
    dyn.insert_vertex("x", [0, 3])
    assert "x" in dyn.tree
    parent = dyn.parent_map(include_virtual_root=False)
    assert set(parent) == set(dyn.graph.vertices())


def test_back_edge_updates_do_not_change_tree():
    graph = path_graph(10)
    dyn = FullyDynamicDFS(graph, validate=True)
    before = dyn.parent_map()
    dyn.insert_edge(0, 9)  # back edge of the path DFS tree
    assert dyn.parent_map() == before
    dyn.delete_edge(0, 9)
    assert dyn.parent_map() == before


def test_disconnection_and_reconnection():
    graph = path_graph(8)
    dyn = FullyDynamicDFS(graph, validate=True)
    dyn.delete_edge(3, 4)
    roots = dyn.roots()
    assert len(roots) == 2
    assert is_valid_dfs_forest(dyn.graph, dyn.tree.parent_map())
    dyn.insert_edge(0, 7)
    assert len(dyn.roots()) == 1
    assert dyn.is_valid()


def test_error_propagation_and_graph_isolation():
    graph = path_graph(5)
    dyn = FullyDynamicDFS(graph)
    # Malformed updates surface as UpdateError (the update-API taxonomy), not
    # as the underlying graph-store exception types.
    with pytest.raises(UpdateError):
        dyn.delete_edge(0, 4)
    with pytest.raises(UpdateError):
        dyn.insert_edge(2, 2)  # self loop
    with pytest.raises(UpdateError):
        dyn.insert_vertex(3)  # duplicate id
    # The original graph object is untouched by the driver's updates.
    dyn.delete_edge(0, 1)
    assert graph.has_edge(0, 1)


def test_failed_updates_do_not_skew_metrics():
    graph = path_graph(6)
    dyn = FullyDynamicDFS(graph)
    before = dyn.metrics.as_dict()
    for bad in range(3):
        with pytest.raises(UpdateError):
            dyn.delete_edge(0, 5)
    delta = dyn.metrics.snapshot_delta(before)
    # A rejected update must not consume an `updates` tick nor enter the
    # update timer: benchmark denominators stay exact.
    assert delta.get("updates", 0) == 0
    assert delta.get("time_update", 0) == 0
    dyn.delete_edge(0, 1)
    assert dyn.metrics.snapshot_delta(before)["updates"] == 1


def test_invalid_configuration_rejected():
    graph = path_graph(4)
    with pytest.raises(ValueError):
        FullyDynamicDFS(graph, engine="quantum")
    with pytest.raises(ValueError):
        FullyDynamicDFS(graph, service="oracle")


def test_metrics_accumulate_per_update():
    graph = gnp_random_graph(40, 0.1, seed=9, connected=True)
    dyn = FullyDynamicDFS(graph, rebuild_every=1, validate=True)
    updates = make_updates(graph, 10, seed=2)
    before = dyn.metrics.as_dict()
    dyn.apply_all(updates)
    delta = dyn.metrics.snapshot_delta(before)
    assert delta["updates"] == 10
    assert delta.get("d_builds", 0) == 10  # rebuild_every=1: D rebuilt per update
    assert delta.get("overlay_served_updates", 0) == 0
    assert delta.get("fallback_components", 0) == 0


def test_amortized_policy_rebuilds_less():
    graph = gnp_random_graph(40, 0.1, seed=9, connected=True)
    dyn = FullyDynamicDFS(graph, rebuild_every=5, validate=True)
    updates = make_updates(graph, 10, seed=2, vertex_updates=False)
    before = dyn.metrics.as_dict()
    dyn.apply_all(updates)
    delta = dyn.metrics.snapshot_delta(before)
    assert delta["updates"] == 10
    assert delta.get("d_builds", 0) == 2  # every 5th update refreshes D
    assert delta.get("overlay_served_updates", 0) == 8
    assert delta.get("fallback_components", 0) == 0


def test_roots_are_children_of_virtual_root():
    graph = gnp_random_graph(30, 0.05, seed=13)  # likely disconnected
    dyn = FullyDynamicDFS(graph, validate=True)
    assert set(dyn.roots()) == set(dyn.tree.children(VIRTUAL_ROOT))
    dyn.apply(EdgeInsertion(*next(iter(_non_edge(dyn)))))
    assert dyn.is_valid()


def _non_edge(dyn):
    verts = list(dyn.graph.vertices())
    for i, u in enumerate(verts):
        for v in verts[i + 1 :]:
            if not dyn.graph.has_edge(u, v):
                yield (u, v)
                return
