"""Tests for the component/piece model (C1/C2 invariant bookkeeping)."""

import pytest

from repro.core.components import (
    Component,
    PathPiece,
    TreePiece,
    assert_disjoint_pieces,
    component_from_subtree,
)
from repro.exceptions import InvariantViolation
from repro.tree.dfs_tree import DFSTree


@pytest.fixture
def tree():
    # 0 -> 1 -> {2 -> {3,4}, 5}, 0 -> 6 -> 7
    return DFSTree({0: None, 1: 0, 2: 1, 3: 2, 4: 2, 5: 1, 6: 0, 7: 6})


def test_tree_piece(tree):
    piece = TreePiece(2)
    assert piece.size(tree) == 3
    assert set(piece.vertices(tree)) == {2, 3, 4}
    assert piece.contains(tree, 4) and not piece.contains(tree, 5)
    assert "T(2)" in piece.describe()


def test_path_piece(tree):
    piece = PathPiece([5, 1, 0])
    assert len(piece) == 3 and piece.size(tree) == 3
    assert piece.contains(tree, 1) and not piece.contains(tree, 2)
    assert piece.endpoints() == (5, 0)
    assert piece.top_bottom(tree) == (0, 5)
    with pytest.raises(InvariantViolation):
        PathPiece([])


def test_component_typing_and_sizes(tree):
    c1 = Component(trees=[TreePiece(2)], rc=3)
    assert c1.kind == "C1"
    assert c1.size(tree) == 3 and c1.path_length() == 0
    c2 = Component(trees=[TreePiece(6)], path=PathPiece([1, 2]), rc=1)
    assert c2.kind == "C2"
    assert c2.size(tree) == 4 and c2.path_length() == 2
    assert c2.heaviest_tree(tree).root == 6
    assert [t.root for t in c2.heavy_trees(tree, 1)] == [6]
    assert c2.heavy_trees(tree, 5) == []
    irregular = Component(trees=[], path=PathPiece([0]), extra_paths=[PathPiece([7])], irregular=True)
    assert irregular.kind == "irregular"
    assert len(irregular.pieces()) == 2


def test_piece_containing_and_vertices(tree):
    comp = Component(trees=[TreePiece(6)], path=PathPiece([2, 3]), rc=2)
    assert isinstance(comp.piece_containing(tree, 7), TreePiece)
    assert isinstance(comp.piece_containing(tree, 3), PathPiece)
    assert comp.piece_containing(tree, 5) is None
    assert set(comp.vertices(tree)) == {2, 3, 6, 7}
    assert comp.contains(tree, 6) and not comp.contains(tree, 0)
    assert "C2" in comp.describe(tree)


def test_component_from_subtree_checks_root(tree):
    comp = component_from_subtree(tree, 1, rc=4, attach=0)
    assert comp.kind == "C1" and comp.rc == 4 and comp.attach == 0
    with pytest.raises(InvariantViolation):
        component_from_subtree(tree, 6, rc=3, attach=0)


def test_assert_disjoint_pieces(tree):
    a = Component(trees=[TreePiece(2)])
    b = Component(trees=[TreePiece(6)])
    assert_disjoint_pieces(tree, [a, b])
    c = Component(path=PathPiece([4]))
    with pytest.raises(InvariantViolation):
        assert_disjoint_pieces(tree, [a, c])
