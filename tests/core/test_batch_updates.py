"""Cross-validation of the amortized batch-update engine: overlay-served trees
must be identical to the per-update-rebuild trees on randomized churn."""

import pytest

from repro.core.dynamic_dfs import FullyDynamicDFS
from repro.graph.generators import gnp_random_graph
from repro.metrics.counters import MetricsRecorder
from repro.workloads.scenarios import build_scenario
from repro.workloads.updates import UpdateSequenceGenerator


def _churn(graph, count, seed, *, edge_only=False):
    gen = UpdateSequenceGenerator(graph, seed=seed)
    weights = {"edge_del": 1.0, "edge_ins": 1.0} if edge_only else None
    return gen.sequence(count, weights=weights)


@pytest.mark.parametrize("seed", range(6))
def test_overlay_served_tree_identical_to_rebuild_served_tree(seed):
    graph = gnp_random_graph(45, 0.1, seed=seed, connected=True)
    updates = _churn(graph, 25, seed + 100)
    maps = {}
    for k in (1, 6, None):
        dyn = FullyDynamicDFS(graph, rebuild_every=k)
        dyn.apply_all(updates)
        assert dyn.is_valid(), (seed, k)
        maps[k] = dyn.parent_map()
    assert maps[1] == maps[6] == maps[None], seed


@pytest.mark.parametrize("seed", range(4))
def test_policies_agree_step_by_step_on_edge_churn(seed):
    graph = gnp_random_graph(35, 0.12, seed=seed, connected=True)
    updates = _churn(graph, 20, seed + 7, edge_only=True)
    per_update = FullyDynamicDFS(graph, rebuild_every=1, validate=True)
    amortized = FullyDynamicDFS(graph, rebuild_every=7, validate=True)
    for i, upd in enumerate(updates):
        per_update.apply(upd)
        amortized.apply(upd)
        assert per_update.parent_map() == amortized.parent_map(), (seed, i, upd.describe())


def test_amortized_policy_rebuild_counts_on_sustained_churn():
    scenario = build_scenario("sustained_churn", n=120, seed=2, updates=60)
    updates = scenario.updates[:60]
    counts = {}
    for k in (1, 6):
        metrics = MetricsRecorder()
        dyn = FullyDynamicDFS(scenario.graph, rebuild_every=k, metrics=metrics)
        before = metrics.as_dict()
        dyn.apply_all(updates)
        counts[k] = metrics.snapshot_delta(before)
    assert counts[1]["d_builds"] == 60
    assert counts[6]["d_builds"] == 10
    assert counts[6]["overlay_served_updates"] == 50
    assert counts[1].get("overlay_served_updates", 0) == 0
    # Amortized rebuild work drops roughly k-fold.
    assert counts[6]["d_build_work"] * 4 < counts[1]["d_build_work"]


def test_auto_policy_bounds_overlay_by_budget():
    graph = gnp_random_graph(150, 0.04, seed=5, connected=True)
    metrics = MetricsRecorder()
    dyn = FullyDynamicDFS(graph, metrics=metrics)  # rebuild_every=None (auto)
    budget = dyn.overlay_budget()
    updates = _churn(graph, 80, 11, edge_only=True)
    dyn.apply_all(updates)
    assert dyn.is_valid()
    delta = metrics.as_dict()
    assert delta["overlay_served_updates"] > 0
    # Each overlay-served edge update adds at most 2 entries past the budget check.
    assert delta["max_overlay_size"] <= budget + 2
    # Auto-tuning must actually amortize: far fewer rebuilds than updates.
    assert delta["d_rebuilds"] - 1 < len(updates) / 2  # -1 for the initial build


def test_explicit_rebuild_every_validation():
    graph = gnp_random_graph(20, 0.2, seed=1, connected=True)
    with pytest.raises(ValueError):
        FullyDynamicDFS(graph, rebuild_every=0)
    with pytest.raises(ValueError):
        FullyDynamicDFS(graph, rebuild_every=2.5)


def test_vertex_id_reuse_forces_rebuild_and_stays_correct():
    graph = gnp_random_graph(30, 0.15, seed=3, connected=True)
    dyn = FullyDynamicDFS(graph, rebuild_every=50, validate=True)
    victim = next(v for v in graph.vertices() if graph.degree(v) >= 3)
    nbrs = [w for w in graph.neighbor_list(victim)][:2]
    dyn.delete_vertex(victim)
    # Re-using the id of a vertex D still indexes triggers a base refresh, so
    # the old incarnation's edges cannot leak into query answers.
    dyn.insert_vertex(victim, nbrs)
    assert dyn.is_valid()
    assert set(dyn.graph.neighbor_list(victim)) == set(nbrs)
