"""DQueryService must agree with the brute-force oracle on random queries."""

import random

import pytest

from repro.core.queries import BruteForceQueryService, DQueryService, EdgeQuery
from repro.core.structure_d import StructureD
from repro.graph.generators import gnp_random_graph
from repro.graph.traversal import static_dfs_tree
from repro.tree.dfs_tree import DFSTree


def build(seed=0, n=45, p=0.1):
    g = gnp_random_graph(n, p, seed=seed, connected=True)
    tree = DFSTree(static_dfs_tree(g, 0), root=0)
    d = StructureD(g, tree)
    return g, tree, DQueryService(d), BruteForceQueryService(g, tree)


def random_vertical_path(tree, rng):
    verts = list(tree.vertices())
    bottom = rng.choice(verts)
    chain = [bottom]
    while tree.parent(chain[-1]) is not None:
        chain.append(tree.parent(chain[-1]))
    top_idx = rng.randrange(len(chain))
    seg = chain[: top_idx + 1]  # bottom .. top
    return list(reversed(seg))  # top .. bottom


def assert_same_position(q, a, b):
    pos = {v: i for i, v in enumerate(q.target)}
    if a is None or b is None:
        assert a is None and b is None
    else:
        assert pos[a[1]] == pos[b[1]], (a, b)


def test_edge_query_validation():
    with pytest.raises(ValueError):
        EdgeQuery("tree", (1, 2))
    with pytest.raises(ValueError):
        EdgeQuery("path", (1, 2))
    with pytest.raises(ValueError):
        EdgeQuery("bogus", (1, 2), source_vertices=(3,))
    q = EdgeQuery.from_vertices([5], [1, 2])
    assert q.source_size(None) == 1


def test_tree_source_queries_match_oracle():
    rng = random.Random(4)
    for seed in range(3):
        g, tree, fast, brute = build(seed=seed)
        verts = list(tree.vertices())
        queries = []
        for _ in range(150):
            root = rng.choice(verts)
            target_path = random_vertical_path(tree, rng)
            target = [v for v in target_path if not tree.is_ancestor(root, v)]
            if not target:
                continue
            queries.append(
                EdgeQuery.from_tree(root, tuple(target), prefer_last=rng.random() < 0.5)
            )
        fast_answers = fast.answer_batch(queries)
        brute_answers = brute.answer_batch(queries)
        for q, fa, ba in zip(queries, fast_answers, brute_answers):
            assert_same_position(q, fa, ba)


def test_path_source_queries_match_oracle():
    rng = random.Random(5)
    for seed in range(3):
        g, tree, fast, brute = build(seed=seed + 10)
        queries = []
        for _ in range(150):
            src = random_vertical_path(tree, rng)
            tgt_full = random_vertical_path(tree, rng)
            src_set = set(src)
            tgt = [v for v in tgt_full if v not in src_set]
            if not tgt:
                continue
            queries.append(EdgeQuery.from_path(tuple(src), tuple(tgt), prefer_last=rng.random() < 0.5))
        for q, fa, ba in zip(queries, fast.answer_batch(queries), brute.answer_batch(queries)):
            assert_same_position(q, fa, ba)


def test_composite_target_paths():
    # Targets glued from several vertical runs (as produced by the traversals).
    rng = random.Random(6)
    g, tree, fast, brute = build(seed=21)
    queries = []
    for _ in range(100):
        part1 = random_vertical_path(tree, rng)
        part2 = random_vertical_path(tree, rng)
        root = rng.choice(list(tree.vertices()))
        target = []
        seen = set()
        for v in part1 + part2:
            if v not in seen and not tree.is_ancestor(root, v):
                seen.add(v)
                target.append(v)
        if not target:
            continue
        queries.append(EdgeQuery.from_tree(root, tuple(target), prefer_last=True))
    for q, fa, ba in zip(queries, fast.answer_batch(queries), brute.answer_batch(queries)):
        assert_same_position(q, fa, ba)


def test_single_vertex_source():
    g, tree, fast, brute = build(seed=33)
    rng = random.Random(7)
    queries = []
    for _ in range(100):
        v = rng.choice(list(tree.vertices()))
        target = [w for w in random_vertical_path(tree, rng) if w != v]
        if not target:
            continue
        queries.append(EdgeQuery.from_vertices((v,), tuple(target), prefer_last=rng.random() < 0.5))
    for q, fa, ba in zip(queries, fast.answer_batch(queries), brute.answer_batch(queries)):
        assert_same_position(q, fa, ba)


def test_metrics_counting():
    from repro.metrics.counters import MetricsRecorder

    g, tree, _, _ = build(seed=2)
    d = StructureD(g, tree)
    metrics = MetricsRecorder()
    service = DQueryService(d, metrics=metrics)
    q = EdgeQuery.from_tree(list(tree.vertices())[5], (0,), prefer_last=True)
    service.answer_batch([q, q])
    assert metrics["query_batches"] == 1
    assert metrics["queries"] == 2
