"""Tests for the shared :class:`~repro.core.engine.UpdateEngine` pipeline and
its rebuild-policy semantics across backends."""

from __future__ import annotations

import pytest

from repro.core.dynamic_dfs import FullyDynamicDFS
from repro.core.engine import Backend, UpdateEngine, update_words
from repro.core.updates import EdgeDeletion, EdgeInsertion, VertexDeletion, VertexInsertion
from repro.distributed.distributed_dfs import DistributedDynamicDFS
from repro.exceptions import UpdateError
from repro.graph.generators import gnp_random_graph, path_graph
from repro.metrics.counters import MetricsRecorder
from repro.streaming.semi_streaming_dfs import SemiStreamingDynamicDFS
from repro.workloads.updates import edge_churn, mixed_updates


def test_rebuild_every_validation():
    g = path_graph(6)
    for bad in (0, -3, 2.5, "7"):
        with pytest.raises(ValueError):
            FullyDynamicDFS(g, rebuild_every=bad)
        with pytest.raises(ValueError):
            SemiStreamingDynamicDFS(g, rebuild_every=bad)
        with pytest.raises(ValueError):
            DistributedDynamicDFS(g, rebuild_every=bad)


def test_engine_counts_service_rebuilds_per_policy():
    g = gnp_random_graph(40, 0.1, seed=2, connected=True)
    updates = edge_churn(g, 12, seed=5)
    counts = {}
    for k in (1, 4):
        metrics = MetricsRecorder()
        FullyDynamicDFS(g, rebuild_every=k, metrics=metrics).apply_all(updates)
        counts[k] = metrics
    # +1 for the initial build at construction.
    assert counts[1]["service_rebuilds"] == len(updates) + 1
    assert counts[1]["overlay_served_updates"] == 0
    assert counts[4]["service_rebuilds"] == 1 + len(updates) // 4
    assert counts[4]["overlay_served_updates"] == len(updates) - len(updates) // 4
    # The D backend mirrors the engine counter for backward compatibility.
    assert counts[4]["d_rebuilds"] == counts[4]["service_rebuilds"]


def test_brute_backend_never_amortizes():
    g = gnp_random_graph(30, 0.12, seed=3, connected=True)
    updates = edge_churn(g, 8, seed=1)
    metrics = MetricsRecorder()
    # rebuild_every is a no-op for a backend without reusable state.
    FullyDynamicDFS(g, service="brute", rebuild_every=50, metrics=metrics).apply_all(updates)
    assert metrics["service_rebuilds"] == len(updates) + 1
    assert metrics["overlay_served_updates"] == 0


def test_validation_precedes_metrics_across_adapters():
    g = path_graph(8)
    for driver in (
        FullyDynamicDFS(g),
        SemiStreamingDynamicDFS(g),
        DistributedDynamicDFS(g),
    ):
        before = driver.metrics.as_dict()
        for bad in (EdgeInsertion(0, 0), EdgeDeletion(0, 5), VertexInsertion(3, ()), VertexDeletion("nope")):
            with pytest.raises(UpdateError):
                driver.apply(bad)
        delta = driver.metrics.snapshot_delta(before)
        assert all(v == 0 for v in delta.values()), f"failed updates skewed counters: {delta}"


def test_update_words_accounting():
    g = path_graph(5)
    assert update_words(EdgeInsertion(0, 4), g) == 2
    assert update_words(EdgeDeletion(0, 1), g) == 2
    assert update_words(VertexInsertion(9, (0, 2, 4)), g) == 4
    assert update_words(VertexDeletion(2), g) == 3  # 1 + degree on the pre-deletion graph


def test_custom_backend_minimal_protocol():
    """A minimal third-party backend only needs mutate/rebuild/make_query_service."""
    from repro.constants import VIRTUAL_ROOT
    from repro.core.overlay import apply_update
    from repro.core.queries import BruteForceQueryService
    from repro.graph.traversal import static_dfs_forest
    from repro.tree.dfs_tree import DFSTree

    g = gnp_random_graph(25, 0.15, seed=8, connected=True)

    class MiniBackend(Backend):
        name = "mini"

        def __init__(self, graph):
            self.graph = graph

        def rebuild(self, tree, update):
            pass

        def mutate(self, update):
            apply_update(self.graph, update)

        def make_query_service(self, tree):
            return BruteForceQueryService(self.graph, tree)

    graph = g.copy()
    tree = DFSTree(static_dfs_forest(graph), root=VIRTUAL_ROOT)
    engine = UpdateEngine(MiniBackend(graph), tree, validate=True)
    reference = FullyDynamicDFS(g, validate=True)
    for upd in mixed_updates(g, 15, seed=4):
        engine.apply(upd)
        reference.apply(upd)
        assert engine.parent_map() == reference.parent_map()
    assert engine.is_valid()


def test_absorb_mode_zero_full_builds_on_edge_churn():
    """Acceptance: the amortized driver using absorb performs zero full
    ``d_builds`` after initialization on an edge-churn workload."""
    g = gnp_random_graph(60, 0.1, seed=6, connected=True)
    updates = edge_churn(g, 80, seed=13)
    metrics = MetricsRecorder()
    dyn = FullyDynamicDFS(g, rebuild_every=8, d_maintenance="absorb", metrics=metrics)
    dyn.apply_all(updates)
    assert dyn.is_valid()
    assert metrics["d_builds"] == 1  # the initial build only
    assert metrics["d_absorbs"] == len(updates) // 8
    assert metrics["d_absorb_work"] > 0
    # The spike is gone: absorb work is far below one full rebuild's work.
    assert metrics["d_absorb_work"] < metrics["d_build_work"]


@pytest.mark.parametrize("seed", range(3))
def test_absorb_mode_tree_identical_to_rebuild_mode(seed):
    g = gnp_random_graph(45, 0.1, seed=seed, connected=True)
    updates = mixed_updates(g, 30, seed=seed + 40)
    rebuild = FullyDynamicDFS(g, rebuild_every=6, d_maintenance="rebuild", validate=True)
    absorb = FullyDynamicDFS(g, rebuild_every=6, d_maintenance="absorb", validate=True)
    for i, upd in enumerate(updates):
        rebuild.apply(upd)
        absorb.apply(upd)
        assert rebuild.parent_map() == absorb.parent_map(), (seed, i, upd.describe())


def test_invalid_d_maintenance_rejected():
    with pytest.raises(ValueError):
        FullyDynamicDFS(path_graph(4), d_maintenance="magic")
    with pytest.raises(ValueError):
        # absorb is a D-structure knob; the brute oracle has nothing to absorb.
        FullyDynamicDFS(path_graph(4), service="brute", d_maintenance="absorb")


def test_batch_metrics_consistent_across_adapters():
    g = gnp_random_graph(30, 0.12, seed=1, connected=True)
    updates = edge_churn(g, 6, seed=2)
    for factory in (
        lambda m: FullyDynamicDFS(g, metrics=m),
        lambda m: SemiStreamingDynamicDFS(g, metrics=m),
        lambda m: DistributedDynamicDFS(g, metrics=m),
    ):
        metrics = MetricsRecorder()
        factory(metrics).apply_all(updates)
        assert metrics["update_batches"] == 1
        assert metrics["max_update_batch_size"] == len(updates)
        assert metrics["updates"] == len(updates)


# --------------------------------------------------------------------------- #
# Commit-listener isolation and detach (PR 8 writer-path fixes)
# --------------------------------------------------------------------------- #
def test_raising_commit_listener_does_not_poison_writer():
    """Regression: a listener that raises used to abort the commit tail —
    ``end_update`` never ran (breaking overlay-budget accounting) and every
    listener registered after it starved.  Now each listener is isolated:
    the error is counted under ``commit_listener_errors``, later listeners
    (here a healthy DFSTreeService) still run, and the maintained tree stays
    byte-identical to an undisturbed reference."""
    from repro.service import DFSTreeService

    g = gnp_random_graph(36, 0.12, seed=9, connected=True)
    updates = edge_churn(g, 16, seed=3)
    metrics = MetricsRecorder("poisoned", strict=True)
    driver = FullyDynamicDFS(g, rebuild_every=4, metrics=metrics)

    def bad_listener(tree):
        raise RuntimeError("boom")

    driver.add_commit_listener(bad_listener)
    svc = DFSTreeService(driver, metrics=metrics)  # registered after the bomb

    reference = FullyDynamicDFS(g, rebuild_every=4)
    for update in updates:
        driver.apply(update)
        reference.apply(update)
        # The healthy service keeps observing every commit...
        assert svc.committed_version == reference.metrics["updates"]
        # ...and the writer's tree is unharmed.
        assert driver.parent_map() == reference.parent_map()
    assert metrics["commit_listener_errors"] == len(updates)
    # end_update kept running: the amortized budget accounting still rebuilt
    # on the same cadence as the undisturbed reference.
    assert metrics["service_rebuilds"] == reference.metrics["service_rebuilds"]


def test_remove_commit_listener_detaches_and_is_idempotent():
    g = gnp_random_graph(24, 0.15, seed=2, connected=True)
    driver = FullyDynamicDFS(g)
    engine = driver._engine
    base = engine.commit_listener_count
    seen = []
    listener = seen.append
    driver.add_commit_listener(listener)
    assert engine.commit_listener_count == base + 1
    driver.apply(next(iter(edge_churn(g, 1, seed=1))))
    assert len(seen) == 1
    driver.remove_commit_listener(listener)
    assert engine.commit_listener_count == base
    driver.apply(next(iter(edge_churn(g, 1, seed=7))))
    assert len(seen) == 1  # detached: no further commits observed
    # Unknown listeners are ignored (idempotent detach).
    driver.remove_commit_listener(listener)
    assert engine.commit_listener_count == base


def test_listener_may_detach_itself_mid_commit():
    """A listener that removes itself while the commit fan-out is running
    (exactly what ``DFSTreeService.close`` does from inside a drain) must not
    skip the listeners after it."""
    g = path_graph(8)
    driver = FullyDynamicDFS(g)
    order = []

    def self_removing(tree):
        order.append("first")
        driver.remove_commit_listener(self_removing)

    driver.add_commit_listener(self_removing)
    driver.add_commit_listener(lambda tree: order.append("second"))
    driver.apply(EdgeInsertion(0, 5))
    driver.apply(EdgeDeletion(0, 5))
    assert order == ["first", "second", "second"]


def test_end_update_guaranteed_when_the_pipeline_raises():
    """Regression: ``begin_update`` was only closed on the success path, so a
    raise anywhere in the pipeline (policy, rebuild, mutate, commit) left the
    backend mid-update forever.  The writer protocol now closes in a
    ``finally`` (statically enforced by repro-lint's writer-pairing rule):
    every begin has its end, the error still propagates, and the engine keeps
    working once the fault clears."""
    from repro.constants import VIRTUAL_ROOT
    from repro.core.overlay import apply_update
    from repro.core.queries import BruteForceQueryService
    from repro.graph.traversal import static_dfs_forest
    from repro.tree.dfs_tree import DFSTree

    g = gnp_random_graph(20, 0.15, seed=5, connected=True)

    class RecordingBackend(Backend):
        name = "recording"

        def __init__(self, graph):
            self.graph = graph
            self.log = []
            self.explode = False

        def rebuild(self, tree, update):
            pass

        def mutate(self, update):
            if self.explode:
                raise RuntimeError("mid-update failure")
            apply_update(self.graph, update)

        def make_query_service(self, tree):
            return BruteForceQueryService(self.graph, tree)

        def begin_update(self, update):
            self.log.append("begin")

        def end_update(self, update):
            self.log.append("end")

    graph = g.copy()
    tree = DFSTree(static_dfs_forest(graph), root=VIRTUAL_ROOT)
    backend = RecordingBackend(graph)
    engine = UpdateEngine(backend, tree)
    updates = mixed_updates(g, 2, seed=1)

    engine.apply(updates[0])
    backend.explode = True
    with pytest.raises(RuntimeError):
        engine.apply(updates[1])
    # mutate raised before touching the graph, so the same update replays
    # cleanly once the fault clears.
    backend.explode = False
    engine.apply(updates[1])

    assert backend.log == ["begin", "end"] * 3
    assert engine.is_valid()
