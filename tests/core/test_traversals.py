"""Tests for the traversal families (Figures 3–5).

The traversals are exercised through the engine on constructed inputs; the
metrics recorder reveals which traversal ran, and the structural claims of
Section 4 (sizes halve, path lengths halve, only C1/C2 components appear) are
checked directly.
"""

import random

import pytest

from repro.constants import VIRTUAL_ROOT
from repro.core.queries import BruteForceQueryService
from repro.core.reduction import RerootTask, reduce_update
from repro.core.reroot_parallel import ParallelRerootEngine
from repro.core.updates import VertexDeletion
from repro.graph.generators import (
    caterpillar_graph,
    comb_with_back_edges,
    gnp_random_graph,
    path_graph,
)
from repro.graph.graph import UndirectedGraph
from repro.graph.traversal import static_dfs_forest
from repro.graph.validation import check_dfs_tree
from repro.metrics.counters import MetricsRecorder
from repro.tree.dfs_tree import DFSTree


def run_reroot(graph, task_list, **engine_kwargs):
    tree = DFSTree(static_dfs_forest(graph), root=VIRTUAL_ROOT)
    metrics = MetricsRecorder()
    service = BruteForceQueryService(graph, tree)
    engine = ParallelRerootEngine(
        tree, service, adjacency=graph.neighbor_list, metrics=metrics, validate=True, **engine_kwargs
    )
    assignment = engine.reroot_many(task_list)
    parent = tree.parent_map()
    parent.update(assignment)
    return parent, metrics, tree


def test_disintegrating_traversal_on_deep_path():
    # Rerooting a long path at its far end is a pure sequence of disintegrating
    # traversals / path halvings; the result must be a valid DFS tree and the
    # number of traversal rounds must stay logarithmic, not linear.
    n = 256
    g = path_graph(n)
    parent, metrics, _ = run_reroot(g, [RerootTask(subtree_root=0, new_root=n - 1, attach=VIRTUAL_ROOT)])
    assert check_dfs_tree(g, parent) == []
    assert parent[n - 1] == VIRTUAL_ROOT
    assert metrics["traversal_rounds"] <= 4 * (n.bit_length() ** 2)
    assert metrics["traversal_rounds"] < n / 4
    assert metrics["fallback_components"] == 0


def test_path_halving_rounds_are_logarithmic_on_caterpillar():
    g = caterpillar_graph(200, 1)
    spine_end = 199
    parent, metrics, _ = run_reroot(
        g, [RerootTask(subtree_root=0, new_root=spine_end, attach=VIRTUAL_ROOT)]
    )
    assert check_dfs_tree(g, parent) == []
    assert metrics["traversal_rounds"] < 200 / 4
    assert metrics["fallback_components"] == 0


def test_ablation_disabling_path_halving_degrades_rounds():
    g = caterpillar_graph(120, 1)
    _, full_metrics, _ = run_reroot(
        g, [RerootTask(subtree_root=0, new_root=119, attach=VIRTUAL_ROOT)]
    )
    parent, crippled_metrics, _ = run_reroot(
        g,
        [RerootTask(subtree_root=0, new_root=119, attach=VIRTUAL_ROOT)],
        enable_path_halving=False,
    )
    # Output stays a valid DFS tree, but the round count degrades.
    assert check_dfs_tree(g, parent) == []
    assert crippled_metrics["traversal_rounds"] >= full_metrics["traversal_rounds"]


def test_disconnecting_traversal_produces_valid_tree_on_comb():
    g = comb_with_back_edges(16, 8)
    tip = 16 + 8 * 16 - 1  # deepest vertex of the last tooth
    parent, metrics, _ = run_reroot(g, [RerootTask(subtree_root=0, new_root=tip, attach=VIRTUAL_ROOT)])
    assert check_dfs_tree(g, parent) == []
    assert parent[tip] == VIRTUAL_ROOT
    assert metrics["fallback_components"] == 0
    assert metrics["invariant_merged_paths"] == 0


def heavy_case_graph():
    """A graph engineered so the rerooting creates a C2 component whose new
    root lies strictly inside a heavy subtree (exercising Section 4.4)."""
    rng = random.Random(0)
    g = gnp_random_graph(120, 0.06, seed=13, connected=True)
    return g


def test_heavy_subtree_traversal_is_exercised_and_correct():
    metrics_total = MetricsRecorder()
    exercised = False
    for seed in range(12):
        g = gnp_random_graph(90, 0.05, seed=seed, connected=True)
        tree = DFSTree(static_dfs_forest(g), root=VIRTUAL_ROOT)
        # Delete a high-degree vertex: its child subtrees become components with
        # paths and heavy subtrees in many configurations.
        victim = max(g.vertices(), key=g.degree)
        g.remove_vertex(victim)
        service = BruteForceQueryService(g, tree)
        metrics = MetricsRecorder()
        reduction = reduce_update(VertexDeletion(victim), tree, service, metrics=metrics)
        engine = ParallelRerootEngine(
            tree, service, adjacency=g.neighbor_list, metrics=metrics, validate=True
        )
        assignment = engine.reroot_many(reduction.tasks)
        parent = tree.parent_map()
        parent.pop(victim)
        parent.update(assignment)
        assert check_dfs_tree(g, parent) == []
        metrics_total.merge(metrics)
        if metrics["traversal_heavy"]:
            exercised = True
    assert metrics_total["traversal_disconnecting"] > 0
    assert metrics_total["traversal_path_halving"] > 0
    assert metrics_total["fallback_components"] == 0
    # The heavy-subtree scenarios are rare but must be reachable; if this ever
    # fails the workload below keeps the coverage.
    if not exercised:
        g = comb_with_back_edges(6, 30)
        # add extra edges from deep tooth vertices to the spine to create heavy
        # C2 components
        for t in range(6):
            base = 6 + t * 30
            for off in (5, 15, 25):
                if not g.has_edge(t, base + off):
                    g.add_edge(t, base + off)
        tip = 6 + 30 * 6 - 1
        parent, metrics, _ = run_reroot(
            g, [RerootTask(subtree_root=0, new_root=tip, attach=VIRTUAL_ROOT)]
        )
        assert check_dfs_tree(g, parent) == []


def test_multiple_disjoint_tasks_processed_in_parallel_rounds():
    # Star of paths: removing the centre yields many independent reroot tasks.
    g = UndirectedGraph(vertices=[0])
    nxt = 1
    for arm in range(8):
        prev = 0
        for _ in range(16):
            g.add_vertex(nxt)
            g.add_edge(prev, nxt)
            prev = nxt
            nxt += 1
    tree = DFSTree(static_dfs_forest(g), root=VIRTUAL_ROOT)
    g2 = g.copy()
    g2.remove_vertex(0)
    service = BruteForceQueryService(g2, tree)
    metrics = MetricsRecorder()
    reduction = reduce_update(VertexDeletion(0), tree, service, metrics=metrics)
    assert len(reduction.tasks) == 8
    engine = ParallelRerootEngine(tree, service, adjacency=g2.neighbor_list, metrics=metrics, validate=True)
    assignment = engine.reroot_many(reduction.tasks)
    parent = tree.parent_map()
    parent.pop(0)
    parent.update(assignment)
    assert check_dfs_tree(g2, parent) == []
    # All eight arms progress in the same rounds: the round count is that of a
    # single arm (logarithmic), not eight times it.
    assert metrics["traversal_rounds"] <= 12


# --------------------------------------------------------------------------- #
# Regression: the C1/C2 leftover-piece gap in the heavy traversal
# --------------------------------------------------------------------------- #
def test_heavy_traversal_yd_covers_pc_connected_pieces():
    """Regression for the ROADMAP C1/C2 invariant gap.

    The heavy traversal's (x_d, y_d) edge used to be computed from the hanging
    trees only; with ``p_c`` (and the other component trees) left out, a
    p-traversal could stop below an edge connecting ``p_c`` to the root path,
    leaving the untraversed root-path remainder adjacent to ``p_c`` — two path
    pieces merged into one component, tripping ``Process-Comp`` under
    ``validate=True``.  The exact ROADMAP workload: gnp n=120, seed=4, where
    ``delete vertex 62`` arrives after two vertex insertions.
    """
    from repro.core.dynamic_dfs import FullyDynamicDFS
    from repro.workloads.updates import vertex_churn

    graph = gnp_random_graph(120, 0.06, seed=4, connected=True)
    updates = vertex_churn(graph, 60, seed=1)
    assert updates[4].describe() == "delete vertex 62"  # after two insertions
    dyn = FullyDynamicDFS(graph, validate=True)
    for upd in updates:
        dyn.apply(upd)  # validate=True raises on any C1/C2 violation
    assert dyn.is_valid()


@pytest.mark.parametrize(
    "n, p, useed, kind",
    [
        (100, 0.08, 8, "mixed"),
        (140, 0.06, 4, "mixed"),
        (140, 0.06, 8, "vertex"),
        (140, 0.08, 9, "vertex"),
    ],
)
def test_heavy_traversal_invariant_on_reproduced_workloads(n, p, useed, kind):
    """Further previously-tripping workloads found while root-causing the gap."""
    from repro.core.dynamic_dfs import FullyDynamicDFS
    from repro.workloads.updates import mixed_updates, vertex_churn

    gen = mixed_updates if kind == "mixed" else vertex_churn
    graph = gnp_random_graph(n, p, seed=4, connected=True)
    dyn = FullyDynamicDFS(graph, validate=True)
    for upd in gen(graph, 60, seed=useed):
        dyn.apply(upd)
    assert dyn.is_valid()
