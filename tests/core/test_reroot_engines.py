"""Cross-engine tests: parallel vs sequential vs naive rerooting."""

import random

from repro.baselines.naive_reroot import naive_reroot_subtree
from repro.constants import VIRTUAL_ROOT
from repro.core.queries import BruteForceQueryService, DQueryService
from repro.core.reduction import RerootTask
from repro.core.reroot_parallel import ParallelRerootEngine
from repro.core.reroot_sequential import SequentialRerootEngine
from repro.core.structure_d import StructureD
from repro.graph.generators import gnp_random_graph
from repro.graph.traversal import static_dfs_forest
from repro.graph.validation import check_dfs_tree
from repro.metrics.counters import MetricsRecorder
from repro.tree.dfs_tree import DFSTree


def random_task(graph, tree, rng):
    """A random rerooting task whose attach edge is a real graph edge (as the
    reduction algorithm always guarantees)."""
    roots = [v for v in tree.vertices() if v != VIRTUAL_ROOT and tree.parent(v) is not None]
    rng.shuffle(roots)
    for subtree_root in roots:
        attach = tree.parent(subtree_root)
        vertices = tree.subtree_vertices(subtree_root)
        if attach == VIRTUAL_ROOT:
            candidates = vertices  # the virtual root is implicitly adjacent to all
        else:
            candidates = [v for v in vertices if graph.has_edge(attach, v)]
        if candidates:
            return RerootTask(
                subtree_root=subtree_root, new_root=rng.choice(candidates), attach=attach
            )
    raise AssertionError("no valid task found")


def check_assignment(graph, tree, task, assignment):
    parent = tree.parent_map()
    parent.update(assignment)
    assert parent[task.new_root] == task.attach
    assert set(assignment) == set(tree.subtree_vertices(task.subtree_root))
    # Attaching back under the same parent keeps the whole structure a DFS tree
    # only if the rerooted part is a DFS tree of its induced subgraph and all
    # its outgoing edges point to ancestors; the global checker verifies both.
    problems = check_dfs_tree(graph, parent)
    assert problems == [], problems[:3]


def test_engines_produce_valid_reroots_on_random_graphs():
    rng = random.Random(17)
    for seed in range(5):
        g = gnp_random_graph(50, 0.1, seed=seed, connected=True)
        tree = DFSTree(static_dfs_forest(g), root=VIRTUAL_ROOT)
        d = StructureD(g, tree)
        for trial in range(4):
            task = random_task(g, tree, rng)
            for engine_cls in (ParallelRerootEngine, SequentialRerootEngine):
                for service in (BruteForceQueryService(g, tree), DQueryService(d)):
                    kwargs = {"adjacency": g.neighbor_list, "validate": True} if engine_cls is ParallelRerootEngine else {}
                    engine = engine_cls(tree, service, **kwargs)
                    assignment = engine.reroot_many([task])
                    check_assignment(g, tree, task, assignment)
            # The naive baseline must agree on validity as well.
            check_assignment(g, tree, task, naive_reroot_subtree(g, tree, task))


def test_parallel_engine_beats_sequential_chain_on_comb():
    from repro.graph.generators import comb_with_tip_back_edges

    teeth, tooth = 48, 6
    # Comb whose tip back edges *survive* the canonical minimum-postorder
    # source re-anchoring: each tip reaches only the spine vertex before its
    # own tooth, so whichever endpoint the canonical answer picks, the
    # sequential chain is still forced to Θ(teeth).  (With tip-to-spine-start
    # back edges — comb_with_back_edges — the canonical source happens to
    # pick the tips, letting the baseline shortcut the chain.)
    g = comb_with_tip_back_edges(teeth, tooth)
    tree = DFSTree(static_dfs_forest(g), root=VIRTUAL_ROOT)
    # Reroot the whole comb at the tip of the *first* tooth: every step of the
    # sequential procedure exposes one more tooth.
    tip = teeth + tooth - 1
    task = RerootTask(subtree_root=0, new_root=tip, attach=VIRTUAL_ROOT)

    seq_metrics = MetricsRecorder()
    seq = SequentialRerootEngine(tree, BruteForceQueryService(g, tree), metrics=seq_metrics)
    seq_assignment = seq.reroot_many([task])
    check_assignment(g, tree, task, seq_assignment)

    par_metrics = MetricsRecorder()
    par = ParallelRerootEngine(
        tree, BruteForceQueryService(g, tree), adjacency=g.neighbor_list, metrics=par_metrics, validate=True
    )
    par_assignment = par.reroot_many([task])
    check_assignment(g, tree, task, par_assignment)

    assert seq_metrics["sequential_chain_depth"] >= teeth / 2
    assert par_metrics["traversal_rounds"] < seq_metrics["sequential_chain_depth"]
    assert par_metrics["fallback_components"] == 0


def test_query_rounds_scale_polylogarithmically_on_paths():
    from repro.graph.generators import path_graph

    rounds = []
    sizes = [64, 256, 1024]
    for n in sizes:
        g = path_graph(n)
        tree = DFSTree(static_dfs_forest(g), root=VIRTUAL_ROOT)
        metrics = MetricsRecorder()
        engine = ParallelRerootEngine(
            tree, BruteForceQueryService(g, tree), adjacency=g.neighbor_list, metrics=metrics
        )
        engine.reroot_many([RerootTask(subtree_root=0, new_root=n // 2, attach=VIRTUAL_ROOT)])
        rounds.append(metrics["query_rounds"])
    # Quadrupling n must not quadruple the number of query rounds.
    assert rounds[-1] <= rounds[0] * 4
    assert rounds[-1] < sizes[-1] / 8
