"""Tests for the data structure D (sorted adjacency + overlays)."""

import random

import pytest

from repro.constants import VIRTUAL_ROOT
from repro.core.structure_d import StructureD
from repro.exceptions import VertexNotFound
from repro.graph.generators import gnp_random_graph, path_graph
from repro.graph.graph import UndirectedGraph
from repro.graph.traversal import static_dfs_forest, static_dfs_tree
from repro.tree.dfs_tree import DFSTree


def build(seed=0, n=40, p=0.12):
    g = gnp_random_graph(n, p, seed=seed, connected=True)
    tree = DFSTree(static_dfs_tree(g, 0), root=0)
    return g, tree, StructureD(g, tree)


def brute_neighbor_on_segment(graph, tree, u, top, bottom, prefer_bottom):
    seg = set(tree.path(top, bottom))
    candidates = [w for w in graph.neighbors(u) if w in seg]
    if not candidates:
        return None
    return max(candidates, key=tree.level) if prefer_bottom else min(candidates, key=tree.level)


def test_size_matches_edge_count():
    g, tree, d = build()
    assert d.size() == 2 * g.num_edges
    assert d.postorder(0) == tree.postorder(0)
    with pytest.raises(VertexNotFound):
        d.postorder("nope")


def test_neighbor_on_segment_matches_brute_force():
    rng = random.Random(9)
    for seed in range(4):
        g, tree, d = build(seed=seed)
        verts = list(tree.vertices())
        for _ in range(300):
            u = rng.choice(verts)
            bottom = rng.choice(verts)
            # pick a random ancestor of bottom as the segment top
            anc = [bottom]
            while tree.parent(anc[-1]) is not None:
                anc.append(tree.parent(anc[-1]))
            top = rng.choice(anc)
            if any(tree.is_ancestor(u, x) for x in tree.path(top, bottom)):
                # The primitive's precondition (see its docstring): u must not
                # be an ancestor of the segment; the query service handles that
                # case with the role-reversed search.
                continue
            prefer_bottom = rng.random() < 0.5
            expected = brute_neighbor_on_segment(g, tree, u, top, bottom, prefer_bottom)
            got = d.neighbor_on_segment(u, top, bottom, prefer_bottom=prefer_bottom)
            if expected is None:
                assert got is None
            else:
                assert got is not None
                assert tree.level(got) == tree.level(expected)


def test_path_graph_segments():
    g = path_graph(10)
    tree = DFSTree(static_dfs_tree(g, 0), root=0)
    d = StructureD(g, tree)
    # Neighbours of 5 on the segment 0..4: only vertex 4.
    assert d.neighbor_on_segment(5, 0, 4, prefer_bottom=True) == 4
    assert d.neighbor_on_segment(5, 0, 3, prefer_bottom=True) is None


def test_overlay_edge_insert_and_delete():
    g, tree, d = build(seed=2)
    # Find a non-edge whose endpoints are ancestor-related.
    target = None
    for u in tree.vertices():
        for w in tree.vertices():
            if u != w and tree.is_ancestor(w, u) and not g.has_edge(u, w) and tree.parent(u) != w:
                target = (u, w)
                break
        if target:
            break
    assert target is not None
    u, w = target
    assert d.neighbor_on_segment(u, w, w, prefer_bottom=True) is None
    d.note_edge_inserted(u, w)
    assert d.neighbor_on_segment(u, w, w, prefer_bottom=True) == w
    assert d.has_alive_edge(u, w)
    d.note_edge_deleted(u, w)
    assert d.neighbor_on_segment(u, w, w, prefer_bottom=True) is None
    assert not d.has_alive_edge(u, w)
    assert d.overlay_size() >= 1
    d.reset_overlays()
    assert d.overlay_size() == 0


def test_overlay_masks_existing_edge():
    g = path_graph(6)
    tree = DFSTree(static_dfs_tree(g, 0), root=0)
    d = StructureD(g, tree)
    assert d.neighbor_on_segment(3, 0, 2, prefer_bottom=True) == 2
    d.note_edge_deleted(2, 3)
    assert d.neighbor_on_segment(3, 0, 2, prefer_bottom=True) is None
    d.note_edge_inserted(2, 3)  # re-insertion revives it
    assert d.neighbor_on_segment(3, 0, 2, prefer_bottom=True) == 2


def test_overlay_vertex_insertion_and_deletion():
    g = path_graph(6)
    tree = DFSTree(static_dfs_forest(g), root=VIRTUAL_ROOT)
    d = StructureD(g, tree)
    d.note_vertex_inserted("new", [2, 4])
    # The inserted vertex can be queried as a source over base-tree segments.
    assert d.neighbor_on_segment("new", 0, 4, prefer_bottom=True) == 4
    assert d.neighbor_on_segment("new", 0, 3, prefer_bottom=True) == 2
    # Existing vertices see the new vertex through their overlay lists.
    assert "new" in d.neighbors_of(2)
    d.note_vertex_deleted("new")
    assert d.neighbor_on_segment(2, *(["new"] * 2), prefer_bottom=True) is None
    assert "new" not in [w for w in d.neighbors_of(2) if d.has_alive_edge(2, w)]


def test_deleted_vertex_masks_all_edges():
    g, tree, d = build(seed=3)
    victim = next(v for v in g.vertices() if g.degree(v) >= 2)
    nbr = g.neighbor_list(victim)[0]
    d.note_vertex_deleted(victim)
    assert victim not in d.neighbors_of(nbr)


# --------------------------------------------------------------------------- #
# Incremental maintenance: absorb_overlays
# --------------------------------------------------------------------------- #
def _apply_random_edge_churn(d, graph, count, rng):
    """Random valid edge insertions/deletions applied to *graph* and noted as
    overlays on *d*; returns the update descriptions."""
    applied = []
    for _ in range(count):
        edges = list(graph.edges())
        verts = list(graph.vertices())
        if edges and rng.random() < 0.5:
            u, v = rng.choice(edges)
            graph.remove_edge(u, v)
            d.note_edge_deleted(u, v)
            applied.append(("del", u, v))
        else:
            for _attempt in range(40):
                u, v = rng.sample(verts, 2)
                if not graph.has_edge(u, v):
                    graph.add_edge(u, v)
                    d.note_edge_inserted(u, v)
                    applied.append(("ins", u, v))
                    break
    return applied


@pytest.mark.parametrize("seed", range(8))
def test_absorb_overlays_matches_fresh_build_byte_identically(seed):
    """Property: after absorbing edge-churn overlays, the sorted lists (and
    hence every query answer) are byte-identical to a StructureD freshly built
    on the updated graph and the same base tree."""
    rng = random.Random(seed)
    g = gnp_random_graph(30 + seed, 0.12, seed=seed, connected=True)
    tree = DFSTree(static_dfs_tree(g, next(iter(g.vertices()))), root=None)
    d = StructureD(g, tree)
    _apply_random_edge_churn(d, g, 25, rng)
    d.absorb_overlays()
    fresh = StructureD(g, tree)
    assert d.overlay_size() == 0
    assert d._post == fresh._post
    for v in g.vertices():
        combined = sorted(d._sorted_nbrs.get(v, []) + list(d._cross_edges.get(v, [])),
                          key=d._post.__getitem__)
        assert combined == fresh._sorted_nbrs.get(v, []), v
        # The absorbed sorted lists themselves stay post-order sorted.
        posts = d._sorted_posts.get(v, [])
        assert posts == sorted(posts)


@pytest.mark.parametrize("seed", range(6))
def test_absorb_overlays_query_answers_match_fresh_build(seed):
    """Property (acceptance): through the canonical query service, an absorbed
    ``D`` answers byte-identically to a ``D`` freshly built on the updated
    graph — the exact comparison the amortized driver's rebuild policy relies
    on.  (The fresh build is based on a valid DFS tree of the updated graph,
    as ``d_maintenance="rebuild"`` would produce; canonical answers are a pure
    function of the graph and the current tree, so the two must coincide.)"""
    from repro.core.queries import DQueryService, EdgeQuery

    rng = random.Random(seed + 100)
    g = gnp_random_graph(34, 0.12, seed=seed, connected=True)
    root = next(iter(g.vertices()))
    tree = DFSTree(static_dfs_tree(g, root), root=None)
    d = StructureD(g, tree)
    _apply_random_edge_churn(d, g, 30, rng)
    d.absorb_overlays()
    # Raw alive-edge surface agrees with a fresh build on the same base tree.
    fresh_same_base = StructureD(g, tree)
    for u in g.vertices():
        assert sorted(map(str, d.neighbors_of(u))) == sorted(
            map(str, fresh_same_base.neighbors_of(u))
        ), u
    # Canonical service surface agrees with the rebuild-mode structure.
    current_tree = DFSTree(static_dfs_tree(g, root), root=None)
    absorbed_service = DQueryService(d, source_tree=current_tree)
    rebuilt_service = DQueryService(StructureD(g, current_tree))
    verts = list(current_tree.vertices())
    queries = []
    for _ in range(150):
        a, b = rng.sample(verts, 2)
        if not current_tree.is_ancestor(a, b):
            a, b = b, a
        if not current_tree.is_ancestor(a, b):
            continue
        target = tuple(current_tree.path(a, b))
        src_root = rng.choice(verts)
        if any(current_tree.is_ancestor(src_root, t) for t in target):
            continue  # source piece must be disjoint from the target path
        queries.append(
            EdgeQuery.from_tree(src_root, target, prefer_last=rng.random() < 0.5)
        )
    assert queries, "no valid queries generated"
    assert absorbed_service.answer_batch(queries) == rebuilt_service.answer_batch(queries)


def test_absorb_overlays_handles_vertex_churn():
    """Deleted vertices are purged everywhere; overlay-inserted vertices keep
    working after the absorb (their edges stay visible from both endpoints)."""
    g, tree, d = build(seed=9)
    victim = next(v for v in g.vertices() if g.degree(v) >= 2 and v != tree.root)
    old_neighbors = list(g.neighbors(victim))
    g.remove_vertex(victim)
    d.note_vertex_deleted(victim)
    g.add_vertex_with_edges("joiner", [old_neighbors[0]])
    d.note_vertex_inserted("joiner", [old_neighbors[0]])
    d.absorb_overlays()
    assert d.overlay_size() == 0
    for w in old_neighbors:
        assert victim not in d.neighbors_of(w)
    assert not d.has_alive_edge(old_neighbors[0], victim)
    assert d.has_alive_edge("joiner", old_neighbors[0])
    assert d.has_alive_edge(old_neighbors[0], "joiner")
    assert "joiner" in d.neighbors_of(old_neighbors[0])


def test_absorb_then_more_overlays_then_absorb_again():
    """Absorbs compose: a second round of churn + absorb stays consistent."""
    rng = random.Random(77)
    g = gnp_random_graph(28, 0.15, seed=5, connected=True)
    tree = DFSTree(static_dfs_tree(g, next(iter(g.vertices()))), root=None)
    d = StructureD(g, tree)
    for _ in range(3):
        _apply_random_edge_churn(d, g, 15, rng)
        d.absorb_overlays()
    fresh = StructureD(g, tree)
    for v in g.vertices():
        combined = sorted(d._sorted_nbrs.get(v, []) + list(d._cross_edges.get(v, [])),
                          key=d._post.__getitem__)
        assert combined == fresh._sorted_nbrs.get(v, []), v


def test_segment_depth_narrows_to_vertex_not_found():
    """Regression: ``_segment_depth`` used to catch *Exception*, so a broken
    ``tree.level`` (a typo, a corrupted tree) was silently mapped to the
    late-insert sentinel and the neighbour search kept going on garbage.
    Only the documented miss is narrowed; anything else propagates."""
    g, tree, d = build()
    v = next(iter(g.vertices()))
    assert d._segment_depth(v) == tree.level(v)
    # A vertex inserted after the base build: the documented sentinel.
    assert d._segment_depth("never-inserted") == 1 << 30
    with pytest.raises(VertexNotFound):
        tree.level("never-inserted")

    class BrokenTree:
        def level(self, w):
            raise RuntimeError("corrupt tree")

    d._tree = BrokenTree()
    with pytest.raises(RuntimeError):
        d._segment_depth(v)
