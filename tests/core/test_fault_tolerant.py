"""Tests for the fault-tolerant DFS (Theorem 14)."""

from tests.helpers import make_updates, small_graph_family
from repro.core.fault_tolerant import FaultTolerantDFS
from repro.core.updates import EdgeDeletion, VertexDeletion
from repro.graph.generators import gnp_random_graph
from repro.graph.validation import check_dfs_tree
from repro.metrics.counters import MetricsRecorder
from repro.workloads.updates import failure_burst


def test_single_failure_queries_on_all_graphs():
    for name, graph in small_graph_family():
        ft = FaultTolerantDFS(graph, validate=True)
        for upd in failure_burst(graph, 3, seed=1):
            tree, updated = ft.query_with_graph([upd])
            assert check_dfs_tree(updated, tree.parent_map()) == [], (name, upd)


def test_batches_of_increasing_size():
    graph = gnp_random_graph(40, 0.12, seed=4, connected=True)
    ft = FaultTolerantDFS(graph, validate=True)
    for k in (1, 2, 4, 6):
        updates = make_updates(graph, k, seed=100 + k)
        tree, updated = ft.query_with_graph(updates)
        assert check_dfs_tree(updated, tree.parent_map()) == []


def test_structure_is_never_rebuilt_and_overlays_reset():
    metrics = MetricsRecorder()
    graph = gnp_random_graph(35, 0.12, seed=6, connected=True)
    ft = FaultTolerantDFS(graph, metrics=metrics, validate=True)
    assert metrics["d_builds"] == 1
    for seed in range(5):
        updates = make_updates(graph, 3, seed=seed)
        ft.query(updates)
        assert ft.structure.overlay_size() == 0  # pristine after each query
    assert metrics["d_builds"] == 1  # preprocessing only
    assert ft.structure_size() == 2 * graph.num_edges


def test_queries_are_independent_of_each_other():
    graph = gnp_random_graph(30, 0.15, seed=8, connected=True)
    ft = FaultTolerantDFS(graph, validate=True)
    e = next(iter(graph.edges()))
    first = ft.query([EdgeDeletion(*e)]).parent_map()
    # A different query in between must not change the answer to the first one.
    ft.query(make_updates(graph, 4, seed=77))
    second = ft.query([EdgeDeletion(*e)]).parent_map()
    assert first == second


def test_segment_decomposition_growth_is_recorded():
    metrics = MetricsRecorder()
    graph = gnp_random_graph(60, 0.08, seed=10, connected=True)
    ft = FaultTolerantDFS(graph, metrics=metrics, validate=True)
    updates = make_updates(graph, 6, seed=3)
    ft.query(updates)
    # Queries against later trees may need several base-tree segments; the
    # metric must have been populated (>= 1 segment per query).
    assert metrics["d_target_segments"] >= metrics["queries"] * 0 + 1
    assert metrics["max_d_target_segments_per_query"] >= 1


def test_vertex_failures_including_hubs():
    graph = gnp_random_graph(40, 0.15, seed=12, connected=True)
    hub = max(graph.vertices(), key=graph.degree)
    ft = FaultTolerantDFS(graph, validate=True)
    tree, updated = ft.query_with_graph([VertexDeletion(hub)])
    assert hub not in tree
    assert check_dfs_tree(updated, tree.parent_map()) == []
