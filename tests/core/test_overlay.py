"""Tests for the shared overlay module and the StructureD overlay path outside
the fault-tolerant driver (Theorem 9 used directly)."""

import random

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.constants import VIRTUAL_ROOT
from repro.core.overlay import apply_update, validate_update
from repro.core.queries import BruteForceQueryService, DQueryService, EdgeQuery
from repro.core.structure_d import StructureD
from repro.core.updates import (
    EdgeDeletion,
    EdgeInsertion,
    VertexDeletion,
    VertexInsertion,
)
from repro.exceptions import UpdateError
from repro.graph.generators import gnp_random_graph, path_graph
from repro.graph.traversal import static_dfs_forest
from repro.tree.dfs_tree import DFSTree
from repro.workloads.updates import UpdateSequenceGenerator


def build(seed=0, n=40, p=0.12):
    g = gnp_random_graph(n, p, seed=seed, connected=True)
    tree = DFSTree(static_dfs_forest(g), root=VIRTUAL_ROOT)
    return g, tree, StructureD(g, tree)


# --------------------------------------------------------------------------- #
# validate_update / apply_update
# --------------------------------------------------------------------------- #
def test_validate_update_rejects_malformed_updates_without_mutation():
    g = path_graph(5)
    before = g.copy()
    bad = [
        EdgeInsertion(0, 0),          # self loop
        EdgeInsertion(0, 1),          # duplicate edge
        EdgeInsertion(0, "ghost"),    # missing endpoint
        EdgeDeletion(0, 4),           # missing edge
        VertexInsertion(3),           # duplicate vertex
        VertexInsertion("v", ["ghost"]),  # missing neighbor
        VertexDeletion("ghost"),      # missing vertex
        "not-an-update",              # unknown type
    ]
    for upd in bad:
        with pytest.raises(UpdateError):
            validate_update(g, upd)
    assert g == before


def test_apply_update_wraps_graph_errors():
    g = path_graph(4)
    with pytest.raises(UpdateError):
        apply_update(g, EdgeDeletion(0, 3))
    with pytest.raises(UpdateError):
        apply_update(g, EdgeInsertion(1, 1))


def test_apply_update_mirrors_graph_and_overlay():
    g, tree, d = build(seed=5)
    gen = UpdateSequenceGenerator(g, seed=9)
    for upd in gen.sequence(15):
        validate_update(g, upd)
        apply_update(g, upd, d)
    # After replay, D's alive-edge view equals the updated graph exactly.
    for u in g.vertices():
        if not d.indexes_vertex(u):
            continue
        graph_nbrs = {w for w in g.neighbors(u) if d.indexes_vertex(w)}
        alive = {w for w in set(d.neighbors_of(u)) if g.has_vertex(w)}
        assert alive == graph_nbrs, u


# --------------------------------------------------------------------------- #
# Interleaved overlays
# --------------------------------------------------------------------------- #
def test_interleaved_edge_overlays():
    g = path_graph(8)
    tree = DFSTree(static_dfs_forest(g), root=VIRTUAL_ROOT)
    d = StructureD(g, tree)
    # delete a base edge, insert a brand new one, then undo both — the alive
    # view must track every step.
    d.note_edge_deleted(3, 4)
    assert not d.has_alive_edge(3, 4)
    d.note_edge_inserted(2, 6)
    assert d.has_alive_edge(2, 6) and d.has_alive_edge(6, 2)
    d.note_edge_inserted(3, 4)  # re-insert the deleted base edge
    assert d.has_alive_edge(3, 4)
    d.note_edge_deleted(2, 6)  # delete the overlay edge again
    assert not d.has_alive_edge(2, 6)
    assert 6 not in d.neighbors_of(2)


def test_vertex_insertion_overlay_normalizes_neighbors():
    # The graph layer drops self loops and collapses duplicate neighbours;
    # the overlay must mirror that, or D's alive-edge view diverges.
    g, tree, d = build(seed=11)
    apply_update(g, VertexInsertion("x", ["x", 0, 0, 1]), d)
    assert sorted(g.neighbor_list("x")) == [0, 1]
    assert sorted(d.neighbors_of("x")) == [0, 1]
    assert not d.has_alive_edge("x", "x")


def test_vertex_reinsertion_does_not_resurrect_old_edges():
    g, tree, d = build(seed=7)
    victim = next(v for v in g.vertices() if g.degree(v) >= 3)
    old_nbrs = g.neighbor_list(victim)
    d.note_vertex_deleted(victim)
    for w in old_nbrs:
        assert victim not in [x for x in d.neighbors_of(w) if d.has_alive_edge(w, x)]
    # Re-insert the same id with a strict subset of its old neighbours: the
    # other old edges must stay dead.
    keep, dead = old_nbrs[0], old_nbrs[1:]
    d.note_vertex_inserted(victim, [keep])
    assert d.has_alive_edge(victim, keep)
    for w in dead:
        assert not d.has_alive_edge(victim, w), w
        assert not d.has_alive_edge(w, victim), w


def test_reset_overlays_is_idempotent_and_restores_pristine_state():
    g, tree, d = build(seed=3)
    pristine_size = d.size()
    gen = UpdateSequenceGenerator(g.copy(), seed=4)
    scratch = g.copy()
    for upd in gen.sequence(12):
        apply_update(scratch, upd, d)
    assert d.overlay_size() > 0
    d.reset_overlays()
    assert d.overlay_size() == 0
    assert d.size() == pristine_size
    first = (dict(d._sorted_posts), dict(d._post))
    d.reset_overlays()  # idempotent: a second reset changes nothing
    assert d.overlay_size() == 0
    assert (dict(d._sorted_posts), dict(d._post)) == first
    # The pristine structure answers base-graph queries again.
    service = DQueryService(d)
    brute = BruteForceQueryService(g, d.base_tree)
    verts = [v for v in d.base_tree.vertices() if v != VIRTUAL_ROOT]
    chain = [verts[-1]]
    while d.base_tree.parent(chain[-1]) not in (None, VIRTUAL_ROOT):
        chain.append(d.base_tree.parent(chain[-1]))
    target = tuple(reversed(chain))
    for root in verts[:10]:
        tgt = tuple(v for v in target if not d.base_tree.is_ancestor(root, v))
        if not tgt:
            continue
        q = EdgeQuery.from_tree(root, tgt, prefer_last=True)
        a, b = service.answer(q), brute.answer(q)
        pos = {v: i for i, v in enumerate(tgt)}
        assert (a is None) == (b is None)
        if a is not None:
            assert pos[a[1]] == pos[b[1]]


# --------------------------------------------------------------------------- #
# Property-based: overlay-served D vs freshly built D
# --------------------------------------------------------------------------- #
SETTINGS = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


def _random_tree_queries(tree, rng, rounds=10):
    verts = [v for v in tree.vertices() if v != VIRTUAL_ROOT]
    out = []
    for _ in range(rounds):
        bottom = rng.choice(verts)
        chain = [bottom]
        while tree.parent(chain[-1]) not in (None, VIRTUAL_ROOT):
            chain.append(tree.parent(chain[-1]))
        root = rng.choice(verts)
        target = tuple(v for v in reversed(chain) if not tree.is_ancestor(root, v))
        if target:
            out.append(EdgeQuery.from_tree(root, target, prefer_last=rng.random() < 0.5))
    return out


@SETTINGS
@given(
    st.integers(min_value=0, max_value=10**6),
    st.integers(min_value=1, max_value=12),
)
def test_overlay_answers_equal_fresh_structure_answers(seed, count):
    """After k overlaid *deletions*, the stale D + overlays returns the same
    canonical answers as a D built from scratch on the updated graph and the
    same base tree.  (Deletions never create cross edges w.r.t. the base tree,
    so the freshly-built D is a fair comparison point — insertions are covered
    by the oracle test below and the driver-level cross-validation tests.)"""
    rng = random.Random(seed)
    g = gnp_random_graph(24, 0.15, seed=seed, connected=True)
    tree = DFSTree(static_dfs_forest(g), root=VIRTUAL_ROOT)
    stale = StructureD(g.copy(), tree)
    current = g.copy()
    gen = UpdateSequenceGenerator(current, seed=seed + 1)
    for upd in gen.sequence(count, weights={"edge_del": 1.0, "vertex_del": 0.4}):
        apply_update(current, upd, stale)
    fresh = StructureD(current, tree)
    overlay_service = DQueryService(stale)
    fresh_service = DQueryService(fresh)
    brute = BruteForceQueryService(current, tree)

    for q in _random_tree_queries(tree, rng):
        a = overlay_service.answer(q)
        b = fresh_service.answer(q)
        c = brute.answer(q)
        pos = {v: i for i, v in enumerate(q.target)}
        assert (a is None) == (b is None) == (c is None)
        if a is not None:
            # Same canonical position — and the same canonical edge.
            assert pos[a[1]] == pos[b[1]] == pos[c[1]]
            assert a == b


@SETTINGS
@given(
    st.integers(min_value=0, max_value=10**6),
    st.integers(min_value=1, max_value=12),
)
def test_overlay_answers_match_oracle_under_mixed_churn(seed, count):
    """Under interleaved insertions and deletions, overlay-served answers stay
    exactly equal (both endpoints) to the brute-force oracle on the updated
    graph — the canonical-answer guarantee the amortized engine relies on."""
    rng = random.Random(seed)
    g = gnp_random_graph(24, 0.15, seed=seed, connected=True)
    tree = DFSTree(static_dfs_forest(g), root=VIRTUAL_ROOT)
    stale = StructureD(g.copy(), tree)
    current = g.copy()
    gen = UpdateSequenceGenerator(current, seed=seed + 1)
    for upd in gen.sequence(count, weights={"edge_del": 1.0, "edge_ins": 1.0}):
        apply_update(current, upd, stale)
    overlay_service = DQueryService(stale)
    brute = BruteForceQueryService(current, tree)

    for q in _random_tree_queries(tree, rng):
        a = overlay_service.answer(q)
        c = brute.answer(q)
        assert a == c
