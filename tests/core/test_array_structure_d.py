"""ArrayStructureD: the flat postorder-sorted core behind ``backend="array"``.

Everything here is differential against the dict reference ``StructureD`` —
identical rows, identical query answers, identical probe counters — plus the
array-only machinery: the batched re-anchor path, its scalar fallbacks, the
in-place flat absorb of edge-only overlay epochs, and the materialization
fallback for epochs with vertex overlays.
"""

from __future__ import annotations

import random

import pytest

np = pytest.importorskip("numpy")

from repro.constants import VIRTUAL_ROOT
from repro.core.array_structure_d import ArrayStructureD
from repro.core.structure_d import StructureD
from repro.graph.array_graph import ArrayGraph
from repro.graph.generators import gnp_random_graph
from repro.graph.traversal import static_dfs_forest
from repro.metrics.counters import MetricsRecorder
from repro.tree.dfs_tree import DFSTree


def _pair(n=24, p=0.25, seed=3):
    g = gnp_random_graph(n, p, seed=seed)
    ag = ArrayGraph.from_graph(g)
    tree = DFSTree(static_dfs_forest(g), root=VIRTUAL_ROOT)
    return g, ag, tree


def _interval(tree, root):
    hi = tree.postorder(root)
    return hi - tree.subtree_size(root) + 1, hi


def test_build_matches_dict_reference_exactly():
    g, ag, tree = _pair()
    md, ma = MetricsRecorder(), MetricsRecorder()
    dd = StructureD(g, tree, metrics=md)
    da = ArrayStructureD(ag, tree, metrics=ma)
    assert da.size() == dd.size()
    assert ma["d_build_work"] == md["d_build_work"]
    for v in g.vertices():
        row_d = dd._row(v)
        row_a = da._row(v)
        if row_d is None:
            assert row_a is None, v
        else:
            assert list(row_a[0]) == list(row_d[0]), v  # postorders
            assert list(row_a[1]) == list(row_d[1]), v  # neighbour ids


def test_scalar_queries_identical_with_and_without_overlays():
    rng = random.Random(9)
    g, ag, tree = _pair(seed=11)
    dd = StructureD(g, tree)
    da = ArrayStructureD(ag, tree)
    verts = list(g.vertices())
    for round_ in range(3):
        for _ in range(80):
            u = verts[rng.randrange(len(verts))]
            lo, hi = _interval(tree, verts[rng.randrange(len(verts))])
            assert da.min_post_alive_neighbor(u, lo, hi) == dd.min_post_alive_neighbor(u, lo, hi)
        # dirty some rows between rounds; answers must keep matching
        for v in rng.sample(verts, 3):
            dd.note_vertex_deleted(v)
            da.note_vertex_deleted(v)


def test_batch_reanchor_identical_and_counts_fallbacks():
    rng = random.Random(21)
    g, ag, tree = _pair(n=40, seed=5)
    dd = StructureD(g, tree)
    ma = MetricsRecorder()
    da = ArrayStructureD(ag, tree, metrics=ma)
    verts = list(g.vertices())
    for v in rng.sample(verts, 4):
        dd.note_vertex_deleted(v)
        da.note_vertex_deleted(v)
    us, los, his = [], [], []
    for _ in range(200):
        us.append(verts[rng.randrange(len(verts))])
        lo, hi = _interval(tree, verts[rng.randrange(len(verts))])
        los.append(lo)
        his.append(hi)
    expect = StructureD.min_post_alive_neighbor_batch(dd, us, los, his)
    got_lists = da.min_post_alive_neighbor_batch(us, los, his)
    got_arrays = da.min_post_alive_neighbor_batch(
        us, np.asarray(los, dtype=np.int64), np.asarray(his, dtype=np.int64)
    )
    assert got_lists == expect  # answers AND probe count
    assert got_arrays == expect
    assert ma["d_batch_queries"] == 2
    assert ma["d_batch_query_fallbacks"] == 0


def test_edge_only_absorb_stays_flat_and_matches_dict():
    """Edge-only overlay epochs absorb into the flat arrays in place: no
    materialization, and rows / pinned lists / ``d_absorb_work`` are
    byte-identical to the dict backend's absorb across repeated epochs."""
    rng = random.Random(4242)
    for trial in range(25):
        n = rng.randrange(4, 40)
        g, ag, tree = _pair(n=n, p=rng.uniform(0.05, 0.5), seed=rng.randrange(10**6))
        md, ma = MetricsRecorder(), MetricsRecorder()
        dd = StructureD(g, tree, metrics=md)
        da = ArrayStructureD(ag, tree, metrics=ma)
        verts = list(g.vertices())
        present = {frozenset(e) for e in g.edges()}
        for epoch in range(rng.randrange(1, 4)):
            for _ in range(rng.randrange(0, 12)):
                if rng.random() < 0.45 and present:
                    u, v = tuple(rng.choice(sorted(present, key=sorted)))
                    present.discard(frozenset((u, v)))
                    dd.note_edge_deleted(u, v)
                    da.note_edge_deleted(u, v)
                else:
                    u, v = rng.sample(verts, 2)
                    if frozenset((u, v)) in present:
                        continue
                    present.add(frozenset((u, v)))
                    dd.note_edge_inserted(u, v)
                    da.note_edge_inserted(u, v)
            dd.absorb_overlays()
            da.absorb_overlays()
            assert not da._materialized, trial
            assert ma["d_flat_absorbs"] == epoch + 1
            assert ma["d_flat_materializations"] == 0
            assert ma["d_absorb_work"] == md["d_absorb_work"], (trial, epoch)
            for v in tree.vertices():
                rd = dd._row(v)
                ra = da._row(v)
                if rd is None or len(rd[0]) == 0:
                    assert ra is None or len(ra[0]) == 0, (trial, v)
                else:
                    assert list(ra[0]) == list(rd[0]), (trial, v)
                    assert list(ra[1]) == list(rd[1]), (trial, v)
            assert {k: v for k, v in da._cross_edges.items() if v} == {
                k: v for k, v in dd._cross_edges.items() if v
            }, trial
            us = [rng.choice(verts) for _ in range(25)]
            los, his = [], []
            for _ in us:
                lo, hi = _interval(tree, rng.choice(verts))
                los.append(lo)
                his.append(hi)
            assert da.min_post_alive_neighbor_batch(
                us, los, his
            ) == StructureD.min_post_alive_neighbor_batch(dd, us, los, his), trial


def test_sustained_churn_absorbs_never_materialize():
    """The ISSUE follow-up closed by the flat absorb: on the edge-only
    ``sustained_churn`` scenario every absorb epoch stays in the flat core
    (``d_flat_materializations == 0``) while answers and absorb work remain
    identical to the dict driver."""
    from repro.core.dynamic_dfs import FullyDynamicDFS
    from repro.workloads.scenarios import build_scenario

    scenario = build_scenario("sustained_churn", n=64, seed=3, updates=100)

    def run(backend):
        m = MetricsRecorder(backend)
        dyn = FullyDynamicDFS(
            scenario.graph.copy(),
            backend=backend,
            metrics=m,
            d_maintenance="absorb",
            rebuild_every=4,
        )
        for u in scenario.updates:
            dyn.apply(u)
        return dyn, m

    dyn_a, ma = run("array")
    dyn_d, md = run("dict")
    assert dyn_a.tree.parent_map() == dyn_d.tree.parent_map()
    assert ma["d_absorbs"] == md["d_absorbs"] >= 1
    assert ma["d_flat_absorbs"] == ma["d_absorbs"]
    assert ma["d_flat_materializations"] == 0
    assert ma["d_absorb_work"] == md["d_absorb_work"]


def test_batch_falls_back_after_materialization():
    g, ag, tree = _pair()
    ma = MetricsRecorder()
    da = ArrayStructureD(ag, tree, metrics=ma)
    dd = StructureD(g, tree)
    verts = list(g.vertices())
    u, w = verts[0], verts[1]
    dd.note_vertex_deleted(u)
    da.note_vertex_deleted(u)
    dd.absorb_overlays()
    da.absorb_overlays()  # one-way: flat rows degrade to python lists
    assert ma["d_flat_materializations"] == 1
    lo, hi = _interval(tree, w)
    assert da.min_post_alive_neighbor_batch([w], [lo], [hi]) == StructureD.min_post_alive_neighbor_batch(
        dd, [w], [lo], [hi]
    )
    assert ma["d_batch_query_fallbacks"] == 1


def test_non_int_vertices_take_the_python_path():
    g = gnp_random_graph(10, 0.4, seed=2)
    relabel = {v: f"v{v}" for v in g.vertices()}
    h = type(g)(edges=[(relabel[u], relabel[v]) for u, v in g.edges()])
    ah = ArrayGraph.from_graph(h)
    tree = DFSTree(static_dfs_forest(h), root=VIRTUAL_ROOT)
    dd = StructureD(h, tree)
    da = ArrayStructureD(ah, tree)
    verts = list(h.vertices())
    us = verts * 2
    los, his = [], []
    rng = random.Random(0)
    for _ in us:
        lo, hi = _interval(tree, verts[rng.randrange(len(verts))])
        los.append(lo)
        his.append(hi)
    assert da.min_post_alive_neighbor_batch(us, los, his) == StructureD.min_post_alive_neighbor_batch(
        dd, us, los, his
    )


def test_batch_rejects_silently_truncating_inputs():
    """Float vertex queries must not be truncated into the int fast path."""
    g, ag, tree = _pair(n=12, seed=8)
    dd = StructureD(g, tree)
    da = ArrayStructureD(ag, tree)
    verts = list(g.vertices())
    lo, hi = _interval(tree, verts[0])
    us = [float(verts[0]) + 0.5, verts[1]]
    expect = StructureD.min_post_alive_neighbor_batch(dd, us, [lo, lo], [hi, hi])
    assert da.min_post_alive_neighbor_batch(us, [lo, lo], [hi, hi]) == expect


def test_differential_fuzz_scalar_and_batch():
    rng = random.Random(77)
    for trial in range(40):
        n = rng.randrange(2, 30)
        g, ag, tree = _pair(n=n, p=rng.uniform(0.05, 0.6), seed=rng.randrange(10**6))
        dd = StructureD(g, tree)
        da = ArrayStructureD(ag, tree)
        verts = list(g.vertices())
        for v in rng.sample(verts, rng.randrange(0, min(4, len(verts)) + 1)):
            dd.note_vertex_deleted(v)
            da.note_vertex_deleted(v)
        us, los, his = [], [], []
        for _ in range(50):
            us.append(verts[rng.randrange(len(verts))])
            lo, hi = _interval(tree, verts[rng.randrange(len(verts))])
            los.append(lo)
            his.append(hi)
        assert da.min_post_alive_neighbor_batch(us, los, his) == StructureD.min_post_alive_neighbor_batch(
            dd, us, los, his
        ), trial
