"""Tests for the update vocabulary."""

import pytest

from repro.core.updates import (
    EdgeDeletion,
    EdgeInsertion,
    VertexDeletion,
    VertexInsertion,
    inverse,
    is_edge_update,
    is_vertex_update,
)


def test_descriptions_and_kinds():
    assert "insert edge" in EdgeInsertion(1, 2).describe()
    assert "delete edge" in EdgeDeletion(1, 2).describe()
    assert "insert vertex" in VertexInsertion(3, (1, 2)).describe()
    assert "delete vertex" in VertexDeletion(3).describe()
    assert is_edge_update(EdgeInsertion(1, 2)) and not is_vertex_update(EdgeInsertion(1, 2))
    assert is_vertex_update(VertexDeletion(3)) and not is_edge_update(VertexDeletion(3))


def test_vertex_insertion_neighbors_are_normalised_to_tuple():
    upd = VertexInsertion(5, [1, 2, 3])
    assert upd.neighbors == (1, 2, 3)
    assert EdgeInsertion(1, 2).endpoints() == (1, 2)


def test_updates_are_hashable_and_equal_by_value():
    assert EdgeInsertion(1, 2) == EdgeInsertion(1, 2)
    assert len({EdgeDeletion(0, 1), EdgeDeletion(0, 1), VertexDeletion(9)}) == 2


def test_inverse():
    assert inverse(EdgeInsertion(1, 2)) == EdgeDeletion(1, 2)
    assert inverse(EdgeDeletion(1, 2)) == EdgeInsertion(1, 2)
    assert inverse(VertexInsertion(5, (1,))) == VertexDeletion(5)
    with pytest.raises(ValueError):
        inverse(VertexDeletion(5))
