"""Figure 1: the components property.

When the partially built tree reaches vertex ``v`` and an unvisited component
``C`` has edges both to ``v`` and to an ancestor ``w`` of ``v``, only the edge
at ``v`` needs to be considered: attaching ``C`` there turns the ancestor edge
into a back edge.  The engines implement this by always attaching a component
through its *lowest* edge to the traversed path; these tests reconstruct the
figure and check both the attachment choice and the resulting back edge.
"""

from repro.constants import VIRTUAL_ROOT
from repro.core.queries import BruteForceQueryService, EdgeQuery
from repro.core.reduction import RerootTask
from repro.core.reroot_parallel import ParallelRerootEngine
from repro.graph.graph import UndirectedGraph
from repro.graph.traversal import static_dfs_forest
from repro.graph.validation import check_dfs_tree, is_back_edge
from repro.tree.dfs_tree import DFSTree


def figure1_graph():
    # Path r=0 - 1 - 2 (w=1 an ancestor of v=2), one unvisited component
    # C = {3, 4, 5} with an edge e from 2 into C and an edge e' from 1 into C.
    g = UndirectedGraph(
        edges=[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (1, 5)]
    )
    return g


def test_lowest_edge_is_preferred():
    g = figure1_graph()
    tree = DFSTree(static_dfs_forest(g), root=VIRTUAL_ROOT)
    service = BruteForceQueryService(g, tree)
    # Component {3,4,5} queried against the path 0-1-2 (shallow -> deep): the
    # lowest edge is (3, 2), not the ancestor edge (5, 1).
    answer = service.answer(EdgeQuery.from_tree(3, (0, 1, 2), prefer_last=True))
    assert answer is not None
    assert answer[1] == 2


def test_ignored_edge_becomes_back_edge():
    g = figure1_graph()
    tree = DFSTree(static_dfs_forest(g), root=VIRTUAL_ROOT)
    service = BruteForceQueryService(g, tree)
    engine = ParallelRerootEngine(tree, service, adjacency=g.neighbor_list, validate=True)
    # Reroot the component subtree T(3) at 3, hanging from vertex 2 (its lowest
    # edge on the path), as the components property dictates.
    assignment = engine.reroot_many([RerootTask(subtree_root=3, new_root=3, attach=2)])
    parent = tree.parent_map()
    parent.update(assignment)
    assert check_dfs_tree(g, parent) == []
    # The ignored edge (1, 5) is now a back edge of the new tree.
    assert is_back_edge(parent, 1, 5)
    # And the component indeed hangs from vertex 2.
    assert parent[3] == 2


def test_attaching_at_the_ancestor_would_be_wrong():
    g = figure1_graph()
    tree = DFSTree(static_dfs_forest(g), root=VIRTUAL_ROOT)
    # Hang the component from the *ancestor* endpoint instead: the edge (2, 3)
    # becomes a cross edge, so the result is not a DFS tree — which is exactly
    # why the components property keeps the lowest edge.
    parent = tree.parent_map()
    parent.update({5: 1, 4: 5, 3: 4})
    problems = check_dfs_tree(g, parent)
    assert any("cross edge" in p for p in problems)
