"""Per-rule fixture tests: every fixture's findings match its markers.

One good and one bad fixture per rule; the assertion is exact — the multiset
of ``(line, rule-id)`` pairs the linter reports must equal what the fixture's
``# expect:`` markers promise.  Good fixtures promise nothing, so any finding
against them is a regression (a rule got too eager).
"""

from __future__ import annotations

import pytest

from tools.lint import build_linter

from tests.lint.conftest import FIXTURES, REPO_ROOT, load_fixture

ALL_FIXTURES = sorted(p.stem for p in FIXTURES.glob("*.py"))

#: rule id -> the bad fixture that exercises it (sanity-pins corpus coverage).
RULE_FIXTURES = {
    "counter-registry": "counter_registry_bad",
    "dynamic-counter-key": "dynamic_key_bad",
    "numpy-isolation": "numpy_bad",
    "unseeded-random": "unseeded_random_bad",
    "wallclock-time": "wallclock_bad",
    "set-iteration-order": "set_order_bad",
    "writer-pairing": "writer_pairing_bad",
    "except-swallow": "except_swallow_bad",
    "api-docstring": "api_docstring_bad",
    "api-knob": "api_knob_bad",
}


def _lint_fixture(name):
    rel, source, expected = load_fixture(name)
    result = build_linter(REPO_ROOT).lint_sources({rel: source})
    return result, expected


@pytest.mark.parametrize("name", ALL_FIXTURES)
def test_fixture_findings_match_expect_markers(name):
    result, expected = _lint_fixture(name)
    got = sorted((d.line, d.rule) for d in result.findings)
    assert got == expected, "\n".join(d.format() for d in result.findings)


def test_corpus_covers_every_rule():
    """Each checker rule has a bad fixture whose markers actually use it."""
    for rule, name in RULE_FIXTURES.items():
        _, _, expected = load_fixture(name)
        assert any(r == rule for _, r in expected), (rule, name)


def test_suppression_is_counted_and_attributed():
    """The suppressed fixture lints clean but shows up in the directive books."""
    result, expected = _lint_fixture("suppressed_ok")
    assert expected == []
    assert result.findings == []
    assert result.directives == 1
    assert [d.rule for d in result.suppressed] == ["unseeded-random"]


def test_unused_suppression_is_flagged():
    # Assembled at runtime so this test file does not add a directive to the
    # real tree's own suppression count.
    directive = "# repro-lint: " + "disable=unseeded-random"
    src = f'"""Clean module."""\n\nX = 1  {directive}\n'
    result = build_linter(REPO_ROOT).lint_sources(
        {"src/repro/core/example.py": src})
    assert [(d.line, d.rule) for d in result.findings] == [(3, "unused-suppression")]
    assert result.directives == 1
    assert result.suppressed == []


def test_good_fixtures_exist_for_every_bad_one():
    """Corpus hygiene: each rule family ships a good twin (suppressed_ok and
    the two single-sided api fixtures are the documented exceptions)."""
    singles = {"dynamic_key_bad", "api_knob_bad", "suppressed_ok"}
    for name in ALL_FIXTURES:
        if name.endswith("_bad") and name not in singles:
            assert name[:-4] + "_good" in ALL_FIXTURES, name
