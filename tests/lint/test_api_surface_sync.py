"""The static API surface must mirror the runtime docstring test.

``tools/lint/rules/public_api.py`` re-states the surface of
``tests/test_docstrings.py`` so it can run without importing ``repro`` (a
clean checkout, no installs).  Restating means it can drift; these tests pin
the two copies together by parsing the runtime test's AST — class list and
knob list both — so renaming or exporting a class breaks loudly until both
sides are updated.
"""

from __future__ import annotations

import ast

from tools.lint.rules.public_api import KNOB_DOCS, PUBLIC_API

from tests.lint.conftest import REPO_ROOT

_RUNTIME_TEST = REPO_ROOT / "tests" / "test_docstrings.py"


def _runtime_tree() -> ast.Module:
    return ast.parse(_RUNTIME_TEST.read_text(encoding="utf-8"))


def test_class_surface_matches_runtime_test():
    runtime_names = None
    for node in _runtime_tree().body:
        if isinstance(node, ast.Assign) and any(
                isinstance(t, ast.Name) and t.id == "PUBLIC_CLASSES"
                for t in node.targets):
            runtime_names = [elt.id for elt in node.value.elts]
    assert runtime_names, "PUBLIC_CLASSES not found in tests/test_docstrings.py"
    static_names = [name for names in PUBLIC_API.values() for name in names]
    assert len(set(static_names)) == len(static_names)
    assert sorted(static_names) == sorted(runtime_names)


def test_knob_surface_matches_runtime_test():
    """Every knob string the runtime test asserts on, and no others."""
    fn = next(node for node in _runtime_tree().body
              if isinstance(node, ast.FunctionDef)
              and node.name == "test_driver_docstrings_name_their_knobs")
    body = fn.body[1:] if ast.get_docstring(fn) else fn.body
    runtime_knobs = {
        c.value for stmt in body for c in ast.walk(stmt)
        if isinstance(c, ast.Constant) and isinstance(c.value, str)}
    static_knobs = {k for knobs in KNOB_DOCS.values() for k in knobs}
    assert static_knobs == runtime_knobs


def test_public_api_paths_exist():
    for rel in PUBLIC_API:
        assert (REPO_ROOT / rel).is_file(), rel


def test_knob_classes_are_on_the_surface():
    surface = {name for names in PUBLIC_API.values() for name in names}
    for cls in KNOB_DOCS:
        assert cls in surface, cls
