"""Fixture-corpus loader for the repro-lint tests.

Each fixture in ``fixtures/`` is a self-describing snippet:

* line 1 carries ``# lint-path: <repo-relative path>`` — the path the
  snippet pretends to live at (rules are path-scoped);
* every line that should produce a finding carries an inline
  ``# expect: <rule-id>`` marker.

``load_fixture`` returns the pretend path, the raw source, and the sorted
``(line, rule)`` pairs the markers promise, so tests can assert the linter's
findings match the corpus exactly — ids *and* line numbers.
"""

from __future__ import annotations

import re
from pathlib import Path
from typing import List, Tuple

REPO_ROOT = Path(__file__).resolve().parents[2]
FIXTURES = Path(__file__).parent / "fixtures"

_PATH_RE = re.compile(r"#\s*lint-path:\s*(\S+)")
_EXPECT_RE = re.compile(r"#\s*expect:\s*([a-z][a-z0-9-]*)")


def load_fixture(name: str) -> Tuple[str, str, List[Tuple[int, str]]]:
    """(pretend_rel, source, expected ``(line, rule)`` pairs) for a fixture."""
    source = (FIXTURES / f"{name}.py").read_text(encoding="utf-8")
    lines = source.splitlines()
    m = _PATH_RE.search(lines[0]) if lines else None
    assert m, f"{name}: missing '# lint-path:' directive on line 1"
    expected = []
    for lineno, line in enumerate(lines, 1):
        em = _EXPECT_RE.search(line)
        if em:
            expected.append((lineno, em.group(1)))
    return m.group(1), source, sorted(expected)
