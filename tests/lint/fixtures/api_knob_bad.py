# lint-path: src/repro/core/dynamic_dfs.py
"""Bad: the driver docstring stopped naming its tuning knob."""


class FullyDynamicDFS:  # expect: api-knob
    """Fully dynamic DFS driver (docstring forgot to mention the knob)."""

    def apply(self, update):
        """Apply one edge/vertex update and refresh the DFS tree."""
        return update
