# lint-path: src/repro/shard/placement.py
"""Good: the exported class and every public member are documented."""


class HashRing:
    """Consistent-hash ring mapping vertices onto shard ids."""

    def shard_of(self, v):
        """Return the shard id owning vertex *v*."""
        return hash(v) % 2

    def rebalance(self, shards):
        """Recompute ring ownership for a new shard count."""
        return shards
