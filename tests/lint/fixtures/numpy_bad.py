# lint-path: src/repro/tree/fixture_example.py
"""Bad: module-level numpy import outside the allowlisted array modules."""

import numpy as np  # expect: numpy-isolation
from numpy import asarray  # expect: numpy-isolation


def as_arrays(values):
    """Materialise *values* as an int64 array."""
    return asarray(values, dtype=np.int64)
