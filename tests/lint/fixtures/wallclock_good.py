# lint-path: src/repro/core/fixture_example.py
"""Good: wall-clock measurement goes through the metrics recorder."""


def timed_build(metrics, build):
    """Run *build* under the registered build_d timer."""
    with metrics.timer("build_d"):
        return build()
