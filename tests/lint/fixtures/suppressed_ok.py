# lint-path: src/repro/core/fixture_example.py
"""A violation silenced by an inline directive: no findings, one directive."""

import random


def jitter():
    """Documented escape hatch around the determinism rule."""
    return random.random()  # repro-lint: disable=unseeded-random
