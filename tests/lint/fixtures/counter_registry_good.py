# lint-path: src/repro/core/fixture_example.py
"""Good: every recorded key is registered in WELL_KNOWN_COUNTERS."""


class Engine:
    """Fixture engine."""

    def __init__(self, metrics):
        self.metrics = metrics

    def work(self):
        """Record through every recorder method, registered keys only."""
        self.metrics.inc("updates")
        self.metrics.inc("d_builds", 2)
        self.metrics.observe_max("overlay_size", 5)  # max_ alias
        self.metrics.observe_max("max_update_batch_size", 3)  # direct max_ name
        self.metrics.set("avg_target_segments", 1.5)
        with self.metrics.timer("build_d"):  # registered as time_build_d
            pass
