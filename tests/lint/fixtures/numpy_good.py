# lint-path: src/repro/tree/fixture_example.py
"""Good: numpy only lazily, inside the function that needs it."""


def as_arrays(values):
    """Materialise *values* as an int64 array (array backends only)."""
    import numpy as np

    return np.asarray(values, dtype=np.int64)
