# lint-path: src/repro/core/fixture_example.py
"""Bad: begin_update without a structurally guaranteed end_update."""


def apply_unguarded(backend, update):
    """A raise in mutate() leaves the writer slot held forever."""
    backend.begin_update(update)  # expect: writer-pairing
    backend.mutate(update)
    result = backend.commit(update)
    backend.end_update(update)
    return result


def apply_try_without_finally(backend, update):
    """except alone is not enough — a KeyboardInterrupt still leaks."""
    backend.begin_update(update)  # expect: writer-pairing
    try:
        backend.mutate(update)
    except ValueError:
        backend.end_update(update)
        raise
    backend.end_update(update)
