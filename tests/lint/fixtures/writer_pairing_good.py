# lint-path: src/repro/core/fixture_example.py
"""Good: begin_update is immediately guarded by try/finally end_update."""


def apply(backend, update):
    """Run one update under the writer protocol."""
    backend.begin_update(update)
    try:
        backend.mutate(update)
        return backend.commit(update)
    finally:
        backend.end_update(update)
