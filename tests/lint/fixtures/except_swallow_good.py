# lint-path: src/repro/core/fixture_example.py
"""Good: broad handlers either re-raise, narrow, or bump an error counter."""

from repro.exceptions import VertexNotFound


def depth_or_sentinel(tree, v):
    """Narrow except: only the documented miss is mapped to a sentinel."""
    try:
        return tree.level(v)
    except VertexNotFound:
        return 1 << 30


def notify(metrics, listener, event):
    """Broad except, but the failure is counted — never silent."""
    try:
        listener(event)
    except Exception:
        metrics.inc("commit_listener_errors")


def forward(conn, payload):
    """Broad except that re-raises after cleanup is fine."""
    try:
        conn.send(payload)
    except Exception:
        conn.close()
        raise
