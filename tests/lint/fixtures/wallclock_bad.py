# lint-path: src/repro/core/fixture_example.py
"""Bad: raw wall-clock reads outside the metrics layer."""

import time
from time import perf_counter  # expect: wallclock-time


def timed_build(build):
    """Measure *build* by hand instead of through MetricsRecorder."""
    start = time.perf_counter()  # expect: wallclock-time
    result = build()
    elapsed = time.time() - start  # expect: wallclock-time
    return result, elapsed, perf_counter()
