# lint-path: src/repro/shard/placement.py
"""Bad: the exported class surface lost its docstrings."""


class HashRing:  # expect: api-docstring

    def shard_of(self, v):  # expect: api-docstring
        return hash(v) % 2

    def rebalance(self, shards):
        """Recompute ring ownership for a new shard count."""
        return shards
