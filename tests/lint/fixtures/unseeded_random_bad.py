# lint-path: src/repro/workloads/fixture_example.py
"""Bad: the module-global RNG makes runs irreproducible."""

import random
from random import shuffle  # expect: unseeded-random


def shuffled(items):
    """Nondeterministically shuffled copy of *items*."""
    out = list(items)
    random.shuffle(out)  # expect: unseeded-random
    if random.random() < 0.5:  # expect: unseeded-random
        out.reverse()
    return out
