# lint-path: src/repro/core/fixture_example.py
"""Bad: broad handlers that silently eat the failure."""


def depth_or_sentinel(tree, v):
    """Swallows typos, attribute errors, everything — not just misses."""
    try:
        return tree.level(v)
    except Exception:  # expect: except-swallow
        return 1 << 30


def notify(listener, event):
    """Listener failures vanish without a trace."""
    try:
        listener(event)
    except (Exception, KeyboardInterrupt):  # expect: except-swallow
        pass


def forward(conn, payload):
    """Bare except is the broadest swallow of all."""
    try:
        conn.send(payload)
    except:  # expect: except-swallow
        conn.close()
