# lint-path: src/repro/core/fixture_example.py
"""Bad: hash-order of sets reaches returned values and mutations."""


def neighbors_union(a, b):
    """Union whose order depends on the hash seed."""
    out = []
    for v in set(a) | set(b):  # expect: set-iteration-order
        out.append(v)
    first_pair = [v for v in {a[0], b[0]}]  # expect: set-iteration-order
    listed = list({x for x in a})  # expect: set-iteration-order
    return out, first_pair, listed
