# lint-path: src/repro/core/fixture_example.py
"""Bad: counter keys built at runtime cannot be checked statically."""


def work(metrics, trigger):
    """Bump a counter whose name depends on a runtime value."""
    metrics.inc(f"d_rebase_trigger_{trigger}")  # expect: dynamic-counter-key
    key = "updates"
    metrics.inc(key)  # expect: dynamic-counter-key
