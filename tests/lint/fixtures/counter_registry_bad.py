# lint-path: src/repro/core/fixture_example.py
"""Bad: unregistered literal keys through every recorder method."""


class Engine:
    """Fixture engine."""

    def __init__(self, metrics):
        self.metrics = metrics

    def work(self):
        """Record under keys missing from WELL_KNOWN_COUNTERS."""
        self.metrics.inc("fixture_unregistered_counter")  # expect: counter-registry
        self.metrics.observe_max("fixture_unregistered_gauge", 9)  # expect: counter-registry
        self.metrics.set("fixture_unregistered_value", 1)  # expect: counter-registry
        with self.metrics.timer("fixture_unregistered_phase"):  # expect: counter-registry
            pass
