# lint-path: src/repro/core/fixture_example.py
"""Good: set-shaped collections are sorted before their order can leak."""


def neighbors_union(a, b):
    """Deterministically ordered union of two neighbor sets."""
    out = []
    for v in sorted(set(a) | set(b)):
        out.append(v)
    return out


def union_size(a, b):
    """Order-free consumption of a set is fine."""
    return len(set(a) | set(b))
