# lint-path: src/repro/workloads/fixture_example.py
"""Good: randomness flows through an explicitly seeded random.Random."""

import random


def shuffled(items, seed):
    """Deterministically shuffled copy of *items*."""
    rng = random.Random(seed)
    out = list(items)
    rng.shuffle(out)
    return out
