"""Zero-baseline and seeding tests for repro-lint.

Two halves of the acceptance contract:

* the shipped tree lints clean — zero findings, and the inline suppression
  allowlist is pinned to exactly ``MAX_SUPPRESSIONS`` directives on the four
  documented shard-layer forwarding handlers;
* seeding any bad fixture from the corpus into a scratch checkout makes the
  CLI exit non-zero and name the right rule at the right line.
"""

from __future__ import annotations

import re

import pytest

from tools.lint import DEFAULT_PATHS, MAX_SUPPRESSIONS, build_linter
from tools.lint.cli import main
from tools.lint.registry import REGISTRY_REL

from tests.lint.conftest import FIXTURES, REPO_ROOT, load_fixture

_FINDING_RE = re.compile(r"^(\S+?):(\d+):(\d+): ([a-z][a-z0-9-]*) ")

BAD_FIXTURES = sorted(p.stem for p in FIXTURES.glob("*_bad.py"))


@pytest.fixture(scope="module")
def baseline():
    """One full-tree lint shared by the baseline assertions."""
    return build_linter(REPO_ROOT).lint_paths(list(DEFAULT_PATHS))


def test_tree_lints_clean(baseline):
    assert baseline.findings == [], "\n".join(
        d.format() for d in baseline.findings)


def test_suppression_allowlist_pinned(baseline):
    """Exactly the four documented shard-layer except-swallow forwards — one
    directive each, nothing else.  Adding a suppression means growing this
    list *and* MAX_SUPPRESSIONS in the same commit (see docs/lint.md)."""
    assert baseline.directives == MAX_SUPPRESSIONS == 4
    assert len(baseline.suppressed) == 4
    assert all(d.rule == "except-swallow" for d in baseline.suppressed)
    assert sorted({d.path for d in baseline.suppressed}) == [
        "src/repro/shard/router.py",
        "src/repro/shard/worker.py",
    ]


def test_cli_zero_baseline_and_dead_counter_report(capsys):
    """The CI command: exit 0, no findings, and no dead registry entries."""
    status = main(["--root", str(REPO_ROOT), "--dead-counters",
                   *DEFAULT_PATHS])
    out = capsys.readouterr().out
    assert status == 0
    assert "0 finding(s)" in out
    assert "every registered counter is recorded somewhere" in out


def test_cli_list_rules(capsys):
    status = main(["--root", str(REPO_ROOT), "--list-rules"])
    out = capsys.readouterr().out
    assert status == 0
    for rule in ("counter-registry", "numpy-isolation", "unseeded-random",
                 "writer-pairing", "api-docstring"):
        assert rule in out


# --------------------------------------------------------------------- #
# Seeding: planting a corpus violation must fail the CLI loudly.
# --------------------------------------------------------------------- #
def _seed_tree(tmp_path, rel, source):
    """A scratch checkout: the real counter registry plus one seeded file."""
    registry = (REPO_ROOT / REGISTRY_REL).read_text(encoding="utf-8")
    for dest_rel, text in ((REGISTRY_REL, registry), (rel, source)):
        dest = tmp_path / dest_rel
        dest.parent.mkdir(parents=True, exist_ok=True)
        dest.write_text(text, encoding="utf-8")


@pytest.mark.parametrize("name", BAD_FIXTURES)
def test_seeded_violation_fails_with_rule_and_line(tmp_path, capsys, name):
    rel, source, expected = load_fixture(name)
    assert expected, f"{name}: a *_bad fixture must expect at least one finding"
    _seed_tree(tmp_path, rel, source)
    status = main(["--root", str(tmp_path), rel])
    out = capsys.readouterr().out
    assert status == 1
    got = sorted(
        (int(m.group(2)), m.group(4))
        for m in (_FINDING_RE.match(line) for line in out.splitlines())
        if m and m.group(1) == rel)
    assert got == expected, out


def test_seeded_violation_fails_a_full_src_scan(tmp_path, capsys):
    """The acceptance criterion verbatim: a violation anywhere under src/
    flips the whole-tree scan non-zero with the offending rule id."""
    rel, source, expected = load_fixture("unseeded_random_bad")
    _seed_tree(tmp_path, rel, source)
    status = main(["--root", str(tmp_path), "src"])
    out = capsys.readouterr().out
    assert status == 1
    line, rule = expected[0]
    assert any(l.startswith(f"{rel}:{line}:") and rule in l
               for l in out.splitlines()), out


def test_suppression_cap_enforced(tmp_path, capsys):
    """A directive over the cap fails the run even with zero findings."""
    rel, source, _ = load_fixture("suppressed_ok")
    _seed_tree(tmp_path, rel, source)
    status = main(["--root", str(tmp_path), "--max-suppressions", "0", rel])
    captured = capsys.readouterr()
    assert status == 1
    assert "suppression cap exceeded" in captured.err


def test_missing_registry_is_a_hard_error(tmp_path, capsys):
    """No registry, no lint: exit 2 so CI cannot silently skip the rules."""
    (tmp_path / "src").mkdir()
    status = main(["--root", str(tmp_path), "src"])
    assert status == 2
    assert "cannot load the counter registry" in capsys.readouterr().err
