"""Tests for the baselines (static recomputation, naive reroot)."""

from tests.helpers import make_updates
from repro.baselines.naive_reroot import naive_reroot_subtree
from repro.baselines.static_recompute import StaticRecomputeDFS
from repro.constants import VIRTUAL_ROOT
from repro.core.dynamic_dfs import FullyDynamicDFS
from repro.core.reduction import RerootTask
from repro.graph.generators import gnp_random_graph
from repro.graph.traversal import static_dfs_forest
from repro.graph.validation import check_dfs_tree
from repro.metrics.counters import MetricsRecorder
from repro.tree.dfs_tree import DFSTree


def test_static_recompute_matches_dynamic_vertex_sets():
    graph = gnp_random_graph(35, 0.1, seed=1, connected=True)
    updates = make_updates(graph, 12, seed=5)
    baseline = StaticRecomputeDFS(graph)
    dynamic = FullyDynamicDFS(graph, validate=True)
    for upd in updates:
        baseline.apply(upd)
        dynamic.apply(upd)
        assert baseline.is_valid()
        # Same graph, so same vertex set and same partition into components
        # (the trees themselves may legitimately differ).
        assert set(baseline.parent_map()) == set(dynamic.tree.parent_map())
        base_roots = set(baseline.tree.children(VIRTUAL_ROOT))
        dyn_roots = set(dynamic.roots())
        assert len(base_roots) == len(dyn_roots)


def test_static_recompute_counts_work():
    graph = gnp_random_graph(30, 0.1, seed=2, connected=True)
    metrics = MetricsRecorder()
    baseline = StaticRecomputeDFS(graph, metrics=metrics)
    baseline.apply_all(make_updates(graph, 5, seed=1))
    assert metrics["full_recomputations"] == 6  # initial + one per update
    assert metrics["static_work"] > 0


def test_naive_reroot_produces_valid_tree():
    metrics = MetricsRecorder()
    graph = gnp_random_graph(40, 0.12, seed=3, connected=True)
    tree = DFSTree(static_dfs_forest(graph), root=VIRTUAL_ROOT)
    subtree_root = tree.children(tree.children(VIRTUAL_ROOT)[0])[0]
    vertices = tree.subtree_vertices(subtree_root)
    attach = tree.parent(subtree_root)
    # The new root must actually be adjacent to the attach vertex (in the real
    # algorithm the attach edge is always a graph edge found by a query).
    new_root = max(v for v in vertices if graph.has_edge(attach, v))
    task = RerootTask(subtree_root=subtree_root, new_root=new_root, attach=attach)
    assignment = naive_reroot_subtree(graph, tree, task, metrics=metrics)
    parent = tree.parent_map()
    parent.update(assignment)
    assert check_dfs_tree(graph, parent) == []
    assert metrics["naive_reroots"] == 1
    assert metrics["naive_reroot_vertices"] == len(vertices)
