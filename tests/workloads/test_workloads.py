"""Tests for the workload generators and named scenarios."""

import pytest

from repro.core.dynamic_dfs import FullyDynamicDFS
from repro.core.updates import EdgeDeletion, EdgeInsertion, VertexDeletion, VertexInsertion
from repro.graph.generators import gnp_random_graph
from repro.workloads.scenarios import SCENARIOS, build_scenario
from repro.workloads.updates import (
    UpdateSequenceGenerator,
    adversarial_comb_updates,
    edge_churn,
    failure_burst,
    mixed_updates,
    vertex_churn,
)


def replay(graph, updates):
    """Replaying a generated sequence must never hit an invalid operation."""
    g = graph.copy()
    for upd in updates:
        if isinstance(upd, EdgeInsertion):
            g.add_edge(upd.u, upd.v)
        elif isinstance(upd, EdgeDeletion):
            g.remove_edge(upd.u, upd.v)
        elif isinstance(upd, VertexInsertion):
            g.add_vertex_with_edges(upd.v, upd.neighbors)
        elif isinstance(upd, VertexDeletion):
            g.remove_vertex(upd.v)
    return g


def test_generators_are_deterministic_and_replayable():
    graph = gnp_random_graph(40, 0.1, seed=2, connected=True)
    a = mixed_updates(graph, 30, seed=7)
    b = mixed_updates(graph, 30, seed=7)
    assert a == b
    replay(graph, a)
    replay(graph, edge_churn(graph, 25, seed=3))
    replay(graph, vertex_churn(graph, 25, seed=4))


def test_edge_churn_contains_only_edge_updates():
    graph = gnp_random_graph(30, 0.1, seed=5, connected=True)
    for upd in edge_churn(graph, 20, seed=1):
        assert isinstance(upd, (EdgeInsertion, EdgeDeletion))


def test_failure_burst_contains_only_deletions():
    graph = gnp_random_graph(30, 0.15, seed=6, connected=True)
    burst = failure_burst(graph, 8, seed=2)
    assert len(burst) == 8
    assert all(isinstance(u, (EdgeDeletion, VertexDeletion)) for u in burst)
    replay(graph, burst)


def test_update_generator_tracks_graph_state():
    graph = gnp_random_graph(20, 0.2, seed=8, connected=True)
    gen = UpdateSequenceGenerator(graph, seed=3)
    seq = gen.sequence(15)
    final = replay(graph, seq)
    assert final == gen.graph


def test_adversarial_comb_updates_alternate():
    ups = adversarial_comb_updates(10, 5)
    assert isinstance(ups[0], EdgeDeletion) and isinstance(ups[1], EdgeInsertion)
    assert len(ups) == 10


def test_every_named_scenario_builds_and_runs():
    for name in SCENARIOS:
        scenario = build_scenario(name, n=60, seed=1, updates=6)
        assert scenario.n > 0 and scenario.m >= 0
        dyn = FullyDynamicDFS(scenario.graph, validate=True)
        dyn.apply_all(scenario.updates)
        assert dyn.is_valid(), name
    with pytest.raises(KeyError):
        build_scenario("nope")
