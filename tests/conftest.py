"""Shared fixtures for the test suite (helpers live in ``tests.helpers``)."""

from __future__ import annotations

import random

import pytest

from repro.graph.generators import gnp_random_graph
from repro.graph.graph import UndirectedGraph
from tests.helpers import small_graph_family


@pytest.fixture
def rng() -> random.Random:
    return random.Random(12345)


@pytest.fixture
def random_graph() -> UndirectedGraph:
    return gnp_random_graph(40, 0.1, seed=7, connected=True)


@pytest.fixture(params=[name for name, _ in small_graph_family()])
def any_graph(request) -> UndirectedGraph:
    mapping = dict(small_graph_family())
    return mapping[request.param]
