"""Shared fixtures for the test suite (helpers live in ``tests.helpers``).

Also registers the hypothesis profiles the suite runs under:

* ``dev`` (default) — no deadline (CI machines are noisy), random seeds, so
  local runs keep exploring new examples;
* ``ci`` — additionally *derandomized* (a fixed seed derived from each test),
  so the pinned-seed CI step is reproducible run-to-run and a red build can be
  replayed locally with ``HYPOTHESIS_PROFILE=ci``.

Select with the ``HYPOTHESIS_PROFILE`` environment variable.
"""

from __future__ import annotations

import os
import random

import pytest
from hypothesis import HealthCheck, settings

from repro.graph.generators import gnp_random_graph
from repro.graph.graph import UndirectedGraph
from tests.helpers import small_graph_family

_COMMON = dict(
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
settings.register_profile("dev", **_COMMON)
settings.register_profile("ci", derandomize=True, **_COMMON)
settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "dev"))


def pytest_configure(config):
    config.addinivalue_line(
        "markers",
        "large: large-n smoke tests (n ~ 10^5); excluded from tier-1, "
        "opt in with REPRO_LARGE_TESTS=1 (separate CI job)",
    )


def pytest_collection_modifyitems(config, items):
    if os.environ.get("REPRO_LARGE_TESTS") == "1":
        return
    skip_large = pytest.mark.skip(reason="large tier: set REPRO_LARGE_TESTS=1 to run")
    for item in items:
        if "large" in item.keywords:
            item.add_marker(skip_large)


@pytest.fixture
def rng() -> random.Random:
    return random.Random(12345)


@pytest.fixture
def random_graph() -> UndirectedGraph:
    return gnp_random_graph(40, 0.1, seed=7, connected=True)


@pytest.fixture(params=[name for name, _ in small_graph_family()])
def any_graph(request) -> UndirectedGraph:
    mapping = dict(small_graph_family())
    return mapping[request.param]
