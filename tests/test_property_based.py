"""Property-based tests (hypothesis) for the core invariants.

These generate random graphs and random valid update sequences and assert the
library-wide invariants: every maintained tree is a valid DFS forest, the data
structure ``D`` agrees with the brute-force oracle, and the DFS tree indices
are internally consistent.
"""

from __future__ import annotations

import random

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.constants import VIRTUAL_ROOT
from repro.core.dynamic_dfs import FullyDynamicDFS
from repro.core.fault_tolerant import FaultTolerantDFS
from repro.core.queries import BruteForceQueryService, DQueryService, EdgeQuery
from repro.core.structure_d import StructureD
from repro.graph.generators import gnm_random_graph
from repro.graph.graph import UndirectedGraph
from repro.graph.traversal import static_dfs_forest
from repro.graph.validation import check_dfs_tree
from repro.tree.dfs_tree import DFSTree
from repro.workloads.updates import UpdateSequenceGenerator

SETTINGS = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


@st.composite
def graphs(draw, max_n=28):
    n = draw(st.integers(min_value=2, max_value=max_n))
    max_m = n * (n - 1) // 2
    m = draw(st.integers(min_value=0, max_value=min(max_m, 3 * n)))
    seed = draw(st.integers(min_value=0, max_value=10**6))
    return gnm_random_graph(n, m, seed=seed)


@st.composite
def graph_and_updates(draw, max_updates=10):
    g = draw(graphs())
    seed = draw(st.integers(min_value=0, max_value=10**6))
    count = draw(st.integers(min_value=1, max_value=max_updates))
    gen = UpdateSequenceGenerator(g, seed=seed)
    return g, gen.sequence(count)


@SETTINGS
@given(graph_and_updates())
def test_fully_dynamic_dfs_stays_valid(data):
    graph, updates = data
    dyn = FullyDynamicDFS(graph, validate=True)
    dyn.apply_all(updates)
    assert dyn.is_valid()
    # The tree covers exactly the graph vertices (plus the virtual root).
    assert set(dyn.parent_map(include_virtual_root=False)) == set(dyn.graph.vertices())


@SETTINGS
@given(graph_and_updates(max_updates=5))
def test_fault_tolerant_matches_graph_after_updates(data):
    graph, updates = data
    ft = FaultTolerantDFS(graph, validate=True)
    tree, updated = ft.query_with_graph(updates)
    assert check_dfs_tree(updated, tree.parent_map()) == []
    assert set(tree.vertices()) - {VIRTUAL_ROOT} == set(updated.vertices())


@SETTINGS
@given(graphs(), st.integers(min_value=0, max_value=10**6))
def test_structure_d_agrees_with_oracle(graph, seed):
    rng = random.Random(seed)
    tree = DFSTree(static_dfs_forest(graph), root=VIRTUAL_ROOT)
    d = StructureD(graph, tree)
    fast = DQueryService(d)
    brute = BruteForceQueryService(graph, tree)
    verts = [v for v in tree.vertices() if v != VIRTUAL_ROOT]
    if not verts:
        return
    for _ in range(10):
        root = rng.choice(verts)
        bottom = rng.choice(verts)
        chain = [bottom]
        while tree.parent(chain[-1]) not in (None, VIRTUAL_ROOT):
            chain.append(tree.parent(chain[-1]))
        target = [v for v in reversed(chain) if not tree.is_ancestor(root, v)]
        if not target:
            continue
        q = EdgeQuery.from_tree(root, tuple(target), prefer_last=rng.random() < 0.5)
        fa = fast.answer(q)
        ba = brute.answer(q)
        pos = {v: i for i, v in enumerate(q.target)}
        if ba is None:
            assert fa is None
        else:
            assert fa is not None and pos[fa[1]] == pos[ba[1]]


@SETTINGS
@given(graphs())
def test_dfs_tree_indices_are_consistent(graph):
    tree = DFSTree(static_dfs_forest(graph), root=VIRTUAL_ROOT)
    verts = list(tree.vertices())
    for v in verts:
        kids = tree.children(v)
        assert tree.subtree_size(v) == 1 + sum(tree.subtree_size(c) for c in kids)
        for c in kids:
            assert tree.parent(c) == v
            assert tree.is_ancestor(v, c) and not tree.is_ancestor(c, v)
            assert tree.postorder(v) > tree.postorder(c)
    # LCA sanity on a few sampled pairs.
    rng = random.Random(0)
    for _ in range(15):
        a, b = rng.choice(verts), rng.choice(verts)
        l = tree.lca(a, b)
        assert tree.is_ancestor(l, a) and tree.is_ancestor(l, b)


@SETTINGS
@given(st.lists(st.tuples(st.integers(0, 14), st.integers(0, 14)), max_size=40))
def test_graph_store_membership_invariants(pairs):
    g = UndirectedGraph(vertices=range(15))
    inserted = set()
    for u, v in pairs:
        if u == v:
            continue
        key = frozenset((u, v))
        if key in inserted:
            g.remove_edge(u, v)
            inserted.discard(key)
        else:
            g.add_edge(u, v)
            inserted.add(key)
    assert g.num_edges == len(inserted)
    for key in inserted:
        u, v = tuple(key)
        assert g.has_edge(u, v) and g.has_edge(v, u)
    # Degrees sum to twice the edge count.
    assert sum(g.degree(v) for v in g.vertices()) == 2 * g.num_edges
