"""Property-based tests for the adaptive maintenance policies.

Two policies are covered:

* **Absorb-mode auto-rebase** (:class:`repro.core.dynamic_dfs.DStructureBackend`):
  the per-update segment EWMA triggers a full rebase of ``D`` exactly when it
  crosses the configured threshold, the rebase resets the divergence signal
  and clears the pinned side lists, and the policy never changes the
  maintained tree.

* **Broadcast-tree local repair** (:class:`repro.distributed.distributed_dfs.CongestBackend`):
  after every repair the cached broadcast tree still satisfies everything a
  full rebuild would certify (spans exactly the graph's vertices, every tree
  edge exists in the graph, depths are parent-consistent and acyclic), and a
  shallow orphaned subtree is repaired in strictly fewer rounds than the full
  rebuild the conservative invalidation pays.
"""

from __future__ import annotations

import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.core.dynamic_dfs import FullyDynamicDFS
from repro.core.structure_d import SEGMENT_EWMA_ALPHA
from repro.distributed.distributed_dfs import DistributedDynamicDFS
from repro.graph.generators import gnm_random_graph, path_graph
from repro.graph.graph import UndirectedGraph
from repro.metrics.counters import MetricsRecorder
from repro.workloads.updates import edge_churn

SETTINGS = settings(max_examples=20, deadline=None)

THRESHOLD = 2


@st.composite
def churn_cases(draw, max_n=20, max_updates=14):
    n = draw(st.integers(min_value=4, max_value=max_n))
    max_m = n * (n - 1) // 2
    m = draw(st.integers(min_value=n - 1, max_value=min(3 * n, max_m)))
    graph_seed = draw(st.integers(min_value=0, max_value=999))
    churn_seed = draw(st.integers(min_value=0, max_value=999))
    count = draw(st.integers(min_value=1, max_value=max_updates))
    graph = gnm_random_graph(n, m, seed=graph_seed)
    return graph, edge_churn(graph, count, seed=churn_seed)


# --------------------------------------------------------------------------- #
# Absorb-mode auto-rebase
# --------------------------------------------------------------------------- #
@SETTINGS
@given(churn_cases())
def test_absorb_rebase_fires_exactly_when_triggered(case):
    """``d_rebases`` increments iff the trigger was pending at update start,
    and a rebase replaces the structure, clears the pinned lists and restarts
    the EWMA from the post-rebase queries of the same update."""
    graph, updates = case
    metrics = MetricsRecorder("absorb", strict=True)
    dyn = FullyDynamicDFS(
        graph,
        rebuild_every=3,
        d_maintenance="absorb",
        rebase_segment_threshold=THRESHOLD,
        metrics=metrics,
    )
    backend = dyn._backend
    for update in updates:
        trigger = backend.rebase_trigger()
        before = metrics.as_dict()
        structure_before = backend.structure
        dyn.apply(update)
        delta = metrics.snapshot_delta(before)
        if trigger is not None:
            assert delta["d_rebases"] == 1
            assert delta[f"d_rebase_trigger_{trigger}"] == 1
            assert backend.structure is not structure_before, "rebase must rebuild D"
            assert backend.structure.pinned_size() == 0
            # The EWMA restarted at 1.0 and folded exactly this update's
            # post-rebase sample (mean segments per query).
            if delta.get("queries", 0):
                sample = delta["d_target_segments"] / delta["queries"]
                expected = 1.0 + SEGMENT_EWMA_ALPHA * (sample - 1.0)
                assert backend.structure.avg_target_segments() == pytest.approx(expected)
            else:
                assert backend.structure.avg_target_segments() == pytest.approx(1.0)
        else:
            assert delta.get("d_rebases", 0) == 0, "no spurious rebases"
    assert dyn.is_valid()


@SETTINGS
@given(churn_cases())
def test_absorb_rebase_keeps_segments_bounded_and_tree_identical(case):
    """The auto-rebase policy never changes the tree, and whenever it fires it
    keeps the divergence signal at most one fold above the threshold (the
    crossing update itself contributes the final sample)."""
    graph, updates = case
    classic = FullyDynamicDFS(graph, rebuild_every=1)
    metrics = MetricsRecorder("absorb", strict=True)
    auto = FullyDynamicDFS(
        graph,
        rebuild_every=3,
        d_maintenance="absorb",
        rebase_segment_threshold=THRESHOLD,
        metrics=metrics,
    )
    backend = auto._backend
    for update in updates:
        classic.apply(update)
        auto.apply(update)
        assert auto.parent_map() == classic.parent_map()
        # The signal can exceed the threshold only between the fold that
        # crossed it and the rebase the very next served update performs —
        # so observing a pending trigger and a bounded signal is equivalent.
        ewma = backend.structure.avg_target_segments()
        if ewma > THRESHOLD:
            assert backend.rebase_trigger() is not None


def test_rebase_threshold_knob_validation():
    graph = path_graph(6)
    with pytest.raises(ValueError):
        FullyDynamicDFS(graph, rebase_segment_threshold=2)  # needs absorb
    with pytest.raises(ValueError):
        FullyDynamicDFS(graph, d_maintenance="absorb", rebase_segment_threshold=0)
    dyn = FullyDynamicDFS(graph, d_maintenance="absorb")
    assert dyn.rebase_segment_threshold() >= 4  # auto ~sqrt(m)
    assert FullyDynamicDFS(graph).rebase_segment_threshold() is None


# --------------------------------------------------------------------------- #
# Broadcast-tree local repair
# --------------------------------------------------------------------------- #
def _certify_broadcast_tree(backend, graph):
    """Everything a full rebuild certifies must hold after a repair too."""
    parent = backend.bfs_parent
    depth = backend.bfs_depth
    assert set(parent) == set(graph.vertices())
    assert set(depth) == set(parent)
    for v, p in parent.items():
        if p is None:
            assert depth[v] == 0
        else:
            assert graph.has_edge(v, p), f"broadcast edge ({v}, {p}) not in graph"
            assert depth[v] == depth[p] + 1
    # Parent pointers are acyclic: every vertex reaches a root.
    for v in parent:
        seen = 0
        w = v
        while parent[w] is not None:
            w = parent[w]
            seen += 1
            assert seen <= len(parent), f"cycle through {v}"


@SETTINGS
@given(churn_cases(max_n=16, max_updates=10))
def test_local_repair_certifies_like_a_rebuild(case):
    """After every update the repaired broadcast tree passes the exact checks
    a freshly rebuilt one would, and the maintained DFS forest matches the
    conservative driver's byte for byte."""
    graph, updates = case
    metrics = MetricsRecorder("dist", strict=True)
    repair = DistributedDynamicDFS(graph, rebuild_every=None, local_repair=True, metrics=metrics)
    conservative = DistributedDynamicDFS(graph, rebuild_every=None, local_repair=False)
    for update in updates:
        repair.apply(update)
        conservative.apply(update)
        _certify_broadcast_tree(repair._backend, repair.graph)
        assert repair.parent_map() == conservative.parent_map()
    assert repair.is_valid()
    # A repair never teleports a subtree below the as-built depth bound.
    backend = repair._backend
    if backend.bfs_depth:
        assert max(backend.bfs_depth.values()) <= max(backend._repair_depth_bound, 0)


def test_shallow_subtree_repair_beats_rebuild_rounds():
    """Deterministic scenario: severing a leaf of a deep broadcast tree.  The
    local repair reattaches it in O(1) rounds; conservative invalidation pays
    a full O(D)-round BFS rebuild (plus the summary re-broadcast).  The round
    deltas of that update must differ strictly in repair's favour."""
    graph = UndirectedGraph(vertices=range(11))
    for i in range(9):
        graph.add_edge(i, i + 1)  # deep path 0..9
    graph.add_edge(8, 10)
    graph.add_edge(9, 10)  # vertex 10 hangs off the path end twice

    def rounds_for_cut(local_repair):
        d = DistributedDynamicDFS(graph, rebuild_every=None, local_repair=local_repair)
        d.insert_edge(10, 7)  # builds the broadcast tree from initiator 10
        before = d.rounds()
        d.delete_edge(10, 8)  # severs a depth-0 orphan ({8} or {10})
        return d, d.rounds() - before

    repaired, repair_rounds = rounds_for_cut(True)
    rebuilt, rebuild_rounds = rounds_for_cut(False)
    assert repaired.parent_map() == rebuilt.parent_map()
    assert repaired.metrics["bfs_repairs"] == 1
    assert repaired.metrics["bfs_repair_fallbacks"] == 0
    assert rebuilt.metrics["bfs_repairs"] == 0
    assert repair_rounds < rebuild_rounds, (repair_rounds, rebuild_rounds)
    _certify_broadcast_tree(repaired._backend, repaired.graph)


def test_disconnected_subtree_falls_back_to_rebuild():
    """Cutting the only edge into a subtree cannot be repaired locally: the
    backend must fall back to the full rebuild and still certify."""
    graph = UndirectedGraph(vertices=range(6))
    for i in range(5):
        graph.add_edge(i, i + 1)  # path: every edge is a bridge
    d = DistributedDynamicDFS(graph, rebuild_every=None, local_repair=True)
    d.insert_edge(0, 2)  # build broadcast tree; (3,4) stays a bridge
    d.delete_edge(3, 4)
    assert d.metrics["bfs_repair_fallbacks"] >= 1
    assert d.metrics["bfs_repairs"] == 0
    assert d.is_valid()
    _certify_broadcast_tree(d._backend, d.graph)
