"""Property-based tests for the adaptive maintenance policies.

Three policies are covered:

* **Absorb-mode auto-rebase** (:class:`repro.core.dynamic_dfs.DStructureBackend`):
  the per-update segment EWMA triggers a full rebase of ``D`` exactly when it
  crosses the configured threshold, the rebase resets the divergence signal
  and clears the pinned side lists, and the policy never changes the
  maintained tree.

* **Broadcast-tree local repair** (:class:`repro.distributed.distributed_dfs.CongestBackend`):
  after every repair the cached broadcast tree still satisfies everything a
  full rebuild would certify (spans exactly the graph's vertices, every tree
  edge exists in the graph, depths are parent-consistent and acyclic), and a
  shallow orphaned subtree is repaired in strictly fewer rounds than the full
  rebuild the conservative invalidation pays.

* **Depth-aware voluntary rebuilds** (the ``depth_drift``
  :class:`~repro.core.maintenance.CostModel`): a voluntary rebuild fires iff
  the accumulated *waves × drift* account exceeds the modeled rebuild cost —
  with exact accumulator-reset arithmetic replayed by a shadow account — and
  under the auto-tuned policy on low-diameter workloads the repairing driver
  never falls behind rebuild-on-invalidation by more than the cost model's
  bounded regret (and strictly wins on the sustained-churn regression case).
"""

from __future__ import annotations

import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.core.dynamic_dfs import FullyDynamicDFS
from repro.core.structure_d import SEGMENT_EWMA_ALPHA
from repro.core.updates import EdgeDeletion
from repro.distributed.distributed_dfs import DistributedDynamicDFS
from repro.graph.generators import gnm_random_graph, path_graph
from repro.graph.graph import UndirectedGraph
from repro.graph.traversal import bfs_tree, component_of
from repro.metrics.counters import MetricsRecorder
from repro.workloads.scenarios import build_scenario
from repro.workloads.updates import edge_churn

SETTINGS = settings(max_examples=20, deadline=None)

THRESHOLD = 2


@st.composite
def churn_cases(draw, max_n=20, max_updates=14):
    n = draw(st.integers(min_value=4, max_value=max_n))
    max_m = n * (n - 1) // 2
    m = draw(st.integers(min_value=n - 1, max_value=min(3 * n, max_m)))
    graph_seed = draw(st.integers(min_value=0, max_value=999))
    churn_seed = draw(st.integers(min_value=0, max_value=999))
    count = draw(st.integers(min_value=1, max_value=max_updates))
    graph = gnm_random_graph(n, m, seed=graph_seed)
    return graph, edge_churn(graph, count, seed=churn_seed)


def _is_connected(graph):
    if graph.num_vertices == 0:
        return True
    root = next(iter(graph.vertices()))
    _, depth = bfs_tree(graph, root)
    return len(depth) == graph.num_vertices


def _connectivity_preserving_churn(graph, count, seed):
    """Edge churn filtered so the graph stays connected throughout — the
    low-diameter regime the depth-drift policy is specified for (once the
    graph fragments, the simulator's degenerate accounting-only broadcast
    forests disseminate for free and round comparisons stop meaning much)."""
    scratch = graph.copy()
    out = []
    for update in edge_churn(graph, count * 3, seed=seed):
        if isinstance(update, EdgeDeletion):
            if not scratch.has_edge(update.u, update.v):
                continue
            scratch.remove_edge(update.u, update.v)
            if not _is_connected(scratch):
                scratch.add_edge(update.u, update.v)
                continue
        else:
            if scratch.has_edge(update.u, update.v):
                continue
            scratch.add_edge(update.u, update.v)
        out.append(update)
        if len(out) >= count:
            break
    return out


@st.composite
def low_diameter_cases(draw, max_n=32, max_updates=24):
    """Connected, dense-ish random graphs (diameter a small constant) under
    connectivity-preserving edge churn."""
    n = draw(st.integers(min_value=8, max_value=max_n))
    max_m = n * (n - 1) // 2
    m = draw(st.integers(min_value=2 * n, max_value=min(4 * n, max_m)))
    graph_seed = draw(st.integers(min_value=0, max_value=999))
    churn_seed = draw(st.integers(min_value=0, max_value=999))
    count = draw(st.integers(min_value=4, max_value=max_updates))
    graph = gnm_random_graph(n, m, seed=graph_seed)
    return graph, _connectivity_preserving_churn(graph, count, seed=churn_seed)


# --------------------------------------------------------------------------- #
# Absorb-mode auto-rebase
# --------------------------------------------------------------------------- #
@SETTINGS
@given(churn_cases())
def test_absorb_rebase_fires_exactly_when_triggered(case):
    """``d_rebases`` increments iff the trigger was pending at update start,
    and a rebase replaces the structure, clears the pinned lists and restarts
    the EWMA from the post-rebase queries of the same update."""
    graph, updates = case
    metrics = MetricsRecorder("absorb", strict=True)
    dyn = FullyDynamicDFS(
        graph,
        rebuild_every=3,
        d_maintenance="absorb",
        rebase_segment_threshold=THRESHOLD,
        metrics=metrics,
    )
    backend = dyn._backend
    for update in updates:
        trigger = backend.rebase_trigger()
        before = metrics.as_dict()
        structure_before = backend.structure
        dyn.apply(update)
        delta = metrics.snapshot_delta(before)
        if trigger is not None:
            assert delta["d_rebases"] == 1
            assert delta[f"d_rebase_trigger_{trigger}"] == 1
            assert backend.structure is not structure_before, "rebase must rebuild D"
            assert backend.structure.pinned_size() == 0
            # The EWMA restarted at 1.0 and folded exactly this update's
            # post-rebase sample (mean segments per query).
            if delta.get("queries", 0):
                sample = delta["d_target_segments"] / delta["queries"]
                expected = 1.0 + SEGMENT_EWMA_ALPHA * (sample - 1.0)
                assert backend.structure.avg_target_segments() == pytest.approx(expected)
            else:
                assert backend.structure.avg_target_segments() == pytest.approx(1.0)
        else:
            assert delta.get("d_rebases", 0) == 0, "no spurious rebases"
    assert dyn.is_valid()


@SETTINGS
@given(churn_cases())
def test_absorb_rebase_keeps_segments_bounded_and_tree_identical(case):
    """The auto-rebase policy never changes the tree, and whenever it fires it
    keeps the divergence signal at most one fold above the threshold (the
    crossing update itself contributes the final sample)."""
    graph, updates = case
    classic = FullyDynamicDFS(graph, rebuild_every=1)
    metrics = MetricsRecorder("absorb", strict=True)
    auto = FullyDynamicDFS(
        graph,
        rebuild_every=3,
        d_maintenance="absorb",
        rebase_segment_threshold=THRESHOLD,
        metrics=metrics,
    )
    backend = auto._backend
    for update in updates:
        classic.apply(update)
        auto.apply(update)
        assert auto.parent_map() == classic.parent_map()
        # The signal can exceed the threshold only between the fold that
        # crossed it and the rebase the very next served update performs —
        # so observing a pending trigger and a bounded signal is equivalent.
        ewma = backend.structure.avg_target_segments()
        if ewma > THRESHOLD:
            assert backend.rebase_trigger() is not None


def test_rebase_threshold_knob_validation():
    graph = path_graph(6)
    with pytest.raises(ValueError):
        FullyDynamicDFS(graph, rebase_segment_threshold=2)  # needs absorb
    with pytest.raises(ValueError):
        FullyDynamicDFS(graph, d_maintenance="absorb", rebase_segment_threshold=0)
    dyn = FullyDynamicDFS(graph, d_maintenance="absorb")
    assert dyn.rebase_segment_threshold() >= 4  # auto ~sqrt(m)
    assert FullyDynamicDFS(graph).rebase_segment_threshold() is None


# --------------------------------------------------------------------------- #
# Broadcast-tree local repair
# --------------------------------------------------------------------------- #
def _certify_broadcast_tree(backend, graph):
    """Everything a full rebuild certifies must hold after a repair too."""
    parent = backend.bfs_parent
    depth = backend.bfs_depth
    assert set(parent) == set(graph.vertices())
    assert set(depth) == set(parent)
    for v, p in parent.items():
        if p is None:
            assert depth[v] == 0
        else:
            assert graph.has_edge(v, p), f"broadcast edge ({v}, {p}) not in graph"
            assert depth[v] == depth[p] + 1
    # Parent pointers are acyclic: every vertex reaches a root.
    for v in parent:
        seen = 0
        w = v
        while parent[w] is not None:
            w = parent[w]
            seen += 1
            assert seen <= len(parent), f"cycle through {v}"


@SETTINGS
@given(churn_cases(max_n=16, max_updates=10))
def test_local_repair_certifies_like_a_rebuild(case):
    """After every update the repaired broadcast tree passes the exact checks
    a freshly rebuilt one would, and the maintained DFS forest matches the
    conservative driver's byte for byte."""
    graph, updates = case
    metrics = MetricsRecorder("dist", strict=True)
    repair = DistributedDynamicDFS(graph, rebuild_every=None, local_repair=True, metrics=metrics)
    conservative = DistributedDynamicDFS(graph, rebuild_every=None, local_repair=False)
    for update in updates:
        repair.apply(update)
        conservative.apply(update)
        _certify_broadcast_tree(repair._backend, repair.graph)
        assert repair.parent_map() == conservative.parent_map()
    assert repair.is_valid()
    # Cost-model invariant: a surviving repair never leaves the tree so deep
    # that a single pipelined wave would out-cost the rebuild (the hard
    # fallback), and any gradual drift stays inside the depth_drift budget —
    # the account only ever exceeds it for the one update that triggers the
    # voluntary rebuild, which resets it.
    backend = repair._backend
    model = backend.controller.model("depth_drift")
    if backend.bfs_depth:
        assert (
            max(backend.bfs_depth.values())
            <= backend._as_built_depth + backend._modeled_rebuild_cost()
        )
    assert model.value() <= model.budget() or backend.controller.forced_due() == "depth_drift"


def test_shallow_subtree_repair_beats_rebuild_rounds():
    """Deterministic scenario: severing a leaf of a deep broadcast tree.  The
    local repair reattaches it in O(1) rounds; conservative invalidation pays
    a full O(D)-round BFS rebuild (plus the summary re-broadcast).  The round
    deltas of that update must differ strictly in repair's favour."""
    graph = UndirectedGraph(vertices=range(11))
    for i in range(9):
        graph.add_edge(i, i + 1)  # deep path 0..9
    graph.add_edge(8, 10)
    graph.add_edge(9, 10)  # vertex 10 hangs off the path end twice

    def rounds_for_cut(local_repair):
        d = DistributedDynamicDFS(graph, rebuild_every=None, local_repair=local_repair)
        d.insert_edge(10, 7)  # builds the broadcast tree from initiator 10
        before = d.rounds()
        d.delete_edge(10, 8)  # severs a depth-0 orphan ({8} or {10})
        return d, d.rounds() - before

    repaired, repair_rounds = rounds_for_cut(True)
    rebuilt, rebuild_rounds = rounds_for_cut(False)
    assert repaired.parent_map() == rebuilt.parent_map()
    assert repaired.metrics["bfs_repairs"] == 1
    assert repaired.metrics["bfs_repair_fallbacks"] == 0
    assert rebuilt.metrics["bfs_repairs"] == 0
    assert repair_rounds < rebuild_rounds, (repair_rounds, rebuild_rounds)
    _certify_broadcast_tree(repaired._backend, repaired.graph)


def test_disconnected_subtree_falls_back_to_rebuild():
    """Cutting the only edge into a subtree cannot be repaired locally: the
    backend must fall back to the full rebuild and still certify."""
    graph = UndirectedGraph(vertices=range(6))
    for i in range(5):
        graph.add_edge(i, i + 1)  # path: every edge is a bridge
    d = DistributedDynamicDFS(graph, rebuild_every=None, local_repair=True)
    d.insert_edge(0, 2)  # build broadcast tree; (3,4) stays a bridge
    d.delete_edge(3, 4)
    assert d.metrics["bfs_repair_fallbacks"] >= 1
    assert d.metrics["bfs_repairs"] == 0
    assert d.is_valid()
    _certify_broadcast_tree(d._backend, d.graph)


# --------------------------------------------------------------------------- #
# Depth-aware voluntary rebuilds (the depth_drift cost model)
# --------------------------------------------------------------------------- #
def _observed_drift_contribution(backend, graph, update, delta):
    """Independently recompute the update's depth-drift signal: *waves ×
    drift*, both measured inside the updated component, with the reference
    depth re-derived from the 2-sweep center of that component — exactly as
    the backend's ``end_update`` computed it."""
    if not backend.bfs_depth:
        return 0
    initiator = backend._pick_initiator(backend._committed_tree, update)
    if not graph.has_vertex(initiator):
        return 0
    component = component_of(graph, initiator)
    # The yardstick the account settled on: the min-eccentricity root among
    # the 2-sweep midpoint, the update initiator and the remembered best —
    # re-derived here from the seed the backend recorded (its eccentricity is
    # exactly the fresh-rebuild depth end_update measured the drift against).
    seed = backend._drift_seed
    if seed is None or not graph.has_vertex(seed):
        return 0
    _, seed_depth = bfs_tree(graph, seed)
    reference = max(seed_depth.values(), default=0)
    current = max((backend.bfs_depth[v] for v in component if v in backend.bfs_depth), default=0)
    drift = current - reference
    if drift <= 0:
        return 0
    waves = 1 + 2 * delta.get("query_batches", 0)
    return waves * drift


@SETTINGS
@given(low_diameter_cases())
def test_voluntary_rebuild_fires_iff_account_exceeds_budget(case):
    """``voluntary_rebuilds`` increments iff the accumulated waves × drift
    account strictly exceeded the modeled rebuild cost at update start, and
    the accumulator follows exact arithmetic: each update adds its observed
    contribution, and any service rebuild resets the account to just the
    post-rebuild observation — replayed here by a shadow account."""
    graph, updates = case
    assume(updates)
    metrics = MetricsRecorder("dist", strict=True)
    driver = DistributedDynamicDFS(graph, rebuild_every=None, local_repair=True, metrics=metrics)
    backend = driver._backend
    model = backend.controller.model("depth_drift")
    shadow = 0.0
    for update in updates:
        due = model.value() > model.budget()
        assert due == (backend.controller.forced_due() == "depth_drift")
        before = metrics.as_dict()
        driver.apply(update)
        delta = metrics.snapshot_delta(before)
        assert delta.get("voluntary_rebuilds", 0) == (1 if due else 0), (
            "voluntary rebuild must fire iff the account exceeded the budget"
        )
        if due:
            assert delta.get("cost_model_triggers", 0) == 1
            assert delta.get("service_rebuilds", 0) >= 1
        contribution = _observed_drift_contribution(backend, driver.graph, update, delta)
        if delta.get("service_rebuilds", 0) >= 1:
            shadow = contribution  # rebuild reset the account mid-update
        else:
            shadow += contribution
        assert model.value() == pytest.approx(shadow), "accumulator arithmetic drifted"
    assert driver.is_valid()


@SETTINGS
@given(low_diameter_cases())
def test_low_diameter_auto_policy_repair_bounded_regret(case):
    """On connected low-diameter workloads under ``rebuild_every=None`` the
    repairing driver maintains byte-identical trees to rebuild-on-invalidation
    after every update, and its total rounds never fall behind by more than
    the cost model's bounded regret (one in-flight drift account plus one
    voluntary rebuild — at most twice the modeled rebuild cost)."""
    graph, updates = case
    assume(updates)
    repair = DistributedDynamicDFS(
        graph,
        rebuild_every=None,
        local_repair=True,
        metrics=MetricsRecorder("repair", strict=True),
    )
    conservative = DistributedDynamicDFS(
        graph,
        rebuild_every=None,
        local_repair=False,
        metrics=MetricsRecorder("conservative", strict=True),
    )
    max_budget = 0.0
    for step, update in enumerate(updates):
        repair.apply(update)
        conservative.apply(update)
        assert repair.parent_map() == conservative.parent_map(), f"diverged at update {step}"
        max_budget = max(max_budget, repair._backend._modeled_rebuild_cost())
    assert repair.rounds() <= conservative.rounds() + 2 * max_budget, (
        repair.rounds(),
        conservative.rounds(),
        max_budget,
    )


@pytest.mark.parametrize("seed", [1, 9])
def test_sustained_churn_auto_policy_repair_wins(seed):
    """The PR 3 regression case, pinned: on a low-diameter ``sustained_churn``
    workload with ``rebuild_every=None``, ``local_repair=True`` uses at most
    the total rounds of ``local_repair=False`` and of the pure-repair
    configuration (voluntary rebuilds disabled), with byte-identical parent
    maps after every update."""
    scenario = build_scenario("sustained_churn", n=64, seed=seed, updates=100)
    updates = scenario.updates[:100]
    drivers = {
        "conservative": DistributedDynamicDFS(
            scenario.graph, rebuild_every=None, local_repair=False,
            metrics=MetricsRecorder("conservative", strict=True),
        ),
        "pure_repair": DistributedDynamicDFS(
            scenario.graph, rebuild_every=None, local_repair=True,
            drift_rebuild_cost=float("inf"),
            metrics=MetricsRecorder("pure", strict=True),
        ),
        "voluntary": DistributedDynamicDFS(
            scenario.graph, rebuild_every=None, local_repair=True,
            metrics=MetricsRecorder("voluntary", strict=True),
        ),
    }
    for step, update in enumerate(updates):
        reference = None
        for name, driver in drivers.items():
            driver.apply(update)
            if reference is None:
                reference = driver.parent_map()
            else:
                assert driver.parent_map() == reference, f"{name} diverged at update {step}"
    assert drivers["voluntary"].rounds() <= drivers["conservative"].rounds()
    assert drivers["voluntary"].rounds() <= drivers["pure_repair"].rounds()


def test_two_level_repair_round_accounting():
    """The two-level candidate selection must not change the repair's round
    accounting: a repair still costs exactly one intra-subtree convergecast
    plus one re-rooted-subtree broadcast (``O(depth-of-subtree)`` rounds),
    independent of how many reattachment candidates the subtree offers."""
    def run_case(extra_candidate_edges):
        # A hub (0) with two pendant paths: 10-11-12 (the orphan-to-be) and
        # 20-21-22 (keeps the graph's eccentricity fixed at 4 whatever extra
        # candidate edges exist, so the repair gate sees the same yardstick).
        graph = UndirectedGraph(vertices=list(range(5)) + [10, 11, 12, 20, 21, 22])
        for v in range(1, 5):
            graph.add_edge(0, v)  # star core
        graph.add_edge(1, 10)
        graph.add_edge(10, 11)
        graph.add_edge(11, 12)
        graph.add_edge(4, 20)
        graph.add_edge(20, 21)
        graph.add_edge(21, 22)
        metrics = MetricsRecorder("dist", strict=True)
        # A huge finite drift budget: voluntary rebuilds stay out of the way,
        # the repair gate (budget-independent) stays active.
        d = DistributedDynamicDFS(
            graph, rebuild_every=None, local_repair=True,
            drift_rebuild_cost=1000.0, metrics=metrics,
        )
        d.insert_edge(0, 10)  # first update builds the broadcast tree (10 under 0)
        for u, v in extra_candidate_edges:
            # Inserted after the build: the cached broadcast tree is untouched,
            # the repair just sees more reattachment candidates.
            d.insert_edge(u, v)
        before_repairs = metrics["bfs_repairs"]
        before_rounds = metrics["bfs_repair_rounds"]
        d.delete_edge(0, 10)  # severs the pendant subtree {10, 11, 12}
        assert metrics["bfs_repairs"] == before_repairs + 1
        assert metrics["bfs_repair_fallbacks"] == 0
        _certify_broadcast_tree(d._backend, d.graph)
        return metrics["bfs_repair_rounds"] - before_rounds

    baseline_rounds = run_case([])
    more_candidates_rounds = run_case([(11, 3), (12, 4)])
    # One convergecast over the orphan (depth 2) + one broadcast down the
    # re-rooted subtree (depth 2 again): exactly O(depth-of-subtree) rounds,
    # independent of the number of candidates.
    assert baseline_rounds == more_candidates_rounds == 2 + 2
