"""Tests for the PRAM-metered LCA index."""

import random

from repro.graph.generators import random_tree
from repro.graph.traversal import static_dfs_tree
from repro.pram.lca_parallel import ParallelLCA
from repro.pram.machine import PRAM
from repro.tree.dfs_tree import DFSTree


def test_parallel_lca_matches_tree_lca():
    rng = random.Random(11)
    g = random_tree(60, seed=1)
    tree = DFSTree(static_dfs_tree(g, 0), root=0)
    pram = PRAM()
    lca = ParallelLCA(pram, tree)
    build_depth = pram.depth
    assert build_depth > 0  # construction was metered
    verts = list(tree.vertices())
    for _ in range(200):
        a, b = rng.choice(verts), rng.choice(verts)
        assert lca.lca(a, b) == tree.lca(a, b)


def test_batch_lca_counts_one_step():
    g = random_tree(40, seed=2)
    tree = DFSTree(static_dfs_tree(g, 0), root=0)
    pram = PRAM()
    lca = ParallelLCA(pram, tree)
    depth_before = pram.depth
    pairs = [(i, (i * 7 + 3) % 40) for i in range(40)]
    answers = lca.batch_lca(pairs)
    assert answers == [tree.lca(a, b) for a, b in pairs]
    # One parallel step plus the charged EREW-simulation factor.
    assert pram.depth - depth_before <= 1 + (2 * 40).bit_length()
