"""Parallel Euler-tour tree functions must match the sequential DFSTree indices."""

import math

import pytest

from repro.exceptions import TreeError
from repro.graph.generators import path_graph, random_tree, star_graph
from repro.graph.traversal import static_dfs_tree
from repro.pram.machine import PRAM
from repro.pram.tree_functions import parallel_tree_functions
from repro.tree.dfs_tree import DFSTree


def _check_against_dfs_tree(parent_map):
    tree = DFSTree(parent_map)
    pram = PRAM()
    result = parallel_tree_functions(pram, parent_map)
    for v in parent_map:
        assert result["level"][v] == tree.level(v), f"level mismatch at {v}"
        assert result["size"][v] == tree.subtree_size(v), f"size mismatch at {v}"
        assert result["postorder"][v] == tree.postorder(v), f"postorder mismatch at {v}"
    return pram


def test_small_hand_built_tree():
    parent = {0: None, 1: 0, 2: 1, 3: 1, 4: 0, 5: 4, 6: 4}
    _check_against_dfs_tree(parent)


def test_path_and_star_trees():
    path = static_dfs_tree(path_graph(40), 0)
    _check_against_dfs_tree(path)
    star = static_dfs_tree(star_graph(30), 0)
    _check_against_dfs_tree(star)


def test_random_trees_and_depth_bound():
    for seed in range(4):
        g = random_tree(80, seed=seed)
        parent = static_dfs_tree(g, 0)
        pram = _check_against_dfs_tree(parent)
        n = len(parent)
        # Euler tour + list ranking + prefix sums: O(log n) parallel steps.
        assert pram.depth <= 6 * math.ceil(math.log2(2 * n)) + 10


def test_trivial_trees():
    pram = PRAM()
    assert parallel_tree_functions(pram, {}) == {"level": {}, "postorder": {}, "size": {}}
    single = parallel_tree_functions(pram, {7: None})
    assert single == {"level": {7: 0}, "postorder": {7: 0}, "size": {7: 1}}


def test_multiple_roots_rejected():
    pram = PRAM()
    with pytest.raises(TreeError):
        parallel_tree_functions(pram, {0: None, 1: None})
