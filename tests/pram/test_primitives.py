"""Tests for the PRAM primitives: results match sequential semantics, depth
stays logarithmic, and strict EREW mode catches conflicting accesses."""

import math
import random

import pytest

from repro.exceptions import EREWViolation, PRAMError
from repro.pram.machine import PRAM
from repro.pram.primitives import (
    parallel_max,
    parallel_min,
    parallel_pack,
    parallel_prefix_sums,
    parallel_reduce,
    pointer_jumping_list_ranking,
)


def test_prefix_sums_matches_sequential():
    rng = random.Random(0)
    for n in (1, 2, 7, 64, 100):
        values = [rng.randint(-5, 10) for _ in range(n)]
        pram = PRAM(strict_erew=True)
        result = parallel_prefix_sums(pram, values)
        expected = []
        acc = 0
        for v in values:
            acc += v
            expected.append(acc)
        assert result == expected


def test_prefix_sums_depth_is_logarithmic():
    n = 1024
    pram = PRAM()
    parallel_prefix_sums(pram, [1] * n)
    assert pram.depth <= 2 * math.ceil(math.log2(n)) + 2
    assert pram.work <= 4 * n


def test_reduce_and_min_max():
    rng = random.Random(1)
    values = [rng.randint(-100, 100) for _ in range(37)]
    pram = PRAM(strict_erew=True)
    assert parallel_reduce(pram, list(values), lambda a, b: a + b) == sum(values)
    assert parallel_max(pram, list(values)) == max(values)
    assert parallel_min(pram, list(values)) == min(values)
    assert parallel_max(pram, list(values), key=abs) == max(values, key=abs)
    with pytest.raises(ValueError):
        parallel_reduce(pram, [], lambda a, b: a)


def test_pack_is_stable():
    values = list("abcdefgh")
    flags = [True, False, True, True, False, False, True, False]
    pram = PRAM(strict_erew=True)
    assert parallel_pack(pram, values, flags) == ["a", "c", "d", "g"]
    assert parallel_pack(pram, [], []) == []
    with pytest.raises(ValueError):
        parallel_pack(pram, [1, 2], [True])


def test_list_ranking_matches_positions():
    # Build a random linked list over 0..n-1.
    rng = random.Random(5)
    n = 50
    order = list(range(n))
    rng.shuffle(order)
    successor = [-1] * n
    for a, b in zip(order, order[1:]):
        successor[a] = b
    # Pointer jumping is CREW (a node and its predecessor read the same cell);
    # see the primitive's docstring, so no strict EREW checking here.
    pram = PRAM()
    ranks = pointer_jumping_list_ranking(pram, successor)
    for pos, v in enumerate(order):
        assert ranks[v] == n - 1 - pos
    assert pram.depth <= 2 * math.ceil(math.log2(n)) + 2


def test_list_ranking_trivial_cases():
    pram = PRAM()
    assert pointer_jumping_list_ranking(pram, []) == []
    assert pointer_jumping_list_ranking(pram, [-1]) == [0]


def test_erew_violation_detected():
    pram = PRAM(strict_erew=True)
    cell = pram.zeros(1, "shared")

    def everyone_reads_cell_zero(i, _item):
        return cell.read(0)

    with pytest.raises(EREWViolation):
        pram.parallel_step(range(4), everyone_reads_cell_zero)


def test_nested_parallel_steps_forbidden():
    pram = PRAM()

    def nested(i, _item):
        pram.parallel_step([1], lambda j, x: x)

    with pytest.raises(PRAMError):
        pram.parallel_step([1, 2], nested)


def test_charge_and_metrics():
    from repro.metrics.counters import MetricsRecorder

    metrics = MetricsRecorder()
    pram = PRAM(metrics=metrics)
    pram.parallel_step([1, 2, 3], lambda i, x: x)
    pram.charge(depth=2, work=10)
    assert pram.depth == 3 and pram.work == 13
    assert metrics["pram_depth"] == 3 and metrics["pram_work"] == 13
    pram.reset()
    assert pram.depth == 0 and pram.work == 0
