"""Tests for the simulated parallel merge sort."""

import random

from repro.pram.machine import PRAM
from repro.pram.sort import parallel_merge, parallel_merge_sort, sort_depth_upper_bound


def test_parallel_merge_matches_sorted():
    rng = random.Random(2)
    for _ in range(20):
        a = sorted(rng.randint(0, 50) for _ in range(rng.randint(0, 12)))
        b = sorted(rng.randint(0, 50) for _ in range(rng.randint(0, 12)))
        pram = PRAM()
        assert parallel_merge(pram, a, b) == sorted(a + b)


def test_parallel_merge_sort_matches_builtin():
    rng = random.Random(3)
    for n in (0, 1, 2, 5, 17, 64, 129):
        values = [rng.randint(-100, 100) for _ in range(n)]
        pram = PRAM()
        assert parallel_merge_sort(pram, values) == sorted(values)


def test_parallel_merge_sort_with_key_and_stability():
    values = [("a", 3), ("b", 1), ("c", 3), ("d", 1), ("e", 2)]
    pram = PRAM()
    result = parallel_merge_sort(pram, values, key=lambda x: x[1])
    assert result == [("b", 1), ("d", 1), ("e", 2), ("a", 3), ("c", 3)]


def test_depth_within_polylog_budget():
    rng = random.Random(4)
    for n in (64, 256, 1000):
        values = [rng.random() for _ in range(n)]
        pram = PRAM()
        parallel_merge_sort(pram, values)
        assert pram.depth <= sort_depth_upper_bound(n)
        assert pram.work <= 4 * n * (n.bit_length() + 1)
