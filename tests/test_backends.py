"""Backend selection: the ``backend="dict"|"array"`` knob and its env fallback.

The dict backend must stay importable and fully functional without numpy;
the array backend must fail with a clean :class:`BackendUnavailable` when
numpy is missing, and — when present — drive every driver to byte-identical
parent maps.
"""

from __future__ import annotations

import pytest

import repro.backends as backends
from repro.backends import (
    BACKEND_ENV_VAR,
    graph_class,
    native_graph,
    resolve_backend,
    structure_class,
)
from repro.core.dynamic_dfs import FullyDynamicDFS
from repro.core.fault_tolerant import FaultTolerantDFS
from repro.core.structure_d import StructureD
from repro.exceptions import BackendUnavailable, ReproError
from repro.graph.generators import gnp_random_graph
from repro.graph.graph import UndirectedGraph
from repro.streaming.semi_streaming_dfs import SemiStreamingDynamicDFS
from repro.workloads.updates import mixed_updates

HAVE_NUMPY = backends.HAVE_NUMPY


def test_resolve_backend_defaults_and_env(monkeypatch):
    monkeypatch.delenv(BACKEND_ENV_VAR, raising=False)
    assert resolve_backend(None) == "dict"
    assert resolve_backend("dict") == "dict"
    monkeypatch.setenv(BACKEND_ENV_VAR, "dict")
    assert resolve_backend(None) == "dict"
    if HAVE_NUMPY:
        monkeypatch.setenv(BACKEND_ENV_VAR, "array")
        assert resolve_backend(None) == "array"
        # an explicit knob wins over the environment
        assert resolve_backend("dict") == "dict"


def test_resolve_backend_rejects_unknown_names():
    with pytest.raises(ValueError, match="unknown backend"):
        resolve_backend("sparse")


def test_array_without_numpy_raises_clean_error(monkeypatch):
    monkeypatch.setattr(backends, "HAVE_NUMPY", False)
    with pytest.raises(BackendUnavailable, match="numpy"):
        resolve_backend("array")
    # BackendUnavailable is both a ReproError and an ImportError, so generic
    # optional-dependency handling catches it too.
    assert issubclass(BackendUnavailable, ReproError)
    assert issubclass(BackendUnavailable, ImportError)


def test_dict_backend_classes_never_need_numpy():
    assert structure_class("dict") is StructureD
    assert graph_class("dict") is UndirectedGraph
    g = gnp_random_graph(8, 0.3, seed=0)
    assert native_graph(g, "dict", copy=False) is g
    copy = native_graph(g, "dict", copy=True)
    assert copy == g and copy is not g


@pytest.mark.skipif(not HAVE_NUMPY, reason="array backend requires numpy")
def test_array_backend_classes_and_conversion():
    from repro.core.array_structure_d import ArrayStructureD
    from repro.graph.array_graph import ArrayGraph

    assert structure_class("array") is ArrayStructureD
    assert graph_class("array") is ArrayGraph
    g = gnp_random_graph(8, 0.3, seed=0)
    ag = native_graph(g, "array", copy=True)
    assert isinstance(ag, ArrayGraph)
    assert ag == g
    for v in g.vertices():
        assert ag.neighbor_list(v) == g.neighbor_list(v)
    # an existing ArrayGraph is reused only with copy=False
    assert native_graph(ag, "array", copy=False) is ag
    assert native_graph(ag, "array", copy=True) is not ag


@pytest.mark.skipif(not HAVE_NUMPY, reason="array backend requires numpy")
def test_drivers_expose_backend_and_env_resolution(monkeypatch):
    monkeypatch.delenv(BACKEND_ENV_VAR, raising=False)
    g = gnp_random_graph(12, 0.25, seed=3, connected=True)
    assert FullyDynamicDFS(g).backend == "dict"
    assert FullyDynamicDFS(g, backend="array").backend == "array"
    assert FullyDynamicDFS(g, backend="array").update_engine.storage_backend == "array"
    assert FullyDynamicDFS(g).update_engine.storage_backend == "dict"
    monkeypatch.setenv(BACKEND_ENV_VAR, "array")
    for cls in (FullyDynamicDFS, SemiStreamingDynamicDFS, FaultTolerantDFS):
        assert cls(g).backend == "array", cls.__name__


@pytest.mark.skipif(not HAVE_NUMPY, reason="array backend requires numpy")
def test_backends_byte_identical_on_mixed_updates():
    g = gnp_random_graph(24, 0.15, seed=7, connected=True)
    updates = mixed_updates(g, 30, seed=9)
    drivers = {
        "dict": FullyDynamicDFS(g, rebuild_every=3, backend="dict"),
        "array": FullyDynamicDFS(g, rebuild_every=3, backend="array"),
    }
    for step, update in enumerate(updates):
        maps = {}
        for name, driver in drivers.items():
            driver.apply(update)
            maps[name] = driver.parent_map()
        assert maps["array"] == maps["dict"], f"step {step}: backends diverged"
    for driver in drivers.values():
        assert driver.is_valid()
