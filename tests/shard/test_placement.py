"""Placement: stable hashing, tenant->shard mapping, consistent-hash ring."""

from __future__ import annotations

import os
import subprocess
import sys

import pytest

import repro
from repro.shard import HashRing, shard_of_tenant, stable_hash


def test_stable_hash_is_identical_in_a_fresh_interpreter():
    """The whole point of BLAKE2b over ``repr``: the router's parent process
    and every worker (and every CI run) must agree on placement.  The builtin
    ``hash`` is salted per process for strings and would fail this test."""
    keys = ["tenant-0", ("shard", 7), 42, ("w", 3)]
    local = [stable_hash(k) for k in keys] + [stable_hash(keys[0], salt=b"ring")]
    code = (
        "from repro.shard import stable_hash;"
        "keys = ['tenant-0', ('shard', 7), 42, ('w', 3)];"
        "vals = [stable_hash(k) for k in keys] + [stable_hash(keys[0], salt=b'ring')];"
        "print(','.join(map(str, vals)))"
    )
    src_dir = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
    out = subprocess.run(
        [sys.executable, "-c", code],
        capture_output=True,
        text=True,
        check=True,
        env={**os.environ, "PYTHONPATH": src_dir},
    )
    assert [int(x) for x in out.stdout.strip().split(",")] == local


def test_salt_separates_hash_domains():
    assert stable_hash("k", salt=b"ring") != stable_hash("k", salt=b"key")
    assert stable_hash("k") != stable_hash("k", salt=b"ring")


def test_shard_of_tenant_range_and_validation():
    shards = {shard_of_tenant(f"tenant-{i}", 8) for i in range(200)}
    assert shards <= set(range(8))
    assert len(shards) == 8  # 200 tenants over 8 shards: every shard hit
    with pytest.raises(ValueError):
        shard_of_tenant("t", 0)


def test_ring_lookup_is_deterministic_and_total():
    ring = HashRing([0, 1, 2, 3])
    owners = [ring.node_for(("shard", s)) for s in range(64)]
    assert owners == [ring.node_for(("shard", s)) for s in range(64)]
    assert set(owners) == {0, 1, 2, 3}  # 64 shards spread over all 4 workers


def test_removing_a_node_only_moves_its_own_keys():
    """Consistent hashing's contract: keys owned by survivors never move when
    a node leaves the ring."""
    ring = HashRing([0, 1, 2, 3])
    before = {s: ring.node_for(("shard", s)) for s in range(64)}
    ring.remove_node(2)
    after = {s: ring.node_for(("shard", s)) for s in range(64)}
    for s in range(64):
        if before[s] != 2:
            assert after[s] == before[s]
        else:
            assert after[s] != 2
    assert set(after.values()) <= {0, 1, 3}


def test_ring_validation():
    ring = HashRing([0])
    with pytest.raises(ValueError):
        ring.add_node(0)  # duplicate
    with pytest.raises(ValueError):
        ring.remove_node(9)  # unknown
    ring.remove_node(0)
    with pytest.raises(ValueError):
        ring.node_for("k")  # empty ring
    with pytest.raises(ValueError):
        HashRing(replicas=0)
    assert ring.nodes == []
