"""ShardRouter behaviors (inline mode): routing, rebalance, fleet rollup.

Inline mode runs the identical :class:`~repro.shard.ShardWorker` code in
process, so these tests pin the router's semantics without fork overhead;
``test_cross_process.py`` pins process-mode equivalence on top.
"""

from __future__ import annotations

import pytest

from repro.core.dynamic_dfs import FullyDynamicDFS
from repro.core.updates import EdgeDeletion
from repro.exceptions import UpdateError
from repro.metrics.counters import MetricsRecorder
from repro.service import DFSTreeService
from repro.shard import ShardRouter, rollup_counters
from repro.workloads.multi_tenant import multi_tenant_churn, round_items


def _fleet(num_tenants=6, **router_kw):
    router_kw.setdefault("num_workers", 2)
    router_kw.setdefault("num_shards", 8)
    router_kw.setdefault("mode", "inline")
    tenants = multi_tenant_churn(num_tenants, n=24, rounds=3, updates_per_round=3, seed=5)
    router = ShardRouter(**router_kw)
    for t in tenants:
        router.create_tenant(t.tenant_id, t.graph)
    return router, tenants


def _references(tenants):
    """An undisturbed single-process driver + service per tenant."""
    refs = {}
    for t in tenants:
        driver = FullyDynamicDFS(t.graph.copy())
        refs[t.tenant_id] = (driver, DFSTreeService(driver))
    return refs


def test_routed_tenants_match_single_process_reference():
    """Every tenant behind the router maintains the exact tree (and answers
    the exact snapshot queries) an undisturbed single-process stack does."""
    router, tenants = _fleet()
    refs = _references(tenants)
    with router:
        for rnd in range(3):
            items = round_items(tenants, rnd)
            if rnd == 1:  # one round through the scalar path
                for tenant_id, updates in items:
                    router.apply(tenant_id, updates)
            else:
                router.apply_many(items)
            for tenant_id, updates in items:
                driver, svc = refs[tenant_id]
                driver.apply_all(updates)
                assert router.parent_map(tenant_id) == driver.parent_map()
                assert router.committed_version(tenant_id) == svc.committed_version
        for t in tenants:
            driver, svc = refs[t.tenant_id]
            verts = sorted(driver.graph.vertices())[:6]
            avs, bvs = verts[:3], verts[3:6]
            for kind in ("lca", "connected", "is_ancestor", "path_length"):
                answers, version = router.query(t.tenant_id, kind, avs, bvs)
                ref_answers, ref_version = getattr(svc, f"{kind}_batch")(avs, bvs)
                assert (answers, version) == (ref_answers, ref_version), kind
            answers, version = router.query(t.tenant_id, "subtree_size", avs)
            assert (answers, version) == svc.subtree_size_batch(avs)


def test_placement_is_consistent():
    router, tenants = _fleet()
    with router:
        for t in tenants:
            shard = router.shard_of(t.tenant_id)
            assert 0 <= shard < router.num_shards
            assert router.worker_of_tenant(t.tenant_id) == router.worker_of_shard(shard)
        assert set(router.tenants()) == {t.tenant_id for t in tenants}
        assert router.workers() == [0, 1]


def test_duplicate_unknown_and_invalid_errors():
    router, tenants = _fleet(num_tenants=2)
    with router:
        with pytest.raises(ValueError):
            router.create_tenant(tenants[0].tenant_id, tenants[0].graph)
        with pytest.raises(KeyError):
            router.apply("nope", [])
        with pytest.raises(KeyError):
            router.parent_map("nope")
        with pytest.raises(ValueError):
            router.query(tenants[0].tenant_id, "mst", [0], [1])
        # A malformed update is forwarded as the library's own error and the
        # tenant keeps working afterwards.
        with pytest.raises(UpdateError):
            router.apply(tenants[0].tenant_id, [EdgeDeletion("ghost-a", "ghost-b")])
        router.apply(tenants[0].tenant_id, tenants[0].rounds[0])
        assert router.committed_version(tenants[0].tenant_id) == 3


def test_constructor_validation():
    with pytest.raises(ValueError):
        ShardRouter(num_workers=0, mode="inline")
    with pytest.raises(ValueError):
        ShardRouter(num_workers=4, num_shards=2, mode="inline")
    with pytest.raises(ValueError):
        ShardRouter(num_workers=1, num_shards=4, mode="threads")


def test_move_shard_preserves_every_parent_map_and_counts():
    router, tenants = _fleet()
    with router:
        for rnd in range(2):
            router.apply_many(round_items(tenants, rnd))
        before = {t.tenant_id: router.parent_map(t.tenant_id) for t in tenants}
        # Move every populated shard to the *other* worker.
        populated = sorted({router.shard_of(t.tenant_id) for t in tenants})
        moved_tenants = 0
        for shard in populated:
            target = 1 - router.worker_of_shard(shard)
            assert router.move_shard(shard, router.worker_of_shard(shard)) == 0  # self-move no-op
            moved_tenants += router.move_shard(shard, target)
            assert router.worker_of_shard(shard) == target
        assert moved_tenants == len(tenants)
        after = {t.tenant_id: router.parent_map(t.tenant_id) for t in tenants}
        assert after == before  # byte-identical across the drain/replay
        fleet = router.fleet_metrics()
        assert fleet["shard_moves"] == len(populated)
        assert fleet["shard_tenants_moved"] == len(tenants)
        assert fleet["shard_replayed_updates"] == 6 * len(tenants)  # 2 rounds x 3
        # The moved tenants keep taking writes on their new workers.
        router.apply_many(round_items(tenants, 2))
        for t in tenants:
            assert router.committed_version(t.tenant_id) == 9
        with pytest.raises(ValueError):
            router.move_shard(router.num_shards, 0)
        with pytest.raises(KeyError):
            router.move_shard(0, 99)


def test_drain_worker_rehomes_all_of_its_shards():
    router, tenants = _fleet(num_tenants=8, num_workers=3, num_shards=9)
    with router:
        router.apply_many(round_items(tenants, 0))
        before = {t.tenant_id: router.parent_map(t.tenant_id) for t in tenants}
        victim = router.worker_of_tenant(tenants[0].tenant_id)
        router.drain_worker(victim)
        assert all(owner != victim for owner in (router.worker_of_shard(s) for s in range(9)))
        assert {t.tenant_id: router.parent_map(t.tenant_id) for t in tenants} == before
        with pytest.raises(ValueError):
            router.drain_worker(victim)  # already drained
        with pytest.raises(KeyError):
            router.drain_worker(99)
        # Draining down to one worker is allowed; draining the last is not.
        survivors = [w for w in router.workers() if w != victim]
        router.drain_worker(survivors[0])
        with pytest.raises(ValueError):
            router.drain_worker(survivors[1])
        assert {t.tenant_id: router.parent_map(t.tenant_id) for t in tenants} == before


def test_rollup_counters_semantics():
    assert rollup_counters([]) == {}
    merged = rollup_counters(
        [
            {"updates": 3, "max_query_batch_size": 5},
            {"updates": 4, "max_query_batch_size": 2, "queries_served": 7},
        ]
    )
    assert merged == {"updates": 7, "max_query_batch_size": 5, "queries_served": 7}
    with pytest.raises(KeyError):
        rollup_counters([{"not_a_registered_counter": 1}])
    with pytest.raises(KeyError):
        rollup_counters([{"max_not_a_registered_counter": 1}])


def test_fleet_metrics_roll_up_router_and_all_shards():
    metrics = MetricsRecorder("router", strict=True)
    router, tenants = _fleet(metrics=metrics)
    with router:
        router.apply_many(round_items(tenants, 0))
        router.apply(tenants[0].tenant_id, tenants[0].rounds[1])
        router.query(tenants[0].tenant_id, "connected", [0], [1])
        fleet = router.fleet_metrics()
        # Router-side routing counters...
        assert fleet["shard_tenants_created"] == len(tenants)
        assert fleet["shard_update_batches_routed"] == len(tenants) + 1
        assert fleet["shard_updates_routed"] == 3 * len(tenants) + 3
        assert fleet["shard_query_batches_routed"] == 1
        assert fleet["max_worker_tenants"] >= 1
        # ...summed with the per-shard engine/service counters.
        assert fleet["updates"] == 3 * len(tenants) + 3
        assert fleet["snapshots_published"] == 3 * len(tenants) + 3
        assert fleet["queries_served"] == 1
        # Per-shard view: every populated shard reports, updates sum to fleet.
        per_shard = router.shard_metrics()
        assert set(per_shard) == {router.shard_of(t.tenant_id) for t in tenants}
        assert sum(c["updates"] for c in per_shard.values()) == fleet["updates"]


def test_close_is_idempotent():
    router, tenants = _fleet(num_tenants=1)
    router.apply(tenants[0].tenant_id, tenants[0].rounds[0])
    router.close()
    router.close()
