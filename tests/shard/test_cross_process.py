"""Cross-process determinism: a tenant behind a forked shard worker is
byte-identical to the same updates applied in process — on both storage
backends, and across a mid-sequence drain/rebalance.

This is the canonical-answers guarantee stretched over a process boundary:
placement hashes are process-stable (BLAKE2b), updates and graphs pickle
losslessly, and replay-from-genesis is exact, so nothing about living in a
worker process may change a single parent pointer.
"""

from __future__ import annotations

import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.backends import HAVE_NUMPY
from repro.core.dynamic_dfs import FullyDynamicDFS
from repro.graph.generators import gnm_random_graph
from repro.shard import ShardRouter
from repro.workloads.multi_tenant import multi_tenant_churn, round_items
from tests.helpers import decode_ops

BACKENDS = ["dict"] + (["array"] if HAVE_NUMPY else [])


@pytest.mark.parametrize("backend", BACKENDS)
def test_process_fleet_matches_in_process_reference(backend):
    """A small fleet in real worker processes, with one worker drained midway:
    every tenant's parent map equals its in-process reference at every round."""
    tenants = multi_tenant_churn(5, n=24, rounds=4, updates_per_round=3, seed=11)
    refs = {t.tenant_id: FullyDynamicDFS(t.graph.copy(), backend=backend) for t in tenants}
    with ShardRouter(num_workers=2, num_shards=8, mode="process", backend=backend) as router:
        for t in tenants:
            router.create_tenant(t.tenant_id, t.graph)
        for rnd in range(4):
            if rnd == 2:  # drain one worker mid-churn
                router.drain_worker(router.worker_of_tenant(tenants[0].tenant_id))
            router.apply_many(round_items(tenants, rnd))
            for t in tenants:
                refs[t.tenant_id].apply_all(t.rounds[rnd])
                assert router.parent_map(t.tenant_id) == refs[t.tenant_id].parent_map()
        fleet = router.fleet_metrics()
        assert fleet["shard_replayed_updates"] > 0  # the drain really replayed
        # Counters are charged where the work ran: the drain's replay applied
        # its updates again on the destination worker's shard recorder.
        assert fleet["updates"] == 5 * 4 * 3 + fleet["shard_replayed_updates"]


@pytest.mark.parametrize("backend", BACKENDS)
def test_process_worker_error_does_not_kill_the_worker(backend):
    from repro.core.updates import EdgeDeletion
    from repro.exceptions import UpdateError

    tenants = multi_tenant_churn(2, n=16, rounds=1, updates_per_round=2, seed=3)
    with ShardRouter(num_workers=2, num_shards=4, mode="process", backend=backend) as router:
        for t in tenants:
            router.create_tenant(t.tenant_id, t.graph)
        with pytest.raises(UpdateError):
            router.apply(tenants[0].tenant_id, [EdgeDeletion("ghost-a", "ghost-b")])
        # The command loop survived the forwarded error: writes still land.
        for t in tenants:
            router.apply(t.tenant_id, t.rounds[0])
            assert router.committed_version(t.tenant_id) == 2


@st.composite
def shard_cases(draw):
    n = draw(st.integers(min_value=4, max_value=10))
    max_m = n * (n - 1) // 2
    m = draw(st.integers(min_value=0, max_value=min(2 * n, max_m)))
    seed = draw(st.integers(min_value=0, max_value=99))
    ops = draw(
        st.lists(
            st.tuples(st.integers(0, 3), st.integers(0, 15), st.integers(0, 63)),
            min_size=1,
            max_size=5,
        )
    )
    move_at = draw(st.integers(min_value=0, max_value=4))
    return gnm_random_graph(n, m, seed=seed), ops, move_at


@settings(max_examples=8, deadline=None)
@given(shard_cases())
@pytest.mark.parametrize("backend", BACKENDS)
def test_tenant_through_worker_process_is_byte_identical(backend, case):
    """Property: any replayable update sequence (the cross-driver harness's
    ``(kind, a, b)`` encodings) applied to a tenant in a worker process — with
    a shard move injected mid-sequence — yields the exact parent map of the
    same sequence applied in process."""
    graph, ops, move_at = case
    updates = decode_ops(graph, ops)
    assume(updates)
    reference = FullyDynamicDFS(graph.copy(), backend=backend)
    with ShardRouter(num_workers=2, num_shards=2, mode="process", backend=backend) as router:
        router.create_tenant("t", graph)
        shard = router.shard_of("t")
        for i, update in enumerate(updates):
            if i == move_at % len(updates):
                router.move_shard(shard, 1 - router.worker_of_shard(shard))
            router.apply("t", [update])
            reference.apply(update)
            assert router.parent_map("t") == reference.parent_map(), (i, update.describe())
