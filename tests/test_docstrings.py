"""Public-API docstring enforcement (pydocstyle-lite).

Every exported driver/engine class — and every public method, property,
classmethod and staticmethod on it — must carry a non-empty docstring: the
docstring pass of PR 5 made the knobs, emitted counters and complexities part
of the API surface, and this test keeps new public members from shipping
undocumented.  Inherited members are checked on the class that *defines*
them, so a subclass only answers for what it overrides.
"""

from __future__ import annotations

import pytest

from repro.core.dynamic_dfs import FullyDynamicDFS
from repro.core.engine import Backend, UpdateEngine
from repro.core.fault_tolerant import FaultTolerantDFS
from repro.core.maintenance import CostModel, CostSignal, MaintenanceController
from repro.distributed.distributed_dfs import CongestBackend, DistributedDynamicDFS
from repro.distributed.network import CongestNetwork
from repro.metrics.counters import MetricsRecorder
from repro.service import BatchingQueryFront, DFSTreeService, TreeSnapshot
from repro.shard import HashRing, ShardRouter, ShardWorker
from repro.streaming.semi_streaming_dfs import SemiStreamingDynamicDFS

#: The exported API surface the docstring contract covers: the four public
#: drivers, the shared engine/backend protocol, the maintenance controller,
#: the metrics recorder, the CONGEST simulator, the MVCC query service and
#: the sharded multi-tenant router.
PUBLIC_CLASSES = [
    FullyDynamicDFS,
    FaultTolerantDFS,
    SemiStreamingDynamicDFS,
    DistributedDynamicDFS,
    UpdateEngine,
    Backend,
    CongestBackend,
    CongestNetwork,
    MaintenanceController,
    CostModel,
    CostSignal,
    MetricsRecorder,
    DFSTreeService,
    TreeSnapshot,
    BatchingQueryFront,
    ShardRouter,
    ShardWorker,
    HashRing,
]


def _public_members(cls):
    """(name, docstring) for every public callable/property *defined on* cls."""
    for name, member in vars(cls).items():
        if name.startswith("_"):
            continue
        if isinstance(member, property):
            yield name, (member.fget.__doc__ if member.fget else None)
        elif isinstance(member, (classmethod, staticmethod)):
            yield name, member.__func__.__doc__
        elif callable(member):
            yield name, member.__doc__


@pytest.mark.parametrize("cls", PUBLIC_CLASSES, ids=lambda c: c.__name__)
def test_public_class_and_members_have_docstrings(cls):
    assert (cls.__doc__ or "").strip(), f"{cls.__name__} lacks a class docstring"
    missing = [
        name for name, doc in _public_members(cls) if not (doc or "").strip()
    ]
    assert not missing, (
        f"{cls.__name__} has undocumented public members: {sorted(missing)} "
        "(document the knobs, the counters they emit, and the complexity)"
    )


def test_driver_docstrings_name_their_knobs():
    """The driver docstrings must keep naming the knobs they accept — the
    minimal 'docs follow the code' check for the parameters PR 5 added."""
    assert "rebuild_every" in FullyDynamicDFS.__doc__
    for knob in ("rebuild_every", "local_repair", "drift_rebuild_cost",
                 "voluntary_root", "component_accounting"):
        assert knob in DistributedDynamicDFS.__doc__, knob
