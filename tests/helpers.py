"""Shared helpers for the test suite (importable as ``tests.helpers``)."""

from __future__ import annotations

from typing import List, Tuple

from repro.core.updates import Update
from repro.graph.generators import (
    broom_graph,
    caterpillar_graph,
    comb_with_back_edges,
    complete_binary_tree,
    cycle_graph,
    gnp_random_graph,
    grid_graph,
    path_graph,
    star_graph,
)
from repro.graph.graph import UndirectedGraph
from repro.workloads.updates import UpdateSequenceGenerator


def small_graph_family() -> List[Tuple[str, UndirectedGraph]]:
    """A deterministic zoo of small graphs covering all the structural cases the
    rerooting algorithm distinguishes (deep paths, wide stars, heavy subtrees,
    brooms/combs with back edges, random graphs, disconnected graphs)."""
    graphs: List[Tuple[str, UndirectedGraph]] = [
        ("path", path_graph(24)),
        ("cycle", cycle_graph(17)),
        ("star", star_graph(20)),
        ("grid", grid_graph(5, 5)),
        ("binary_tree", complete_binary_tree(4)),
        ("broom", broom_graph(12, 12)),
        ("caterpillar", caterpillar_graph(10, 3)),
        ("comb", comb_with_back_edges(8, 4)),
    ]
    for seed in range(4):
        graphs.append((f"gnp_{seed}", gnp_random_graph(30, 0.12, seed=seed, connected=True)))
    graphs.append(("sparse_disconnected", gnp_random_graph(30, 0.04, seed=99)))
    return graphs


def make_updates(graph: UndirectedGraph, count: int, seed: int, *, vertex_updates: bool = True) -> List[Update]:
    """A valid random update sequence for *graph* (replayable)."""
    gen = UpdateSequenceGenerator(graph, seed=seed)
    weights = (
        {"edge_del": 1.0, "edge_ins": 1.0, "vertex_del": 0.4, "vertex_ins": 0.4}
        if vertex_updates
        else {"edge_del": 1.0, "edge_ins": 1.0}
    )
    return gen.sequence(count, weights=weights)
