"""Shared helpers for the test suite (importable as ``tests.helpers``)."""

from __future__ import annotations

from typing import List, Tuple

from repro.core.overlay import apply_update
from repro.core.updates import (
    EdgeDeletion,
    EdgeInsertion,
    Update,
    VertexDeletion,
    VertexInsertion,
)
from repro.graph.generators import (
    broom_graph,
    caterpillar_graph,
    comb_with_back_edges,
    complete_binary_tree,
    cycle_graph,
    gnp_random_graph,
    grid_graph,
    path_graph,
    star_graph,
)
from repro.graph.graph import UndirectedGraph
from repro.workloads.updates import UpdateSequenceGenerator


def small_graph_family() -> List[Tuple[str, UndirectedGraph]]:
    """A deterministic zoo of small graphs covering all the structural cases the
    rerooting algorithm distinguishes (deep paths, wide stars, heavy subtrees,
    brooms/combs with back edges, random graphs, disconnected graphs)."""
    graphs: List[Tuple[str, UndirectedGraph]] = [
        ("path", path_graph(24)),
        ("cycle", cycle_graph(17)),
        ("star", star_graph(20)),
        ("grid", grid_graph(5, 5)),
        ("binary_tree", complete_binary_tree(4)),
        ("broom", broom_graph(12, 12)),
        ("caterpillar", caterpillar_graph(10, 3)),
        ("comb", comb_with_back_edges(8, 4)),
    ]
    for seed in range(4):
        graphs.append((f"gnp_{seed}", gnp_random_graph(30, 0.12, seed=seed, connected=True)))
    graphs.append(("sparse_disconnected", gnp_random_graph(30, 0.04, seed=99)))
    return graphs


def make_updates(graph: UndirectedGraph, count: int, seed: int, *, vertex_updates: bool = True) -> List[Update]:
    """A valid random update sequence for *graph* (replayable)."""
    gen = UpdateSequenceGenerator(graph, seed=seed)
    weights = (
        {"edge_del": 1.0, "edge_ins": 1.0, "vertex_del": 0.4, "vertex_ins": 0.4}
        if vertex_updates
        else {"edge_del": 1.0, "edge_ins": 1.0}
    )
    return gen.sequence(count, weights=weights)


def decode_ops(graph: UndirectedGraph, ops) -> List[Update]:
    """Decode shrinking-friendly integer triples into a valid update sequence.

    Each op is ``(kind, a, b)`` interpreted against an evolving scratch copy of
    *graph*, so the produced sequence is always replayable verbatim: an edge op
    toggles the edge between the ``a``-th and ``b``-th live vertex, a vertex
    deletion removes the ``a``-th live vertex, and a vertex insertion attaches
    a fresh vertex to the neighbour subset encoded by ``b``'s bits.  Undecodable
    ops (self loops, too-small graphs) are skipped rather than failing, so
    hypothesis can shrink the integers freely.  Shared by the cross-driver
    differential harness and the shard cross-process determinism tests.
    """
    scratch = graph.copy()
    next_vertex = 10**9
    updates: List[Update] = []
    for kind, a, b in ops:
        verts = sorted(scratch.vertices())
        kind %= 4
        if kind in (0, 3):  # edge toggle (twice the weight: churn dominates)
            if len(verts) < 2:
                continue
            u = verts[a % len(verts)]
            v = verts[b % len(verts)]
            if u == v:
                v = verts[(b + 1) % len(verts)]
                if u == v:
                    continue
            update = EdgeDeletion(u, v) if scratch.has_edge(u, v) else EdgeInsertion(u, v)
        elif kind == 1:  # vertex deletion
            if len(verts) <= 3:
                continue
            update = VertexDeletion(verts[a % len(verts)])
        else:  # vertex insertion with a bitmask-chosen neighbourhood
            neighbors = tuple(verts[i] for i in range(min(len(verts), 6)) if (b >> i) & 1)
            update = VertexInsertion(next_vertex, neighbors)
            next_vertex += 1
        apply_update(scratch, update)
        updates.append(update)
    return updates
