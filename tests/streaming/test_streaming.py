"""Tests for the semi-streaming environment (Theorem 15)."""

import math

import pytest

from tests.helpers import make_updates
from repro.exceptions import StreamingError
from repro.graph.generators import gnp_random_graph, path_graph
from repro.streaming.stream import EdgeStream
from repro.streaming.semi_streaming_dfs import SemiStreamingDynamicDFS


def test_edge_stream_passes_and_updates():
    g = path_graph(5)
    stream = EdgeStream.from_graph(g)
    assert stream.num_edges == 4
    assert sorted(tuple(sorted(e)) for e in stream.pass_over()) == [(0, 1), (1, 2), (2, 3), (3, 4)]
    assert stream.passes == 1
    stream.insert_edge(0, 4)
    assert stream.has_edge(4, 0)
    stream.delete_edge(0, 1)
    assert stream.num_edges == 4
    with pytest.raises(StreamingError):
        stream.insert_edge(0, 4)
    with pytest.raises(StreamingError):
        stream.delete_edge(0, 1)
    with pytest.raises(StreamingError):
        stream.insert_edge(2, 2)
    removed = stream.delete_vertex_edges(4)
    assert len(removed) == 2


def test_streaming_dfs_valid_and_pass_counted():
    graph = gnp_random_graph(45, 0.1, seed=5, connected=True)
    updates = make_updates(graph, 15, seed=9)
    ss = SemiStreamingDynamicDFS(graph, validate=True)
    ss.apply_all(updates)
    assert ss.is_valid()
    assert ss.passes == ss.metrics["stream_passes"]
    assert ss.metrics["max_passes_per_update"] >= 1


def test_passes_per_update_stay_polylogarithmic():
    worst = {}
    for n in (64, 256, 1024):
        graph = path_graph(n)
        ss = SemiStreamingDynamicDFS(graph)
        # Deleting the middle edge and re-inserting it is a worst-ish case for a
        # path: half the tree is rerooted every time.
        for _ in range(3):
            ss.delete_edge(n // 2 - 1, n // 2)
            ss.insert_edge(n // 2 - 1, n // 2)
        worst[n] = ss.metrics["max_passes_per_update"]
    for n, passes in worst.items():
        assert passes <= 4 * (math.log2(n) ** 2) + 10, worst
    # Pass counts must not scale linearly with n.
    assert worst[1024] <= worst[64] * 6 + 10


def test_local_space_stays_linear():
    graph = gnp_random_graph(60, 0.08, seed=7, connected=True)
    ss = SemiStreamingDynamicDFS(graph, validate=True)
    updates = make_updates(graph, 10, seed=4)
    ss.apply_all(updates)
    n = ss.tree.num_vertices
    assert ss.local_space() == n
    # Per-pass working state (source owners + target positions) is O(n), never O(m).
    assert ss.metrics["max_stream_state_entries"] <= 6 * n
