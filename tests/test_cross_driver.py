"""Cross-driver equivalence: every environment, every rebuild policy, one tree.

Because query answers are canonical (a pure function of the updated graph and
the current tree — see :class:`repro.core.queries.DQueryService`), the fully
dynamic, semi-streaming, distributed and fault-tolerant drivers all maintain
*byte-identical* DFS trees, under both extremes of the ``rebuild_every``
policy.  ``StaticRecomputeDFS`` supplies the ground-truth graph state the
final tree is validated against (its own tree is a DFS forest of the same
graph, but a static recomputation is free to pick different tree edges).

The amortized policy claims of the UpdateEngine refactor are asserted here
too: on a 100-update ``sustained_churn`` workload the streaming and
distributed adapters perform at least 3x fewer service rebuilds — and
measurably fewer stream passes / CONGEST rounds per update — than their
classic per-update-rebuild configurations, with identical parent maps.

On top of the fixed workloads, a *randomized differential harness*
(hypothesis) generates (graph, mixed update sequence) cases from
shrinking-friendly integer encodings and asserts byte-identical parent maps
across all four drivers x {classic, rebuild_every=k, absorb(+auto-rebase),
local-repair} *after every single update* — exercising the policy-triggered
rebase and broadcast-tree repair paths against the per-update-rebuild oracle.
Every driver runs on a ``strict`` metrics recorder, so a counter missing from
``WELL_KNOWN_COUNTERS`` fails the harness (registry drift is impossible).
"""

import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.backends import HAVE_NUMPY
from repro.baselines.static_recompute import StaticRecomputeDFS
from repro.constants import is_virtual_root
from repro.core.dynamic_dfs import FullyDynamicDFS
from repro.core.fault_tolerant import FaultTolerantDFS
from repro.distributed.distributed_dfs import DistributedDynamicDFS
from repro.graph.generators import gnm_random_graph
from repro.graph.validation import check_dfs_tree
from repro.metrics.counters import MetricsRecorder
from repro.streaming.semi_streaming_dfs import SemiStreamingDynamicDFS
from repro.workloads.scenarios import build_scenario
from repro.workloads.updates import mixed_updates
from tests.helpers import decode_ops as _decode_ops

AMORTIZED_K = 10

#: Storage backends every combo must agree across ("array" needs numpy).
BACKENDS = ["dict"] + (["array"] if HAVE_NUMPY else [])


def _drive(name, factory, updates):
    # Strict recorders: any counter a driver increments without registering it
    # in WELL_KNOWN_COUNTERS fails the suite here.
    metrics = MetricsRecorder(name, strict=True)
    driver = factory(metrics)
    driver.apply_all(updates)
    return driver, metrics


def _all_driver_maps(graph, updates, backend="dict"):
    """Run *updates* through every driver/policy combination on *backend*;
    returns ``{label: (parent_map, metrics)}``."""
    out = {}
    combos = [
        ("core_rebuild_every_1", lambda m: FullyDynamicDFS(graph, rebuild_every=1, metrics=m, backend=backend)),
        ("core_amortized", lambda m: FullyDynamicDFS(graph, rebuild_every=AMORTIZED_K, metrics=m, backend=backend)),
        ("core_absorb", lambda m: FullyDynamicDFS(graph, rebuild_every=AMORTIZED_K, d_maintenance="absorb", metrics=m, backend=backend)),
        ("core_brute", lambda m: FullyDynamicDFS(graph, service="brute", metrics=m, backend=backend)),
        ("stream_classic", lambda m: SemiStreamingDynamicDFS(graph, rebuild_every=1, metrics=m, backend=backend)),
        ("stream_amortized", lambda m: SemiStreamingDynamicDFS(graph, rebuild_every=AMORTIZED_K, metrics=m, backend=backend)),
        ("dist_classic", lambda m: DistributedDynamicDFS(graph, rebuild_every=1, metrics=m, backend=backend)),
        ("dist_amortized", lambda m: DistributedDynamicDFS(graph, rebuild_every=AMORTIZED_K, metrics=m, backend=backend)),
    ]
    for label, factory in combos:
        driver, metrics = _drive(label, factory, updates)
        assert driver.is_valid(), label
        out[label] = (driver.parent_map(), metrics)
    # The fault-tolerant driver replays the whole batch from its preprocessed
    # state — the rebuild_every=infinity extreme of the same pipeline.
    ft = FaultTolerantDFS(graph, backend=backend)
    tree, ft_graph = ft.query_with_graph(updates)
    assert check_dfs_tree(ft_graph, tree.parent_map()) == []
    out["fault_tolerant"] = (tree.parent_map(), ft.metrics)
    return out


def _assert_identical_and_valid(graph, updates, results):
    reference_label, (reference, _) = next(iter(results.items()))
    for label, (parent, _) in results.items():
        assert parent == reference, f"{label} diverged from {reference_label}"
    # Ground truth: the per-update static recomputation baseline tracks the
    # same graph; the shared tree must be a valid DFS forest of it.
    static = StaticRecomputeDFS(graph)
    static.apply_all(updates)
    assert static.is_valid()
    assert set(static.graph.vertices()) == {v for v in reference if not is_virtual_root(v)}
    assert check_dfs_tree(static.graph, reference) == []


def _both_backend_maps(graph, updates):
    """Every combo on every backend, with cross-backend identity per label."""
    results = _all_driver_maps(graph, updates, backend="dict")
    for backend in BACKENDS[1:]:
        other = _all_driver_maps(graph, updates, backend=backend)
        for label, (parent, _) in other.items():
            assert parent == results[label][0], f"{label}: {backend} backend diverged from dict"
    return results


@pytest.mark.parametrize("seed", [0, 1])
def test_all_drivers_identical_on_sustained_churn(seed):
    scenario = build_scenario("sustained_churn", n=64, seed=seed, updates=100)
    updates = scenario.updates[:100]
    results = _both_backend_maps(scenario.graph, updates)
    _assert_identical_and_valid(scenario.graph, updates, results)

    # Amortization claims: >=3x fewer service rebuilds, fewer passes/rounds.
    _, stream_classic = results["stream_classic"]
    _, stream_amortized = results["stream_amortized"]
    assert stream_classic["service_rebuilds"] >= 3 * stream_amortized["service_rebuilds"]
    assert stream_amortized["stream_passes"] * 3 <= stream_classic["stream_passes"]

    _, dist_classic = results["dist_classic"]
    _, dist_amortized = results["dist_amortized"]
    assert dist_classic["service_rebuilds"] >= 3 * dist_amortized["service_rebuilds"]
    assert dist_amortized["congest_rounds"] < dist_classic["congest_rounds"]
    assert dist_amortized["congest_messages"] < dist_classic["congest_messages"]


@pytest.mark.parametrize("seed", [3, 4])
def test_all_drivers_identical_on_mixed_updates(seed):
    scenario = build_scenario("social_network_churn", n=48, seed=seed, updates=0)
    updates = mixed_updates(scenario.graph, 40, seed=seed + 20)
    results = _both_backend_maps(scenario.graph, updates)
    _assert_identical_and_valid(scenario.graph, updates, results)


# --------------------------------------------------------------------------- #
# Randomized differential harness
# --------------------------------------------------------------------------- #
# Small thresholds/periods so short random sequences still cross the
# policy-trigger paths (absorb rebases, broadcast-tree repairs).
DIFFERENTIAL_K = 3
DIFFERENTIAL_REBASE_THRESHOLD = 2

#: label -> driver factory.  One entry per driver x policy combination the
#: harness must keep byte-identical; `metrics` is a strict recorder and `b`
#: the storage backend the combo runs on (the harness crosses every combo
#: with every entry of ``BACKENDS``).
DIFFERENTIAL_COMBOS = [
    ("core_classic", lambda g, m, b: FullyDynamicDFS(g, rebuild_every=1, metrics=m, backend=b)),
    ("core_amortized", lambda g, m, b: FullyDynamicDFS(g, rebuild_every=DIFFERENTIAL_K, metrics=m, backend=b)),
    (
        "core_absorb_auto_rebase",
        lambda g, m, b: FullyDynamicDFS(
            g,
            rebuild_every=DIFFERENTIAL_K,
            d_maintenance="absorb",
            rebase_segment_threshold=DIFFERENTIAL_REBASE_THRESHOLD,
            metrics=m,
            backend=b,
        ),
    ),
    ("core_brute", lambda g, m, b: FullyDynamicDFS(g, service="brute", metrics=m, backend=b)),
    ("stream_classic", lambda g, m, b: SemiStreamingDynamicDFS(g, rebuild_every=1, metrics=m, backend=b)),
    ("stream_amortized", lambda g, m, b: SemiStreamingDynamicDFS(g, rebuild_every=DIFFERENTIAL_K, metrics=m, backend=b)),
    ("dist_classic", lambda g, m, b: DistributedDynamicDFS(g, rebuild_every=1, metrics=m, backend=b)),
    (
        "dist_amortized_repair",
        lambda g, m, b: DistributedDynamicDFS(g, rebuild_every=DIFFERENTIAL_K, local_repair=True, metrics=m, backend=b),
    ),
    # Cost-model-controller-driven configurations: the auto-tuned policy where
    # every rebuild is demanded by a MaintenanceController model — the
    # depth-drift voluntary rebuild (default), the pure-repair extreme that
    # disables it, and the absorb auto-rebase under controller cadence.
    (
        "dist_auto_voluntary",
        lambda g, m, b: DistributedDynamicDFS(g, rebuild_every=None, local_repair=True, metrics=m, backend=b),
    ),
    (
        "dist_auto_pure_repair",
        lambda g, m, b: DistributedDynamicDFS(
            g, rebuild_every=None, local_repair=True, drift_rebuild_cost=float("inf"), metrics=m, backend=b
        ),
    ),
    (
        "core_absorb_auto_cadence",
        lambda g, m, b: FullyDynamicDFS(
            g,
            rebuild_every=None,
            d_maintenance="absorb",
            rebase_segment_threshold=DIFFERENTIAL_REBASE_THRESHOLD,
            metrics=m,
            backend=b,
        ),
    ),
    # Per-component accounting configurations (PR 5): charging waves inside
    # the component that executes them — or the legacy free-dissemination
    # accounting, or the initiator-rooted voluntary rebuild — changes the
    # round ledger and the broadcast roots, never the maintained tree.
    (
        "dist_auto_legacy_accounting",
        lambda g, m, b: DistributedDynamicDFS(
            g, rebuild_every=None, local_repair=True, component_accounting=False, metrics=m, backend=b
        ),
    ),
    (
        "dist_auto_initiator_root",
        lambda g, m, b: DistributedDynamicDFS(
            g, rebuild_every=None, local_repair=True, voluntary_root="initiator", metrics=m, backend=b
        ),
    ),
]


@st.composite
def differential_cases(draw):
    n = draw(st.integers(min_value=3, max_value=12))
    max_m = n * (n - 1) // 2
    m = draw(st.integers(min_value=0, max_value=min(3 * n, max_m)))
    seed = draw(st.integers(min_value=0, max_value=999))
    ops = draw(
        st.lists(
            st.tuples(st.integers(0, 3), st.integers(0, 15), st.integers(0, 63)),
            min_size=1,
            max_size=6,
        )
    )
    return gnm_random_graph(n, m, seed=seed), ops


@settings(max_examples=20)
@given(differential_cases())
def test_differential_harness_identical_at_every_step(case):
    """All drivers x policies agree after *every* update, not just at the end."""
    graph, ops = case
    updates = _decode_ops(graph, ops)
    assume(updates)
    # Every combo on every storage backend, all compared against one another
    # after every single update — the dict/array byte-identity pin.
    drivers = [
        (f"{label}[{backend}]", factory(graph, MetricsRecorder(label, strict=True), backend))
        for backend in BACKENDS
        for label, factory in DIFFERENTIAL_COMBOS
    ]
    for step, update in enumerate(updates):
        reference = None
        for label, driver in drivers:
            driver.apply(update)
            parent = driver.parent_map()
            if reference is None:
                reference_label, reference = label, parent
            else:
                assert parent == reference, (
                    f"step {step} ({update.describe()}): {label} diverged from {reference_label}"
                )
    # End-of-sequence: the shared tree is a valid DFS forest of the ground
    # truth graph, and the fault-tolerant driver (replaying the whole batch
    # from preprocessed state) lands on the same tree.
    _, reference_driver = drivers[0]
    assert reference_driver.is_valid()
    ft = FaultTolerantDFS(graph, metrics=MetricsRecorder("ft", strict=True))
    tree, ft_graph = ft.query_with_graph(updates)
    assert check_dfs_tree(ft_graph, tree.parent_map()) == []
    assert tree.parent_map() == reference_driver.parent_map()
