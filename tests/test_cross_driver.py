"""Cross-driver equivalence: every environment, every rebuild policy, one tree.

Because query answers are canonical (a pure function of the updated graph and
the current tree — see :class:`repro.core.queries.DQueryService`), the fully
dynamic, semi-streaming, distributed and fault-tolerant drivers all maintain
*byte-identical* DFS trees, under both extremes of the ``rebuild_every``
policy.  ``StaticRecomputeDFS`` supplies the ground-truth graph state the
final tree is validated against (its own tree is a DFS forest of the same
graph, but a static recomputation is free to pick different tree edges).

The amortized policy claims of the UpdateEngine refactor are asserted here
too: on a 100-update ``sustained_churn`` workload the streaming and
distributed adapters perform at least 3x fewer service rebuilds — and
measurably fewer stream passes / CONGEST rounds per update — than their
classic per-update-rebuild configurations, with identical parent maps.
"""

import pytest

from repro.baselines.static_recompute import StaticRecomputeDFS
from repro.constants import is_virtual_root
from repro.core.dynamic_dfs import FullyDynamicDFS
from repro.core.fault_tolerant import FaultTolerantDFS
from repro.distributed.distributed_dfs import DistributedDynamicDFS
from repro.graph.validation import check_dfs_tree
from repro.metrics.counters import MetricsRecorder
from repro.streaming.semi_streaming_dfs import SemiStreamingDynamicDFS
from repro.workloads.scenarios import build_scenario
from repro.workloads.updates import mixed_updates

AMORTIZED_K = 10


def _drive(name, factory, updates):
    metrics = MetricsRecorder(name)
    driver = factory(metrics)
    driver.apply_all(updates)
    return driver, metrics


def _all_driver_maps(graph, updates):
    """Run *updates* through every driver/policy combination; returns
    ``{label: (parent_map, metrics)}``."""
    out = {}
    combos = [
        ("core_rebuild_every_1", lambda m: FullyDynamicDFS(graph, rebuild_every=1, metrics=m)),
        ("core_amortized", lambda m: FullyDynamicDFS(graph, rebuild_every=AMORTIZED_K, metrics=m)),
        ("core_absorb", lambda m: FullyDynamicDFS(graph, rebuild_every=AMORTIZED_K, d_maintenance="absorb", metrics=m)),
        ("core_brute", lambda m: FullyDynamicDFS(graph, service="brute", metrics=m)),
        ("stream_classic", lambda m: SemiStreamingDynamicDFS(graph, rebuild_every=1, metrics=m)),
        ("stream_amortized", lambda m: SemiStreamingDynamicDFS(graph, rebuild_every=AMORTIZED_K, metrics=m)),
        ("dist_classic", lambda m: DistributedDynamicDFS(graph, rebuild_every=1, metrics=m)),
        ("dist_amortized", lambda m: DistributedDynamicDFS(graph, rebuild_every=AMORTIZED_K, metrics=m)),
    ]
    for label, factory in combos:
        driver, metrics = _drive(label, factory, updates)
        assert driver.is_valid(), label
        out[label] = (driver.parent_map(), metrics)
    # The fault-tolerant driver replays the whole batch from its preprocessed
    # state — the rebuild_every=infinity extreme of the same pipeline.
    ft = FaultTolerantDFS(graph)
    tree, ft_graph = ft.query_with_graph(updates)
    assert check_dfs_tree(ft_graph, tree.parent_map()) == []
    out["fault_tolerant"] = (tree.parent_map(), ft.metrics)
    return out


def _assert_identical_and_valid(graph, updates, results):
    reference_label, (reference, _) = next(iter(results.items()))
    for label, (parent, _) in results.items():
        assert parent == reference, f"{label} diverged from {reference_label}"
    # Ground truth: the per-update static recomputation baseline tracks the
    # same graph; the shared tree must be a valid DFS forest of it.
    static = StaticRecomputeDFS(graph)
    static.apply_all(updates)
    assert static.is_valid()
    assert set(static.graph.vertices()) == {v for v in reference if not is_virtual_root(v)}
    assert check_dfs_tree(static.graph, reference) == []


@pytest.mark.parametrize("seed", [0, 1])
def test_all_drivers_identical_on_sustained_churn(seed):
    scenario = build_scenario("sustained_churn", n=64, seed=seed, updates=100)
    updates = scenario.updates[:100]
    results = _all_driver_maps(scenario.graph, updates)
    _assert_identical_and_valid(scenario.graph, updates, results)

    # Amortization claims: >=3x fewer service rebuilds, fewer passes/rounds.
    _, stream_classic = results["stream_classic"]
    _, stream_amortized = results["stream_amortized"]
    assert stream_classic["service_rebuilds"] >= 3 * stream_amortized["service_rebuilds"]
    assert stream_amortized["stream_passes"] * 3 <= stream_classic["stream_passes"]

    _, dist_classic = results["dist_classic"]
    _, dist_amortized = results["dist_amortized"]
    assert dist_classic["service_rebuilds"] >= 3 * dist_amortized["service_rebuilds"]
    assert dist_amortized["congest_rounds"] < dist_classic["congest_rounds"]
    assert dist_amortized["congest_messages"] < dist_classic["congest_messages"]


@pytest.mark.parametrize("seed", [3, 4])
def test_all_drivers_identical_on_mixed_updates(seed):
    scenario = build_scenario("social_network_churn", n=48, seed=seed, updates=0)
    updates = mixed_updates(scenario.graph, 40, seed=seed + 20)
    results = _all_driver_maps(scenario.graph, updates)
    _assert_identical_and_valid(scenario.graph, updates, results)
