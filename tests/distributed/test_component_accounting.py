"""Per-component CONGEST round accounting + the 2-sweep center approximation.

Three layers of guarantees:

* **Network ledger mechanics** — :meth:`CongestNetwork.build_bfs_forest`
  floods every component concurrently (global rounds = deepest component's
  schedule) while the per-component ledger charges each broadcast tree its
  own rounds; the pipelined waves attribute their schedules the same way.

* **Conservativeness** (property) — per-component charging never undercharges
  the legacy free-dissemination accounting: on any generated workload the
  ``component_accounting=True`` driver spends at least the rounds of its
  legacy twin (with byte-identical DFS trees throughout), and exactly the
  same rounds when the graph never fragments — connected components were
  never undercharged before, so on connected graphs nothing may change.

* **2-sweep center quality** (property) — the root picked by
  :func:`two_sweep_center` has eccentricity at most twice the component's
  true radius on generated graphs, and the returned eccentricity is exact.
"""

from __future__ import annotations

from hypothesis import assume, given, settings
from hypothesis import strategies as st

from tests.test_adaptive_policies import _connectivity_preserving_churn, churn_cases
from repro.core.updates import EdgeDeletion, EdgeInsertion
from repro.distributed.distributed_dfs import DistributedDynamicDFS
from repro.distributed.forest import forest_roots, two_sweep_center
from repro.distributed.network import CongestNetwork
from repro.graph.generators import gnm_random_graph, path_graph
from repro.graph.graph import UndirectedGraph
from repro.graph.traversal import bfs_tree, connected_components
from repro.metrics.counters import MetricsRecorder
from repro.workloads.scenarios import build_scenario

SETTINGS = settings(max_examples=20, deadline=None)


def _two_component_graph():
    """A path 0-1-2-3 and a triangle 10-11-12 (disjoint)."""
    g = UndirectedGraph(vertices=[0, 1, 2, 3, 10, 11, 12])
    for u, v in [(0, 1), (1, 2), (2, 3), (10, 11), (11, 12), (10, 12)]:
        g.add_edge(u, v)
    return g


# --------------------------------------------------------------------------- #
# Network ledger mechanics
# --------------------------------------------------------------------------- #
def test_build_bfs_forest_charges_each_component_its_own_flood():
    g = _two_component_graph()
    net = CongestNetwork(g, bandwidth_words=4)
    parent, depth = net.build_bfs_forest([0, 10])
    assert set(parent) == set(g.vertices())
    # Global rounds: the floods run concurrently, so the path component's
    # eccentricity (3 -> 4 frontier rounds) dominates the triangle's (2).
    assert net.rounds == 4
    # Ledger: each component charged its own levels.
    assert net.component_rounds == {0: 4, 10: 2}
    # One message per explored edge direction, in *every* component.
    assert net.messages == 2 * g.num_edges
    # roots map every vertex to its flood root
    roots = forest_roots(parent)
    assert roots == {0: 0, 1: 0, 2: 0, 3: 0, 10: 10, 11: 10, 12: 10}


def test_pipelined_waves_attribute_rounds_per_component():
    g = _two_component_graph()
    net = CongestNetwork(g, bandwidth_words=1)
    parent, depth = net.build_bfs_forest([0, 10])
    flood_ledger = dict(net.component_rounds)
    before = net.rounds
    net.pipelined_broadcast(parent, depth, payload_words=3)  # 3 chunks
    # Global: deepest tree (depth 3) + chunks - 1.
    assert net.rounds - before == 3 + 3 - 1
    # Ledger: the shallow triangle (depth 1) finishes its own schedule early.
    wave = {r: net.component_rounds[r] - flood_ledger.get(r, 0) for r in net.component_rounds}
    assert wave == {0: 3 + 3 - 1, 10: 1 + 3 - 1}
    before = net.rounds
    net.pipelined_convergecast(parent, depth, payload_words=3)
    assert net.rounds - before == 3 + 3 - 1
    wave = {r: net.component_rounds[r] - flood_ledger.get(r, 0) for r in net.component_rounds}
    assert wave == {0: 2 * (3 + 3 - 1), 10: 2 * (1 + 3 - 1)}
    # The strict recorder metered exactly what the ledger accumulated.
    assert net.metrics["component_rounds_charged"] == sum(net.component_rounds.values())
    assert net.metrics["max_broadcast_components"] == 2


def test_singleton_components_are_never_charged():
    g = UndirectedGraph(vertices=[0, 1, 2, 99])  # 99 is isolated
    g.add_edge(0, 1)
    g.add_edge(1, 2)
    net = CongestNetwork(g, bandwidth_words=2)
    parent, depth = net.build_bfs_forest([0, 99])
    net.component_rounds.clear()
    net.pipelined_broadcast(parent, depth, payload_words=2)
    # The isolated root has no edges: no wave work is attributed to it.
    assert 99 not in net.component_rounds
    assert 0 in net.component_rounds


# --------------------------------------------------------------------------- #
# Conservativeness of per-component charging
# --------------------------------------------------------------------------- #
def _run_pair(graph, updates, **kwargs):
    """Drive a per-component and a legacy-accounting driver in lockstep,
    asserting byte-identical trees; returns their (rounds, rounds) totals."""
    strict = MetricsRecorder("component", strict=True)
    component = DistributedDynamicDFS(
        graph, rebuild_every=None, component_accounting=True, metrics=strict, **kwargs
    )
    legacy = DistributedDynamicDFS(
        graph, rebuild_every=None, component_accounting=False, **kwargs
    )
    for step, update in enumerate(updates):
        component.apply(update)
        legacy.apply(update)
        assert component.parent_map() == legacy.parent_map(), f"diverged at {step}"
    return component.rounds(), legacy.rounds()


@SETTINGS
@given(churn_cases(max_n=16, max_updates=10))
def test_per_component_charging_is_conservative(case):
    """``component_accounting=True`` never charges fewer total rounds than the
    legacy accounting on the same update sequence — fragments stop riding
    other components' waves for free, they never get a discount."""
    graph, updates = case
    # local_repair=False isolates the ledger comparison: both drivers rebuild
    # at exactly the same updates, so the only difference is what a rebuild
    # floods (and what a wave charges) — the accounting itself.
    component_rounds, legacy_rounds = _run_pair(graph, updates, local_repair=False)
    assert component_rounds >= legacy_rounds, (component_rounds, legacy_rounds)


@SETTINGS
@given(churn_cases(max_n=16, max_updates=10))
def test_connected_components_were_never_undercharged(case):
    """On workloads that keep the graph connected the two accountings agree
    exactly: the legacy mode never undercharged a *connected* component, so
    per-component charging must not change it."""
    graph, raw_updates = case
    updates = _connectivity_preserving_churn(graph, len(raw_updates), seed=17)
    assume(updates)
    assume(len(connected_components(graph)) == 1)
    component_rounds, legacy_rounds = _run_pair(graph, updates, local_repair=False)
    assert component_rounds == legacy_rounds


def test_fragmented_rebuild_charges_strictly_more_than_legacy():
    """Deterministic strict case: cutting the bridge between two triangles
    forces a rebuild while the graph is split — the per-component accounting
    must flood (and charge) the far triangle, the legacy accounting leaves it
    as free singleton roots."""
    g = UndirectedGraph(vertices=range(6))
    for u, v in [(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5), (2, 3)]:
        g.add_edge(u, v)
    component_rounds, legacy_rounds = _run_pair(
        g,
        [  # cut the bridge, then churn an edge inside each fragment
            EdgeDeletion(2, 3),
            EdgeDeletion(0, 1),
            EdgeInsertion(0, 1),
            EdgeDeletion(3, 4),
            EdgeInsertion(3, 4),
        ],
    )
    assert component_rounds > legacy_rounds, (component_rounds, legacy_rounds)


def test_fragmenting_churn_scenario_really_fragments():
    """The E10 scenario replays cleanly on the distributed driver and its
    broadcast forest really splits into multiple per-component trees."""
    scenario = build_scenario("fragmenting_churn", n=48, seed=3, updates=20)
    metrics = MetricsRecorder("frag", strict=True)
    driver = DistributedDynamicDFS(scenario.graph, rebuild_every=None, metrics=metrics)
    driver.apply_all(scenario.updates)
    assert driver.is_valid()
    assert metrics["max_broadcast_components"] >= 2
    assert sum(driver.component_rounds().values()) == metrics["component_rounds_charged"]


# --------------------------------------------------------------------------- #
# 2-sweep center quality
# --------------------------------------------------------------------------- #
@st.composite
def small_graphs(draw, max_n=14):
    n = draw(st.integers(min_value=2, max_value=max_n))
    max_m = n * (n - 1) // 2
    m = draw(st.integers(min_value=n - 1, max_value=max_m))
    seed = draw(st.integers(min_value=0, max_value=999))
    graph = gnm_random_graph(n, m, seed=seed)
    seed_vertex = draw(st.sampled_from(sorted(graph.vertices())))
    return graph, seed_vertex


@SETTINGS
@given(small_graphs())
def test_two_sweep_center_within_factor_two_of_radius(case):
    """The 2-sweep root's eccentricity is exact, at most the component's
    diameter, and therefore at most twice its true radius."""
    graph, seed_vertex = case
    center, ecc = two_sweep_center(graph, seed_vertex)
    _, seed_depth = bfs_tree(graph, seed_vertex)
    component = set(seed_depth)
    assert center in component
    # Reported eccentricity is exact.
    _, center_depth = bfs_tree(graph, center)
    assert ecc == max(center_depth.values(), default=0)
    # Brute-force radius/diameter of the component.
    eccentricities = []
    for v in component:
        _, depth = bfs_tree(graph, v)
        eccentricities.append(max(depth.values(), default=0))
    radius = min(eccentricities)
    diameter = max(eccentricities)
    assert ecc <= diameter <= 2 * radius
    assert ecc <= 2 * radius


def test_two_sweep_center_is_exact_on_paths():
    graph = path_graph(31)
    center, ecc = two_sweep_center(graph, 0)
    assert center == 15
    assert ecc == 15  # the true radius of a 31-path
