"""Tests for the CONGEST simulator and the distributed dynamic DFS (Theorem 16)."""

import math

import pytest

from tests.helpers import make_updates
from repro.distributed.forest import articulation_points_and_bridges, components_after_vertex_removal
from repro.distributed.network import CongestNetwork, recommended_bandwidth
from repro.distributed.distributed_dfs import DistributedDynamicDFS
from repro.exceptions import DistributedError
from repro.graph.generators import cycle_with_chords, gnp_random_graph, grid_graph, path_graph, star_graph
from repro.graph.graph import UndirectedGraph
from repro.graph.traversal import bfs_tree


def test_bandwidth_is_enforced():
    g = path_graph(4)
    net = CongestNetwork(g, bandwidth_words=2)
    parent, depth = net.build_bfs_tree(0)
    # Chunking keeps each message within the per-edge budget.
    net.pipelined_broadcast(parent, depth, payload_words=5)
    assert net.max_message_words <= 2
    # Oversized raw transmissions and nonsensical budgets are rejected.
    with pytest.raises(DistributedError):
        net._charge_round([3])
    with pytest.raises(DistributedError):
        CongestNetwork(g, bandwidth_words=0)


def test_bfs_rounds_match_eccentricity_and_messages_match_edges():
    g = grid_graph(5, 5)
    net = CongestNetwork(g, bandwidth_words=5)
    parent, depth = net.build_bfs_tree(0)
    _, ref_depth = bfs_tree(g, 0)
    assert depth == ref_depth
    assert net.rounds == max(ref_depth.values()) + 1
    # every explored edge direction carries one message over the whole BFS
    assert net.messages == 2 * g.num_edges


def test_pipelined_broadcast_round_formula():
    g = path_graph(10)  # BFS depth 9
    net = CongestNetwork(g, bandwidth_words=3)
    parent, depth = net.build_bfs_tree(0)
    before = net.rounds
    net.pipelined_broadcast(parent, depth, payload_words=12)  # 4 chunks
    assert net.rounds - before == 9 + 4 - 1
    assert net.max_message_words <= 3
    before = net.rounds
    net.pipelined_convergecast(parent, depth, payload_words=12)
    assert net.rounds - before == 9 + 4 - 1


def test_recommended_bandwidth():
    g = path_graph(16)
    diameter, bandwidth = recommended_bandwidth(g, 0)
    assert diameter == 15
    assert bandwidth == math.ceil(16 / 15)
    star = star_graph(20)
    d2, b2 = recommended_bandwidth(star, 0)
    assert d2 == 1 and b2 == 20


def test_distributed_dfs_maintains_valid_tree_and_respects_budget():
    for graph in (grid_graph(5, 5), cycle_with_chords(24, 4, seed=1), gnp_random_graph(30, 0.12, seed=2, connected=True)):
        updates = make_updates(graph, 8, seed=3)
        dist = DistributedDynamicDFS(graph, validate=True)
        dist.apply_all(updates)
        assert dist.is_valid()
        assert dist.network.max_message_words <= dist.bandwidth
        assert dist.rounds() > 0 and dist.messages() > 0
        assert dist.metrics["max_rounds_per_update"] >= 1


def test_rounds_scale_with_diameter_not_with_n():
    # Same n, very different diameters: the star needs far fewer rounds per
    # update than the path.
    n = 120
    deep = DistributedDynamicDFS(path_graph(n), validate=False)
    deep.delete_edge(n // 2 - 1, n // 2)
    deep.insert_edge(n // 2 - 1, n // 2)
    shallow = DistributedDynamicDFS(star_graph(n), validate=False)
    shallow.delete_edge(0, 1)
    shallow.insert_vertex("z", [0, 5, 7])
    assert deep.metrics["max_rounds_per_update"] > shallow.metrics["max_rounds_per_update"]


def test_articulation_points_and_bridges_against_networkx():
    networkx = pytest.importorskip("networkx")
    for seed in range(4):
        g = gnp_random_graph(30, 0.08, seed=seed)
        nxg = networkx.Graph()
        nxg.add_nodes_from(g.vertices())
        nxg.add_edges_from(g.edges())
        points, bridges = articulation_points_and_bridges(g)
        assert points == set(networkx.articulation_points(nxg))
        assert bridges == {frozenset(e) for e in networkx.bridges(nxg)}


def test_components_after_vertex_removal():
    g = UndirectedGraph(edges=[(0, 1), (0, 2), (1, 2), (0, 3), (3, 4)])
    groups = components_after_vertex_removal(g, 0)
    normalized = sorted(sorted(grp) for grp in groups)
    assert normalized == [[1, 2], [3]]
