"""Hypothesis properties of the MVCC service (the ISSUE's satellite contract).

* **Per-version byte identity**: the snapshot published at version ``k`` has
  exactly the parent map a dict-reference driver holds after ``k`` updates.
* **Immutability**: republishing churn never changes a held snapshot — maps
  re-read after the run equal the maps read when the version was current.
* **Batched == scalar**: every ``*_batch`` answer equals its scalar
  counterpart, on the vectorized and the numpy-free fallback path alike.
"""

from __future__ import annotations

import random

from hypothesis import given, settings
from hypothesis import strategies as st

import repro.backends as backends
from repro.core.dynamic_dfs import FullyDynamicDFS
from repro.graph.generators import gnp_random_graph
from repro.metrics.counters import MetricsRecorder
from repro.service import DFSTreeService
from tests.helpers import make_updates


@st.composite
def service_cases(draw):
    n = draw(st.integers(min_value=4, max_value=24))
    seed = draw(st.integers(min_value=0, max_value=999))
    count = draw(st.integers(min_value=1, max_value=12))
    rebuild_every = draw(st.sampled_from([1, 3, None]))
    graph = gnp_random_graph(n, min(8.0 / n, 0.6), seed=seed)
    updates = make_updates(graph, count, seed=seed + 1)
    return graph, updates, rebuild_every


@settings(max_examples=25, deadline=None)
@given(service_cases())
def test_versions_byte_identical_to_reference_and_frozen(case):
    graph, updates, rebuild_every = case
    metrics = MetricsRecorder("svc", strict=True)
    driver = FullyDynamicDFS(graph.copy(), rebuild_every=rebuild_every, metrics=metrics)
    svc = DFSTreeService(driver, metrics=metrics)
    reference = FullyDynamicDFS(graph.copy(), rebuild_every=1)
    held = [(svc.snapshot(), svc.snapshot().parent_map())]
    assert held[0][1] == reference.tree.parent_map()  # version 0
    for version, update in enumerate(updates, start=1):
        driver.apply(update)
        reference.apply(update)
        snap = svc.snapshot()
        assert snap.version == version
        current = snap.parent_map()
        assert current == reference.tree.parent_map(), version
        held.append((snap, current))
    # Frozen: every held version still answers with the map it was born with.
    for version, (snap, frozen_map) in enumerate(held):
        assert snap.version == version
        assert snap.parent_map() == frozen_map


@settings(max_examples=15, deadline=None)
@given(service_cases(), st.booleans())
def test_batched_equals_scalar_on_both_query_paths(case, use_numpy):
    graph, updates, rebuild_every = case
    driver = FullyDynamicDFS(graph.copy(), rebuild_every=rebuild_every)
    svc = DFSTreeService(driver)
    for update in updates:
        driver.apply(update)
    snap = svc.snapshot()
    verts = [v for v in driver.graph.vertices()]
    rng = random.Random(snap.version)
    avs = [rng.choice(verts) for _ in range(30)]
    bvs = [rng.choice(verts) for _ in range(30)]
    had_numpy = backends.HAVE_NUMPY
    backends.HAVE_NUMPY = had_numpy and use_numpy
    try:
        assert snap.lca_batch(avs, bvs) == [snap.lca(a, b) for a, b in zip(avs, bvs)]
        assert snap.connected_batch(avs, bvs) == [
            snap.connected(a, b) for a, b in zip(avs, bvs)
        ]
        assert snap.is_ancestor_batch(avs, bvs) == [
            snap.is_ancestor(a, b) for a, b in zip(avs, bvs)
        ]
        assert snap.path_length_batch(avs, bvs) == [
            snap.path_length(a, b) for a, b in zip(avs, bvs)
        ]
        assert snap.subtree_size_batch(avs) == [snap.subtree_size(v) for v in avs]
        assert snap.component_batch(avs) == [snap.component(v) for v in avs]
    finally:
        backends.HAVE_NUMPY = had_numpy
