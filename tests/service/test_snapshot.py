"""TreeSnapshot unit tests: scalar semantics, batch==scalar, both query paths.

The snapshot is the MVCC read currency, so these tests pin the semantics the
service and the asyncio front build on: virtual-root sentinels never leak
(``None``/``False`` instead), every ``*_batch`` method equals its scalar
counterpart element for element, and the numpy-free fallback path answers
byte-identically to the vectorized path.
"""

from __future__ import annotations

import random

import pytest

import repro.backends as backends
from repro.constants import VIRTUAL_ROOT, is_virtual_root
from repro.exceptions import VertexNotFound
from repro.graph.generators import gnp_random_graph
from repro.graph.traversal import static_dfs_forest
from repro.service import TreeSnapshot
from repro.tree.dfs_tree import DFSTree


def _snapshot(n=40, p=0.08, seed=5, version=7):
    g = gnp_random_graph(n, p, seed=seed)  # sparse: usually disconnected
    tree = DFSTree(static_dfs_forest(g), root=VIRTUAL_ROOT)
    return g, tree, TreeSnapshot(version, tree)


@pytest.fixture(params=["numpy", "fallback"])
def query_path(request, monkeypatch):
    """Run the test body once per snapshot query path."""
    if request.param == "fallback":
        monkeypatch.setattr(backends, "HAVE_NUMPY", False)
    return request.param


def test_scalar_queries_match_tree_semantics(query_path):
    g, tree, snap = _snapshot()
    assert snap.version == 7
    verts = [v for v in tree.vertices() if not is_virtual_root(v)]
    for v in verts:
        p = snap.parent(v)
        tp = tree.parent(v)
        assert p == (None if tp is None or is_virtual_root(tp) else tp)
        assert snap.depth(v) == tree.level(v)
        assert snap.subtree_size(v) == tree.subtree_size(v)
        comp = snap.component(v)
        assert comp == tree.level_ancestor(v, 1)
    rng = random.Random(3)
    for _ in range(150):
        a, b = rng.choice(verts), rng.choice(verts)
        raw = tree.lca(a, b)
        expect = None if is_virtual_root(raw) else raw
        assert snap.lca(a, b) == expect
        assert snap.connected(a, b) == (expect is not None)
        if expect is None:
            assert snap.path_length(a, b) is None
        else:
            assert snap.path_length(a, b) == (
                tree.level(a) + tree.level(b) - 2 * tree.level(expect)
            )
        assert snap.is_ancestor(a, b) == tree.is_ancestor(a, b)


def test_batch_equals_scalar_all_kinds(query_path):
    _, tree, snap = _snapshot(seed=11)
    verts = [v for v in tree.vertices() if not is_virtual_root(v)]
    rng = random.Random(17)
    avs = [rng.choice(verts) for _ in range(120)]
    bvs = [rng.choice(verts) for _ in range(120)]
    assert snap.lca_batch(avs, bvs) == [snap.lca(a, b) for a, b in zip(avs, bvs)]
    assert snap.connected_batch(avs, bvs) == [
        snap.connected(a, b) for a, b in zip(avs, bvs)
    ]
    assert snap.is_ancestor_batch(avs, bvs) == [
        snap.is_ancestor(a, b) for a, b in zip(avs, bvs)
    ]
    assert snap.path_length_batch(avs, bvs) == [
        snap.path_length(a, b) for a, b in zip(avs, bvs)
    ]
    assert snap.subtree_size_batch(avs) == [snap.subtree_size(v) for v in avs]
    assert snap.component_batch(avs) == [snap.component(v) for v in avs]


def test_unknown_vertex_raises_vertex_not_found(query_path):
    _, tree, snap = _snapshot()
    known = next(v for v in tree.vertices() if not is_virtual_root(v))
    with pytest.raises(VertexNotFound):
        snap.subtree_size_batch([known, "nope"])
    with pytest.raises((VertexNotFound, Exception)):
        snap.lca_batch([known], ["nope"])


def test_parent_map_is_the_trees_parent_map():
    _, tree, snap = _snapshot()
    assert snap.parent_map() == tree.parent_map()


def test_lazy_index_built_once_and_reports_cost():
    costs = []
    g = gnp_random_graph(30, 0.1, seed=2)
    tree = DFSTree(static_dfs_forest(g), root=VIRTUAL_ROOT)
    snap = TreeSnapshot(1, tree, on_build_ms=costs.append)
    assert costs == []  # publication is O(1): nothing built yet
    verts = [v for v in tree.vertices() if not is_virtual_root(v)]
    snap.lca(verts[0], verts[1])
    snap.lca_batch(verts[:4], verts[4:8])
    assert len(costs) == 1 and costs[0] >= 0.0
