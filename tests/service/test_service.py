"""DFSTreeService: versioned publication over every driver, MVCC invariants.

The tentpole contract: every committed update bumps the version, snapshots are
published by an atomic pointer swap, held snapshots stay frozen while the
writer churns, and the published parent map is byte-identical to a dict
reference driver replaying the same updates at the same version.  All
recorders are ``strict=True``, so the service counters must be registered in
``WELL_KNOWN_COUNTERS``.
"""

from __future__ import annotations

import pytest

from repro.core.dynamic_dfs import FullyDynamicDFS
from repro.core.fault_tolerant import FaultTolerantDFS
from repro.core.updates import EdgeDeletion
from repro.distributed.distributed_dfs import DistributedDynamicDFS
from repro.graph.generators import gnp_random_graph
from repro.metrics.counters import MetricsRecorder
from repro.service import DFSTreeService
from repro.streaming.semi_streaming_dfs import SemiStreamingDynamicDFS
from repro.workloads.scenarios import build_scenario

from tests.helpers import make_updates


def _scenario(n=48, seed=1, updates=24):
    scenario = build_scenario("sustained_churn", n=n, seed=seed, updates=updates)
    return scenario.graph, scenario.updates[:updates]


ENGINE_DRIVERS = [
    ("core", lambda g, m: FullyDynamicDFS(g, rebuild_every=4, metrics=m)),
    ("core_absorb", lambda g, m: FullyDynamicDFS(g, rebuild_every=4, d_maintenance="absorb", metrics=m)),
    ("stream", lambda g, m: SemiStreamingDynamicDFS(g, rebuild_every=4, metrics=m)),
    ("dist", lambda g, m: DistributedDynamicDFS(g, rebuild_every=4, metrics=m)),
]


@pytest.mark.parametrize("label,factory", ENGINE_DRIVERS, ids=[l for l, _ in ENGINE_DRIVERS])
def test_every_driver_publishes_per_commit(label, factory):
    graph, updates = _scenario()
    metrics = MetricsRecorder(label, strict=True)
    driver = factory(graph.copy(), metrics)
    svc = DFSTreeService(driver, metrics=metrics)
    assert svc.version == 0 and svc.committed_version == 0
    reference = FullyDynamicDFS(graph.copy(), rebuild_every=1)
    for step, update in enumerate(updates, start=1):
        driver.apply(update)
        reference.apply(update)
        assert svc.version == svc.committed_version == step
        assert svc.snapshot().parent_map() == reference.tree.parent_map()
    assert metrics["snapshots_published"] == len(updates)


def test_mixed_updates_published_maps_match_reference():
    graph = gnp_random_graph(40, 0.12, seed=9, connected=True)
    updates = make_updates(graph, 30, seed=4)
    metrics = MetricsRecorder("svc", strict=True)
    driver = FullyDynamicDFS(graph.copy(), rebuild_every=3, metrics=metrics)
    svc = DFSTreeService(driver, metrics=metrics)
    reference = FullyDynamicDFS(graph.copy(), rebuild_every=1)
    for update in updates:
        driver.apply(update)
        reference.apply(update)
        assert svc.snapshot().parent_map() == reference.tree.parent_map()


def test_held_snapshots_stay_frozen_under_churn():
    graph, updates = _scenario(seed=3)
    driver = FullyDynamicDFS(graph.copy(), rebuild_every=2)
    svc = DFSTreeService(driver)
    held = []
    for update in updates:
        driver.apply(update)
        snap = svc.snapshot()
        held.append((snap, snap.parent_map()))
    for version, (snap, frozen_map) in enumerate(held, start=1):
        assert snap.version == version
        assert snap.parent_map() == frozen_map  # churn never mutated it


def test_publish_every_widens_staleness_and_publish_now_closes_it():
    graph, updates = _scenario(seed=5, updates=10)
    metrics = MetricsRecorder("svc", strict=True)
    driver = FullyDynamicDFS(graph.copy(), rebuild_every=2, metrics=metrics)
    svc = DFSTreeService(driver, metrics=metrics, publish_every=4)
    for update in updates[:3]:
        driver.apply(update)
    assert svc.committed_version == 3 and svc.version == 0
    answer, version = svc.connected(*_two_vertices(graph))
    assert version == 0
    assert metrics["snapshot_staleness_updates"] == 3  # one query, 3 behind
    driver.apply(updates[3])
    assert svc.version == 4  # cadence point reached
    for update in updates[4:7]:
        driver.apply(update)
    assert svc.version == 4 and svc.committed_version == 7
    snap = svc.publish_now()
    assert snap.version == svc.committed_version == 7
    assert svc.snapshot() is snap


def test_fault_tolerant_driver_versions_accumulate_across_queries():
    graph = gnp_random_graph(30, 0.15, seed=7, connected=True)
    metrics = MetricsRecorder("ft", strict=True)
    ft = FaultTolerantDFS(graph, metrics=metrics)
    svc = DFSTreeService(ft, metrics=metrics)
    edges = list(graph.edges())
    ft.query([EdgeDeletion(*edges[0]), EdgeDeletion(*edges[1])])
    assert svc.version == 2
    ft.query([EdgeDeletion(*edges[2])])
    assert svc.version == 3
    assert metrics["snapshots_published"] == 3


def test_batched_reads_account_batches_and_staleness():
    graph, updates = _scenario(seed=8, updates=8)
    # The service gets its own recorder: the driver's internal query services
    # also emit ``query_batches``, which would fold into the same counter.
    metrics = MetricsRecorder("svc", strict=True)
    driver = FullyDynamicDFS(graph.copy(), rebuild_every=2)
    svc = DFSTreeService(driver, metrics=metrics)
    for update in updates:
        driver.apply(update)
    held = svc.snapshot()
    a, b = _two_vertices(graph)
    answers, version = svc.lca_batch([a] * 10, [b] * 10)
    assert version == svc.committed_version and len(answers) == 10
    base_batches = metrics["query_batches"]
    # answering against a held (now stale) snapshot accounts the staleness
    driver.apply(EdgeDeletion(*next(iter(driver.graph.edges()))))
    answers2, version2 = svc.lca_batch([a] * 5, [b] * 5, snapshot=held)
    assert version2 == held.version == svc.committed_version - 1
    assert answers2 == answers[:5]
    assert metrics["query_batches"] == base_batches + 1
    assert metrics["max_query_batch_size"] == 10
    assert metrics["queries_served"] == 15  # the two batches: 10 + 5
    assert metrics["snapshot_staleness_updates"] == 5


def test_publish_every_validation():
    graph, _ = _scenario()
    driver = FullyDynamicDFS(graph.copy())
    with pytest.raises(ValueError):
        DFSTreeService(driver, publish_every=0)


def _two_vertices(graph):
    it = iter(graph.vertices())
    return next(it), next(it)


# --------------------------------------------------------------------------- #
# publish_now no-op and close() (PR 8 writer-path fixes)
# --------------------------------------------------------------------------- #
def test_publish_now_is_noop_at_committed_version():
    """Regression: ``publish_now`` used to republish unconditionally, throwing
    away the snapshot's lazily built indices and inflating
    ``snapshots_published``.  At the committed version it must return the
    *same object* (warm LCA/component indices preserved)."""
    graph, updates = _scenario(seed=5, updates=10)
    metrics = MetricsRecorder("svc", strict=True)
    driver = FullyDynamicDFS(graph.copy(), rebuild_every=2)
    svc = DFSTreeService(driver, metrics=metrics, publish_every=4)
    for update in updates[:6]:
        driver.apply(update)
    snap = svc.publish_now()  # committed=6, published cadence point was 4
    assert snap.version == 6
    it = iter(driver.graph.vertices())
    a, b = next(it), next(it)
    snap.lca(a, b)  # warm the lazy index
    published = metrics["snapshots_published"]
    again = svc.publish_now()
    assert again is snap  # the exact object, warm indices and all
    assert metrics["snapshots_published"] == published
    # After the next commit it is no longer a no-op.
    driver.apply(updates[6])
    fresh = svc.publish_now()
    assert fresh is not snap and fresh.version == 7
    assert metrics["snapshots_published"] == published + 1


def test_close_detaches_service_from_driver():
    """Regression: a discarded service kept snapshotting every future commit
    forever (listener leak on the writer's commit path).  ``close()`` must
    deregister the listener, freeze the service, shrink the engine's listener
    list, and stay idempotent; reads keep answering from the last snapshot."""
    graph, updates = _scenario(seed=7, updates=12)
    driver = FullyDynamicDFS(graph.copy(), rebuild_every=3)
    engine = driver._engine
    base_listeners = engine.commit_listener_count
    svc = DFSTreeService(driver)
    assert engine.commit_listener_count == base_listeners + 1
    for update in updates[:5]:
        driver.apply(update)
    frozen_map = svc.snapshot().parent_map()
    assert not svc.closed
    svc.close()
    assert svc.closed
    assert engine.commit_listener_count == base_listeners
    for update in updates[5:]:
        driver.apply(update)
    # Frozen: the writer moved on, the closed service did not.
    assert svc.version == svc.committed_version == 5
    assert svc.snapshot().parent_map() == frozen_map
    svc.close()  # idempotent
    assert engine.commit_listener_count == base_listeners
    it = iter(frozen_map)
    v = next(it)
    assert svc.subtree_size(v)[1] == 5  # reads still answer, at the frozen version
