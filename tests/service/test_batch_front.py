"""BatchingQueryFront: coalescing, versions, error isolation, churn overlap.

No pytest-asyncio dependency: each test drives its own loop via
``asyncio.run``.  The load-bearing claims are that one burst of concurrent
awaits becomes ONE flush (one ``query_batches`` increment, one shared
version), that ``max_batch`` bounds flush size, and that readers awaiting
mid-churn get answers consistent with *some* published version — MVCC, not
torn state.
"""

from __future__ import annotations

import asyncio
import random

import pytest

from repro.core.dynamic_dfs import FullyDynamicDFS
from repro.exceptions import VertexNotFound
from repro.metrics.counters import MetricsRecorder
from repro.service import BatchingQueryFront, DFSTreeService, QueryResult
from repro.workloads.scenarios import build_scenario


def _setup(n=48, seed=2, updates=20, **front_kw):
    scenario = build_scenario("sustained_churn", n=n, seed=seed, updates=updates)
    metrics = MetricsRecorder("front", strict=True)
    driver = FullyDynamicDFS(scenario.graph.copy(), rebuild_every=4, metrics=metrics)
    svc = DFSTreeService(driver, metrics=metrics)
    front = BatchingQueryFront(svc, **front_kw)
    return driver, svc, front, metrics, scenario.updates[:updates]


def test_gather_burst_coalesces_into_one_flush():
    driver, svc, front, metrics, updates = _setup()
    for update in updates:
        driver.apply(update)
    verts = [v for v in driver.graph.vertices()]
    rng = random.Random(5)
    pairs = [(rng.choice(verts), rng.choice(verts)) for _ in range(40)]

    async def run():
        return await asyncio.gather(
            *[front.lca(a, b) for a, b in pairs],
            *[front.connected(a, b) for a, b in pairs[:10]],
            *[front.subtree_size(a) for a, _ in pairs[:7]],
        )

    base = metrics["query_batches"]
    results = asyncio.run(run())
    assert metrics["query_batches"] == base + 1  # one flush for the burst
    assert metrics["max_query_batch_size"] == 57
    versions = {r.version for r in results}
    assert versions == {svc.version}
    snap = svc.snapshot()
    expected = snap.lca_batch([a for a, _ in pairs], [b for _, b in pairs])
    assert [r.answer for r in results[:40]] == expected
    assert all(isinstance(r, QueryResult) for r in results)


def test_max_batch_flushes_early():
    driver, svc, front, metrics, updates = _setup(max_batch=8)
    for update in updates[:4]:
        driver.apply(update)
    verts = list(driver.graph.vertices())

    async def run():
        return await asyncio.gather(*[front.subtree_size(verts[i % len(verts)]) for i in range(20)])

    base = metrics["query_batches"]
    asyncio.run(run())
    # 20 queries with max_batch=8: two full early flushes + the tick's tail
    assert metrics["query_batches"] == base + 3
    assert metrics["max_query_batch_size"] == 8


def test_coalescing_window_tick():
    driver, svc, front, metrics, updates = _setup(tick=0.01)
    driver.apply(updates[0])
    verts = list(driver.graph.vertices())

    async def run():
        first = asyncio.create_task(front.lca(verts[0], verts[1]))
        await asyncio.sleep(0)  # first enqueued, timer armed
        second = asyncio.create_task(front.lca(verts[2], verts[3]))
        return await asyncio.gather(first, second)

    base = metrics["query_batches"]
    asyncio.run(run())
    assert metrics["query_batches"] == base + 1  # both inside one window


def test_bad_query_fails_only_its_own_future():
    driver, svc, front, metrics, updates = _setup()
    driver.apply(updates[0])
    verts = list(driver.graph.vertices())

    async def run():
        good = front.lca(verts[0], verts[1])
        bad = front.lca(verts[0], "missing-vertex")
        good2 = front.subtree_size(verts[2])
        results = await asyncio.gather(good, bad, good2, return_exceptions=True)
        return results

    r_good, r_bad, r_good2 = asyncio.run(run())
    assert isinstance(r_bad, Exception)
    assert isinstance(r_good, QueryResult)
    assert r_good.answer == svc.snapshot().lca(verts[0], verts[1])
    assert r_good2.answer == svc.snapshot().subtree_size(verts[2])


def test_readers_overlapping_churn_see_consistent_versions():
    """Readers awaiting while the writer commits between bursts: every answer
    matches a recomputation against the *published map of its version* — the
    MVCC guarantee the service exists for."""
    driver, svc, front, metrics, updates = _setup(seed=6, updates=16)
    maps_by_version = {0: svc.snapshot().parent_map()}
    rng = random.Random(11)

    async def run():
        results = []
        verts = list(driver.graph.vertices())
        for update in updates:
            driver.apply(update)
            maps_by_version[svc.version] = svc.snapshot().parent_map()
            live = [v for v in driver.graph.vertices()]
            pairs = [(rng.choice(live), rng.choice(live)) for _ in range(6)]
            answers = await asyncio.gather(*[front.path_length(a, b) for a, b in pairs])
            results.append((pairs, answers))
        return results

    results = asyncio.run(run())
    from repro.service.snapshot import TreeSnapshot
    from repro.tree.dfs_tree import DFSTree
    from repro.constants import VIRTUAL_ROOT

    for pairs, answers in results:
        version = answers[0].version
        assert {r.version for r in answers} == {version}
        replay = TreeSnapshot(version, DFSTree(maps_by_version[version], root=VIRTUAL_ROOT))
        for (a, b), got in zip(pairs, answers):
            assert got.answer == replay.path_length(a, b)


def test_max_batch_validation():
    driver, svc, front, metrics, _ = _setup()
    with pytest.raises(ValueError):
        BatchingQueryFront(svc, max_batch=0)


# --------------------------------------------------------------------------- #
# Cancelled futures must not skew accounting (PR 8 writer-path fixes)
# --------------------------------------------------------------------------- #
def _stale_setup(n=40, seed=3, updates=14):
    """A service whose published snapshot lags the writer (publish_every=3),
    so staleness accounting is non-zero and observable."""
    scenario = build_scenario("sustained_churn", n=n, seed=seed, updates=updates)
    metrics = MetricsRecorder("front", strict=True)
    driver = FullyDynamicDFS(scenario.graph.copy(), rebuild_every=4)
    svc = DFSTreeService(driver, metrics=metrics, publish_every=3)
    for update in scenario.updates[:updates]:
        driver.apply(update)
    assert svc.committed_version > svc.version  # genuinely stale
    # A long tick: flushes in these tests happen only when called explicitly.
    front = BatchingQueryFront(svc, tick=60.0)
    return driver, svc, front, metrics


def _run_with_cancellation(front, pairs, cancel_mask):
    """Enqueue one lca per pair, cancel the masked subset while parked, flush,
    and return the gathered outcomes."""

    async def run():
        loop = asyncio.get_running_loop()
        tasks = [loop.create_task(front.lca(a, b)) for a, b in pairs]
        await asyncio.sleep(0)  # let every coroutine park its future
        for task, cancel in zip(tasks, cancel_mask):
            if cancel:
                task.cancel()
        front.flush()
        return await asyncio.gather(*tasks, return_exceptions=True)

    return asyncio.run(run())


def test_flush_drops_cancelled_futures_from_accounting():
    """Regression: a flush used to count *every* parked query — cancelled
    ones included — into ``queries_served`` and the staleness totals, so
    batched accounting drifted from what the same live queries record
    scalar-by-scalar."""
    driver, svc, front, metrics = _stale_setup()
    verts = sorted(v for v in driver.graph.vertices())
    pairs = [(verts[i], verts[-1 - i]) for i in range(8)]
    cancel_mask = [i % 2 == 0 for i in range(8)]  # cancel half
    live = [p for p, c in zip(pairs, cancel_mask) if not c]

    # Scalar reference: the same live queries, one by one, on the same service.
    before = metrics.as_dict()
    scalar_answers = [svc.lca(a, b)[0] for a, b in live]
    scalar_delta = metrics.snapshot_delta(before)

    before = metrics.as_dict()
    results = _run_with_cancellation(front, pairs, cancel_mask)
    batched_delta = metrics.snapshot_delta(before)

    for key in ("queries_served", "snapshot_staleness_updates"):
        assert batched_delta.get(key, 0) == scalar_delta.get(key, 0), key
    assert batched_delta.get("queries_served") == len(live)
    answered = [r for r in results if isinstance(r, QueryResult)]
    assert [r.answer for r in answered] == scalar_answers


def test_flush_of_only_cancelled_queries_records_nothing():
    driver, svc, front, metrics = _stale_setup()
    verts = sorted(v for v in driver.graph.vertices())
    pairs = [(verts[0], verts[1]), (verts[2], verts[3])]
    before = metrics.as_dict()
    results = _run_with_cancellation(front, pairs, [True, True])
    delta = metrics.snapshot_delta(before)
    assert all(v == 0 for v in delta.values()), delta  # not even query_batches
    assert all(isinstance(r, asyncio.CancelledError) for r in results)
    assert front.pending == 0


from hypothesis import given, settings
from hypothesis import strategies as st


@settings(max_examples=12, deadline=None)
@given(
    mask=st.lists(st.booleans(), min_size=1, max_size=10),
    seed=st.integers(min_value=0, max_value=50),
)
def test_batched_accounting_equals_scalar_under_cancellation(mask, seed):
    """Property: for any cancellation pattern, the flush's counter deltas for
    ``queries_served`` and ``snapshot_staleness_updates`` equal what the same
    *surviving* queries record scalar-by-scalar."""
    driver, svc, front, metrics = _stale_setup(seed=seed % 7)
    rng = random.Random(seed)
    verts = sorted(v for v in driver.graph.vertices())
    pairs = [(rng.choice(verts), rng.choice(verts)) for _ in mask]
    live = [p for p, c in zip(pairs, mask) if not c]

    before = metrics.as_dict()
    scalar_answers = [svc.lca(a, b)[0] for a, b in live]
    scalar_delta = metrics.snapshot_delta(before)

    before = metrics.as_dict()
    results = _run_with_cancellation(front, pairs, mask)
    batched_delta = metrics.snapshot_delta(before)

    for key in ("queries_served", "snapshot_staleness_updates"):
        assert batched_delta.get(key, 0) == scalar_delta.get(key, 0), key
    answered = [r for r in results if isinstance(r, QueryResult)]
    assert [r.answer for r in answered] == scalar_answers


def test_degraded_batch_bumps_fallback_and_error_counters():
    """Regression companion to ``test_bad_query_fails_only_its_own_future``:
    the degraded path is now observable.  One poisoned batch = one
    ``query_batch_fallbacks`` bump; each future that still fails after the
    scalar retry = one ``query_errors`` bump.  Healthy flushes touch
    neither."""
    driver, svc, front, metrics, updates = _setup()
    driver.apply(updates[0])
    verts = list(driver.graph.vertices())

    async def run(pairs):
        futs = [front.lca(a, b) for a, b in pairs]
        return await asyncio.gather(*futs, return_exceptions=True)

    healthy = asyncio.run(run([(verts[0], verts[1]), (verts[1], verts[2])]))
    assert all(isinstance(r, QueryResult) for r in healthy)
    assert metrics["query_batch_fallbacks"] == 0
    assert metrics["query_errors"] == 0

    mixed = asyncio.run(run([(verts[0], verts[1]), (verts[0], "missing-a"),
                             (verts[1], "missing-b")]))
    assert isinstance(mixed[0], QueryResult)
    assert isinstance(mixed[1], Exception)
    assert isinstance(mixed[2], Exception)
    assert metrics["query_batch_fallbacks"] == 1
    assert metrics["query_errors"] == 2
