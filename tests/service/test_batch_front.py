"""BatchingQueryFront: coalescing, versions, error isolation, churn overlap.

No pytest-asyncio dependency: each test drives its own loop via
``asyncio.run``.  The load-bearing claims are that one burst of concurrent
awaits becomes ONE flush (one ``query_batches`` increment, one shared
version), that ``max_batch`` bounds flush size, and that readers awaiting
mid-churn get answers consistent with *some* published version — MVCC, not
torn state.
"""

from __future__ import annotations

import asyncio
import random

import pytest

from repro.core.dynamic_dfs import FullyDynamicDFS
from repro.exceptions import VertexNotFound
from repro.metrics.counters import MetricsRecorder
from repro.service import BatchingQueryFront, DFSTreeService, QueryResult
from repro.workloads.scenarios import build_scenario


def _setup(n=48, seed=2, updates=20, **front_kw):
    scenario = build_scenario("sustained_churn", n=n, seed=seed, updates=updates)
    metrics = MetricsRecorder("front", strict=True)
    driver = FullyDynamicDFS(scenario.graph.copy(), rebuild_every=4, metrics=metrics)
    svc = DFSTreeService(driver, metrics=metrics)
    front = BatchingQueryFront(svc, **front_kw)
    return driver, svc, front, metrics, scenario.updates[:updates]


def test_gather_burst_coalesces_into_one_flush():
    driver, svc, front, metrics, updates = _setup()
    for update in updates:
        driver.apply(update)
    verts = [v for v in driver.graph.vertices()]
    rng = random.Random(5)
    pairs = [(rng.choice(verts), rng.choice(verts)) for _ in range(40)]

    async def run():
        return await asyncio.gather(
            *[front.lca(a, b) for a, b in pairs],
            *[front.connected(a, b) for a, b in pairs[:10]],
            *[front.subtree_size(a) for a, _ in pairs[:7]],
        )

    base = metrics["query_batches"]
    results = asyncio.run(run())
    assert metrics["query_batches"] == base + 1  # one flush for the burst
    assert metrics["max_query_batch_size"] == 57
    versions = {r.version for r in results}
    assert versions == {svc.version}
    snap = svc.snapshot()
    expected = snap.lca_batch([a for a, _ in pairs], [b for _, b in pairs])
    assert [r.answer for r in results[:40]] == expected
    assert all(isinstance(r, QueryResult) for r in results)


def test_max_batch_flushes_early():
    driver, svc, front, metrics, updates = _setup(max_batch=8)
    for update in updates[:4]:
        driver.apply(update)
    verts = list(driver.graph.vertices())

    async def run():
        return await asyncio.gather(*[front.subtree_size(verts[i % len(verts)]) for i in range(20)])

    base = metrics["query_batches"]
    asyncio.run(run())
    # 20 queries with max_batch=8: two full early flushes + the tick's tail
    assert metrics["query_batches"] == base + 3
    assert metrics["max_query_batch_size"] == 8


def test_coalescing_window_tick():
    driver, svc, front, metrics, updates = _setup(tick=0.01)
    driver.apply(updates[0])
    verts = list(driver.graph.vertices())

    async def run():
        first = asyncio.create_task(front.lca(verts[0], verts[1]))
        await asyncio.sleep(0)  # first enqueued, timer armed
        second = asyncio.create_task(front.lca(verts[2], verts[3]))
        return await asyncio.gather(first, second)

    base = metrics["query_batches"]
    asyncio.run(run())
    assert metrics["query_batches"] == base + 1  # both inside one window


def test_bad_query_fails_only_its_own_future():
    driver, svc, front, metrics, updates = _setup()
    driver.apply(updates[0])
    verts = list(driver.graph.vertices())

    async def run():
        good = front.lca(verts[0], verts[1])
        bad = front.lca(verts[0], "missing-vertex")
        good2 = front.subtree_size(verts[2])
        results = await asyncio.gather(good, bad, good2, return_exceptions=True)
        return results

    r_good, r_bad, r_good2 = asyncio.run(run())
    assert isinstance(r_bad, Exception)
    assert isinstance(r_good, QueryResult)
    assert r_good.answer == svc.snapshot().lca(verts[0], verts[1])
    assert r_good2.answer == svc.snapshot().subtree_size(verts[2])


def test_readers_overlapping_churn_see_consistent_versions():
    """Readers awaiting while the writer commits between bursts: every answer
    matches a recomputation against the *published map of its version* — the
    MVCC guarantee the service exists for."""
    driver, svc, front, metrics, updates = _setup(seed=6, updates=16)
    maps_by_version = {0: svc.snapshot().parent_map()}
    rng = random.Random(11)

    async def run():
        results = []
        verts = list(driver.graph.vertices())
        for update in updates:
            driver.apply(update)
            maps_by_version[svc.version] = svc.snapshot().parent_map()
            live = [v for v in driver.graph.vertices()]
            pairs = [(rng.choice(live), rng.choice(live)) for _ in range(6)]
            answers = await asyncio.gather(*[front.path_length(a, b) for a, b in pairs])
            results.append((pairs, answers))
        return results

    results = asyncio.run(run())
    from repro.service.snapshot import TreeSnapshot
    from repro.tree.dfs_tree import DFSTree
    from repro.constants import VIRTUAL_ROOT

    for pairs, answers in results:
        version = answers[0].version
        assert {r.version for r in answers} == {version}
        replay = TreeSnapshot(version, DFSTree(maps_by_version[version], root=VIRTUAL_ROOT))
        for (a, b), got in zip(pairs, answers):
            assert got.answer == replay.path_length(a, b)


def test_max_batch_validation():
    driver, svc, front, metrics, _ = _setup()
    with pytest.raises(ValueError):
        BatchingQueryFront(svc, max_batch=0)
