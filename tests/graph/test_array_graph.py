"""ArrayGraph: the flat int-slot / CSR mirror of the dict graph store."""

from __future__ import annotations

import random

import pytest

np = pytest.importorskip("numpy")

from repro.exceptions import DuplicateEdge, EdgeNotFound, VertexNotFound
from repro.graph.array_graph import ArrayGraph
from repro.graph.generators import gnp_random_graph
from repro.graph.graph import UndirectedGraph


def _assert_mirror_consistent(g: ArrayGraph) -> None:
    """The CSR snapshot must reproduce the dict adjacency rows exactly."""
    indptr, indices = g.csr()
    for v in g.vertices():
        s = g.slot(v)
        row = [g.slot_id(int(t)) for t in indices[indptr[s] : indptr[s + 1]]]
        assert row == g.neighbor_list(v), v


def test_same_public_api_as_dict_graph():
    g = ArrayGraph(edges=[(0, 1), (1, 2), (2, 3)])
    assert g.num_vertices == 4
    assert g.num_edges == 3
    assert g.has_edge(2, 1)
    assert not g.has_edge(0, 3)
    assert g.neighbor_list(1) == [0, 2]
    assert g.degree(2) == 2
    with pytest.raises(VertexNotFound):
        g.degree("nope")
    with pytest.raises(DuplicateEdge):
        g.add_edge(0, 1)
    with pytest.raises(EdgeNotFound):
        g.remove_edge(0, 3)


def test_equals_dict_graph_and_from_graph_preserves_row_order():
    base = UndirectedGraph(edges=[(0, 1), (2, 1), (0, 3)])
    base.add_edge(1, 3)
    ag = ArrayGraph.from_graph(base)
    assert ag == base
    for v in base.vertices():
        assert ag.neighbor_list(v) == base.neighbor_list(v)
    _assert_mirror_consistent(ag)


def test_csr_rows_match_insertion_order_after_mutations():
    g = ArrayGraph(edges=[(0, 1), (0, 2), (0, 3)])
    g.remove_edge(0, 2)
    g.add_edge(0, 2)  # re-insertion moves the entry to the end of the row
    assert g.neighbor_list(0) == [1, 3, 2]
    _assert_mirror_consistent(g)


def test_slot_recycling_regression():
    """Freed slots are recycled through the free-list: sustained vertex churn
    must not grow the arrays past the peak live vertex count."""
    g = ArrayGraph(edges=[(0, 1), (1, 2)])
    peak = g.num_slots
    assert peak == 3
    for i in range(100):
        v = f"churn{i}"
        g.add_vertex_with_edges(v, [0, 1])
        g.remove_vertex(v)
    # one extra slot for the single transient vertex alive at a time
    assert g.num_slots <= peak + 1
    assert g.num_edges == 2
    _assert_mirror_consistent(g)


def test_slot_recycling_reuses_the_freed_slot_id():
    g = ArrayGraph(vertices=[0, 1, 2])
    s = g.slot(1)
    g.remove_vertex(1)
    assert g.slot_id(s) is None
    g.add_vertex("new")
    assert g.slot("new") == s  # the freed slot, not a fresh one
    assert g.num_slots == 3


def test_edge_array_compaction_under_churn():
    g = ArrayGraph(vertices=list(range(8)))
    rng = random.Random(5)
    for _ in range(600):
        u, v = rng.sample(range(8), 2)
        if g.has_edge(u, v):
            g.remove_edge(u, v)
        else:
            g.add_edge(u, v)
        src, dst, alive = g.edge_arrays()
        # dead entries never outnumber live ones for long (compaction)
        assert len(src) <= 4 * (2 * g.num_edges) + 32
    _assert_mirror_consistent(g)
    src, dst, alive = g.edge_arrays()
    assert int(alive.sum()) == 2 * g.num_edges


def test_copy_is_independent():
    g = ArrayGraph(edges=[(0, 1), (1, 2)])
    h = g.copy()
    h.remove_edge(0, 1)
    h.add_vertex(99)
    assert g.has_edge(0, 1)
    assert not g.has_vertex(99)
    _assert_mirror_consistent(g)
    _assert_mirror_consistent(h)


def test_random_differential_against_dict_graph():
    """Random mutation stream: ArrayGraph stays structurally equal to the dict
    reference, with identical per-row iteration order throughout."""
    rng = random.Random(17)
    ref = gnp_random_graph(12, 0.3, seed=3)
    arr = ArrayGraph.from_graph(ref)
    next_vertex = 1000
    for step in range(300):
        verts = sorted(ref.vertices())
        op = rng.randrange(4)
        if op == 0 and len(verts) >= 2:
            u, v = rng.sample(verts, 2)
            if ref.has_edge(u, v):
                ref.remove_edge(u, v)
                arr.remove_edge(u, v)
            else:
                ref.add_edge(u, v)
                arr.add_edge(u, v)
        elif op == 1 and len(verts) > 4:
            v = verts[rng.randrange(len(verts))]
            assert ref.remove_vertex(v) == arr.remove_vertex(v)
        elif op == 2:
            nbrs = [w for w in verts if rng.random() < 0.3]
            assert ref.add_vertex_with_edges(next_vertex, nbrs) == arr.add_vertex_with_edges(
                next_vertex, nbrs
            )
            next_vertex += 1
        else:
            src, dst, alive = arr.edge_arrays()
            assert int(alive.sum()) == 2 * ref.num_edges
        assert arr == ref
        for v in ref.vertices():
            assert arr.neighbor_list(v) == ref.neighbor_list(v), (step, v)
    _assert_mirror_consistent(arr)
