"""Unit tests for the dynamic graph store."""

import pytest

from repro.exceptions import DuplicateEdge, DuplicateVertex, EdgeNotFound, VertexNotFound
from repro.graph.graph import UndirectedGraph


def test_empty_graph():
    g = UndirectedGraph()
    assert g.num_vertices == 0
    assert g.num_edges == 0
    assert list(g.edges()) == []
    assert not g.has_vertex(0)


def test_construction_from_edges_adds_endpoints():
    g = UndirectedGraph(edges=[(0, 1), (1, 2), (2, 0)])
    assert g.num_vertices == 3
    assert g.num_edges == 3
    assert g.has_edge(2, 1) and g.has_edge(1, 2)


def test_duplicate_edges_in_constructor_are_collapsed():
    g = UndirectedGraph(edges=[(0, 1), (1, 0), (0, 1)])
    assert g.num_edges == 1


def test_add_and_remove_vertex():
    g = UndirectedGraph(vertices=[0, 1, 2], edges=[(0, 1), (1, 2)])
    g.add_vertex(3)
    assert g.has_vertex(3) and g.degree(3) == 0
    removed = g.remove_vertex(1)
    assert set(removed) == {0, 2}
    assert g.num_edges == 0
    assert not g.has_vertex(1)


def test_add_vertex_with_edges():
    g = UndirectedGraph(vertices=[0, 1, 2])
    nbrs = g.add_vertex_with_edges(9, [0, 2, 2])
    assert nbrs == [0, 2]  # duplicates collapsed
    assert g.degree(9) == 2 and g.has_edge(9, 0) and g.has_edge(2, 9)


def test_add_vertex_with_unknown_neighbor_raises():
    g = UndirectedGraph(vertices=[0])
    with pytest.raises(VertexNotFound):
        g.add_vertex_with_edges(5, [42])
    assert not g.has_vertex(5)  # nothing was inserted


def test_add_vertex_with_edges_is_atomic_on_missing_neighbor():
    # The missing neighbour appears *after* valid ones: the operation must not
    # leave the vertex or any partial edges behind.
    g = UndirectedGraph(edges=[(0, 1), (1, 2)])
    before = g.copy()
    with pytest.raises(VertexNotFound):
        g.add_vertex_with_edges(9, [0, 1, "ghost", 2])
    assert g == before
    assert not g.has_vertex(9)
    assert g.num_edges == before.num_edges


def test_add_edge_errors():
    g = UndirectedGraph(vertices=[0, 1])
    g.add_edge(0, 1)
    with pytest.raises(DuplicateEdge):
        g.add_edge(1, 0)
    with pytest.raises(VertexNotFound):
        g.add_edge(0, 7)
    with pytest.raises(ValueError):
        g.add_edge(0, 0)
    with pytest.raises(DuplicateVertex):
        g.add_vertex(1)


def test_remove_edge_errors():
    g = UndirectedGraph(vertices=[0, 1, 2], edges=[(0, 1)])
    g.remove_edge(1, 0)
    with pytest.raises(EdgeNotFound):
        g.remove_edge(0, 1)
    with pytest.raises(EdgeNotFound):
        g.remove_edge(0, 2)


def test_edges_iterates_each_edge_once():
    g = UndirectedGraph(edges=[(0, 1), (1, 2), (2, 3), (3, 0)])
    edges = list(g.edges())
    assert len(edges) == 4
    assert len({frozenset(e) for e in edges}) == 4


def test_copy_is_independent():
    g = UndirectedGraph(edges=[(0, 1), (1, 2)])
    h = g.copy()
    h.remove_edge(0, 1)
    assert g.has_edge(0, 1)
    assert not h.has_edge(0, 1)
    assert g == UndirectedGraph(edges=[(0, 1), (1, 2)])
    assert g != h


def test_subgraph_induces_edges():
    g = UndirectedGraph(edges=[(0, 1), (1, 2), (2, 3), (3, 0), (1, 3)])
    s = g.subgraph([0, 1, 3])
    assert s.num_vertices == 3
    assert s.has_edge(0, 1) and s.has_edge(3, 0) and s.has_edge(1, 3)
    assert not s.has_vertex(2)
    with pytest.raises(VertexNotFound):
        g.subgraph([0, 99])


def test_neighbor_list_and_degree():
    g = UndirectedGraph(edges=[(0, 1), (0, 2), (0, 3)])
    assert sorted(g.neighbor_list(0)) == [1, 2, 3]
    assert g.degree(0) == 3 and g.degree(1) == 1
    with pytest.raises(VertexNotFound):
        g.degree(9)


def test_adjacency_snapshot():
    g = UndirectedGraph(edges=[(0, 1), (1, 2)])
    adj = g.adjacency()
    assert adj[1] == [0, 2] or set(adj[1]) == {0, 2}
    adj[1].append(99)  # mutating the snapshot must not affect the graph
    assert not g.has_edge(1, 99)
