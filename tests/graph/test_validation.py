"""Tests for the DFS-tree validity checker (the test suite's own oracle)."""

from repro.constants import VIRTUAL_ROOT
from repro.graph.generators import gnp_random_graph, path_graph
from repro.graph.graph import UndirectedGraph
from repro.graph.traversal import static_dfs_forest, static_dfs_tree
from repro.graph.validation import (
    check_dfs_tree,
    is_back_edge,
    is_valid_dfs_forest,
    is_valid_dfs_tree,
)


def test_valid_tree_passes():
    g = gnp_random_graph(30, 0.15, seed=1, connected=True)
    parent = static_dfs_tree(g, 0)
    assert check_dfs_tree(g, parent, require_spanning=True) == []


def test_bfs_like_tree_with_cross_edge_fails():
    # A triangle with a "BFS" tree rooted at 0: both 1 and 2 are children of 0,
    # so edge (1, 2) is a cross edge and the tree is not a DFS tree.
    g = UndirectedGraph(edges=[(0, 1), (0, 2), (1, 2)])
    parent = {0: None, 1: 0, 2: 0}
    problems = check_dfs_tree(g, parent)
    assert any("cross edge" in p for p in problems)
    assert not is_valid_dfs_tree(g, parent, 0)


def test_missing_vertex_and_fake_edge_detected():
    g = UndirectedGraph(edges=[(0, 1), (1, 2)])
    assert any("missing" in p for p in check_dfs_tree(g, {0: None, 1: 0}))
    # Tree edge that does not exist in the graph:
    problems = check_dfs_tree(g, {0: None, 1: 0, 2: 0})
    assert any("not a graph edge" in p for p in problems)


def test_cycle_in_parent_map_detected():
    g = UndirectedGraph(edges=[(0, 1), (1, 2), (2, 0)])
    problems = check_dfs_tree(g, {0: 2, 1: 0, 2: 1})
    assert any("not a forest" in p for p in problems)


def test_virtual_root_edges_are_exempt():
    g = UndirectedGraph(vertices=[0, 1], edges=[])
    parent = {VIRTUAL_ROOT: None, 0: VIRTUAL_ROOT, 1: VIRTUAL_ROOT}
    assert is_valid_dfs_forest(g, parent)


def test_forest_with_cross_component_placement_fails():
    # Both components hang from the virtual root, but vertex 3 is placed in the
    # wrong component's subtree (edge (2,3) exists; (1,3) does not).
    g = UndirectedGraph(vertices=[0, 1, 2, 3], edges=[(0, 1), (2, 3)])
    bad = {VIRTUAL_ROOT: None, 0: VIRTUAL_ROOT, 1: 0, 2: VIRTUAL_ROOT, 3: 1}
    assert not is_valid_dfs_forest(g, bad)


def test_is_back_edge():
    g = path_graph(5)
    parent = static_dfs_tree(g, 0)
    assert is_back_edge(parent, 4, 0)  # ancestor-descendant
    star = UndirectedGraph(edges=[(0, 1), (0, 2)])
    star_parent = {0: None, 1: 0, 2: 0}
    assert not is_back_edge(star_parent, 1, 2)


def test_is_valid_dfs_tree_requires_exact_component_cover():
    g = UndirectedGraph(vertices=[0, 1, 2, 3], edges=[(0, 1), (1, 2)])
    parent = static_dfs_tree(g, 0)
    assert is_valid_dfs_tree(g, parent, 0)
    # Covering only part of the component is not a valid DFS tree of it.
    partial = {0: None, 1: 0}
    assert not is_valid_dfs_tree(g, partial, 0)


def test_static_forest_valid_on_random_disconnected_graphs():
    for seed in range(4):
        g = gnp_random_graph(35, 0.05, seed=seed)
        parent = static_dfs_forest(g)
        assert is_valid_dfs_forest(g, parent)
