"""Tests for the graph generators (sizes, structure, determinism)."""

import pytest

from repro.graph import connected_components
from repro.graph.generators import (
    broom_graph,
    caterpillar_graph,
    comb_graph,
    comb_with_back_edges,
    complete_binary_tree,
    complete_graph,
    cycle_graph,
    cycle_with_chords,
    gnm_random_graph,
    gnp_random_graph,
    grid_graph,
    lollipop_graph,
    path_graph,
    random_tree,
    star_graph,
)


def test_path_star_cycle_complete_sizes():
    assert path_graph(10).num_edges == 9
    assert star_graph(10).num_edges == 9
    assert cycle_graph(10).num_edges == 10
    assert complete_graph(6).num_edges == 15
    with pytest.raises(ValueError):
        cycle_graph(2)


def test_grid_graph_structure():
    g = grid_graph(3, 4)
    assert g.num_vertices == 12
    assert g.num_edges == 3 * 3 + 2 * 4  # horizontal + vertical
    assert g.has_edge(0, 1) and g.has_edge(0, 4)
    assert not g.has_edge(3, 4)  # row wrap must not connect


def test_complete_binary_tree():
    g = complete_binary_tree(3)
    assert g.num_vertices == 15
    assert g.num_edges == 14
    assert g.degree(0) == 2


def test_gnp_deterministic_and_connected():
    a = gnp_random_graph(60, 0.08, seed=5, connected=True)
    b = gnp_random_graph(60, 0.08, seed=5, connected=True)
    assert a == b
    assert len(connected_components(a)) == 1
    with pytest.raises(ValueError):
        gnp_random_graph(10, 1.5)


def test_gnm_exact_edge_count():
    g = gnm_random_graph(30, 60, seed=1)
    assert g.num_vertices == 30 and g.num_edges == 60
    g2 = gnm_random_graph(30, 60, seed=1, connected=True)
    assert g2.num_edges == 60 and len(connected_components(g2)) == 1
    with pytest.raises(ValueError):
        gnm_random_graph(4, 10)


def test_random_tree_is_a_tree():
    g = random_tree(50, seed=3)
    assert g.num_edges == 49
    assert len(connected_components(g)) == 1


def test_broom_and_caterpillar_and_comb():
    broom = broom_graph(5, 7)
    assert broom.num_vertices == 12 and broom.num_edges == 11
    assert broom.degree(4) == 8  # end of the handle carries the bristles

    cat = caterpillar_graph(6, 2)
    assert cat.num_vertices == 6 + 12
    assert cat.degree(0) == 3  # spine end: one spine edge + two legs

    comb = comb_graph(4, 3)
    assert comb.num_vertices == 4 + 12
    combb = comb_with_back_edges(4, 3)
    assert combb.num_edges == comb.num_edges + 4  # one back edge per tooth tip


def test_lollipop_and_cycle_with_chords():
    lol = lollipop_graph(5, 4)
    assert lol.num_vertices == 9
    assert lol.num_edges == 10 + 4
    cyc = cycle_with_chords(20, 5, seed=2)
    assert cyc.num_edges == 25


def test_barabasi_albert_structure_and_determinism():
    from repro.graph.generators import barabasi_albert_graph

    g = barabasi_albert_graph(200, 3, seed=4)
    assert g.num_vertices == 200
    # each of the n - m arrivals contributes exactly m distinct edges
    assert g.num_edges == (200 - 3) * 3
    assert g == barabasi_albert_graph(200, 3, seed=4)
    assert len(connected_components(g)) == 1
    # preferential attachment produces a heavy tail: some early hub beats
    # the minimum degree by a wide margin
    assert max(g.degree(v) for v in g.vertices()) >= 4 * 3
    with pytest.raises(ValueError):
        barabasi_albert_graph(3, 3)
    with pytest.raises(ValueError):
        barabasi_albert_graph(10, 0)


def test_gnp_fast_path_statistics_and_determinism():
    from repro.graph.generators import GNP_FAST_PATH_MIN_N

    n = GNP_FAST_PATH_MIN_N
    p = 0.002
    a = gnp_random_graph(n, p, seed=9)
    assert a == gnp_random_graph(n, p, seed=9)
    expected = p * n * (n - 1) / 2
    # Batagelj–Brandes skipping must reproduce the G(n, p) edge-count
    # distribution: within 5 standard deviations of the mean
    sd = (expected * (1 - p)) ** 0.5
    assert abs(a.num_edges - expected) <= 5 * sd
    # degenerate probabilities still take the exact paths
    assert gnp_random_graph(n, 0.0, seed=1).num_edges == 0
