"""Large-n generator smoke (``@pytest.mark.large``, opt-in via REPRO_LARGE_TESTS=1).

Builds the scale-tier families at n = 10^5 on the array backend and validates
the global invariants that survive at that size: degree sums, edge counts,
connectivity.  Excluded from tier-1 (see ``tests/conftest.py``); CI runs it in
the dedicated array-backend job.
"""

from __future__ import annotations

import pytest

np = pytest.importorskip("numpy")

from repro.graph.array_graph import ArrayGraph
from repro.graph.generators import (
    barabasi_albert_graph,
    gnp_random_graph,
    grid_graph,
)
from repro.graph.traversal import connected_components

LARGE_N = 100_000


def _degree_sum(g):
    return sum(g.degree(v) for v in g.vertices())


@pytest.mark.large
def test_barabasi_albert_large_on_array_backend():
    g = ArrayGraph.from_graph(barabasi_albert_graph(LARGE_N, 3, seed=0))
    assert g.num_vertices == LARGE_N
    assert g.num_edges == (LARGE_N - 3) * 3
    assert _degree_sum(g) == 2 * g.num_edges
    src, dst, alive = g.edge_arrays()
    assert int(alive.sum()) == 2 * g.num_edges
    assert len(connected_components(g)) == 1


@pytest.mark.large
def test_grid_large_on_array_backend():
    side = int(LARGE_N**0.5)  # 316 x 316 ~ 10^5 vertices
    g = ArrayGraph.from_graph(grid_graph(side, side))
    assert g.num_vertices == side * side
    assert g.num_edges == 2 * side * (side - 1)
    assert _degree_sum(g) == 2 * g.num_edges
    assert len(connected_components(g)) == 1


@pytest.mark.large
def test_gnp_large_on_array_backend():
    n = LARGE_N
    p = 4.0 / n  # supercritical: giant component, ~2n edges
    g = ArrayGraph.from_graph(gnp_random_graph(n, p, seed=1))
    assert g.num_vertices == n
    expected = p * n * (n - 1) / 2
    sd = (expected * (1 - p)) ** 0.5
    assert abs(g.num_edges - expected) <= 6 * sd
    assert _degree_sum(g) == 2 * g.num_edges
    comps = connected_components(g)
    # at mean degree 4 the giant component holds ~98% of the vertices
    assert max(len(c) for c in comps) >= int(0.9 * n)
