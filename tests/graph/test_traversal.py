"""Tests for static DFS / BFS / connected components."""

import pytest

from repro.constants import VIRTUAL_ROOT
from repro.exceptions import VertexNotFound
from repro.graph.generators import gnp_random_graph, path_graph, star_graph
from repro.graph.graph import UndirectedGraph
from repro.graph.traversal import (
    bfs_tree,
    component_of,
    connected_components,
    dfs_preorder,
    static_dfs_forest,
    static_dfs_tree,
)
from repro.graph.validation import is_valid_dfs_forest, is_valid_dfs_tree


def test_static_dfs_tree_on_path():
    g = path_graph(6)
    parent = static_dfs_tree(g, 0)
    assert parent == {0: None, 1: 0, 2: 1, 3: 2, 4: 3, 5: 4}
    assert is_valid_dfs_tree(g, parent, 0)


def test_static_dfs_tree_is_valid_on_random_graphs():
    for seed in range(5):
        g = gnp_random_graph(40, 0.1, seed=seed, connected=True)
        parent = static_dfs_tree(g, 0)
        assert is_valid_dfs_tree(g, parent, 0)
        assert len(parent) == 40


def test_static_dfs_tree_restricted():
    g = star_graph(10)
    parent = static_dfs_tree(g, 0, restrict_to=[0, 1, 2, 3])
    assert set(parent) == {0, 1, 2, 3}
    with pytest.raises(VertexNotFound):
        static_dfs_tree(g, 99)
    with pytest.raises(VertexNotFound):
        static_dfs_tree(g, 5, restrict_to=[0, 1])


def test_static_dfs_tree_handles_deep_graphs():
    # Far beyond the recursion limit: the implementation must be iterative.
    g = path_graph(5000)
    parent = static_dfs_tree(g, 0)
    assert len(parent) == 5000


def test_static_dfs_forest_covers_disconnected_graphs():
    g = UndirectedGraph(vertices=range(6), edges=[(0, 1), (2, 3)])
    parent = static_dfs_forest(g)
    assert parent[VIRTUAL_ROOT] is None
    assert set(parent) == set(range(6)) | {VIRTUAL_ROOT}
    assert is_valid_dfs_forest(g, parent)
    roots = [v for v, p in parent.items() if p == VIRTUAL_ROOT]
    assert len(roots) == 4  # components {0,1}, {2,3}, {4}, {5}


def test_dfs_preorder_starts_at_root_and_covers_component():
    g = gnp_random_graph(25, 0.15, seed=2, connected=True)
    order = dfs_preorder(g, 3)
    assert order[0] == 3
    assert sorted(order) == sorted(g.vertices())


def test_bfs_tree_depths_are_shortest_path_distances():
    g = path_graph(8)
    parent, depth = bfs_tree(g, 0)
    assert depth[7] == 7
    g2 = star_graph(9)
    _, depth2 = bfs_tree(g2, 1)
    assert depth2[0] == 1 and all(depth2[v] == 2 for v in range(2, 9))


def test_connected_components_and_component_of():
    g = UndirectedGraph(vertices=range(7), edges=[(0, 1), (1, 2), (4, 5)])
    comps = connected_components(g)
    assert sorted(sorted(c) for c in comps) == [[0, 1, 2], [3], [4, 5], [6]]
    assert sorted(component_of(g, 2)) == [0, 1, 2]
    with pytest.raises(VertexNotFound):
        component_of(g, 100)
