"""Tests for the LCA indices (binary lifting and Euler tour + sparse table)."""

import random

import pytest

from repro.exceptions import TreeError
from repro.graph.generators import path_graph, random_tree
from repro.graph.traversal import static_dfs_tree
from repro.tree.dfs_tree import DFSTree
from repro.tree.lca import BinaryLiftingLCA, EulerTourLCA


def _tree(seed=0, n=50):
    g = random_tree(n, seed=seed)
    return DFSTree(static_dfs_tree(g, 0), root=0)


def test_both_indices_agree_with_tree_lca():
    rng = random.Random(1)
    for seed in range(3):
        tree = _tree(seed=seed)
        bl = BinaryLiftingLCA(tree)
        et = EulerTourLCA(tree)
        verts = list(tree.vertices())
        for _ in range(300):
            a, b = rng.choice(verts), rng.choice(verts)
            expected = tree.lca(a, b)
            assert bl.lca(a, b) == expected
            assert et.lca(a, b) == expected


def test_euler_tour_lca_on_path():
    g = path_graph(20)
    tree = DFSTree(static_dfs_tree(g, 0), root=0)
    et = EulerTourLCA(tree)
    assert et.lca(19, 5) == 5
    assert et.lca(7, 7) == 7
    assert et.is_ancestor(0, 19)
    assert not et.is_ancestor(19, 0)
    assert et.distance(3, 10) == 7


def test_euler_tour_lca_unknown_vertex_raises():
    tree = _tree()
    et = EulerTourLCA(tree)
    with pytest.raises(TreeError):
        et.lca(0, "nope")


def test_binary_lifting_level_ancestor():
    tree = _tree(seed=4)
    bl = BinaryLiftingLCA(tree)
    for v in list(tree.vertices())[:20]:
        lvl = tree.level(v)
        if lvl >= 1:
            assert tree.level(bl.level_ancestor(v, lvl - 1)) == lvl - 1
        assert bl.level_ancestor(v, 0) == tree.root


def test_single_vertex_tree():
    tree = DFSTree({0: None})
    et = EulerTourLCA(tree)
    assert et.lca(0, 0) == 0
