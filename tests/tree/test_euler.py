"""Tests for Euler tours."""

from repro.graph.generators import random_tree
from repro.graph.traversal import static_dfs_tree
from repro.tree.dfs_tree import DFSTree
from repro.tree.euler import edge_tour, euler_tour


def _tree(seed=0, n=30):
    g = random_tree(n, seed=seed)
    return DFSTree(static_dfs_tree(g, 0), root=0)


def test_euler_tour_length_and_first_occurrence():
    tree = _tree(n=25)
    tour, first, depths = euler_tour(tree)
    assert len(tour) == 2 * 25 - 1
    assert len(depths) == len(tour)
    assert tour[0] == tree.root and tour[-1] == tree.root
    for v in tree.vertices():
        assert tour[first[v]] == v
    # Depths recorded along the tour match the tree levels.
    for pos, v in enumerate(tour):
        assert depths[pos] == tree.level(v)
    # Consecutive tour entries are tree neighbours.
    for a, b in zip(tour, tour[1:]):
        assert tree.parent(a) == b or tree.parent(b) == a


def test_euler_tour_single_vertex():
    tree = DFSTree({0: None})
    tour, first, depths = euler_tour(tree)
    assert tour == [0] and first == {0: 0} and depths == [0]


def test_edge_tour_traverses_each_edge_twice():
    tree = _tree(n=20, seed=3)
    arcs = edge_tour(tree)
    assert len(arcs) == 2 * (20 - 1)
    seen = {}
    for u, v in arcs:
        seen[frozenset((u, v))] = seen.get(frozenset((u, v)), 0) + 1
    assert all(count == 2 for count in seen.values())
    # The tour is a closed walk starting and ending at the root.
    assert arcs[0][0] == tree.root and arcs[-1][1] == tree.root
    for (a, b), (c, d) in zip(arcs, arcs[1:]):
        assert b == c
