"""Tests for the DFSTree structure (indices, ancestry, paths, subtrees)."""

import random

import pytest

from repro.exceptions import TreeError, VertexNotFound
from repro.graph.generators import gnp_random_graph, random_tree
from repro.graph.traversal import static_dfs_tree
from repro.tree.dfs_tree import DFSTree


def build_random_dfs_tree(n=40, seed=0):
    g = gnp_random_graph(n, 0.12, seed=seed, connected=True)
    return g, DFSTree(static_dfs_tree(g, 0), root=0)


def brute_force_ancestors(tree, v):
    out = []
    while v is not None:
        out.append(v)
        v = tree.parent(v)
    return out


def test_basic_indices_on_small_tree():
    #        0
    #       / \
    #      1   4
    #     / \
    #    2   3
    t = DFSTree({0: None, 1: 0, 2: 1, 3: 1, 4: 0})
    assert t.root == 0
    assert t.level(0) == 0 and t.level(2) == 2
    assert t.subtree_size(1) == 3 and t.subtree_size(0) == 5
    assert t.children(1) == [2, 3]
    assert t.parent(4) == 0 and t.parent(0) is None
    # Post-order: 2, 3, 1, 4, 0
    assert t.postorder(2) == 0 and t.postorder(3) == 1 and t.postorder(1) == 2
    assert t.postorder(4) == 3 and t.postorder(0) == 4
    assert t.postorder_sequence() == [2, 3, 1, 4, 0]


def test_ancestry_and_lca():
    t = DFSTree({0: None, 1: 0, 2: 1, 3: 1, 4: 0, 5: 4})
    assert t.is_ancestor(0, 5) and t.is_ancestor(1, 3)
    assert not t.is_ancestor(1, 5)
    assert t.lca(2, 3) == 1
    assert t.lca(3, 5) == 0
    assert t.lca(1, 2) == 1
    assert t.child_towards(0, 5) == 4
    with pytest.raises(TreeError):
        t.child_towards(1, 5)


def test_lca_matches_brute_force_on_random_trees():
    rng = random.Random(3)
    for seed in range(3):
        g = random_tree(60, seed=seed)
        tree = DFSTree(static_dfs_tree(g, 0), root=0)
        for _ in range(200):
            a, b = rng.randrange(60), rng.randrange(60)
            anc_a = brute_force_ancestors(tree, a)
            anc_b = set(brute_force_ancestors(tree, b))
            expected = next(x for x in anc_a if x in anc_b)
            assert tree.lca(a, b) == expected


def test_level_ancestor_and_on_path():
    t = DFSTree({0: None, 1: 0, 2: 1, 3: 2, 4: 3})
    assert t.level_ancestor(4, 0) == 0
    assert t.level_ancestor(4, 2) == 2
    with pytest.raises(TreeError):
        t.level_ancestor(2, 5)
    assert t.on_path(2, 0, 4)
    assert not t.on_path(4, 0, 2)


def test_paths_and_lengths():
    t = DFSTree({0: None, 1: 0, 2: 1, 3: 1, 4: 3, 5: 0})
    assert t.path(2, 4) == [2, 1, 3, 4]
    assert t.path(4, 2) == [4, 3, 1, 2]
    assert t.path(5, 5) == [5]
    assert t.path_length(2, 4) == 3
    assert t.ancestor_path(4, 0) == [4, 3, 1, 0]
    with pytest.raises(TreeError):
        t.ancestor_path(0, 4)


def test_subtree_vertices_and_preorder():
    t = DFSTree({0: None, 1: 0, 2: 1, 3: 1, 4: 0})
    assert t.subtree_vertices(1) == [1, 2, 3]
    assert t.preorder() == [0, 1, 2, 3, 4]
    assert len(t.subtree_vertices(0)) == 5


def test_forest_support_and_roots():
    t = DFSTree({0: None, 1: 0, 10: None, 11: 10})
    assert set(t.roots()) == {0, 10}
    with pytest.raises(TreeError):
        t.lca(1, 11)


def test_error_cases():
    with pytest.raises(TreeError):
        DFSTree({0: 1, 1: 0})  # cycle
    with pytest.raises(TreeError):
        DFSTree({0: None, 1: 5})  # dangling parent
    t = DFSTree({0: None, 1: 0})
    with pytest.raises(VertexNotFound):
        t.level(42)
    with pytest.raises(TreeError):
        DFSTree({0: None, 1: 0}, root=1)  # 1 is not a root


def test_indices_consistent_on_random_dfs_trees():
    g, tree = build_random_dfs_tree(seed=5)
    # subtree sizes sum along children, levels increase by one
    for v in tree.vertices():
        kids = tree.children(v)
        assert tree.subtree_size(v) == 1 + sum(tree.subtree_size(c) for c in kids)
        for c in kids:
            assert tree.level(c) == tree.level(v) + 1
            assert tree.is_ancestor(v, c)
    # postorder of a parent is larger than all descendants
    for v in tree.vertices():
        for c in tree.children(v):
            assert tree.postorder(v) > tree.postorder(c)


def test_parent_map_round_trip():
    g, tree = build_random_dfs_tree(seed=8)
    clone = DFSTree(tree.parent_map(), root=tree.root)
    for v in tree.vertices():
        assert clone.parent(v) == tree.parent(v)
        assert clone.level(v) == tree.level(v)
        assert clone.subtree_size(v) == tree.subtree_size(v)
