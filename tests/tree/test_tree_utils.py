"""Tests for path/subtree utilities (hanging subtrees, heavy vertex, segments)."""

import pytest

from repro.exceptions import TreeError
from repro.graph.generators import random_tree
from repro.graph.traversal import static_dfs_tree
from repro.tree.dfs_tree import DFSTree
from repro.tree.tree_utils import (
    ancestor_descendant_segments,
    farther_endpoint,
    hanging_subtrees,
    heavy_chain,
    heavy_vertex,
    is_back_edge,
    is_vertical_path,
    path_level_map,
    segment_orientation,
    split_path_at,
    subtree_vertex_count,
)


@pytest.fixture
def caterpillar_tree():
    # Spine 0-1-2-3 with legs: 0->10, 1->11, 2->12,13, 3->14
    parent = {0: None, 1: 0, 2: 1, 3: 2, 10: 0, 11: 1, 12: 2, 13: 2, 14: 3}
    return DFSTree(parent, root=0)


def test_is_vertical_path(caterpillar_tree):
    t = caterpillar_tree
    assert is_vertical_path(t, [0, 1, 2, 3])
    assert is_vertical_path(t, [3, 2, 1])
    assert is_vertical_path(t, [2])
    assert not is_vertical_path(t, [1, 2, 13, 12])  # direction change / sibling hop
    assert not is_vertical_path(t, [0, 2])  # not adjacent


def test_hanging_subtrees(caterpillar_tree):
    t = caterpillar_tree
    roots = hanging_subtrees(t, [0, 1, 2, 3])
    assert roots == [10, 11, 12, 13, 14]
    roots2 = hanging_subtrees(t, [1, 2], exclude=[3])
    assert roots2 == [11, 12, 13]


def test_heavy_vertex_and_chain():
    # A path tree: every prefix is heavy, v_H is the deepest vertex whose
    # subtree still exceeds the threshold.
    parent = {i: (i - 1 if i else None) for i in range(10)}
    t = DFSTree(parent, root=0)
    assert heavy_vertex(t, 0, 3) == 6  # |T(6)| = 4 > 3, |T(7)| = 3
    assert heavy_chain(t, 0, 3) == [0, 1, 2, 3, 4, 5, 6]
    with pytest.raises(TreeError):
        heavy_vertex(t, 7, 5)


def test_heavy_vertex_on_balanced_tree():
    parent = {0: None, 1: 0, 2: 0, 3: 1, 4: 1, 5: 2, 6: 2}
    t = DFSTree(parent, root=0)
    # threshold 3: only the root exceeds it
    assert heavy_vertex(t, 0, 3) == 0
    # threshold 2: children of the root have size 3 > 2, pick one chain end
    assert heavy_vertex(t, 0, 2) in (1, 2)


def test_ancestor_descendant_segments(caterpillar_tree):
    t = caterpillar_tree
    # A path of T* glued from two vertical runs by a back-edge jump.
    seq = [11, 1, 0, 14, 3, 2]
    segs = ancestor_descendant_segments(t, seq)
    assert segs == [[11, 1, 0], [14, 3, 2]]
    assert ancestor_descendant_segments(t, []) == []
    assert ancestor_descendant_segments(t, [2]) == [[2]]
    # Direction flip splits a segment.
    segs2 = ancestor_descendant_segments(t, [1, 2, 3, 2])
    assert segs2 == [[1, 2, 3], [2]]


def test_segment_orientation_and_split(caterpillar_tree):
    t = caterpillar_tree
    assert segment_orientation(t, [3, 2, 1]) == (1, 3)
    assert segment_orientation(t, [1, 2, 3]) == (1, 3)
    prefix, suffix = split_path_at([5, 6, 7, 8], 6)
    assert prefix == [5, 6] and suffix == [7, 8]
    with pytest.raises(ValueError):
        split_path_at([1, 2], 9)


def test_farther_endpoint_and_misc(caterpillar_tree):
    t = caterpillar_tree
    assert farther_endpoint(t, [0, 1, 2, 3], 1) == 3
    assert farther_endpoint(t, [0, 1, 2, 3], 3) == 0
    with pytest.raises(ValueError):
        farther_endpoint(t, [0, 1], 5)
    assert is_back_edge(t, 0, 14)
    assert not is_back_edge(t, 10, 14)
    assert subtree_vertex_count(t, [1, 10]) == t.subtree_size(1) + 1
    assert path_level_map(t, [3, 2, 1]) == {3: 0, 2: 1, 1: 2}


def test_segments_on_random_trees_cover_and_are_vertical():
    from random import Random

    rng = Random(7)
    g = random_tree(40, seed=2)
    t = DFSTree(static_dfs_tree(g, 0), root=0)
    verts = list(t.vertices())
    for _ in range(50):
        seq = rng.sample(verts, rng.randint(1, 10))
        segs = ancestor_descendant_segments(t, seq)
        assert [v for s in segs for v in s] == seq
        for s in segs:
            assert is_vertical_path(t, s)
