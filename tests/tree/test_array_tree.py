"""Array constructors for the tree layer: snapshots, Euler tours, LCA."""

from __future__ import annotations

import random

import pytest

np = pytest.importorskip("numpy")

from repro.constants import VIRTUAL_ROOT
from repro.exceptions import TreeError
from repro.graph.generators import gnp_random_graph
from repro.graph.traversal import static_dfs_forest
from repro.tree.dfs_tree import DFSTree
from repro.tree.euler import euler_tour, euler_tour_arrays
from repro.tree.lca import ArrayLCAIndex, EulerTourLCA


def _tree(n=30, p=0.2, seed=4):
    g = gnp_random_graph(n, p, seed=seed)
    return g, DFSTree(static_dfs_forest(g), root=VIRTUAL_ROOT)


def test_as_arrays_matches_scalar_accessors():
    g, tree = _tree()
    arrs = tree.as_arrays()
    verts = list(arrs["vertices"])
    for i, v in enumerate(verts):
        assert int(arrs["post"][i]) == tree.postorder(v)
        assert int(arrs["level"][i]) == tree.level(v)
        assert int(arrs["size"][i]) == tree.subtree_size(v)
        p = tree.parent(v)
        pi = int(arrs["parent"][i])
        assert (p is None and pi == -1) or verts[pi] == p
    # snapshot is cached (same objects on second call)
    assert tree.as_arrays()["post"] is arrs["post"]


def test_euler_tour_arrays_equals_scalar_tour():
    for seed in (1, 5, 9):
        g, tree = _tree(seed=seed)
        tour, first, depths = euler_tour(tree)
        tour_idx, first_arr, depths_arr = euler_tour_arrays(tree)
        verts = list(tree.as_arrays()["vertices"])
        assert [verts[i] for i in tour_idx.tolist()] == tour
        assert depths_arr.tolist() == depths
        for v, f in first.items():
            assert int(first_arr[tree._i(v)]) == f


def test_array_lca_matches_scalar_lca():
    rng = random.Random(6)
    g, tree = _tree(n=40, seed=12)
    scalar = EulerTourLCA(tree)
    arr = ArrayLCAIndex(tree)
    verts = list(g.vertices())
    pairs = [(verts[rng.randrange(len(verts))], verts[rng.randrange(len(verts))]) for _ in range(150)]
    for a, b in pairs:
        assert arr.lca(a, b) == scalar.lca(a, b)
        assert arr.is_ancestor(a, b) == scalar.is_ancestor(a, b)
        assert arr.distance(a, b) == scalar.distance(a, b)
    avs, bvs = zip(*pairs)
    expect = [scalar.lca(a, b) for a, b in pairs]
    assert arr.lca_batch(list(avs), list(bvs)) == expect
    # int-array inputs take the dense-table fast path; same answers
    assert arr.lca_batch(np.asarray(avs), np.asarray(bvs)) == expect


def test_array_lca_batch_object_vertices_fall_back():
    g = gnp_random_graph(12, 0.3, seed=2)
    h = type(g)(edges=[(f"v{u}", f"v{v}") for u, v in g.edges()])
    for v in g.vertices():
        if not h.has_vertex(f"v{v}"):
            h.add_vertex(f"v{v}")
    tree = DFSTree(static_dfs_forest(h), root=VIRTUAL_ROOT)
    scalar = EulerTourLCA(tree)
    arr = ArrayLCAIndex(tree)
    verts = list(h.vertices())
    rng = random.Random(8)
    avs = [verts[rng.randrange(len(verts))] for _ in range(40)]
    bvs = [verts[rng.randrange(len(verts))] for _ in range(40)]
    assert arr.lca_batch(avs, bvs) == [scalar.lca(a, b) for a, b in zip(avs, bvs)]


def test_array_lca_unknown_vertex_raises():
    _, tree = _tree(n=8, seed=1)
    arr = ArrayLCAIndex(tree)
    some = next(iter(tree.as_arrays()["vertices"]))
    with pytest.raises(TreeError):
        arr.lca("ghost", some)
    with pytest.raises((TreeError, KeyError)):
        arr.lca_batch([10**9], [some])
