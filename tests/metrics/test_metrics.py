"""Tests for the metrics substrate."""

import math

import pytest

from repro.metrics.complexity import (
    doubling_ratios,
    estimate_power_law_exponent,
    fit_polylog_exponent,
    format_table,
    geometric_sizes,
    summarize_scaling,
)
from repro.metrics.counters import WELL_KNOWN_COUNTERS, MetricsRecorder


def test_counters_and_maxima():
    m = MetricsRecorder("test")
    m.inc("a")
    m.inc("a", 4)
    m.observe_max("width", 3)
    m.observe_max("width", 2)
    m.set("b", 7)
    assert m["a"] == 5 and m["b"] == 7 and m["width"] == 3
    assert m.get("missing") == 0 and m.get("missing", -1) == -1
    d = m.as_dict()
    assert d["a"] == 5 and d["max_width"] == 3
    m.reset()
    assert m.as_dict() == {}


def test_timer_and_merge_and_delta():
    m = MetricsRecorder()
    with m.timer("phase"):
        sum(range(1000))
    assert m["time_phase"] > 0
    other = MetricsRecorder()
    other.inc("a", 2)
    other.observe_max("w", 9)
    m.merge(other)
    assert m["a"] == 2 and m["w"] == 9
    before = m.as_dict()
    m.inc("a", 3)
    delta = m.snapshot_delta(before)
    assert delta["a"] == 3


def test_strict_recorder_rejects_unregistered_counters():
    """A counter a driver increments without a WELL_KNOWN_COUNTERS entry must
    fail loudly: the cross-driver harness runs every driver on strict
    recorders, so this is what makes registry drift impossible."""
    m = MetricsRecorder("strict", strict=True)
    with pytest.raises(KeyError, match="not registered"):
        m.inc("made_up_counter")
    with pytest.raises(KeyError, match="not registered"):
        m.observe_max("made_up_gauge", 3)
    with pytest.raises(KeyError, match="not registered"):
        m.set("made_up_value", 1)
    with pytest.raises(KeyError, match="not registered"):
        with m.timer("made_up_phase"):
            pass
    # The max_<name> alias is honoured only for maxima: an inc()/set() under
    # the raw name would still emit an unregistered key from as_dict().
    with pytest.raises(KeyError, match="not registered"):
        m.inc("overlay_size")
    with pytest.raises(KeyError, match="not registered"):
        m.set("update_batch_size", 3)
    assert m.as_dict() == {}, "rejected keys must not be recorded"


def test_strict_recorder_accepts_registered_counters_and_max_aliases():
    m = MetricsRecorder("strict", strict=True)
    m.inc("updates")
    # Maxima are recorded under the raw name but registered under max_<name>.
    m.observe_max("overlay_size", 5)
    m.observe_max("congest_max_message_words", 2)  # alias: max_congest_max_message_words
    m.set("avg_target_segments", 1.5)
    with m.timer("build_d"):
        pass
    d = m.as_dict()
    assert d["updates"] == 1 and d["max_overlay_size"] == 5


def test_registry_entries_are_documented():
    for key, description in WELL_KNOWN_COUNTERS.items():
        assert isinstance(key, str) and key
        assert isinstance(description, str) and description.strip(), key


def test_every_driver_records_only_registered_counters():
    """Drive all four drivers (plus baselines' heavy paths via validate=True)
    through strict recorders; any unregistered counter raises."""
    from repro.core.dynamic_dfs import FullyDynamicDFS
    from repro.core.fault_tolerant import FaultTolerantDFS
    from repro.distributed.distributed_dfs import DistributedDynamicDFS
    from repro.graph.generators import gnp_random_graph
    from repro.streaming.semi_streaming_dfs import SemiStreamingDynamicDFS
    from repro.workloads.updates import mixed_updates

    graph = gnp_random_graph(24, 0.15, seed=3, connected=True)
    updates = mixed_updates(graph, 8, seed=5)
    FullyDynamicDFS(
        graph,
        rebuild_every=3,
        d_maintenance="absorb",
        rebase_segment_threshold=2,
        validate=True,
        metrics=MetricsRecorder("core", strict=True),
    ).apply_all(updates)
    FullyDynamicDFS(
        graph, service="brute", metrics=MetricsRecorder("brute", strict=True)
    ).apply_all(updates)
    SemiStreamingDynamicDFS(
        graph, rebuild_every=3, metrics=MetricsRecorder("stream", strict=True)
    ).apply_all(updates)
    DistributedDynamicDFS(
        graph, rebuild_every=3, metrics=MetricsRecorder("dist", strict=True)
    ).apply_all(updates)
    FaultTolerantDFS(graph, metrics=MetricsRecorder("ft", strict=True)).query(updates[:4])


def test_power_law_and_polylog_fits():
    sizes = [2**k for k in range(6, 12)]
    linear = [3 * s for s in sizes]
    assert abs(estimate_power_law_exponent(sizes, linear) - 1.0) < 0.01
    quadratic = [s * s for s in sizes]
    assert abs(estimate_power_law_exponent(sizes, quadratic) - 2.0) < 0.01
    polylog = [math.log2(s) ** 2 for s in sizes]
    assert abs(fit_polylog_exponent(sizes, polylog) - 2.0) < 0.05
    assert estimate_power_law_exponent(sizes, polylog) < 0.6
    with pytest.raises(ValueError):
        estimate_power_law_exponent([10], [1])


def test_geometric_sizes_and_ratios():
    sizes = geometric_sizes(100, 1000, factor=2)
    assert sizes == [100, 200, 400, 800]
    with pytest.raises(ValueError):
        geometric_sizes(0, 10)
    ratios = doubling_ratios([1, 2, 4], [10, 20, 40])
    assert ratios == [2.0, 2.0]


def test_format_table_and_summary():
    table = format_table(["n", "rounds"], [[10, 3], [100, 6]])
    assert "rounds" in table and "100" in table
    summary = summarize_scaling("demo", [10, 100], {"rounds": [3, 6]})
    assert "demo" in summary and "fits:" in summary
