"""Tests for the metrics substrate."""

import math

import pytest

from repro.metrics.complexity import (
    doubling_ratios,
    estimate_power_law_exponent,
    fit_polylog_exponent,
    format_table,
    geometric_sizes,
    summarize_scaling,
)
from repro.metrics.counters import MetricsRecorder


def test_counters_and_maxima():
    m = MetricsRecorder("test")
    m.inc("a")
    m.inc("a", 4)
    m.observe_max("width", 3)
    m.observe_max("width", 2)
    m.set("b", 7)
    assert m["a"] == 5 and m["b"] == 7 and m["width"] == 3
    assert m.get("missing") == 0 and m.get("missing", -1) == -1
    d = m.as_dict()
    assert d["a"] == 5 and d["max_width"] == 3
    m.reset()
    assert m.as_dict() == {}


def test_timer_and_merge_and_delta():
    m = MetricsRecorder()
    with m.timer("phase"):
        sum(range(1000))
    assert m["time_phase"] > 0
    other = MetricsRecorder()
    other.inc("a", 2)
    other.observe_max("w", 9)
    m.merge(other)
    assert m["a"] == 2 and m["w"] == 9
    before = m.as_dict()
    m.inc("a", 3)
    delta = m.snapshot_delta(before)
    assert delta["a"] == 3


def test_power_law_and_polylog_fits():
    sizes = [2**k for k in range(6, 12)]
    linear = [3 * s for s in sizes]
    assert abs(estimate_power_law_exponent(sizes, linear) - 1.0) < 0.01
    quadratic = [s * s for s in sizes]
    assert abs(estimate_power_law_exponent(sizes, quadratic) - 2.0) < 0.01
    polylog = [math.log2(s) ** 2 for s in sizes]
    assert abs(fit_polylog_exponent(sizes, polylog) - 2.0) < 0.05
    assert estimate_power_law_exponent(sizes, polylog) < 0.6
    with pytest.raises(ValueError):
        estimate_power_law_exponent([10], [1])


def test_geometric_sizes_and_ratios():
    sizes = geometric_sizes(100, 1000, factor=2)
    assert sizes == [100, 200, 400, 800]
    with pytest.raises(ValueError):
        geometric_sizes(0, 10)
    ratios = doubling_ratios([1, 2, 4], [10, 20, 40])
    assert ratios == [2.0, 2.0]


def test_format_table_and_summary():
    table = format_table(["n", "rounds"], [[10, 3], [100, 6]])
    assert "rounds" in table and "100" in table
    summary = summarize_scaling("demo", [10, 100], {"rounds": [3, 6]})
    assert "demo" in summary and "fits:" in summary
