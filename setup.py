"""Packaging for the dynamic-DFS reproduction.

``numpy`` is a hard install dependency: the ``backend="array"`` flat/CSR core
needs it, and installs should get the fast paths by default.  The *code* still
degrades gracefully — the dict backend never imports numpy, and selecting the
array backend on a numpy-free environment raises a clean
``repro.exceptions.BackendUnavailable`` (CI's no-numpy job pins that).
"""

from setuptools import find_packages, setup

setup(
    name="repro-dynamic-dfs",
    version="0.6.0",
    description="Reproduction of fully dynamic DFS (Khan, SPAA'17) with dict and numpy array backends",
    package_dir={"": "src"},
    packages=find_packages("src"),
    python_requires=">=3.10",
    install_requires=["numpy"],
    extras_require={
        "test": ["pytest", "pytest-benchmark", "hypothesis"],
    },
)
