"""Packaging for the dynamic-DFS reproduction.

``numpy`` is a hard install dependency: the ``backend="array"`` flat/CSR core
needs it, and installs should get the fast paths by default.  The *code* still
degrades gracefully — the dict backend never imports numpy, and selecting the
array backend on a numpy-free environment raises a clean
``repro.exceptions.BackendUnavailable`` (CI's no-numpy job pins that).

Also ships ``tools.lint`` (the stdlib-only repro-lint static analysis suite,
see ``docs/lint.md``) with a ``repro-lint`` console entry point, so installed
checkouts can lint without knowing the module path.
"""

from setuptools import find_packages, setup

setup(
    name="repro-dynamic-dfs",
    version="0.7.0",
    description="Reproduction of fully dynamic DFS (Khan, SPAA'17) with dict and numpy array backends",
    package_dir={"": "src", "tools": "tools"},
    packages=find_packages("src") + ["tools", "tools.lint", "tools.lint.rules"],
    python_requires=">=3.10",
    install_requires=["numpy"],
    extras_require={
        "test": ["pytest", "pytest-benchmark", "hypothesis"],
    },
    entry_points={
        "console_scripts": [
            "repro-lint = tools.lint.cli:main",
        ],
    },
)
