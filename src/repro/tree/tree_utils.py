"""Path and subtree utilities on :class:`~repro.tree.dfs_tree.DFSTree`.

These helpers implement the "operations on T" of Section 5.3 of the paper:
finding subtrees hanging from a path, locating the minimal heavy subtree
``T(v_H)``, testing whether an edge is a back edge, and decomposing an arbitrary
path of the *new* tree into ancestor–descendant segments of the *old* tree
(needed both for ``Process-Comp`` and for the fault-tolerant extension of the
data structure ``D``).
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, List, Optional, Sequence, Tuple

from repro.exceptions import TreeError
from repro.tree.dfs_tree import DFSTree

Vertex = Hashable


def tree_path(tree: DFSTree, a: Vertex, b: Vertex) -> List[Vertex]:
    """Vertices of the tree path from *a* to *b* (inclusive)."""
    return tree.path(a, b)


def is_back_edge(tree: DFSTree, u: Vertex, v: Vertex) -> bool:
    """True iff ``(u, v)`` joins an ancestor–descendant pair of *tree*."""
    return tree.is_ancestor(u, v) or tree.is_ancestor(v, u)


def is_vertical_path(tree: DFSTree, vertices: Sequence[Vertex]) -> bool:
    """True iff *vertices* (in order) form an ancestor–descendant tree path.

    The sequence may run top-down or bottom-up; every consecutive pair must be a
    parent/child pair and the direction must not change.
    """
    if len(vertices) <= 1:
        return True
    direction = 0  # +1 going down (levels increase), -1 going up
    for a, b in zip(vertices, vertices[1:]):
        if tree.parent(b) == a:
            step = 1
        elif tree.parent(a) == b:
            step = -1
        else:
            return False
        if direction == 0:
            direction = step
        elif direction != step:
            return False
    return True


def hanging_subtrees(
    tree: DFSTree,
    path_vertices: Iterable[Vertex],
    *,
    exclude: Optional[Iterable[Vertex]] = None,
) -> List[Vertex]:
    """Roots of the subtrees hanging from *path_vertices*.

    A subtree ``T(w)`` *hangs* from a path ``p`` when ``parent(w) ∈ p`` and
    ``w ∉ p`` (Section 2 of the paper).  *exclude* lists additional vertices
    whose subtrees must be skipped (e.g. the continuation of the path itself in
    a larger structure).  Roots are returned in path order, then child order.
    """
    on_path = set(path_vertices)
    excluded = set(exclude) if exclude is not None else set()
    roots: List[Vertex] = []
    for v in path_vertices:
        for c in tree.children(v):
            if c in on_path or c in excluded:
                continue
            roots.append(c)
    return roots


def heavy_vertex(tree: DFSTree, subtree_root: Vertex, threshold: int) -> Vertex:
    """The vertex ``v_H``: the *smallest* subtree of ``T(subtree_root)`` with
    more than *threshold* vertices.

    ``T(subtree_root)`` itself must exceed *threshold*.  Because any two heavy
    children would together exceed the parent's size, heavy vertices form a
    single downward chain; ``v_H`` is its deepest vertex.
    """
    if tree.subtree_size(subtree_root) <= threshold:
        raise TreeError(
            f"subtree at {subtree_root!r} has size {tree.subtree_size(subtree_root)}"
            f" <= threshold {threshold}"
        )
    v = subtree_root
    while True:
        heavy_children = [c for c in tree.children(v) if tree.subtree_size(c) > threshold]
        if not heavy_children:
            return v
        if len(heavy_children) > 1:
            # Cannot happen for threshold >= size/2; defensive guard.
            heavy_children.sort(key=tree.subtree_size, reverse=True)
        v = heavy_children[0]


def heavy_chain(tree: DFSTree, subtree_root: Vertex, threshold: int) -> List[Vertex]:
    """The chain of heavy vertices from *subtree_root* down to ``v_H``."""
    chain = [subtree_root]
    v = subtree_root
    while True:
        heavy_children = [c for c in tree.children(v) if tree.subtree_size(c) > threshold]
        if not heavy_children:
            return chain
        v = max(heavy_children, key=tree.subtree_size)
        chain.append(v)


def ancestor_descendant_segments(
    tree: DFSTree, vertices: Sequence[Vertex]
) -> List[List[Vertex]]:
    """Split an ordered vertex sequence into maximal ancestor–descendant runs.

    The rerooting algorithm adds paths to the new tree ``T*`` that are unions of
    a constant number of ancestor–descendant paths of the old tree ``T``, glued
    by back edges (e.g. ``path(r_c, x) ∪ (x, y) ∪ path(y, r')``).  Queries on the
    data structure ``D`` only understand ancestor–descendant paths of ``T``, so
    this helper recovers the decomposition: it scans the sequence and starts a
    new segment whenever the next vertex is not a tree neighbour of the current
    one or the vertical direction flips.
    """
    segs: List[List[Vertex]] = []
    if not vertices:
        return segs
    cur: List[Vertex] = [vertices[0]]
    direction = 0
    for a, b in zip(vertices, vertices[1:]):
        if tree.parent(b) == a:
            step = 1
        elif tree.parent(a) == b:
            step = -1
        else:
            step = 0  # non-tree jump
        if step == 0 or (direction != 0 and step != direction):
            segs.append(cur)
            cur = [b]
            direction = 0
        else:
            cur.append(b)
            direction = step
    segs.append(cur)
    return segs


def segment_orientation(tree: DFSTree, segment: Sequence[Vertex]) -> Tuple[Vertex, Vertex]:
    """Return ``(top, bottom)`` endpoints of a vertical *segment* of *tree*."""
    first, last = segment[0], segment[-1]
    if tree.level(first) <= tree.level(last):
        return first, last
    return last, first


def split_path_at(path_vertices: Sequence[Vertex], vertex: Vertex) -> Tuple[List[Vertex], List[Vertex]]:
    """Split *path_vertices* at *vertex*.

    Returns ``(prefix, suffix)`` where ``prefix`` ends at *vertex* (inclusive)
    and ``suffix`` starts right after it.  Raises :class:`ValueError` when the
    vertex is not on the path.
    """
    try:
        i = list(path_vertices).index(vertex)
    except ValueError:
        raise ValueError(f"{vertex!r} is not on the given path") from None
    lst = list(path_vertices)
    return lst[: i + 1], lst[i + 1 :]


def farther_endpoint(tree: DFSTree, path_vertices: Sequence[Vertex], v: Vertex) -> Vertex:
    """Endpoint of *path_vertices* farther (in tree distance) from *v* on it.

    *v* must lie on the path.  Used by the path-halving traversal: the DFS walks
    from ``r_c`` towards the farther end so the untraversed remainder has at
    most half the length.
    """
    lst = list(path_vertices)
    if v not in lst:
        raise ValueError(f"{v!r} is not on the given path")
    i = lst.index(v)
    return lst[0] if i >= len(lst) - 1 - i else lst[-1]


def subtree_vertex_count(tree: DFSTree, roots: Iterable[Vertex]) -> int:
    """Total number of vertices in the (disjoint) subtrees rooted at *roots*."""
    return sum(tree.subtree_size(r) for r in roots)


def path_level_map(tree: DFSTree, path_vertices: Sequence[Vertex]) -> Dict[Vertex, int]:
    """Map each path vertex to its position on the path (0 = first)."""
    return {v: i for i, v in enumerate(path_vertices)}
