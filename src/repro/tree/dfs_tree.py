"""The :class:`DFSTree` structure.

A :class:`DFSTree` is an immutable snapshot of a rooted spanning tree/forest
(usually a DFS tree) together with the per-vertex tree indices the paper's
algorithms rely on (Theorem 4/10): post-order number, level (depth), subtree
size, entry/exit intervals for O(1) ancestor tests, and a lazily-built binary
lifting table for O(log n) LCA / level-ancestor queries.

The dynamic algorithms never mutate a :class:`DFSTree`; they produce a new
parent map and build a fresh snapshot (mirroring the paper, where the data
structures on ``T`` are rebuilt in ``O(log n)`` parallel time after an update).
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, Iterator, List, Mapping, Optional, Sequence, Tuple

from repro.exceptions import TreeError, VertexNotFound

Vertex = Hashable
ParentMap = Mapping[Vertex, Optional[Vertex]]


class DFSTree:
    """Immutable rooted forest with O(1)/O(log n) structural queries.

    Parameters
    ----------
    parent:
        Mapping from every vertex to its parent; roots map to ``None``.  Several
        roots are allowed (a forest), although the dynamic-DFS driver always
        passes a single-root tree rooted at the virtual root.
    root:
        Optional explicit root.  If given, it must be a root of *parent*.

    Examples
    --------
    >>> t = DFSTree({0: None, 1: 0, 2: 1, 3: 1})
    >>> t.level(3), t.subtree_size(1), t.is_ancestor(0, 3)
    (2, 3, True)
    """

    __slots__ = (
        "_verts",
        "_idx",
        "_parent_idx",
        "_children_idx",
        "_roots_idx",
        "_tin",
        "_tout",
        "_post",
        "_level",
        "_size",
        "_up",
        "_log",
        "_arrays",
    )

    def __init__(self, parent: ParentMap, *, root: Optional[Vertex] = None) -> None:
        verts: List[Vertex] = list(parent)
        idx: Dict[Vertex, int] = {v: i for i, v in enumerate(verts)}
        if len(idx) != len(verts):
            raise TreeError("duplicate vertices in parent map")
        n = len(verts)
        parent_idx: List[int] = [-1] * n
        children_idx: List[List[int]] = [[] for _ in range(n)]
        roots: List[int] = []
        for v, p in parent.items():
            vi = idx[v]
            if p is None:
                roots.append(vi)
            else:
                if p not in idx:
                    raise TreeError(f"parent {p!r} of {v!r} is not a tree vertex")
                pi = idx[p]
                parent_idx[vi] = pi
                children_idx[pi].append(vi)
        if not roots and n:
            raise TreeError("parent map has no root")
        if root is not None:
            if root not in idx:
                raise VertexNotFound(root)
            if parent_idx[idx[root]] != -1:
                raise TreeError(f"{root!r} is not a root of the parent map")
            # Put the explicit root first so preorder starts there.
            roots.remove(idx[root])
            roots.insert(0, idx[root])

        self._verts = verts
        self._idx = idx
        self._parent_idx = parent_idx
        self._children_idx = children_idx
        self._roots_idx = roots
        self._compute_indices()
        self._up: Optional[List[List[int]]] = None
        self._log = max(1, (n - 1).bit_length()) if n else 1
        self._arrays: Optional[Dict[str, object]] = None

    # ------------------------------------------------------------------ #
    # Index computation
    # ------------------------------------------------------------------ #
    def _compute_indices(self) -> None:
        n = len(self._verts)
        tin = [0] * n
        tout = [0] * n
        post = [0] * n
        level = [0] * n
        size = [1] * n
        clock = 0
        post_clock = 0
        visited = 0
        for r in self._roots_idx:
            # Iterative DFS over the children lists (insertion order).
            stack: List[Tuple[int, int]] = [(r, 0)]
            level[r] = 0
            while stack:
                v, ci = stack[-1]
                if ci == 0:
                    tin[v] = clock
                    clock += 1
                    visited += 1
                children = self._children_idx[v]
                if ci < len(children):
                    stack[-1] = (v, ci + 1)
                    c = children[ci]
                    level[c] = level[v] + 1
                    stack.append((c, 0))
                else:
                    tout[v] = clock
                    clock += 1
                    post[v] = post_clock
                    post_clock += 1
                    stack.pop()
                    if stack:
                        size[stack[-1][0]] += size[v]
        if visited != n:
            raise TreeError("parent map contains a cycle")
        self._tin = tin
        self._tout = tout
        self._post = post
        self._level = level
        self._size = size

    def _build_lifting(self) -> List[List[int]]:
        if self._up is None:
            n = len(self._verts)
            up: List[List[int]] = [list(self._parent_idx)]
            for k in range(1, self._log + 1):
                prev = up[-1]
                up.append([(-1 if prev[v] == -1 else prev[prev[v]]) for v in range(n)])
            self._up = up
        return self._up

    # ------------------------------------------------------------------ #
    # Basic accessors
    # ------------------------------------------------------------------ #
    @property
    def num_vertices(self) -> int:
        """Number of vertices in the forest."""
        return len(self._verts)

    @property
    def root(self) -> Vertex:
        """The (first) root of the forest."""
        if not self._roots_idx:
            raise TreeError("empty tree has no root")
        return self._verts[self._roots_idx[0]]

    def roots(self) -> List[Vertex]:
        """All roots of the forest."""
        return [self._verts[r] for r in self._roots_idx]

    def __contains__(self, v: Vertex) -> bool:
        return v in self._idx

    def __len__(self) -> int:
        return len(self._verts)

    def vertices(self) -> Iterator[Vertex]:
        """Iterate over all vertices."""
        return iter(self._verts)

    def _i(self, v: Vertex) -> int:
        try:
            return self._idx[v]
        except KeyError:
            raise VertexNotFound(v) from None

    def parent(self, v: Vertex) -> Optional[Vertex]:
        """Parent of *v* (``None`` for a root)."""
        p = self._parent_idx[self._i(v)]
        return None if p == -1 else self._verts[p]

    def children(self, v: Vertex) -> List[Vertex]:
        """Children of *v* in deterministic order."""
        return [self._verts[c] for c in self._children_idx[self._i(v)]]

    def level(self, v: Vertex) -> int:
        """Depth of *v* (roots have level 0)."""
        return self._level[self._i(v)]

    def postorder(self, v: Vertex) -> int:
        """Post-order number of *v* (0-based, increasing towards the root)."""
        return self._post[self._i(v)]

    def subtree_size(self, v: Vertex) -> int:
        """Number of vertices in ``T(v)``."""
        return self._size[self._i(v)]

    def as_arrays(self) -> Dict[str, object]:
        """Numpy views of the per-vertex indices, keyed by name (lazy, cached).

        Returns a dict with ``"vertices"`` (object array, index -> vertex id)
        and int64 arrays ``"parent"``, ``"post"``, ``"level"``, ``"size"``,
        ``"tin"``, ``"tout"``, all aligned with the tree's internal vertex
        indexing (``parent`` is ``-1`` at roots).  The snapshot is immutable,
        so the arrays are built once and shared; callers must not write to
        them.  Requires numpy (the array backend's tree constructors and
        :class:`repro.tree.lca.ArrayLCAIndex` use this; dict-backend code never
        calls it).
        """
        if self._arrays is None:
            import numpy as np

            n = len(self._verts)
            verts = np.empty(n, dtype=object)
            verts[:] = self._verts
            self._arrays = {
                "vertices": verts,
                "parent": np.array(self._parent_idx, dtype=np.int64),
                "post": np.array(self._post, dtype=np.int64),
                "level": np.array(self._level, dtype=np.int64),
                "size": np.array(self._size, dtype=np.int64),
                "tin": np.array(self._tin, dtype=np.int64),
                "tout": np.array(self._tout, dtype=np.int64),
            }
        return self._arrays

    def parent_map(self) -> Dict[Vertex, Optional[Vertex]]:
        """Return a plain parent map copy of the forest."""
        out: Dict[Vertex, Optional[Vertex]] = {}
        for i, v in enumerate(self._verts):
            p = self._parent_idx[i]
            out[v] = None if p == -1 else self._verts[p]
        return out

    # ------------------------------------------------------------------ #
    # Ancestry
    # ------------------------------------------------------------------ #
    def is_ancestor(self, a: Vertex, b: Vertex) -> bool:
        """True iff *a* is an ancestor of *b* (not necessarily proper)."""
        ai, bi = self._i(a), self._i(b)
        return self._tin[ai] <= self._tin[bi] and self._tout[bi] <= self._tout[ai]

    def _is_ancestor_idx(self, ai: int, bi: int) -> bool:
        return self._tin[ai] <= self._tin[bi] and self._tout[bi] <= self._tout[ai]

    def lca(self, a: Vertex, b: Vertex) -> Vertex:
        """Lowest common ancestor of *a* and *b* (must be in the same tree)."""
        ai, bi = self._i(a), self._i(b)
        li = self._lca_idx(ai, bi)
        if li == -1:
            raise TreeError(f"{a!r} and {b!r} are in different trees of the forest")
        return self._verts[li]

    def _lca_idx(self, ai: int, bi: int) -> int:
        if self._is_ancestor_idx(ai, bi):
            return ai
        if self._is_ancestor_idx(bi, ai):
            return bi
        up = self._build_lifting()
        v = ai
        for k in range(self._log, -1, -1):
            cand = up[k][v]
            if cand != -1 and not self._is_ancestor_idx(cand, bi):
                v = cand
        v = up[0][v]
        if v == -1 or not self._is_ancestor_idx(v, bi):
            return -1
        return v

    def level_ancestor(self, v: Vertex, target_level: int) -> Vertex:
        """Ancestor of *v* at depth *target_level* (0 = root of v's tree)."""
        vi = self._i(v)
        cur_level = self._level[vi]
        if target_level > cur_level or target_level < 0:
            raise TreeError(
                f"vertex {v!r} at level {cur_level} has no ancestor at level {target_level}"
            )
        steps = cur_level - target_level
        up = self._build_lifting()
        k = 0
        while steps:
            if steps & 1:
                vi = up[k][vi]
            steps >>= 1
            k += 1
        return self._verts[vi]

    def child_towards(self, ancestor: Vertex, descendant: Vertex) -> Vertex:
        """Child of *ancestor* on the tree path to *descendant*.

        *ancestor* must be a proper ancestor of *descendant*.
        """
        if ancestor == descendant or not self.is_ancestor(ancestor, descendant):
            raise TreeError(f"{ancestor!r} is not a proper ancestor of {descendant!r}")
        return self.level_ancestor(descendant, self.level(ancestor) + 1)

    def on_path(self, v: Vertex, a: Vertex, b: Vertex) -> bool:
        """True iff *v* lies on the tree path between *a* and *b*."""
        li = self._lca_idx(self._i(a), self._i(b))
        if li == -1:
            raise TreeError(f"{a!r} and {b!r} are in different trees")
        vi = self._i(v)
        if not self._is_ancestor_idx(li, vi):
            return False
        return self._is_ancestor_idx(vi, self._i(a)) or self._is_ancestor_idx(vi, self._i(b))

    # ------------------------------------------------------------------ #
    # Paths and subtrees
    # ------------------------------------------------------------------ #
    def ancestor_path(self, v: Vertex, top: Vertex) -> List[Vertex]:
        """Vertices on the tree path from *v* up to its ancestor *top*, inclusive."""
        if not self.is_ancestor(top, v):
            raise TreeError(f"{top!r} is not an ancestor of {v!r}")
        out = []
        vi = self._i(v)
        ti = self._i(top)
        while vi != ti:
            out.append(self._verts[vi])
            vi = self._parent_idx[vi]
        out.append(self._verts[ti])
        return out

    def path(self, a: Vertex, b: Vertex) -> List[Vertex]:
        """Vertices on the tree path from *a* to *b* (both inclusive)."""
        l = self.lca(a, b)
        up_part = self.ancestor_path(a, l)
        down_part = self.ancestor_path(b, l)
        down_part.pop()  # drop the LCA, already in up_part
        return up_part + list(reversed(down_part))

    def path_length(self, a: Vertex, b: Vertex) -> int:
        """Number of edges on the tree path from *a* to *b*."""
        l = self.lca(a, b)
        return self.level(a) + self.level(b) - 2 * self.level(l)

    def subtree_vertices(self, v: Vertex) -> List[Vertex]:
        """All vertices of ``T(v)`` in preorder."""
        out: List[Vertex] = []
        stack = [self._i(v)]
        while stack:
            x = stack.pop()
            out.append(self._verts[x])
            stack.extend(reversed(self._children_idx[x]))
        return out

    def preorder(self) -> List[Vertex]:
        """All vertices of the forest in preorder (root first)."""
        out: List[Vertex] = []
        for r in self._roots_idx:
            stack = [r]
            while stack:
                x = stack.pop()
                out.append(self._verts[x])
                stack.extend(reversed(self._children_idx[x]))
        return out

    def postorder_sequence(self) -> List[Vertex]:
        """All vertices sorted by post-order number."""
        order = sorted(range(len(self._verts)), key=lambda i: self._post[i])
        return [self._verts[i] for i in order]

    # ------------------------------------------------------------------ #
    # Derived trees
    # ------------------------------------------------------------------ #
    def rerooted_subtree(self, new_parent: Mapping[Vertex, Optional[Vertex]]) -> "DFSTree":
        """Return a new tree where the vertices in *new_parent* take their new
        parents and every other vertex keeps its current parent."""
        merged = self.parent_map()
        merged.update(new_parent)
        return DFSTree(merged, root=self.root if self.root in merged else None)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"DFSTree(n={len(self._verts)}, roots={self.roots()!r})"
