"""Euler tours of rooted trees.

The Euler tour technique (Tarjan–Vishkin, Theorem 4 in the paper) is the basic
tool for computing tree functions in parallel: the tour linearises the tree so
that level, subtree size and post-order numbers become prefix-sum problems.  The
sequential constructions here are used by :class:`repro.tree.lca.EulerTourLCA`;
the metered parallel constructions live in :mod:`repro.pram.tree_functions`.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Tuple

from repro.tree.dfs_tree import DFSTree

Vertex = Hashable


def euler_tour(tree: DFSTree, root: Vertex | None = None) -> Tuple[List[Vertex], Dict[Vertex, int], List[int]]:
    """Return the Euler tour of *tree* (one tree of the forest).

    Returns ``(tour, first_occurrence, depths)`` where ``tour`` lists the
    vertices in tour order (each vertex appears ``degree`` times, ``2n-1``
    entries in total), ``first_occurrence[v]`` is the index of the first
    appearance of ``v`` and ``depths[i]`` is the depth of ``tour[i]``.

    The tour visits a vertex, recursively tours each child and returns to the
    vertex after each child — the classical "walk around the tree" order used
    for sparse-table LCA.
    """
    if root is None:
        root = tree.root
    tour: List[Vertex] = []
    first: Dict[Vertex, int] = {}
    depths: List[int] = []

    # Iterative DFS producing the Euler tour.
    stack: List[Tuple[Vertex, int]] = [(root, 0)]
    while stack:
        v, ci = stack[-1]
        if ci == 0:
            first.setdefault(v, len(tour))
            tour.append(v)
            depths.append(tree.level(v))
        children = tree.children(v)
        if ci < len(children):
            stack[-1] = (v, ci + 1)
            stack.append((children[ci], 0))
        else:
            stack.pop()
            if stack:
                u = stack[-1][0]
                tour.append(u)
                depths.append(tree.level(u))
    return tour, first, depths


def euler_tour_arrays(tree: DFSTree, root: Vertex | None = None):
    """Vectorized Euler tour construction (array-backend fast path).

    Returns ``(tour_idx, first, depths)`` as numpy int64 arrays: ``tour_idx``
    holds vertex *indices* (into ``tree.as_arrays()["vertices"]``) in tour
    order, ``first[i]`` is the tour position of vertex index ``i``'s first
    appearance (``-1`` for vertices outside *root*'s tree) and ``depths`` are
    the tour depths.  Equivalent to :func:`euler_tour` entry for entry, but
    built by two scatter writes instead of an explicit walk: with the shared
    entry/exit clock of :class:`DFSTree`, the classical tour is exactly the
    event sequence ``ev[tin[v]] = v``, ``ev[tout[v]] = parent(v)`` sliced to
    ``[tin[root], tout[root])``.
    """
    import numpy as np

    if root is None:
        root = tree.root
    arrs = tree.as_arrays()
    tin = arrs["tin"]
    tout = arrs["tout"]
    n = len(tin)
    ri = tree._i(root)
    ev = np.empty(2 * n, dtype=np.int64)
    ev[tin] = np.arange(n, dtype=np.int64)
    # Roots scatter -1 at their exit event, but every exit event inside the
    # slice below belongs to a proper descendant of *root*, whose parent index
    # is valid.
    ev[tout] = arrs["parent"]
    lo = int(tin[ri])
    hi = int(tout[ri])
    tour_idx = ev[lo:hi].copy()
    depths = arrs["level"][tour_idx]
    first = np.where((tin >= lo) & (tout <= hi), tin - lo, -1)
    return tour_idx, first, depths


def edge_tour(tree: DFSTree, root: Vertex | None = None) -> List[Tuple[Vertex, Vertex]]:
    """Return the Euler tour as a list of directed tree edges.

    Each tree edge ``(u, v)`` appears twice: once as ``(u, v)`` when the tour
    descends into ``v`` and once as ``(v, u)`` when it returns.  This is the
    representation used by the list-ranking based parallel constructions.
    """
    if root is None:
        root = tree.root
    tour: List[Tuple[Vertex, Vertex]] = []
    stack: List[Tuple[Vertex, int]] = [(root, 0)]
    while stack:
        v, ci = stack[-1]
        children = tree.children(v)
        if ci < len(children):
            stack[-1] = (v, ci + 1)
            c = children[ci]
            tour.append((v, c))
            stack.append((c, 0))
        else:
            stack.pop()
            if stack:
                tour.append((v, stack[-1][0]))
    return tour
