"""Rooted-tree substrate: the DFS tree structure, Euler tours, LCA indices and
path/subtree utilities used by the rerooting algorithms."""

from repro.tree.dfs_tree import DFSTree
from repro.tree.euler import euler_tour
from repro.tree.lca import BinaryLiftingLCA, EulerTourLCA
from repro.tree.tree_utils import (
    ancestor_descendant_segments,
    hanging_subtrees,
    heavy_vertex,
    tree_path,
)

__all__ = [
    "DFSTree",
    "euler_tour",
    "BinaryLiftingLCA",
    "EulerTourLCA",
    "tree_path",
    "hanging_subtrees",
    "heavy_vertex",
    "ancestor_descendant_segments",
]
