"""Lowest-common-ancestor indices.

Two interchangeable implementations:

* :class:`BinaryLiftingLCA` — sparse ancestor table, ``O(n log n)`` build,
  ``O(log n)`` query, also answers level-ancestor queries.
* :class:`EulerTourLCA` — Euler tour + sparse table over depths, ``O(n log n)``
  build, ``O(1)`` query.  This is the classical stand-in for Schieber–Vishkin
  (Theorem 5/6 of the paper): the query bound matches and the construction
  parallelises with ``O(log n)`` depth (see :mod:`repro.pram.lca_parallel`).
"""

from __future__ import annotations

from typing import Dict, Hashable, List

from repro.exceptions import TreeError
from repro.tree.dfs_tree import DFSTree
from repro.tree.euler import euler_tour, euler_tour_arrays

Vertex = Hashable


class BinaryLiftingLCA:
    """LCA/level-ancestor queries via binary lifting.

    This simply delegates to the lazily-built lifting table inside
    :class:`DFSTree`; it exists so callers can depend on an explicit index
    object with the same interface as :class:`EulerTourLCA`.
    """

    def __init__(self, tree: DFSTree) -> None:
        self._tree = tree

    def lca(self, a: Vertex, b: Vertex) -> Vertex:
        """Lowest common ancestor of *a* and *b*."""
        return self._tree.lca(a, b)

    def is_ancestor(self, a: Vertex, b: Vertex) -> bool:
        """True iff *a* is an ancestor of *b*."""
        return self._tree.is_ancestor(a, b)

    def level_ancestor(self, v: Vertex, level: int) -> Vertex:
        """Ancestor of *v* at the given depth."""
        return self._tree.level_ancestor(v, level)


class EulerTourLCA:
    """Constant-time LCA queries via Euler tour + sparse table (range-minimum).

    Build time and space are ``O(n log n)``; each query performs two table
    look-ups.  Only vertices of the tree containing ``root`` are indexed.
    """

    def __init__(self, tree: DFSTree, root: Vertex | None = None) -> None:
        self._tree = tree
        tour, first, depths = euler_tour(tree, root)
        self._tour = tour
        self._first = first
        m = len(tour)
        self._log_table = self._build_log_table(m)
        self._sparse = self._build_sparse(depths)

    @staticmethod
    def _build_log_table(m: int) -> List[int]:
        log = [0] * (m + 1)
        for i in range(2, m + 1):
            log[i] = log[i // 2] + 1
        return log

    def _build_sparse(self, depths: List[int]) -> List[List[int]]:
        m = len(depths)
        if m == 0:
            return [[]]
        levels = self._log_table[m] + 1
        # sparse[k][i] = index (into the tour) of the minimum-depth entry in
        # tour[i : i + 2^k].
        sparse: List[List[int]] = [list(range(m))]
        for k in range(1, levels):
            half = 1 << (k - 1)
            prev = sparse[k - 1]
            width = m - (1 << k) + 1
            row = []
            for i in range(max(width, 0)):
                left = prev[i]
                right = prev[i + half]
                row.append(left if depths[left] <= depths[right] else right)
            sparse.append(row)
        self._depths = depths
        return sparse

    def _range_min_index(self, lo: int, hi: int) -> int:
        """Index of the minimum-depth tour entry in the inclusive range [lo, hi]."""
        span = hi - lo + 1
        k = self._log_table[span]
        left = self._sparse[k][lo]
        right = self._sparse[k][hi - (1 << k) + 1]
        return left if self._depths[left] <= self._depths[right] else right

    def lca(self, a: Vertex, b: Vertex) -> Vertex:
        """Lowest common ancestor of *a* and *b* (O(1))."""
        try:
            ia, ib = self._first[a], self._first[b]
        except KeyError as exc:
            raise TreeError(f"vertex {exc.args[0]!r} is not indexed by this LCA structure") from None
        if ia > ib:
            ia, ib = ib, ia
        return self._tour[self._range_min_index(ia, ib)]

    def is_ancestor(self, a: Vertex, b: Vertex) -> bool:
        """True iff *a* is an ancestor of *b*."""
        return self.lca(a, b) == a

    def distance(self, a: Vertex, b: Vertex) -> int:
        """Number of tree edges between *a* and *b*."""
        l = self.lca(a, b)
        return self._tree.level(a) + self._tree.level(b) - 2 * self._tree.level(l)


class ArrayLCAIndex:
    """Euler-tour sparse-table LCA over numpy arrays, with batch queries.

    The array-backend counterpart of :class:`EulerTourLCA`: same tour, same
    range-minimum sparse table, same answers, but the table is a single padded
    2-D int64 array built with vectorized ``np.where`` sweeps and
    :meth:`lca_batch` answers many queries in one shot (two fancy-indexed
    table look-ups for the whole batch).  Requires numpy.
    """

    def __init__(self, tree: DFSTree, root: Vertex | None = None) -> None:
        import numpy as np

        self._np = np
        self._tree = tree
        tour, first, depths = euler_tour_arrays(tree, root)
        self._tour = tour
        self._first = first
        self._depths = depths
        arrs = tree.as_arrays()
        self._verts = arrs["vertices"]
        self._tin = arrs["tin"]
        self._tout = arrs["tout"]
        m = len(tour)
        log = np.zeros(m + 1, dtype=np.int64)
        for k in range(1, m.bit_length()):
            log[1 << k :] = k
        self._log = log
        levels = int(log[m]) + 1 if m else 1
        # table[k][i] = tour index of the minimum-depth entry in
        # tour[i : i + 2^k]; positions past the valid width are padding
        # (copied from the previous level, never read by a query).
        table = np.empty((levels, max(m, 1)), dtype=np.int64)
        table[0] = np.arange(max(m, 1), dtype=np.int64)
        for k in range(1, levels):
            half = 1 << (k - 1)
            width = m - (1 << k) + 1
            prev = table[k - 1]
            left = prev[:width]
            right = prev[half : half + width]
            table[k, :width] = np.where(depths[left] <= depths[right], left, right)
            table[k, width:] = prev[width:]
        self._table = table
        self._vert2idx = self._build_vert2idx(tree)

    def _build_vert2idx(self, tree: DFSTree):
        """Dense int-id -> tree-index table when vertex ids allow it.

        Lets :meth:`lca_batch` replace the per-vertex dict lookups with one
        gather.  ``None`` (object ids, huge/negative ids) falls back to the
        dict path; a non-int root (e.g. the virtual root) is tolerated by
        masking its slot out.
        """
        np = self._np
        verts = tree._verts
        n = len(verts)
        if not n:
            return None
        ids = verts
        root = tree.root
        if not isinstance(root, int):
            try:
                ri = verts.index(root)
            except ValueError:
                ri = -1
            if ri >= 0:
                ids = list(verts)
                ids[ri] = -1
        # bools are ints here, which is fine (hash(True) == hash(1)); floats
        # and other objects must NOT silently truncate into the table.
        if not all(isinstance(v, int) for v in ids):
            return None
        arr = np.array(ids, dtype=np.int64)
        mask = arr >= 0
        if not bool(mask.any()):
            return None
        pos = arr[mask]
        if int(pos.min()) < 0 or int(pos.max()) > 8 * n + 64:
            return None
        table = np.full(int(pos.max()) + 1, -1, dtype=np.int64)
        table[pos] = np.flatnonzero(mask)
        return table

    def _batch_indices(self, vs, n: int):
        """Tree indices for *vs* via the dense table, or ``None`` to signal
        the caller to use the dict path (object ids, unknown ids, no table)."""
        np = self._np
        table = self._vert2idx
        if table is None:
            return None
        arr = np.asarray(vs)
        if arr.shape != (n,) or arr.dtype.kind not in "iub":
            return None
        arr = arr.astype(np.int64, copy=False)
        if n == 0:
            return arr
        if int(arr.min()) < 0 or int(arr.max()) >= len(table):
            return None
        out = table[arr]
        if int(out.min()) < 0:
            return None
        return out

    def _first_of(self, v: Vertex):
        try:
            f = self._first[self._tree._idx[v]]
        except KeyError:
            raise TreeError(f"vertex {v!r} is not indexed by this LCA structure") from None
        if f < 0:
            raise TreeError(f"vertex {v!r} is not indexed by this LCA structure")
        return f

    def lca(self, a: Vertex, b: Vertex) -> Vertex:
        """Lowest common ancestor of *a* and *b* (O(1))."""
        ia = self._first_of(a)
        ib = self._first_of(b)
        if ia > ib:
            ia, ib = ib, ia
        k = self._log[ib - ia + 1]
        left = self._table[k, ia]
        right = self._table[k, ib - (1 << int(k)) + 1]
        m = left if self._depths[left] <= self._depths[right] else right
        return self._verts[self._tour[m]]

    def lca_batch(self, avs, bvs) -> List[Vertex]:
        """Lowest common ancestors of the pairs ``zip(avs, bvs)``, vectorized.

        Returns a list aligned with the inputs; answers equal ``[self.lca(a,
        b) for a, b in zip(avs, bvs)]`` but the whole batch costs two sparse
        table gathers.
        """
        np = self._np
        na = len(avs)
        ia = self._batch_indices(avs, na)
        ib = self._batch_indices(bvs, na) if ia is not None else None
        if ia is None or ib is None:
            idx = self._tree._idx
            ia = np.fromiter((idx[a] for a in avs), dtype=np.int64, count=na)
            ib = np.fromiter((idx[b] for b in bvs), dtype=np.int64, count=na)
        return self._verts[self.lca_indices_batch(ia, ib)].tolist()

    def lca_indices_batch(self, ia, ib):
        """Vectorized LCA core over *tree index* arrays.

        Takes two aligned int64 arrays of tree indices (as used by
        ``tree.as_arrays()``) and returns the int64 array of LCA tree indices.
        :meth:`lca_batch` is this plus the vertex-id resolution on both ends;
        callers that already hold indices (e.g. the snapshot service's
        vectorized path-length) skip the conversions entirely.
        """
        np = self._np
        fa = self._first[ia]
        fb = self._first[ib]
        if len(ia) and (int(fa.min()) < 0 or int(fb.min()) < 0):
            bad_i = int(ia[int(np.argmin(fa))]) if int(fa.min()) < 0 else int(ib[int(np.argmin(fb))])
            raise TreeError(
                f"vertex {self._tree._verts[bad_i]!r} is not indexed by this LCA structure"
            )
        lo = np.minimum(fa, fb)
        hi = np.maximum(fa, fb)
        ks = self._log[hi - lo + 1]
        left = self._table[ks, lo]
        right = self._table[ks, hi - np.left_shift(1, ks) + 1]
        mins = np.where(self._depths[left] <= self._depths[right], left, right)
        return self._tour[mins]

    def is_ancestor(self, a: Vertex, b: Vertex) -> bool:
        """True iff *a* is an ancestor of *b* (O(1) via entry/exit intervals)."""
        ai = self._tree._i(a)
        bi = self._tree._i(b)
        return bool(self._tin[ai] <= self._tin[bi] and self._tout[bi] <= self._tout[ai])

    def distance(self, a: Vertex, b: Vertex) -> int:
        """Number of tree edges between *a* and *b*."""
        l = self.lca(a, b)
        return self._tree.level(a) + self._tree.level(b) - 2 * self._tree.level(l)
