"""Lowest-common-ancestor indices.

Two interchangeable implementations:

* :class:`BinaryLiftingLCA` — sparse ancestor table, ``O(n log n)`` build,
  ``O(log n)`` query, also answers level-ancestor queries.
* :class:`EulerTourLCA` — Euler tour + sparse table over depths, ``O(n log n)``
  build, ``O(1)`` query.  This is the classical stand-in for Schieber–Vishkin
  (Theorem 5/6 of the paper): the query bound matches and the construction
  parallelises with ``O(log n)`` depth (see :mod:`repro.pram.lca_parallel`).
"""

from __future__ import annotations

from typing import Dict, Hashable, List

from repro.exceptions import TreeError
from repro.tree.dfs_tree import DFSTree
from repro.tree.euler import euler_tour

Vertex = Hashable


class BinaryLiftingLCA:
    """LCA/level-ancestor queries via binary lifting.

    This simply delegates to the lazily-built lifting table inside
    :class:`DFSTree`; it exists so callers can depend on an explicit index
    object with the same interface as :class:`EulerTourLCA`.
    """

    def __init__(self, tree: DFSTree) -> None:
        self._tree = tree

    def lca(self, a: Vertex, b: Vertex) -> Vertex:
        """Lowest common ancestor of *a* and *b*."""
        return self._tree.lca(a, b)

    def is_ancestor(self, a: Vertex, b: Vertex) -> bool:
        """True iff *a* is an ancestor of *b*."""
        return self._tree.is_ancestor(a, b)

    def level_ancestor(self, v: Vertex, level: int) -> Vertex:
        """Ancestor of *v* at the given depth."""
        return self._tree.level_ancestor(v, level)


class EulerTourLCA:
    """Constant-time LCA queries via Euler tour + sparse table (range-minimum).

    Build time and space are ``O(n log n)``; each query performs two table
    look-ups.  Only vertices of the tree containing ``root`` are indexed.
    """

    def __init__(self, tree: DFSTree, root: Vertex | None = None) -> None:
        self._tree = tree
        tour, first, depths = euler_tour(tree, root)
        self._tour = tour
        self._first = first
        m = len(tour)
        self._log_table = self._build_log_table(m)
        self._sparse = self._build_sparse(depths)

    @staticmethod
    def _build_log_table(m: int) -> List[int]:
        log = [0] * (m + 1)
        for i in range(2, m + 1):
            log[i] = log[i // 2] + 1
        return log

    def _build_sparse(self, depths: List[int]) -> List[List[int]]:
        m = len(depths)
        if m == 0:
            return [[]]
        levels = self._log_table[m] + 1
        # sparse[k][i] = index (into the tour) of the minimum-depth entry in
        # tour[i : i + 2^k].
        sparse: List[List[int]] = [list(range(m))]
        for k in range(1, levels):
            half = 1 << (k - 1)
            prev = sparse[k - 1]
            width = m - (1 << k) + 1
            row = []
            for i in range(max(width, 0)):
                left = prev[i]
                right = prev[i + half]
                row.append(left if depths[left] <= depths[right] else right)
            sparse.append(row)
        self._depths = depths
        return sparse

    def _range_min_index(self, lo: int, hi: int) -> int:
        """Index of the minimum-depth tour entry in the inclusive range [lo, hi]."""
        span = hi - lo + 1
        k = self._log_table[span]
        left = self._sparse[k][lo]
        right = self._sparse[k][hi - (1 << k) + 1]
        return left if self._depths[left] <= self._depths[right] else right

    def lca(self, a: Vertex, b: Vertex) -> Vertex:
        """Lowest common ancestor of *a* and *b* (O(1))."""
        try:
            ia, ib = self._first[a], self._first[b]
        except KeyError as exc:
            raise TreeError(f"vertex {exc.args[0]!r} is not indexed by this LCA structure") from None
        if ia > ib:
            ia, ib = ib, ia
        return self._tour[self._range_min_index(ia, ib)]

    def is_ancestor(self, a: Vertex, b: Vertex) -> bool:
        """True iff *a* is an ancestor of *b*."""
        return self.lca(a, b) == a

    def distance(self, a: Vertex, b: Vertex) -> int:
        """Number of tree edges between *a* and *b*."""
        l = self.lca(a, b)
        return self._tree.level(a) + self._tree.level(b) - 2 * self._tree.level(l)
