"""Parallel LCA preprocessing (stand-in for Schieber–Vishkin, Theorems 5–6).

The structure is the classical Euler-tour + sparse-table range-minimum index.
Preprocessing runs through the :class:`~repro.pram.machine.PRAM` simulator in
``O(log n)`` parallel steps of ``O(n)`` processors each (``O(n log n)`` work —
within the paper's poly-logarithmic slack, see DESIGN.md §3); each query then
takes ``O(1)`` host time, and a batch of ``k`` independent queries is one more
parallel step of ``k`` processors, matching Theorem 6.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Sequence, Tuple

from repro.exceptions import TreeError
from repro.pram.machine import PRAM
from repro.tree.dfs_tree import DFSTree
from repro.tree.euler import euler_tour

Vertex = Hashable


class ParallelLCA:
    """Sparse-table LCA whose construction is metered on the PRAM simulator."""

    def __init__(self, pram: PRAM, tree: DFSTree, root: Vertex | None = None) -> None:
        self._pram = pram
        self._tree = tree
        tour, first, depths = euler_tour(tree, root)
        # Building the tour itself is an Euler-tour + list-ranking computation
        # (see repro.pram.tree_functions); charge its model cost explicitly.
        n = max(len(tour), 2)
        pram.charge(depth=max(1, (n - 1).bit_length()), work=len(tour))
        self._tour = tour
        self._first = first
        self._depths = depths
        self._log_table = self._build_log_table(len(tour))
        self._sparse = self._build_sparse_parallel(depths)

    @staticmethod
    def _build_log_table(m: int) -> List[int]:
        log = [0] * (m + 1)
        for i in range(2, m + 1):
            log[i] = log[i // 2] + 1
        return log

    def _build_sparse_parallel(self, depths: Sequence[int]) -> List[List[int]]:
        m = len(depths)
        if m == 0:
            return [[]]
        levels = self._log_table[m] + 1
        sparse: List[List[int]] = [list(range(m))]
        for k in range(1, levels):
            half = 1 << (k - 1)
            width = m - (1 << k) + 1
            prev = sparse[k - 1]
            row_arr = self._pram.zeros(max(width, 0), f"lca_sparse_{k}")

            def fill(_proc: int, i: int, *, prev=prev, half=half, row_arr=row_arr) -> None:
                left = prev[i]
                right = prev[i + half]
                row_arr.write(i, left if depths[left] <= depths[right] else right)

            if width > 0:
                self._pram.parallel_step(range(width), fill, label="lca_sparse")
            sparse.append(row_arr.to_list())
        return sparse

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #
    def _range_min_index(self, lo: int, hi: int) -> int:
        span = hi - lo + 1
        k = self._log_table[span]
        left = self._sparse[k][lo]
        right = self._sparse[k][hi - (1 << k) + 1]
        return left if self._depths[left] <= self._depths[right] else right

    def lca(self, a: Vertex, b: Vertex) -> Vertex:
        """LCA of *a* and *b* in O(1) host time."""
        try:
            ia, ib = self._first[a], self._first[b]
        except KeyError as exc:
            raise TreeError(f"vertex {exc.args[0]!r} is not indexed") from None
        if ia > ib:
            ia, ib = ib, ia
        return self._tour[self._range_min_index(ia, ib)]

    def batch_lca(self, pairs: Sequence[Tuple[Vertex, Vertex]]) -> List[Vertex]:
        """Answer *pairs* as one parallel step of ``len(pairs)`` processors
        (Theorem 6: k LCA queries in O(log n) EREW time with k processors)."""
        results: Dict[int, Vertex] = {}

        def answer(proc: int, pair: Tuple[Vertex, Vertex]) -> None:
            results[proc] = self.lca(pair[0], pair[1])

        self._pram.parallel_step(list(pairs), answer, label="lca_batch")
        # EREW simulation of the shared index costs an extra log factor.
        self._pram.charge(depth=max(1, (len(self._tour) - 1).bit_length()))
        return [results[i] for i in range(len(pairs))]
