"""Parallel tree functions via the Euler tour technique (Tarjan–Vishkin).

Theorem 4 of the paper: a rooted tree on ``n`` vertices can be processed in
``O(log n)`` time with ``n`` processors (EREW) to obtain post-order numbers,
levels and subtree sizes.  The classical construction is reproduced here:

1. build the directed Euler tour as a linked list of tree arcs (each tree edge
   contributes a *down* and an *up* arc);
2. list-rank the tour by pointer jumping to obtain each arc's position;
3. prefix-sum ``+1`` for down arcs and ``-1`` for up arcs to obtain levels;
4. prefix-sum the up-arc indicator to obtain post-order numbers;
5. subtract arc positions to obtain subtree sizes.

The whole pipeline is executed through the :class:`~repro.pram.machine.PRAM`
simulator so its depth/work are metered (bench E6), and the results are checked
against the sequential :class:`~repro.tree.dfs_tree.DFSTree` indices in tests.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Mapping, Optional, Tuple

from repro.exceptions import TreeError
from repro.pram.machine import PRAM
from repro.pram.primitives import parallel_prefix_sums, pointer_jumping_list_ranking

Vertex = Hashable


def _build_children(parent: Mapping[Vertex, Optional[Vertex]]) -> Tuple[List[Vertex], Dict[Vertex, int], List[List[int]], int]:
    verts = list(parent)
    idx = {v: i for i, v in enumerate(verts)}
    children: List[List[int]] = [[] for _ in verts]
    root_idx = -1
    for v, p in parent.items():
        if p is None:
            if root_idx != -1:
                raise TreeError("parallel tree functions expect a single-rooted tree")
            root_idx = idx[v]
        else:
            children[idx[p]].append(idx[v])
    if root_idx == -1 and verts:
        raise TreeError("parent map has no root")
    return verts, idx, children, root_idx


def parallel_tree_functions(
    pram: PRAM, parent: Mapping[Vertex, Optional[Vertex]]
) -> Dict[str, Dict[Vertex, int]]:
    """Compute ``level``, ``postorder`` and ``size`` maps for the tree *parent*.

    Returns ``{"level": {...}, "postorder": {...}, "size": {...}}``.  Matches
    the sequential indices computed by :class:`DFSTree` (same child order).
    """
    verts, idx, children, root_idx = _build_children(parent)
    n = len(verts)
    if n == 0:
        return {"level": {}, "postorder": {}, "size": {}}
    if n == 1:
        v = verts[0]
        return {"level": {v: 0}, "postorder": {v: 0}, "size": {v: 1}}

    # Arc numbering: for the i-th non-root vertex (host order), its down arc is
    # 2i and its up arc is 2i+1.
    non_root = [i for i in range(n) if i != root_idx]
    arc_of_vertex = {v: k for k, v in enumerate(non_root)}
    num_arcs = 2 * len(non_root)

    parent_idx = [-1] * n
    for v, p in parent.items():
        if p is not None:
            parent_idx[idx[v]] = idx[p]

    child_pos: Dict[int, int] = {}
    for u in range(n):
        for pos, c in enumerate(children[u]):
            child_pos[c] = pos

    def down(v: int) -> int:
        return 2 * arc_of_vertex[v]

    def up(v: int) -> int:
        return 2 * arc_of_vertex[v] + 1

    # Successor links of the Euler tour (one parallel step over arcs).
    successor = pram.zeros(num_arcs, "euler_succ")

    def set_successor(_proc: int, arc: int) -> None:
        v = non_root[arc // 2]
        if arc % 2 == 0:
            # down arc (parent(v) -> v): next is the first child of v, else up(v).
            kids = children[v]
            successor.write(arc, down(kids[0]) if kids else up(v))
        else:
            # up arc (v -> parent(v)): next is the next sibling of v, else the
            # parent's up arc (or the end of the tour at the root).
            u = parent_idx[v]
            kids = children[u]
            pos = child_pos[v]
            if pos + 1 < len(kids):
                successor.write(arc, down(kids[pos + 1]))
            elif u == root_idx:
                successor.write(arc, -1)
            else:
                successor.write(arc, up(u))

    pram.parallel_step(range(num_arcs), set_successor, label="euler_successor")

    # Position of each arc in the tour via list ranking.
    dist_to_end = pointer_jumping_list_ranking(pram, successor.to_list())
    positions = [num_arcs - 1 - d for d in dist_to_end]

    # Order arcs by position (scatter step).
    tour = pram.array([-1] * num_arcs, "euler_tour")

    def scatter(_proc: int, arc: int) -> None:
        tour.write(positions[arc], arc)

    pram.parallel_step(range(num_arcs), scatter, label="euler_scatter")
    tour_list = tour.to_list()

    # Levels: prefix sums of +1 (down) / -1 (up) along the tour.
    deltas = [1 if arc % 2 == 0 else -1 for arc in tour_list]
    depth_after = parallel_prefix_sums(pram, deltas)

    # Post-order: prefix count of up arcs along the tour.
    up_counts = parallel_prefix_sums(pram, [1 if arc % 2 == 1 else 0 for arc in tour_list])

    level: Dict[Vertex, int] = {verts[root_idx]: 0}
    postorder: Dict[Vertex, int] = {verts[root_idx]: n - 1}
    size: Dict[Vertex, int] = {verts[root_idx]: n}

    pos_of_arc = positions

    def finalize(_proc: int, k: int) -> None:
        v = non_root[k]
        vert = verts[v]
        p_down = pos_of_arc[down(v)]
        p_up = pos_of_arc[up(v)]
        level[vert] = int(depth_after[p_down])
        postorder[vert] = int(up_counts[p_up]) - 1
        size[vert] = (p_up - p_down + 1) // 2

    pram.parallel_step(range(len(non_root)), finalize, label="euler_finalize")
    return {"level": level, "postorder": postorder, "size": size}
