"""The PRAM cost-model simulator.

A :class:`PRAM` instance executes *synchronous parallel steps*: a step takes a
list of work items and a per-item function, applies the function to every item
(sequentially, under the GIL), and charges

* ``depth += 1`` — one unit of parallel time, and
* ``work += len(items)`` — one unit of work per (virtual) processor used.

The optional *strict EREW* mode routes all memory traffic through
:class:`SharedArray` handles and raises :class:`~repro.exceptions.EREWViolation`
if two processors touch the same cell in the same step — the discipline the
paper's EREW PRAM algorithms must obey.  Strict mode is used by the tests of the
primitives; the benchmarks run with it off to keep overheads representative.
"""

from __future__ import annotations

from typing import Callable, Dict, Generic, Iterable, List, Optional, Sequence, TypeVar

from repro.exceptions import EREWViolation, PRAMError
from repro.metrics.counters import MetricsRecorder

T = TypeVar("T")
R = TypeVar("R")


class SharedArray(Generic[T]):
    """A shared-memory array whose accesses are charged to a :class:`PRAM`.

    Reads and writes outside a parallel step are considered "host" accesses and
    are not policed; inside a step, strict mode checks the EREW discipline.
    """

    __slots__ = ("_pram", "_data", "name")

    def __init__(self, pram: "PRAM", data: Iterable[T], name: str = "array") -> None:
        self._pram = pram
        self._data: List[T] = list(data)
        self.name = name

    def __len__(self) -> int:
        return len(self._data)

    def read(self, i: int) -> T:
        self._pram._record_access(self, i, "read")
        return self._data[i]

    def write(self, i: int, value: T) -> None:
        self._pram._record_access(self, i, "write")
        self._data[i] = value

    def to_list(self) -> List[T]:
        """Host-side copy of the array contents."""
        return list(self._data)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"SharedArray({self.name}, n={len(self._data)})"


class PRAM:
    """EREW PRAM cost model.

    Parameters
    ----------
    strict_erew:
        When True, concurrent reads or writes of the same :class:`SharedArray`
        cell within one parallel step raise :class:`EREWViolation`.
    metrics:
        Optional shared recorder; depth/work are mirrored into it under
        ``pram_depth`` / ``pram_work``.
    """

    def __init__(self, *, strict_erew: bool = False, metrics: Optional[MetricsRecorder] = None) -> None:
        self.strict_erew = strict_erew
        self.metrics = metrics
        self.depth = 0
        self.work = 0
        self._in_step = False
        self._step_reads: Dict[tuple, int] = {}
        self._step_writes: Dict[tuple, int] = {}
        self._current_processor: Optional[int] = None

    # ------------------------------------------------------------------ #
    # Memory
    # ------------------------------------------------------------------ #
    def array(self, data: Iterable[T], name: str = "array") -> SharedArray[T]:
        """Allocate a shared array initialised from *data*."""
        return SharedArray(self, data, name)

    def zeros(self, n: int, name: str = "array") -> SharedArray[int]:
        """Allocate a shared array of *n* zeros."""
        return SharedArray(self, [0] * n, name)

    def _record_access(self, arr: SharedArray, index: int, kind: str) -> None:
        if not self._in_step or not self.strict_erew:
            return
        key = (id(arr), index)
        table = self._step_reads if kind == "read" else self._step_writes
        owner = table.get(key)
        if owner is not None and owner != self._current_processor:
            raise EREWViolation(f"{arr.name}[{index}]", kind)
        # A write conflicting with any read (or vice versa) from another
        # processor also violates exclusivity.
        other = self._step_writes if kind == "read" else self._step_reads
        other_owner = other.get(key)
        if other_owner is not None and other_owner != self._current_processor:
            raise EREWViolation(f"{arr.name}[{index}]", "read/write")
        table[key] = self._current_processor if self._current_processor is not None else -1

    # ------------------------------------------------------------------ #
    # Steps
    # ------------------------------------------------------------------ #
    def parallel_step(
        self,
        items: Sequence[T],
        fn: Callable[[int, T], R],
        *,
        label: str = "step",
    ) -> List[R]:
        """Execute one synchronous step: ``fn(processor_index, item)`` per item.

        Charges one unit of depth and ``len(items)`` units of work.  An empty
        item list charges nothing (the step is skipped).
        """
        if self._in_step:
            raise PRAMError("nested parallel steps are not allowed (the model is synchronous)")
        if not items:
            return []
        self._in_step = True
        self._step_reads.clear()
        self._step_writes.clear()
        results: List[R] = []
        try:
            for i, item in enumerate(items):
                self._current_processor = i
                results.append(fn(i, item))
        finally:
            self._current_processor = None
            self._in_step = False
        self.depth += 1
        self.work += len(items)
        if self.metrics is not None:
            self.metrics.inc("pram_depth")
            self.metrics.inc("pram_work", len(items))
            self.metrics.observe_max("pram_processors", len(items))
        return results

    def charge(self, *, depth: int = 0, work: int = 0) -> None:
        """Manually charge model cost (used when a helper computes a quantity
        host-side but the modelled algorithm would have paid for it)."""
        self.depth += depth
        self.work += work
        if self.metrics is not None:
            if depth:
                self.metrics.inc("pram_depth", depth)
            if work:
                self.metrics.inc("pram_work", work)

    def reset(self) -> None:
        """Reset depth and work counters."""
        self.depth = 0
        self.work = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"PRAM(depth={self.depth}, work={self.work}, strict_erew={self.strict_erew})"
