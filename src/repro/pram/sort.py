"""Simulated parallel merge sort.

The paper uses Cole's parallel merge sort (Theorem 7) to sort adjacency lists by
post-order number when building the data structure ``D``.  Cole's pipelined
algorithm achieves ``O(log n)`` depth; this module implements the simpler
bottom-up merge sort whose merges are parallelised by binary-search ranking,
giving ``O(log^2 n)`` depth and ``O(n log n)`` work — the substitution recorded
in DESIGN.md §3 (the extra ``log n`` is absorbed by the paper's ``O~``).

Depth accounting is *level synchronous*: all pair merges of one level run inside
a single parallel step, so the metered depth of a full sort is
``O(log n)`` steps × ``O(log n)`` charged binary-search depth.
"""

from __future__ import annotations

import math
from typing import Callable, List, Optional, Sequence, TypeVar

from repro.pram.machine import PRAM

T = TypeVar("T")
Key = Callable[[T], object]


def _bisect_right(seq: Sequence[T], value: object, key: Key) -> int:
    lo, hi = 0, len(seq)
    while lo < hi:
        mid = (lo + hi) // 2
        if key(seq[mid]) <= value:
            lo = mid + 1
        else:
            hi = mid
    return lo


def _bisect_left(seq: Sequence[T], value: object, key: Key) -> int:
    lo, hi = 0, len(seq)
    while lo < hi:
        mid = (lo + hi) // 2
        if key(seq[mid]) < value:
            lo = mid + 1
        else:
            hi = mid
    return lo


def parallel_merge(pram: PRAM, a: Sequence[T], b: Sequence[T], key: Optional[Key] = None) -> List[T]:
    """Merge two sorted sequences by ranking each element into the other.

    One parallel step over ``len(a) + len(b)`` processors; each processor does a
    binary search, so an extra ``O(log)`` depth is charged explicitly.
    """
    k: Key = key if key is not None else (lambda x: x)
    n_a, n_b = len(a), len(b)
    if n_a == 0:
        return list(b)
    if n_b == 0:
        return list(a)
    out: List[Optional[T]] = [None] * (n_a + n_b)
    out_arr = pram.array(out, "merge_out")

    def place(i: int, _item: int) -> None:
        if i < n_a:
            x = a[i]
            pos = i + _bisect_left(b, k(x), k)
        else:
            x = b[i - n_a]
            pos = (i - n_a) + _bisect_right(a, k(x), k)
        out_arr.write(pos, x)

    pram.parallel_step(range(n_a + n_b), place, label="parallel_merge")
    pram.charge(depth=max(1, math.ceil(math.log2(max(n_a, n_b, 2)))))
    return out_arr.to_list()  # type: ignore[return-value]


def parallel_merge_sort(pram: PRAM, values: Sequence[T], key: Optional[Key] = None) -> List[T]:
    """Sort *values* with level-synchronous bottom-up parallel merge sort.

    Depth ``O(log^2 n)``, work ``O(n log n)``; stable for equal keys (elements
    of the left run are ranked with ``bisect_left``, elements of the right run
    with ``bisect_right``).
    """
    k: Key = key if key is not None else (lambda x: x)
    runs: List[List[T]] = [[v] for v in values]
    if not runs:
        return []
    while len(runs) > 1:
        pair_count = len(runs) // 2
        run_len = max(len(r) for r in runs)
        outputs: List[List[Optional[T]]] = [
            [None] * (len(runs[2 * p]) + len(runs[2 * p + 1])) for p in range(pair_count)
        ]
        out_arrs = [pram.array(buf, f"merge_out_{p}") for p, buf in enumerate(outputs)]

        # Flatten all elements of all pairs into one synchronous step.
        tasks: List[tuple] = []
        for p in range(pair_count):
            a, b = runs[2 * p], runs[2 * p + 1]
            tasks.extend((p, "a", i) for i in range(len(a)))
            tasks.extend((p, "b", j) for j in range(len(b)))

        def place(_proc: int, task: tuple) -> None:
            p, side, i = task
            a, b = runs[2 * p], runs[2 * p + 1]
            if side == "a":
                x = a[i]
                pos = i + _bisect_left(b, k(x), k)
            else:
                x = b[i]
                pos = i + _bisect_right(a, k(x), k)
            out_arrs[p].write(pos, x)

        pram.parallel_step(tasks, place, label="merge_level")
        pram.charge(depth=max(1, math.ceil(math.log2(max(run_len, 2)))))

        next_runs: List[List[T]] = [arr.to_list() for arr in out_arrs]  # type: ignore[misc]
        if len(runs) % 2:
            next_runs.append(runs[-1])
        runs = next_runs
    return runs[0]


def sort_depth_upper_bound(n: int) -> int:
    """Depth budget for the simulated sort: roughly ``(log2 n)^2 + 2 log2 n``."""
    if n <= 1:
        return 1
    log = math.ceil(math.log2(n))
    return log * log + 2 * log + 1
