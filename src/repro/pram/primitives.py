"""Classical EREW-PRAM primitives (metered).

All primitives take a :class:`~repro.pram.machine.PRAM` instance, operate on
plain Python lists for convenience, and charge the model costs of the textbook
algorithms they implement:

================================  ===========  ==============
primitive                         depth        work
================================  ===========  ==============
prefix sums (double buffered)     O(log n)     O(n log n)
reduction / max / min             O(log n)     O(n)
pack (stable compaction)          O(log n)     O(n log n)
list ranking (pointer jumping)    O(log n)     O(n log n)
================================  ===========  ==============

The ``O(n log n)`` work terms (instead of the work-optimal ``O(n)`` variants)
are within the paper's poly-logarithmic slack; see DESIGN.md §3.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence, TypeVar

from repro.pram.machine import PRAM

T = TypeVar("T")


def parallel_prefix_sums(pram: PRAM, values: Sequence[float]) -> List[float]:
    """Inclusive prefix sums via the Blelloch up-sweep / down-sweep scan.

    Work ``O(n)``, depth ``O(log n)``; every step touches pairwise-disjoint
    cells, so the scan passes the strict EREW checker.
    """
    n = len(values)
    if n == 0:
        return []
    if n == 1:
        return [values[0]]
    size = 1
    while size < n:
        size *= 2
    tree = pram.array(list(values) + [0] * (size - n), "scan_tree")

    # Up-sweep (reduce).
    d = 1
    while d < size:
        stride = 2 * d

        def up(i: int, _item: int, *, d: int = d, stride: int = stride) -> None:
            base = i * stride
            tree.write(base + stride - 1, tree.read(base + stride - 1) + tree.read(base + d - 1))

        pram.parallel_step(range(size // stride), up, label="scan_up")
        d = stride

    # Down-sweep (exclusive scan).
    tree.write(size - 1, 0)
    d = size // 2
    while d >= 1:
        stride = 2 * d

        def down(i: int, _item: int, *, d: int = d, stride: int = stride) -> None:
            base = i * stride
            left = tree.read(base + d - 1)
            right = tree.read(base + stride - 1)
            tree.write(base + d - 1, right)
            tree.write(base + stride - 1, left + right)

        pram.parallel_step(range(size // stride), down, label="scan_down")
        d //= 2

    exclusive = tree.to_list()
    out = pram.array([0] * n, "scan_out")

    def to_inclusive(i: int, _item: int) -> None:
        out.write(i, exclusive[i] + values[i])

    pram.parallel_step(range(n), to_inclusive, label="scan_inclusive")
    return out.to_list()


def parallel_reduce(
    pram: PRAM,
    values: Sequence[T],
    op: Callable[[T, T], T],
) -> T:
    """Reduce *values* with the associative operator *op* in O(log n) depth."""
    if not values:
        raise ValueError("cannot reduce an empty sequence")
    cur = pram.array(list(values), "reduce")
    n = len(values)
    while n > 1:
        half = (n + 1) // 2
        def step(i: int, _item: int, *, cur=cur, n=n, half=half) -> None:
            j = i + half
            if j < n:
                cur.write(i, op(cur.read(i), cur.read(j)))
        pram.parallel_step(range(half), step, label="reduce")
        n = half
    return cur.read(0)


def parallel_max(pram: PRAM, values: Sequence[T], key: Optional[Callable[[T], object]] = None) -> T:
    """Maximum of *values* under *key* in O(log n) depth."""
    if key is None:
        return parallel_reduce(pram, values, lambda a, b: a if a >= b else b)
    return parallel_reduce(pram, values, lambda a, b: a if key(a) >= key(b) else b)


def parallel_min(pram: PRAM, values: Sequence[T], key: Optional[Callable[[T], object]] = None) -> T:
    """Minimum of *values* under *key* in O(log n) depth."""
    if key is None:
        return parallel_reduce(pram, values, lambda a, b: a if a <= b else b)
    return parallel_reduce(pram, values, lambda a, b: a if key(a) <= key(b) else b)


def parallel_pack(pram: PRAM, values: Sequence[T], flags: Sequence[bool]) -> List[T]:
    """Stable compaction: keep ``values[i]`` where ``flags[i]`` is truthy.

    Implemented with a prefix sum over the flags followed by one scatter step.
    """
    if len(values) != len(flags):
        raise ValueError("values and flags must have the same length")
    n = len(values)
    if n == 0:
        return []
    offsets = parallel_prefix_sums(pram, [1 if f else 0 for f in flags])
    total = int(offsets[-1])
    out = pram.array([None] * total, "pack_out")  # type: ignore[list-item]
    vals = pram.array(list(values), "pack_in")
    flg = pram.array([1 if f else 0 for f in flags], "pack_flags")
    off = pram.array([int(x) for x in offsets], "pack_offsets")

    def scatter(i: int, _item: int) -> None:
        if flg.read(i):
            out.write(off.read(i) - 1, vals.read(i))

    pram.parallel_step(range(n), scatter, label="pack_scatter")
    return out.to_list()


def pointer_jumping_list_ranking(pram: PRAM, successor: Sequence[int]) -> List[int]:
    """List ranking by pointer jumping.

    ``successor[i]`` is the index of the next element of the linked list, or
    ``-1`` for the tail.  Returns ``rank[i]`` = number of links from ``i`` to the
    tail.  Depth O(log n), work O(n log n).

    Note: textbook pointer jumping lets a node and its predecessor read the same
    cell in one step, i.e. it is CREW; the standard EREW simulation costs one
    extra ``O(log n)`` factor, which is within the paper's polylog slack
    (DESIGN.md §3).  The strict EREW checker is therefore not applied to this
    primitive.
    """
    n = len(successor)
    if n == 0:
        return []
    succ = pram.array(list(successor), "lr_succ")
    succ_next = pram.array(list(successor), "lr_succ_next")
    rank = pram.array([0 if s == -1 else 1 for s in successor], "lr_rank")
    rank_next = pram.array(rank.to_list(), "lr_rank_next")

    rounds = max(1, (n - 1).bit_length())
    for _ in range(rounds):
        def jump(i: int, _item: int) -> None:
            s = succ.read(i)
            if s == -1:
                rank_next.write(i, rank.read(i))
                succ_next.write(i, -1)
            else:
                rank_next.write(i, rank.read(i) + rank.read(s))
                succ_next.write(i, succ.read(s))
        pram.parallel_step(range(n), jump, label="list_ranking")
        succ, succ_next = succ_next, succ
        rank, rank_next = rank_next, rank
    return rank.to_list()
