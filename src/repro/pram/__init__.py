"""EREW-PRAM cost-model substrate.

CPython's GIL prevents genuine shared-memory parallel speedups, so the
reproduction follows the substitution documented in DESIGN.md §3: parallel
algorithms are executed step-by-step by a simulator that meters **depth**
(parallel time) and **work** (total operations) and can optionally enforce the
EREW access discipline.  The primitives here are the classical building blocks
the paper cites (Theorems 4–7): prefix sums, reductions, list ranking /
pointer jumping, Euler-tour tree functions, parallel merge sort and parallel
LCA preprocessing.
"""

from repro.pram.machine import PRAM, SharedArray
from repro.pram.primitives import (
    parallel_max,
    parallel_min,
    parallel_pack,
    parallel_prefix_sums,
    parallel_reduce,
    pointer_jumping_list_ranking,
)
from repro.pram.sort import parallel_merge, parallel_merge_sort
from repro.pram.tree_functions import parallel_tree_functions
from repro.pram.lca_parallel import ParallelLCA

__all__ = [
    "PRAM",
    "SharedArray",
    "parallel_prefix_sums",
    "parallel_reduce",
    "parallel_max",
    "parallel_min",
    "parallel_pack",
    "pointer_jumping_list_ranking",
    "parallel_merge",
    "parallel_merge_sort",
    "parallel_tree_functions",
    "ParallelLCA",
]
