"""Shared constants.

The dynamic-DFS machinery follows the paper's convention of augmenting the graph
with a *virtual root* connected to every vertex (Section 2), so that a DFS
*forest* of a possibly disconnected graph is represented as a single DFS tree
rooted at the virtual root.  User vertices may be any hashable values except the
sentinel below.
"""

from __future__ import annotations

from typing import Final

#: Sentinel used as the virtual root of the augmented DFS tree.  It compares
#: unequal to every ordinary vertex id (ints, strings, tuples, ...).
VIRTUAL_ROOT: Final = ("__virtual_root__",)


def is_virtual_root(vertex: object) -> bool:
    """Return True iff *vertex* is the virtual root sentinel."""
    return vertex == VIRTUAL_ROOT
