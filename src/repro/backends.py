"""Backend selection: the dict reference core vs. the numpy array core.

Every driver accepts ``backend="dict" | "array"`` (default ``None`` = read the
``REPRO_BACKEND`` environment variable, falling back to ``"dict"``):

* ``"dict"`` — the reference implementation: insertion-ordered dict adjacency
  (:class:`repro.graph.graph.UndirectedGraph`) and per-vertex python lists in
  ``D`` (:class:`repro.core.structure_d.StructureD`).  Never imports numpy.
* ``"array"`` — the flat array core: int-slot vertices with CSR edge arrays
  (:class:`repro.graph.array_graph.ArrayGraph`) and one postorder-sorted flat
  adjacency array in ``D``
  (:class:`repro.core.array_structure_d.ArrayStructureD`).  Requires numpy;
  produces **byte-identical** trees, query answers and probe counters — the
  cross-driver differential harness runs every driver×policy combo on both
  backends and compares parent maps after every update.

This module is the single gate: :func:`resolve_backend` validates the knob and
raises a clean :class:`~repro.exceptions.BackendUnavailable` when the array
core is requested on a numpy-free install, and :func:`structure_class` /
:func:`native_graph` hand drivers the matching implementations without any
driver importing numpy itself.
"""

from __future__ import annotations

import os
from typing import Optional, Type

from repro.exceptions import BackendUnavailable
from repro.graph.graph import UndirectedGraph

#: Environment variable consulted when a driver is constructed with
#: ``backend=None`` — lets CI run the whole tier-1 suite on the array core
#: (``REPRO_BACKEND=array``) without touching a single test.
BACKEND_ENV_VAR = "REPRO_BACKEND"

BACKENDS = ("dict", "array")

try:  # the dict backend must keep working without numpy
    import numpy  # noqa: F401

    HAVE_NUMPY = True
except ImportError:  # pragma: no cover - exercised by the no-numpy CI job
    HAVE_NUMPY = False


def resolve_backend(backend: Optional[str]) -> str:
    """Validate *backend* and resolve ``None`` through ``REPRO_BACKEND``.

    Raises ``ValueError`` for unknown names and
    :class:`~repro.exceptions.BackendUnavailable` when ``"array"`` is selected
    but numpy cannot be imported.
    """
    if backend is None:
        backend = os.environ.get(BACKEND_ENV_VAR, "dict") or "dict"
    if backend not in BACKENDS:
        raise ValueError(
            f"unknown backend {backend!r}; expected one of {BACKENDS}"
        )
    if backend == "array" and not HAVE_NUMPY:
        raise BackendUnavailable(
            'backend="array" requires numpy (pip install numpy); '
            'the dict backend works without it — pass backend="dict" or unset '
            f"{BACKEND_ENV_VAR}"
        )
    return backend


def structure_class(backend: str) -> Type:
    """The :class:`StructureD` implementation for a resolved *backend*."""
    if backend == "array":
        from repro.core.array_structure_d import ArrayStructureD

        return ArrayStructureD
    from repro.core.structure_d import StructureD

    return StructureD


def graph_class(backend: str) -> Type[UndirectedGraph]:
    """The graph store implementation for a resolved *backend*."""
    if backend == "array":
        from repro.graph.array_graph import ArrayGraph

        return ArrayGraph
    return UndirectedGraph


def native_graph(graph: UndirectedGraph, backend: str, *, copy: bool = True) -> UndirectedGraph:
    """Return *graph* in the representation the resolved *backend* expects.

    For ``"dict"`` this is a plain :meth:`~UndirectedGraph.copy` (or the graph
    itself with ``copy=False``).  For ``"array"`` the graph is converted to an
    :class:`~repro.graph.array_graph.ArrayGraph` — a conversion is always a
    copy, except that with ``copy=False`` an existing ``ArrayGraph`` is used
    as-is.  Per-vertex adjacency insertion order is preserved exactly in both
    directions, which is what keeps traversals byte-identical.
    """
    if backend == "array":
        from repro.graph.array_graph import ArrayGraph

        if not copy and isinstance(graph, ArrayGraph):
            return graph
        return ArrayGraph.from_graph(graph)
    return graph.copy() if copy else graph
