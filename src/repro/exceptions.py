"""Exception hierarchy for the repro package.

All errors raised by the library derive from :class:`ReproError` so that callers
can catch library failures without masking programming errors elsewhere.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class of every exception raised by the library."""


class GraphError(ReproError):
    """Raised for illegal operations on the graph store."""


class VertexNotFound(GraphError):
    """Raised when an operation references a vertex that is not in the graph."""

    def __init__(self, vertex: object) -> None:
        super().__init__(f"vertex {vertex!r} is not present in the graph")
        self.vertex = vertex


class EdgeNotFound(GraphError):
    """Raised when an operation references an edge that is not in the graph."""

    def __init__(self, u: object, v: object) -> None:
        super().__init__(f"edge ({u!r}, {v!r}) is not present in the graph")
        self.edge = (u, v)


class DuplicateVertex(GraphError):
    """Raised when inserting a vertex id that already exists."""

    def __init__(self, vertex: object) -> None:
        super().__init__(f"vertex {vertex!r} is already present in the graph")
        self.vertex = vertex


class DuplicateEdge(GraphError):
    """Raised when inserting an edge that already exists."""

    def __init__(self, u: object, v: object) -> None:
        super().__init__(f"edge ({u!r}, {v!r}) is already present in the graph")
        self.edge = (u, v)


class TreeError(ReproError):
    """Raised for structural problems with a (DFS) tree."""


class NotADFSTree(TreeError):
    """Raised when a tree fails the DFS-tree validity check."""


class InvariantViolation(ReproError):
    """Raised (in ``validate=True`` mode) when a paper invariant fails.

    The production code path never raises this for correctness-critical
    conditions; instead it falls back to a correct component DFS and counts the
    event.  Tests enable strict validation so that a violation fails loudly.
    """


class UpdateError(ReproError):
    """Raised for malformed dynamic updates (e.g. deleting a missing edge)."""


class BackendUnavailable(ReproError, ImportError):
    """Raised when ``backend="array"`` is requested but numpy is missing.

    The dict backend never imports numpy, so a numpy-free install keeps
    working; asking for the array core without the dependency fails with this
    explicit error (an :class:`ImportError` subclass) instead of a stray
    ``ModuleNotFoundError`` from deep inside a hot path.
    """


class StreamingError(ReproError):
    """Raised for misuse of the semi-streaming environment."""


class DistributedError(ReproError):
    """Raised for misuse of the distributed (CONGEST) simulator."""


class PRAMError(ReproError):
    """Raised by the PRAM simulator, e.g. on EREW access violations."""


class EREWViolation(PRAMError):
    """Raised when two processors access the same cell in one step (strict mode)."""

    def __init__(self, cell: object, kind: str) -> None:
        super().__init__(f"EREW violation: concurrent {kind} on cell {cell!r}")
        self.cell = cell
        self.kind = kind
