"""Dynamic undirected graph store.

The store supports the paper's extended update model (Section 1.2): insertion or
deletion of a single edge, and insertion or deletion of a vertex *together with
any set of incident edges*.  Adjacency is kept as an insertion-ordered mapping so
that traversals are deterministic, while membership tests stay O(1).
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, Iterator, List, Tuple

from repro.exceptions import (
    DuplicateEdge,
    DuplicateVertex,
    EdgeNotFound,
    VertexNotFound,
)

Vertex = Hashable
Edge = Tuple[Vertex, Vertex]


class UndirectedGraph:
    """A simple dynamic undirected graph (no self loops, no parallel edges).

    Parameters
    ----------
    vertices:
        Optional iterable of initial vertices.
    edges:
        Optional iterable of initial edges ``(u, v)``.  Endpoints that are not
        already present are added automatically.

    Examples
    --------
    >>> g = UndirectedGraph(edges=[(0, 1), (1, 2)])
    >>> sorted(g.vertices())
    [0, 1, 2]
    >>> g.has_edge(2, 1)
    True
    """

    __slots__ = ("_adj", "_num_edges")

    def __init__(
        self,
        vertices: Iterable[Vertex] | None = None,
        edges: Iterable[Edge] | None = None,
    ) -> None:
        self._adj: Dict[Vertex, Dict[Vertex, None]] = {}
        self._num_edges = 0
        if vertices is not None:
            for v in vertices:
                if v not in self._adj:
                    self._adj[v] = {}
        if edges is not None:
            for u, v in edges:
                if u not in self._adj:
                    self._adj[u] = {}
                if v not in self._adj:
                    self._adj[v] = {}
                if v not in self._adj[u] and u != v:
                    self._add_edge_unchecked(u, v)

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def num_vertices(self) -> int:
        """Number of vertices ``n``."""
        return len(self._adj)

    @property
    def num_edges(self) -> int:
        """Number of edges ``m``."""
        return self._num_edges

    def vertices(self) -> Iterator[Vertex]:
        """Iterate over vertices in insertion order."""
        return iter(self._adj)

    def edges(self) -> Iterator[Edge]:
        """Iterate over each edge exactly once, as ``(u, v)`` with ``u`` the
        endpoint inserted first."""
        seen = set()
        for u, nbrs in self._adj.items():
            for v in nbrs:
                if v not in seen:
                    yield (u, v)
            seen.add(u)

    def neighbors(self, v: Vertex) -> Iterator[Vertex]:
        """Iterate over the neighbours of *v* in insertion order."""
        try:
            return iter(self._adj[v])
        except KeyError:
            raise VertexNotFound(v) from None

    def neighbor_list(self, v: Vertex) -> List[Vertex]:
        """Return the neighbours of *v* as a list."""
        try:
            return list(self._adj[v])
        except KeyError:
            raise VertexNotFound(v) from None

    def degree(self, v: Vertex) -> int:
        """Return the degree of *v*."""
        try:
            return len(self._adj[v])
        except KeyError:
            raise VertexNotFound(v) from None

    def has_vertex(self, v: Vertex) -> bool:
        """Return True iff *v* is a vertex of the graph."""
        return v in self._adj

    def has_edge(self, u: Vertex, v: Vertex) -> bool:
        """Return True iff the edge ``(u, v)`` is present."""
        nbrs = self._adj.get(u)
        return nbrs is not None and v in nbrs

    def __contains__(self, v: Vertex) -> bool:
        return v in self._adj

    def __len__(self) -> int:
        return len(self._adj)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"{type(self).__name__}(n={self.num_vertices}, m={self.num_edges})"
        )

    # ------------------------------------------------------------------ #
    # Mutation
    # ------------------------------------------------------------------ #
    def add_vertex(self, v: Vertex) -> None:
        """Insert an isolated vertex *v*.

        Raises :class:`DuplicateVertex` if *v* already exists.
        """
        if v in self._adj:
            raise DuplicateVertex(v)
        self._adj[v] = {}

    def add_vertex_with_edges(self, v: Vertex, neighbors: Iterable[Vertex]) -> List[Vertex]:
        """Insert vertex *v* together with edges to every vertex in *neighbors*.

        This mirrors the paper's vertex-insertion update, where the inserted
        vertex may arrive with an arbitrary set of incident edges.  Returns the
        list of neighbours actually connected (duplicates collapsed).

        The operation is atomic: every neighbour is checked before the first
        mutation, so a missing neighbour raises :class:`VertexNotFound` and
        leaves the graph untouched (no partial vertex or edge set).
        """
        if v in self._adj:
            raise DuplicateVertex(v)
        nbr_list: List[Vertex] = []
        for w in neighbors:
            if w == v:
                continue
            if w not in self._adj:
                raise VertexNotFound(w)
            if w not in nbr_list:
                nbr_list.append(w)
        self._adj[v] = {}
        for w in nbr_list:
            self._add_edge_unchecked(v, w)
        return nbr_list

    def remove_vertex(self, v: Vertex) -> List[Vertex]:
        """Delete vertex *v* and all incident edges; return its former neighbours."""
        if v not in self._adj:
            raise VertexNotFound(v)
        nbrs = list(self._adj[v])
        for w in nbrs:
            del self._adj[w][v]
        self._num_edges -= len(nbrs)
        del self._adj[v]
        return nbrs

    def add_edge(self, u: Vertex, v: Vertex) -> None:
        """Insert the edge ``(u, v)``.

        Both endpoints must already exist.  Raises :class:`DuplicateEdge` for an
        existing edge and :class:`ValueError` for a self loop.
        """
        if u == v:
            raise ValueError(f"self loops are not supported: ({u!r}, {v!r})")
        if u not in self._adj:
            raise VertexNotFound(u)
        if v not in self._adj:
            raise VertexNotFound(v)
        if v in self._adj[u]:
            raise DuplicateEdge(u, v)
        self._add_edge_unchecked(u, v)

    def remove_edge(self, u: Vertex, v: Vertex) -> None:
        """Delete the edge ``(u, v)``; raises :class:`EdgeNotFound` if absent."""
        if u not in self._adj or v not in self._adj or v not in self._adj[u]:
            raise EdgeNotFound(u, v)
        del self._adj[u][v]
        del self._adj[v][u]
        self._num_edges -= 1

    def _add_edge_unchecked(self, u: Vertex, v: Vertex) -> None:
        self._adj[u][v] = None
        self._adj[v][u] = None
        self._num_edges += 1

    # ------------------------------------------------------------------ #
    # Copies / views
    # ------------------------------------------------------------------ #
    def copy(self) -> "UndirectedGraph":
        """Return a deep copy of the graph."""
        g = UndirectedGraph()
        g._adj = {v: dict(nbrs) for v, nbrs in self._adj.items()}
        g._num_edges = self._num_edges
        return g

    def subgraph(self, vertices: Iterable[Vertex]) -> "UndirectedGraph":
        """Return the induced subgraph on *vertices*."""
        keep = set(vertices)
        g = UndirectedGraph(vertices=keep)
        for u in keep:
            if u not in self._adj:
                raise VertexNotFound(u)
            for v in self._adj[u]:
                if v in keep and not g.has_edge(u, v):
                    g._add_edge_unchecked(u, v)
        return g

    def adjacency(self) -> Dict[Vertex, List[Vertex]]:
        """Return a plain ``dict`` copy of the adjacency lists."""
        return {v: list(nbrs) for v, nbrs in self._adj.items()}

    # ------------------------------------------------------------------ #
    # Equality (structural)
    # ------------------------------------------------------------------ #
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, UndirectedGraph):
            return NotImplemented
        if set(self._adj) != set(other._adj):
            return False
        return all(
            set(self._adj[v]) == set(other._adj[v]) for v in self._adj
        )

    def __hash__(self) -> int:  # graphs are mutable: identity hash
        return id(self)
