"""Static graph traversals: DFS (Tarjan's classical O(m + n) algorithm), BFS and
connected components.

These are the sequential substrates the paper builds on ([47] in the paper): the
initial DFS tree is computed once with :func:`static_dfs_tree` /
:func:`static_dfs_forest`, after which the dynamic algorithms take over.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, List, Optional, Tuple

from repro.constants import VIRTUAL_ROOT
from repro.exceptions import VertexNotFound
from repro.graph.graph import UndirectedGraph

Vertex = Hashable


def static_dfs_tree(
    graph: UndirectedGraph,
    root: Vertex,
    *,
    restrict_to: Optional[Iterable[Vertex]] = None,
) -> Dict[Vertex, Optional[Vertex]]:
    """Compute a DFS tree of the connected component of *root*.

    Returns a parent map ``{vertex: parent}`` with ``parent[root] is None``.
    Only vertices reachable from *root* (optionally restricted to the vertex set
    *restrict_to*) appear in the map.  The traversal is iterative, so it works
    on graphs far deeper than CPython's recursion limit.

    The traversal follows adjacency-list order, i.e. it produces the *ordered*
    DFS tree of the (restricted) graph, which is convenient for reproducible
    tests; any DFS tree is acceptable for the dynamic algorithms.
    """
    if not graph.has_vertex(root):
        raise VertexNotFound(root)
    allowed = None if restrict_to is None else set(restrict_to)
    if allowed is not None and root not in allowed:
        raise VertexNotFound(root)

    parent: Dict[Vertex, Optional[Vertex]] = {root: None}
    # Each stack frame is (vertex, iterator over its neighbours).
    stack: List[Tuple[Vertex, object]] = [(root, graph.neighbors(root))]
    while stack:
        v, it = stack[-1]
        advanced = False
        for w in it:
            if w in parent:
                continue
            if allowed is not None and w not in allowed:
                continue
            parent[w] = v
            stack.append((w, graph.neighbors(w)))
            advanced = True
            break
        if not advanced:
            stack.pop()
    return parent


def static_dfs_forest(
    graph: UndirectedGraph,
    *,
    roots: Optional[Iterable[Vertex]] = None,
) -> Dict[Vertex, Optional[Vertex]]:
    """Compute a DFS forest covering every vertex of *graph*.

    The forest is returned as a single parent map in which each component root
    has parent :data:`VIRTUAL_ROOT`, matching the paper's augmentation of the
    graph with a virtual root connected to every vertex (Section 2).  The
    virtual root itself maps to ``None``.

    *roots* optionally fixes the order in which components are started.
    """
    parent: Dict[Vertex, Optional[Vertex]] = {VIRTUAL_ROOT: None}
    start_order: List[Vertex] = list(roots) if roots is not None else []
    start_order.extend(v for v in graph.vertices() if v not in start_order)
    for r in start_order:
        if r in parent:
            continue
        comp_parent = static_dfs_tree(graph, r)
        for v, p in comp_parent.items():
            if v in parent:
                continue
            parent[v] = VIRTUAL_ROOT if p is None else p
    return parent


def dfs_preorder(graph: UndirectedGraph, root: Vertex) -> List[Vertex]:
    """Return the vertices of *root*'s component in DFS preorder."""
    parent = static_dfs_tree(graph, root)
    children: Dict[Vertex, List[Vertex]] = {v: [] for v in parent}
    for v, p in parent.items():
        if p is not None:
            children[p].append(v)
    order: List[Vertex] = []
    stack = [root]
    while stack:
        v = stack.pop()
        order.append(v)
        stack.extend(reversed(children[v]))
    return order


def bfs_tree(
    graph: UndirectedGraph, root: Vertex
) -> Tuple[Dict[Vertex, Optional[Vertex]], Dict[Vertex, int]]:
    """Compute a BFS tree from *root*.

    Returns ``(parent, depth)`` maps for the component of *root*.  Used by the
    distributed simulator to build the broadcast tree of Section 6.2.
    """
    if not graph.has_vertex(root):
        raise VertexNotFound(root)
    parent: Dict[Vertex, Optional[Vertex]] = {root: None}
    depth: Dict[Vertex, int] = {root: 0}
    frontier: List[Vertex] = [root]
    while frontier:
        nxt: List[Vertex] = []
        for v in frontier:
            for w in graph.neighbors(v):
                if w not in parent:
                    parent[w] = v
                    depth[w] = depth[v] + 1
                    nxt.append(w)
        frontier = nxt
    return parent, depth


def connected_components(graph: UndirectedGraph) -> List[List[Vertex]]:
    """Return the connected components of *graph* as lists of vertices.

    Components are listed in order of their first vertex (insertion order), and
    vertices inside a component are listed in BFS order from that vertex.
    """
    seen: set = set()
    components: List[List[Vertex]] = []
    for start in graph.vertices():
        if start in seen:
            continue
        comp: List[Vertex] = [start]
        seen.add(start)
        frontier = [start]
        while frontier:
            nxt: List[Vertex] = []
            for v in frontier:
                for w in graph.neighbors(v):
                    if w not in seen:
                        seen.add(w)
                        comp.append(w)
                        nxt.append(w)
            frontier = nxt
        components.append(comp)
    return components


def component_of(graph: UndirectedGraph, vertex: Vertex) -> List[Vertex]:
    """Return the connected component containing *vertex* (BFS order)."""
    if not graph.has_vertex(vertex):
        raise VertexNotFound(vertex)
    seen = {vertex}
    comp = [vertex]
    frontier = [vertex]
    while frontier:
        nxt: List[Vertex] = []
        for v in frontier:
            for w in graph.neighbors(v):
                if w not in seen:
                    seen.add(w)
                    comp.append(w)
                    nxt.append(w)
        frontier = nxt
    return comp
