"""Static graph traversals: DFS (Tarjan's classical O(m + n) algorithm), BFS and
connected components.

These are the sequential substrates the paper builds on ([47] in the paper): the
initial DFS tree is computed once with :func:`static_dfs_tree` /
:func:`static_dfs_forest`, after which the dynamic algorithms take over.

When the graph carries the flat array core (``is_array_backend``, see
:mod:`repro.graph.array_graph`), BFS floods run as frontier-array sweeps over
the CSR snapshot and DFS runs over plain int lists instead of dict lookups.
The array paths reproduce the dict traversal **byte-identically** — the CSR
rows preserve per-vertex insertion order, candidate gathering visits them in
frontier order, and first-occurrence deduplication matches the dict's
first-discovery rule — so every caller (including the distributed 2-sweep
center election, which tie-breaks on BFS discovery order) sees the same
result on both backends.  numpy is imported lazily inside the array paths
only; the dict paths stay numpy-free.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, List, Optional, Tuple

from repro.constants import VIRTUAL_ROOT
from repro.exceptions import VertexNotFound
from repro.graph.graph import UndirectedGraph

Vertex = Hashable


def static_dfs_tree(
    graph: UndirectedGraph,
    root: Vertex,
    *,
    restrict_to: Optional[Iterable[Vertex]] = None,
) -> Dict[Vertex, Optional[Vertex]]:
    """Compute a DFS tree of the connected component of *root*.

    Returns a parent map ``{vertex: parent}`` with ``parent[root] is None``.
    Only vertices reachable from *root* (optionally restricted to the vertex set
    *restrict_to*) appear in the map.  The traversal is iterative, so it works
    on graphs far deeper than CPython's recursion limit.

    The traversal follows adjacency-list order, i.e. it produces the *ordered*
    DFS tree of the (restricted) graph, which is convenient for reproducible
    tests; any DFS tree is acceptable for the dynamic algorithms.
    """
    if not graph.has_vertex(root):
        raise VertexNotFound(root)
    allowed = None if restrict_to is None else set(restrict_to)
    if allowed is not None and root not in allowed:
        raise VertexNotFound(root)
    if allowed is None and getattr(graph, "is_array_backend", False):
        return _static_dfs_tree_array(graph, root)

    parent: Dict[Vertex, Optional[Vertex]] = {root: None}
    # Each stack frame is (vertex, iterator over its neighbours).
    stack: List[Tuple[Vertex, object]] = [(root, graph.neighbors(root))]
    while stack:
        v, it = stack[-1]
        advanced = False
        for w in it:
            if w in parent:
                continue
            if allowed is not None and w not in allowed:
                continue
            parent[w] = v
            stack.append((w, graph.neighbors(w)))
            advanced = True
            break
        if not advanced:
            stack.pop()
    return parent


def static_dfs_forest(
    graph: UndirectedGraph,
    *,
    roots: Optional[Iterable[Vertex]] = None,
) -> Dict[Vertex, Optional[Vertex]]:
    """Compute a DFS forest covering every vertex of *graph*.

    The forest is returned as a single parent map in which each component root
    has parent :data:`VIRTUAL_ROOT`, matching the paper's augmentation of the
    graph with a virtual root connected to every vertex (Section 2).  The
    virtual root itself maps to ``None``.

    *roots* optionally fixes the order in which components are started.
    """
    parent: Dict[Vertex, Optional[Vertex]] = {VIRTUAL_ROOT: None}
    start_order: List[Vertex] = list(roots) if roots is not None else []
    started = set(start_order)
    start_order.extend(v for v in graph.vertices() if v not in started)
    for r in start_order:
        if r in parent:
            continue
        comp_parent = static_dfs_tree(graph, r)
        for v, p in comp_parent.items():
            if v in parent:
                continue
            parent[v] = VIRTUAL_ROOT if p is None else p
    return parent


def dfs_preorder(graph: UndirectedGraph, root: Vertex) -> List[Vertex]:
    """Return the vertices of *root*'s component in DFS preorder."""
    parent = static_dfs_tree(graph, root)
    children: Dict[Vertex, List[Vertex]] = {v: [] for v in parent}
    for v, p in parent.items():
        if p is not None:
            children[p].append(v)
    order: List[Vertex] = []
    stack = [root]
    while stack:
        v = stack.pop()
        order.append(v)
        stack.extend(reversed(children[v]))
    return order


def bfs_tree(
    graph: UndirectedGraph, root: Vertex
) -> Tuple[Dict[Vertex, Optional[Vertex]], Dict[Vertex, int]]:
    """Compute a BFS tree from *root*.

    Returns ``(parent, depth)`` maps for the component of *root*.  Used by the
    distributed simulator to build the broadcast tree of Section 6.2.
    """
    if not graph.has_vertex(root):
        raise VertexNotFound(root)
    if getattr(graph, "is_array_backend", False):
        return _bfs_tree_array(graph, root)
    parent: Dict[Vertex, Optional[Vertex]] = {root: None}
    depth: Dict[Vertex, int] = {root: 0}
    frontier: List[Vertex] = [root]
    while frontier:
        nxt: List[Vertex] = []
        for v in frontier:
            for w in graph.neighbors(v):
                if w not in parent:
                    parent[w] = v
                    depth[w] = depth[v] + 1
                    nxt.append(w)
        frontier = nxt
    return parent, depth


def connected_components(graph: UndirectedGraph) -> List[List[Vertex]]:
    """Return the connected components of *graph* as lists of vertices.

    Components are listed in order of their first vertex (insertion order), and
    vertices inside a component are listed in BFS order from that vertex.
    """
    if getattr(graph, "is_array_backend", False):
        return _connected_components_array(graph)
    seen: set = set()
    components: List[List[Vertex]] = []
    for start in graph.vertices():
        if start in seen:
            continue
        comp: List[Vertex] = [start]
        seen.add(start)
        frontier = [start]
        while frontier:
            nxt: List[Vertex] = []
            for v in frontier:
                for w in graph.neighbors(v):
                    if w not in seen:
                        seen.add(w)
                        comp.append(w)
                        nxt.append(w)
            frontier = nxt
        components.append(comp)
    return components


def component_of(graph: UndirectedGraph, vertex: Vertex) -> List[Vertex]:
    """Return the connected component containing *vertex* (BFS order)."""
    if not graph.has_vertex(vertex):
        raise VertexNotFound(vertex)
    if getattr(graph, "is_array_backend", False):
        _, layers, ids = _bfs_layers_array(graph, graph.slot(vertex), None)
        return [ids[s] for layer in layers for s in layer]
    seen = {vertex}
    comp = [vertex]
    frontier = [vertex]
    while frontier:
        nxt: List[Vertex] = []
        for v in frontier:
            for w in graph.neighbors(v):
                if w not in seen:
                    seen.add(w)
                    comp.append(w)
                    nxt.append(w)
        frontier = nxt
    return comp


# --------------------------------------------------------------------------- #
# Array-backend fast paths (byte-identical to the dict traversals above)
# --------------------------------------------------------------------------- #
def _bfs_layers_array(graph, root_slot, seen):
    """Frontier-array BFS from *root_slot* over the CSR snapshot.

    Returns ``(parent_slot, layers, ids)``: the per-slot parent array, the
    list of frontier arrays (layer 0 = the root) and the slot -> vertex-id
    object array.  *seen* may carry a shared per-slot visited mask (used by
    :func:`_connected_components_array` across components).

    Candidate neighbours are gathered frontier-order × row-order and the first
    occurrence of each slot wins — exactly the dict BFS's first-discovery
    rule, so parents and discovery order match the dict backend entry for
    entry.
    """
    import numpy as np

    indptr, indices = graph.csr()
    ids = graph.ids_array()
    if seen is None:
        seen = np.zeros(len(ids), dtype=bool)
    seen[root_slot] = True
    parent_slot = np.full(len(ids), -1, dtype=np.int64)
    frontier = np.array([root_slot], dtype=np.int64)
    layers = [frontier]
    while frontier.size:
        starts = indptr[frontier]
        counts = indptr[frontier + 1] - starts
        total = int(counts.sum())
        if total == 0:
            break
        # Ragged gather: positions of every neighbour entry of the frontier,
        # laid out frontier-order x row-order.
        out_starts = np.zeros(len(frontier), dtype=np.int64)
        np.cumsum(counts[:-1], out=out_starts[1:])
        pos = np.arange(total, dtype=np.int64) + np.repeat(starts - out_starts, counts)
        cand = indices[pos]
        src = np.repeat(frontier, counts)
        unseen = ~seen[cand]
        cand = cand[unseen]
        src = src[unseen]
        if cand.size == 0:
            break
        _, first = np.unique(cand, return_index=True)
        first.sort()
        nxt = cand[first]
        parent_slot[nxt] = src[first]
        seen[nxt] = True
        layers.append(nxt)
        frontier = nxt
    return parent_slot, layers, ids


def _bfs_tree_array(graph, root):
    parent_slot, layers, ids = _bfs_layers_array(graph, graph.slot(root), None)
    parent: Dict[Vertex, Optional[Vertex]] = {root: None}
    depth: Dict[Vertex, int] = {root: 0}
    for d, layer in enumerate(layers[1:], start=1):
        for s in layer.tolist():
            parent[ids[s]] = ids[parent_slot[s]]
            depth[ids[s]] = d
    return parent, depth


def _connected_components_array(graph):
    import numpy as np

    seen = np.zeros(graph.num_slots, dtype=bool)
    components: List[List[Vertex]] = []
    for start in graph.vertices():
        s = graph.slot(start)
        if seen[s]:
            continue
        _, layers, ids = _bfs_layers_array(graph, s, seen)
        components.append([ids[x] for layer in layers for x in layer])
    return components


def _static_dfs_tree_array(graph, root):
    """Adjacency-order iterative DFS over plain int lists (CSR rows).

    Same traversal as the dict path — each row is scanned left to right, the
    first unvisited neighbour is descended into — but membership tests are a
    bytearray over slots and rows are python ints, which avoids the dict
    hashing on every probe.
    """
    indptr, indices = graph.csr()
    iptr = indptr.tolist()
    idx = indices.tolist()
    ids = graph.ids_array()
    visited = bytearray(graph.num_slots)
    r = graph.slot(root)
    visited[r] = 1
    parent: Dict[Vertex, Optional[Vertex]] = {root: None}
    # Each frame is [slot, next position in its CSR row].
    stack: List[List[int]] = [[r, iptr[r]]]
    while stack:
        frame = stack[-1]
        v, i = frame
        end = iptr[v + 1]
        advanced = False
        while i < end:
            w = idx[i]
            i += 1
            if not visited[w]:
                visited[w] = 1
                parent[ids[w]] = ids[v]
                frame[1] = i
                stack.append([w, iptr[w]])
                advanced = True
                break
        if not advanced:
            frame[1] = i
            stack.pop()
    return parent
