"""Graph substrate: dynamic undirected graph store, generators, static DFS,
traversals and DFS-tree validation."""

from repro.graph.graph import UndirectedGraph
from repro.graph.traversal import (
    bfs_tree,
    connected_components,
    static_dfs_forest,
    static_dfs_tree,
)
from repro.graph.validation import (
    check_dfs_tree,
    is_back_edge,
    is_valid_dfs_forest,
    is_valid_dfs_tree,
)

__all__ = [
    "UndirectedGraph",
    "static_dfs_tree",
    "static_dfs_forest",
    "bfs_tree",
    "connected_components",
    "is_valid_dfs_tree",
    "is_valid_dfs_forest",
    "is_back_edge",
    "check_dfs_tree",
]
