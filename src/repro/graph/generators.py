"""Graph generators used by tests, examples and benchmarks.

These provide the synthetic workloads for the evaluation (DESIGN.md §5): random
``G(n, p)`` / ``G(n, m)`` graphs, structured families with controlled diameter
(paths, cycles, grids, binary trees), and the adversarial families that separate
the sequential rerooting baseline from the parallel rerooting algorithm (brooms,
caterpillars, combs — long paths with heavy appendages, which force Θ(n)
sequential reroot rounds while the parallel algorithm needs only polylog).

All generators are deterministic given a ``seed``.
"""

from __future__ import annotations

import math
import random
from typing import Iterable, List, Optional, Sequence, Tuple

from repro.graph.graph import UndirectedGraph

Edge = Tuple[int, int]

#: ``gnp_random_graph`` switches from the O(n^2) cell-by-cell scan to the
#: geometric edge-skipping construction at this many vertices.  The two draw
#: different random streams, so the gate is deliberately far above every seeded
#: small-``n`` graph baked into tests and benchmarks.
GNP_FAST_PATH_MIN_N = 4096


def _rng(seed: Optional[int]) -> random.Random:
    return random.Random(seed)


# --------------------------------------------------------------------------- #
# Random graphs
# --------------------------------------------------------------------------- #
def gnp_random_graph(n: int, p: float, *, seed: Optional[int] = None, connected: bool = False) -> UndirectedGraph:
    """Erdős–Rényi ``G(n, p)`` graph on vertices ``0..n-1``.

    With ``connected=True`` a random spanning tree is added first, so the graph
    is guaranteed connected while keeping the expected edge density close to
    ``p`` for non-trivial ``p``.
    """
    if n < 0:
        raise ValueError("n must be non-negative")
    if not 0.0 <= p <= 1.0:
        raise ValueError("p must lie in [0, 1]")
    rng = _rng(seed)
    g = UndirectedGraph(vertices=range(n))
    if connected and n > 1:
        for u, v in random_spanning_tree_edges(n, seed=rng.randrange(2**31)):
            if not g.has_edge(u, v):
                g.add_edge(u, v)
    if n >= GNP_FAST_PATH_MIN_N and 0.0 < p < 1.0:
        # Batagelj–Brandes geometric skipping: expected O(n + m) instead of
        # the O(n^2) coin flip per vertex pair.  Different random stream than
        # the small-n scan, hence the n gate (seeded baselines stay stable).
        log_q = math.log(1.0 - p)
        v, w = 1, -1
        while v < n:
            w += 1 + int(math.log(1.0 - rng.random()) / log_q)
            while w >= v and v < n:
                w -= v
                v += 1
            if v < n and not g.has_edge(w, v):
                g.add_edge(w, v)
        return g
    for u in range(n):
        for v in range(u + 1, n):
            if rng.random() < p and not g.has_edge(u, v):
                g.add_edge(u, v)
    return g


def gnm_random_graph(n: int, m: int, *, seed: Optional[int] = None, connected: bool = False) -> UndirectedGraph:
    """Random graph with exactly ``n`` vertices and ``m`` edges (``G(n, m)``)."""
    max_edges = n * (n - 1) // 2
    if m > max_edges:
        raise ValueError(f"m={m} exceeds the maximum {max_edges} for n={n}")
    rng = _rng(seed)
    g = UndirectedGraph(vertices=range(n))
    if connected:
        if n > 1 and m < n - 1:
            raise ValueError("a connected graph on n vertices needs at least n-1 edges")
        for u, v in random_spanning_tree_edges(n, seed=rng.randrange(2**31)):
            g.add_edge(u, v)
    while g.num_edges < m:
        u = rng.randrange(n)
        v = rng.randrange(n)
        if u != v and not g.has_edge(u, v):
            g.add_edge(u, v)
    return g


def barabasi_albert_graph(n: int, m: int, *, seed: Optional[int] = None) -> UndirectedGraph:
    """Barabási–Albert preferential-attachment graph on ``0..n-1``.

    Starts from ``m`` isolated seed vertices; every later vertex attaches to
    ``m`` distinct existing vertices sampled with probability proportional to
    their current degree (the classic repeated-endpoints urn).  Produces the
    heavy-tailed degree distributions the large-tier benchmarks use to stress
    skewed adjacency rows; deterministic given *seed* and always connected for
    ``n > m``.
    """
    if m < 1:
        raise ValueError("m must be at least 1")
    if n < m + 1:
        raise ValueError(f"barabasi_albert_graph needs n >= m + 1, got n={n}, m={m}")
    rng = _rng(seed)
    g = UndirectedGraph(vertices=range(n))
    targets = list(range(m))
    repeated: List[int] = []
    for source in range(m, n):
        for t in targets:
            g.add_edge(source, t)
        repeated.extend(targets)
        repeated.extend([source] * m)
        new_targets: List[int] = []
        seen = set()
        while len(new_targets) < m:
            x = rng.choice(repeated)
            if x not in seen:
                seen.add(x)
                new_targets.append(x)
        targets = new_targets
    return g


def random_spanning_tree_edges(n: int, *, seed: Optional[int] = None) -> List[Edge]:
    """Edges of a uniformly-ish random spanning tree on ``0..n-1``.

    Uses the random-permutation + random-attachment construction (each vertex
    attaches to a uniformly random earlier vertex of a random permutation),
    which is cheap and produces trees of varied shape — sufficient for
    workload generation.
    """
    rng = _rng(seed)
    if n <= 1:
        return []
    perm = list(range(n))
    rng.shuffle(perm)
    edges = []
    for i in range(1, n):
        j = rng.randrange(i)
        edges.append((perm[j], perm[i]))
    return edges


def random_tree(n: int, *, seed: Optional[int] = None) -> UndirectedGraph:
    """A random tree on ``0..n-1``."""
    return UndirectedGraph(vertices=range(n), edges=random_spanning_tree_edges(n, seed=seed))


# --------------------------------------------------------------------------- #
# Structured families
# --------------------------------------------------------------------------- #
def path_graph(n: int) -> UndirectedGraph:
    """Path ``0 - 1 - ... - n-1`` (diameter ``n-1``)."""
    return UndirectedGraph(vertices=range(n), edges=[(i, i + 1) for i in range(n - 1)])


def cycle_graph(n: int) -> UndirectedGraph:
    """Cycle on ``n ≥ 3`` vertices."""
    if n < 3:
        raise ValueError("a cycle needs at least 3 vertices")
    edges = [(i, (i + 1) % n) for i in range(n)]
    return UndirectedGraph(vertices=range(n), edges=edges)


def star_graph(n: int) -> UndirectedGraph:
    """Star with centre ``0`` and ``n-1`` leaves (diameter 2)."""
    return UndirectedGraph(vertices=range(n), edges=[(0, i) for i in range(1, n)])


def complete_graph(n: int) -> UndirectedGraph:
    """Complete graph ``K_n``."""
    edges = [(u, v) for u in range(n) for v in range(u + 1, n)]
    return UndirectedGraph(vertices=range(n), edges=edges)


def grid_graph(rows: int, cols: int) -> UndirectedGraph:
    """``rows × cols`` grid; vertex ``(r, c)`` is numbered ``r * cols + c``.

    Diameter is ``rows + cols - 2``, which makes grids handy for the
    distributed experiments where diameter is the controlled parameter.
    """
    edges: List[Edge] = []
    for r in range(rows):
        for c in range(cols):
            v = r * cols + c
            if c + 1 < cols:
                edges.append((v, v + 1))
            if r + 1 < rows:
                edges.append((v, v + cols))
    return UndirectedGraph(vertices=range(rows * cols), edges=edges)


def complete_binary_tree(height: int) -> UndirectedGraph:
    """Complete binary tree of the given *height* (``2^(height+1) - 1`` vertices)."""
    n = 2 ** (height + 1) - 1
    edges = [((i - 1) // 2, i) for i in range(1, n)]
    return UndirectedGraph(vertices=range(n), edges=edges)


def cycle_with_chords(n: int, num_chords: int, *, seed: Optional[int] = None) -> UndirectedGraph:
    """Cycle on ``n`` vertices plus *num_chords* random chords.

    Adding chords shrinks the diameter, giving a family with tunable diameter
    for the CONGEST experiments (E4)."""
    rng = _rng(seed)
    g = cycle_graph(n)
    added = 0
    while added < num_chords:
        u = rng.randrange(n)
        v = rng.randrange(n)
        if u != v and not g.has_edge(u, v):
            g.add_edge(u, v)
            added += 1
    return g


# --------------------------------------------------------------------------- #
# Adversarial families for dynamic DFS
# --------------------------------------------------------------------------- #
def broom_graph(handle: int, bristles: int) -> UndirectedGraph:
    """A *broom*: a path of length *handle* whose last vertex has *bristles* leaves.

    Brooms (and their repeated version, combs) are the canonical bad case for
    the sequential rerooting procedure: rerooting at a leaf repeatedly forces a
    long chain of dependent reroots, whereas the parallel algorithm processes
    the hanging subtrees in a constant number of stages per level.
    """
    n = handle + bristles
    edges = [(i, i + 1) for i in range(handle - 1)]
    edges += [(handle - 1, handle + i) for i in range(bristles)]
    return UndirectedGraph(vertices=range(n), edges=edges)


def caterpillar_graph(spine: int, legs_per_vertex: int) -> UndirectedGraph:
    """A caterpillar: a spine path where every spine vertex carries leaf legs."""
    edges = [(i, i + 1) for i in range(spine - 1)]
    next_id = spine
    for s in range(spine):
        for _ in range(legs_per_vertex):
            edges.append((s, next_id))
            next_id += 1
    return UndirectedGraph(vertices=range(next_id), edges=edges)


def comb_graph(teeth: int, tooth_length: int) -> UndirectedGraph:
    """A comb: a spine of *teeth* vertices, each carrying a path of *tooth_length*.

    With back edges added from each tooth tip to the spine vertex before its
    tooth (see :func:`comb_with_tip_back_edges`), rerooting at a tooth tip
    forces the sequential algorithm through Θ(teeth) dependent reroots.
    """
    edges = [(i, i + 1) for i in range(teeth - 1)]
    next_id = teeth
    for t in range(teeth):
        prev = t
        for _ in range(tooth_length):
            edges.append((prev, next_id))
            prev = next_id
            next_id += 1
    return UndirectedGraph(vertices=range(next_id), edges=edges)


def comb_with_back_edges(teeth: int, tooth_length: int) -> UndirectedGraph:
    """A comb plus an edge from every tooth tip back to the start of the spine.

    Historical note: because every tip reaches spine vertex 0 directly, the
    canonical minimum-postorder source re-anchoring lets the sequential
    rerooting baseline shortcut the Θ(teeth) dependency chain through the
    tips — use :func:`comb_with_tip_back_edges` when the separation between
    the sequential and parallel engines is the point of the experiment.
    """
    g = comb_graph(teeth, tooth_length)
    # Tooth t occupies vertices teeth + t*tooth_length .. teeth + (t+1)*tooth_length - 1
    for t in range(teeth):
        tip = teeth + (t + 1) * tooth_length - 1
        if tooth_length > 0 and not g.has_edge(0, tip) and tip != 0:
            g.add_edge(0, tip)
    return g


def comb_with_tip_back_edges(teeth: int, tooth_length: int) -> UndirectedGraph:
    """A comb plus an edge from every tooth tip back to the spine vertex
    *before* its own tooth.

    The adversarial variant whose back edges *survive* the canonical
    minimum-postorder source re-anchoring: each hanging subtree's only edges
    into the evolving carved path land one spine vertex back, so — whichever
    endpoint the canonical answer picks as the source — the sequential
    rerooting baseline still peels exactly one tooth per dependent reroot
    (Θ(teeth) chain), while the parallel engine processes the teeth in a
    poly-logarithmic number of rounds.  Contrast with
    :func:`comb_with_back_edges`, whose tip-to-spine-start edges give every
    subtree a shortcut to the same anchor vertex.
    """
    g = comb_graph(teeth, tooth_length)
    if tooth_length < 1:
        return g
    for t in range(1, teeth):
        tip = teeth + (t + 1) * tooth_length - 1
        if not g.has_edge(tip, t - 1):
            g.add_edge(tip, t - 1)
    return g


def lollipop_graph(clique: int, tail: int) -> UndirectedGraph:
    """A clique of size *clique* attached to a path (tail) of length *tail*."""
    g = complete_graph(clique)
    prev = clique - 1
    for i in range(tail):
        v = clique + i
        g.add_vertex(v)
        g.add_edge(prev, v)
        prev = v
    return g


# --------------------------------------------------------------------------- #
# Helpers
# --------------------------------------------------------------------------- #
def graph_from_edges(edges: Iterable[Edge], *, vertices: Optional[Sequence[int]] = None) -> UndirectedGraph:
    """Build a graph from an edge list (convenience wrapper)."""
    return UndirectedGraph(vertices=vertices, edges=edges)


FAMILIES = {
    "gnp": gnp_random_graph,
    "gnm": gnm_random_graph,
    "barabasi_albert": barabasi_albert_graph,
    "path": path_graph,
    "cycle": cycle_graph,
    "star": star_graph,
    "complete": complete_graph,
    "grid": grid_graph,
    "binary_tree": complete_binary_tree,
    "broom": broom_graph,
    "caterpillar": caterpillar_graph,
    "comb": comb_graph,
    "comb_back_edges": comb_with_back_edges,
    "comb_tip_back_edges": comb_with_tip_back_edges,
    "lollipop": lollipop_graph,
    "random_tree": random_tree,
    "cycle_with_chords": cycle_with_chords,
}
