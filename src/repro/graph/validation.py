"""DFS-tree validation.

A rooted spanning tree of an undirected graph is a DFS tree **iff every non-tree
edge is a back edge** (one endpoint is an ancestor of the other) — the necessary
and sufficient condition stated in Section 1 of the paper.  The checkers below
implement that condition directly and are used throughout the test suite to
validate every tree produced by every engine.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Optional, Tuple

from repro.constants import VIRTUAL_ROOT, is_virtual_root
from repro.graph.graph import UndirectedGraph

Vertex = Hashable
ParentMap = Dict[Vertex, Optional[Vertex]]


def _orientation(parent: ParentMap) -> Tuple[Dict[Vertex, int], Dict[Vertex, int], bool]:
    """Compute entry/exit intervals of the tree described by *parent*.

    Returns ``(tin, tout, acyclic)`` where ``acyclic`` is False when the parent
    map contains a cycle or a vertex whose parent is missing from the map.
    """
    children: Dict[Vertex, List[Vertex]] = {v: [] for v in parent}
    roots: List[Vertex] = []
    for v, p in parent.items():
        if p is None:
            roots.append(v)
        else:
            if p not in parent:
                return {}, {}, False
            children[p].append(v)

    tin: Dict[Vertex, int] = {}
    tout: Dict[Vertex, int] = {}
    clock = 0
    for root in roots:
        stack: List[Tuple[Vertex, int]] = [(root, 0)]
        while stack:
            v, idx = stack[-1]
            if idx == 0:
                if v in tin:  # visited twice -> cycle
                    return {}, {}, False
                tin[v] = clock
                clock += 1
            if idx < len(children[v]):
                stack[-1] = (v, idx + 1)
                stack.append((children[v][idx], 0))
            else:
                tout[v] = clock
                clock += 1
                stack.pop()
    if len(tin) != len(parent):
        return {}, {}, False
    return tin, tout, True


def is_ancestor_in(tin: Dict[Vertex, int], tout: Dict[Vertex, int], a: Vertex, b: Vertex) -> bool:
    """Return True iff *a* is an ancestor of *b* (not necessarily proper)."""
    return tin[a] <= tin[b] and tout[b] <= tout[a]


def is_back_edge(parent: ParentMap, u: Vertex, v: Vertex) -> bool:
    """Return True iff ``(u, v)`` is a back edge w.r.t. the tree *parent*.

    A tree edge is also reported as a back edge (its endpoints are in
    ancestor-descendant relation), matching the paper's usage.
    """
    tin, tout, ok = _orientation(parent)
    if not ok or u not in tin or v not in tin:
        return False
    return is_ancestor_in(tin, tout, u, v) or is_ancestor_in(tin, tout, v, u)


def check_dfs_tree(
    graph: UndirectedGraph,
    parent: ParentMap,
    *,
    require_spanning: bool = True,
) -> List[str]:
    """Check that *parent* describes a DFS tree/forest of *graph*.

    The parent map may contain the :data:`VIRTUAL_ROOT` sentinel as the root of
    the forest; edges to the virtual root are treated as the paper's implicit
    augmentation edges and are not required to exist in *graph*.

    Returns a list of human-readable problems; an empty list means the tree is
    valid.  Checked conditions:

    1. structural sanity: exactly one root per tree, no cycles;
    2. every tree edge exists in the graph (virtual-root edges excepted);
    3. (optionally) the forest spans every vertex of the graph;
    4. every vertex of the parent map is a graph vertex (or the virtual root);
    5. every non-tree edge of the graph is a back edge.
    """
    problems: List[str] = []
    if not parent:
        if require_spanning and graph.num_vertices:
            problems.append("parent map is empty but the graph is not")
        return problems

    tin, tout, ok = _orientation(parent)
    if not ok:
        problems.append("parent map is not a forest (cycle or dangling parent)")
        return problems

    for v, p in parent.items():
        if not is_virtual_root(v) and not graph.has_vertex(v):
            problems.append(f"tree vertex {v!r} is not a graph vertex")
        if p is None or is_virtual_root(p) or is_virtual_root(v):
            continue
        if not graph.has_edge(v, p):
            problems.append(f"tree edge ({p!r}, {v!r}) is not a graph edge")

    if require_spanning:
        for v in graph.vertices():
            if v not in parent:
                problems.append(f"graph vertex {v!r} is missing from the tree")

    for u, v in graph.edges():
        if u not in tin or v not in tin:
            continue  # already reported by the spanning check
        if parent.get(u) == v or parent.get(v) == u:
            continue  # tree edge
        if not (is_ancestor_in(tin, tout, u, v) or is_ancestor_in(tin, tout, v, u)):
            problems.append(f"non-tree edge ({u!r}, {v!r}) is a cross edge")
    return problems


def is_valid_dfs_tree(graph: UndirectedGraph, parent: ParentMap, root: Vertex) -> bool:
    """Return True iff *parent* is a valid DFS tree of *graph* rooted at *root*.

    The tree must span the connected component of *root* exactly.
    """
    if root not in parent or parent[root] is not None:
        return False
    if check_dfs_tree(graph, parent, require_spanning=False):
        return False
    # The tree must cover exactly the component of the root.
    from repro.graph.traversal import component_of

    comp = set(component_of(graph, root)) if graph.has_vertex(root) else set()
    covered = {v for v in parent if not is_virtual_root(v)}
    return covered == comp


def is_valid_dfs_forest(graph: UndirectedGraph, parent: ParentMap) -> bool:
    """Return True iff *parent* (rooted at the virtual root) is a valid DFS
    forest spanning every vertex of *graph*."""
    if VIRTUAL_ROOT not in parent or parent[VIRTUAL_ROOT] is not None:
        return False
    return not check_dfs_tree(graph, parent, require_spanning=True)
