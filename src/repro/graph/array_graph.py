"""Flat array core for the dynamic graph store (the ``"array"`` backend).

:class:`ArrayGraph` is an :class:`~repro.graph.graph.UndirectedGraph` that
keeps the dict adjacency as the source of truth for the public API — so every
traversal, validation and equality check behaves identically to the reference
implementation — while *additionally* maintaining a flat edge-array mirror:

* vertices are mapped to dense integer **slots** (``slot_of``); freed slots are
  recycled through a free-list so sustained vertex churn cannot grow the
  arrays beyond the peak live vertex count;
* edges are two **append-only directed half-edge arrays** (``int64`` source /
  destination slots) with an alive mask; deletions mark entries dead and the
  arrays are compacted once dead entries outnumber live ones;
* a **CSR snapshot** (``indptr``/``indices``) is built on demand with one
  stable argsort and cached until the next mutation.

Because half-edges are appended in exactly the order the dict adjacency
inserts them (and a deletion + re-insertion moves the entry to the end of the
row in both representations), the CSR rows reproduce the dict's per-vertex
iteration order byte-for-byte — the property the vectorized BFS/DFS floods in
:mod:`repro.graph.traversal` and the flat ``D`` in
:mod:`repro.core.array_structure_d` rely on to stay differentially identical
to the dict backend.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, List, Optional, Tuple

import numpy as np

from repro.graph.graph import Edge, UndirectedGraph, Vertex

#: Sentinel stored in ``slot_ids`` for recycled (currently unused) slots.
_FREE = object()

#: Initial capacity of the half-edge arrays (doubled on demand).
_MIN_EDGE_CAPACITY = 16


class ArrayGraph(UndirectedGraph):
    """Dynamic undirected graph with an int-slot / CSR edge-array mirror.

    Drop-in replacement for :class:`UndirectedGraph` (same constructor, same
    update and query API, same iteration order); the extra accessors
    (:meth:`edge_arrays`, :meth:`csr`, :meth:`ids_array`, :meth:`slot`) expose
    the flat mirror to the vectorized hot paths.  ``is_array_backend`` is the
    duck-typed dispatch flag those hot paths test for.
    """

    is_array_backend = True

    __slots__ = (
        "_slot_of",
        "_slot_ids",
        "_free_slots",
        "_esrc",
        "_edst",
        "_ealive",
        "_elen",
        "_edead",
        "_edge_pos",
        "_csr",
        "_ids_cache",
        "csr_builds",
    )

    def __init__(
        self,
        vertices: Iterable[Vertex] | None = None,
        edges: Iterable[Edge] | None = None,
    ) -> None:
        self._init_array_state()
        super().__init__(vertices, edges)
        # The base constructor adds vertices by writing the adjacency dict
        # directly; edges flowed through _add_edge_unchecked (which assigns
        # slots lazily), so only isolated vertices still need one.
        for v in self._adj:
            self._ensure_slot(v)

    def _init_array_state(self) -> None:
        self._slot_of: Dict[Vertex, int] = {}
        self._slot_ids: List[object] = []
        self._free_slots: List[int] = []
        self._esrc = np.empty(_MIN_EDGE_CAPACITY, dtype=np.int64)
        self._edst = np.empty(_MIN_EDGE_CAPACITY, dtype=np.int64)
        self._ealive = np.zeros(_MIN_EDGE_CAPACITY, dtype=bool)
        self._elen = 0
        self._edead = 0
        self._edge_pos: Dict[Tuple[int, int], int] = {}
        self._csr: Optional[Tuple[np.ndarray, np.ndarray]] = None
        self._ids_cache: Optional[np.ndarray] = None
        self.csr_builds = 0

    # ------------------------------------------------------------------ #
    # Slot management (vertex-id recycling)
    # ------------------------------------------------------------------ #
    def _ensure_slot(self, v: Vertex) -> int:
        s = self._slot_of.get(v)
        if s is None:
            if self._free_slots:
                s = self._free_slots.pop()
                self._slot_ids[s] = v
            else:
                s = len(self._slot_ids)
                self._slot_ids.append(v)
            self._slot_of[v] = s
        return s

    def _invalidate(self) -> None:
        self._csr = None
        self._ids_cache = None

    def slot(self, v: Vertex) -> int:
        """Dense integer slot of vertex *v* (stable until *v* is removed)."""
        return self._slot_of[v]

    def slot_id(self, s: int) -> Optional[Vertex]:
        """Vertex currently occupying slot *s* (``None`` for a free slot)."""
        v = self._slot_ids[s]
        return None if v is _FREE else v

    @property
    def num_slots(self) -> int:
        """Allocated slots (peak live vertex count; freed slots are recycled)."""
        return len(self._slot_ids)

    def slot_index(self) -> Dict[Vertex, int]:
        """The live ``vertex -> slot`` mapping (treat as read-only)."""
        return self._slot_of

    def ids_array(self) -> np.ndarray:
        """Object ndarray mapping slot -> vertex id (``None`` for free slots).

        Cached; invalidated together with the CSR snapshot on any mutation.
        """
        if self._ids_cache is None:
            ids = np.empty(len(self._slot_ids), dtype=object)
            for i, v in enumerate(self._slot_ids):
                ids[i] = None if v is _FREE else v
            self._ids_cache = ids
        return self._ids_cache

    # ------------------------------------------------------------------ #
    # Half-edge array maintenance
    # ------------------------------------------------------------------ #
    def _grow_edges(self, need: int) -> None:
        cap = len(self._esrc)
        if need <= cap:
            return
        new_cap = max(need, cap * 2)
        for name in ("_esrc", "_edst"):
            old = getattr(self, name)
            fresh = np.empty(new_cap, dtype=np.int64)
            fresh[: self._elen] = old[: self._elen]
            setattr(self, name, fresh)
        alive = np.zeros(new_cap, dtype=bool)
        alive[: self._elen] = self._ealive[: self._elen]
        self._ealive = alive

    def _append_half_edge(self, su: int, sv: int) -> None:
        i = self._elen
        self._grow_edges(i + 1)
        self._esrc[i] = su
        self._edst[i] = sv
        self._ealive[i] = True
        self._edge_pos[(su, sv)] = i
        self._elen = i + 1

    def _kill_half_edge(self, su: int, sv: int) -> None:
        i = self._edge_pos.pop((su, sv))
        self._ealive[i] = False
        self._edead += 1

    def _maybe_compact(self) -> None:
        if self._edead * 2 <= self._elen or self._elen <= _MIN_EDGE_CAPACITY:
            return
        keep = np.flatnonzero(self._ealive[: self._elen])
        src = self._esrc[: self._elen][keep]
        dst = self._edst[: self._elen][keep]
        n = len(keep)
        self._esrc[:n] = src
        self._edst[:n] = dst
        self._ealive[:n] = True
        self._ealive[n : self._elen] = False
        self._elen = n
        self._edead = 0
        self._edge_pos = {
            (s, d): i for i, (s, d) in enumerate(zip(src.tolist(), dst.tolist()))
        }

    def edge_arrays(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """``(src, dst, alive)`` half-edge array views in append order.

        Each undirected edge contributes two directed entries.  The views are
        read-only by contract; the append order of the alive entries equals
        the dict adjacency's insertion order per vertex.
        """
        return (
            self._esrc[: self._elen],
            self._edst[: self._elen],
            self._ealive[: self._elen],
        )

    def csr(self) -> Tuple[np.ndarray, np.ndarray]:
        """CSR snapshot ``(indptr, indices)`` over slots (cached until mutated).

        ``indices[indptr[s]:indptr[s+1]]`` are the neighbour slots of the
        vertex in slot ``s``, in exactly its dict insertion order (stable
        argsort of the append-ordered half-edge arrays).
        """
        if self._csr is None:
            n = len(self._slot_ids)
            src, dst, alive = self.edge_arrays()
            live = np.flatnonzero(alive)
            s = src[live]
            order = np.argsort(s, kind="stable")
            indices = dst[live][order]
            counts = np.bincount(s, minlength=n)
            indptr = np.zeros(n + 1, dtype=np.int64)
            np.cumsum(counts, out=indptr[1:])
            self._csr = (indptr, indices)
            self.csr_builds += 1
        return self._csr

    # ------------------------------------------------------------------ #
    # Mutation overrides (keep the mirror in sync with the dict adjacency)
    # ------------------------------------------------------------------ #
    def add_vertex(self, v: Vertex) -> None:
        """Insert an isolated vertex *v* (recycles a freed slot if available)."""
        super().add_vertex(v)
        self._ensure_slot(v)
        self._invalidate()

    def add_vertex_with_edges(self, v: Vertex, neighbors: Iterable[Vertex]) -> List[Vertex]:
        """Insert vertex *v* with edges to *neighbors* (atomic, as in the base)."""
        nbrs = super().add_vertex_with_edges(v, neighbors)
        self._ensure_slot(v)  # edges already assigned a slot unless isolated
        self._invalidate()
        return nbrs

    def remove_vertex(self, v: Vertex) -> List[Vertex]:
        """Delete vertex *v*; its slot goes to the free-list for recycling."""
        nbrs = super().remove_vertex(v)
        s = self._slot_of.pop(v)
        for w in nbrs:
            sw = self._slot_of[w]
            self._kill_half_edge(s, sw)
            self._kill_half_edge(sw, s)
        self._slot_ids[s] = _FREE
        self._free_slots.append(s)
        self._invalidate()
        self._maybe_compact()
        return nbrs

    def remove_edge(self, u: Vertex, v: Vertex) -> None:
        """Delete the edge ``(u, v)``; the half-edge entries are masked dead."""
        super().remove_edge(u, v)
        su, sv = self._slot_of[u], self._slot_of[v]
        self._kill_half_edge(su, sv)
        self._kill_half_edge(sv, su)
        self._invalidate()
        self._maybe_compact()

    def _add_edge_unchecked(self, u: Vertex, v: Vertex) -> None:
        super()._add_edge_unchecked(u, v)
        su = self._ensure_slot(u)
        sv = self._ensure_slot(v)
        self._append_half_edge(su, sv)
        self._append_half_edge(sv, su)
        self._invalidate()

    # ------------------------------------------------------------------ #
    # Copies / conversion
    # ------------------------------------------------------------------ #
    def copy(self) -> "ArrayGraph":
        """Deep copy (dict adjacency, slot map and half-edge arrays)."""
        g = ArrayGraph()
        g._adj = {v: dict(nbrs) for v, nbrs in self._adj.items()}
        g._num_edges = self._num_edges
        g._slot_of = dict(self._slot_of)
        g._slot_ids = list(self._slot_ids)
        g._free_slots = list(self._free_slots)
        g._esrc = self._esrc[: self._elen].copy()
        g._edst = self._edst[: self._elen].copy()
        g._ealive = self._ealive[: self._elen].copy()
        g._elen = self._elen
        g._edead = self._edead
        g._edge_pos = dict(self._edge_pos)
        g._csr = self._csr  # snapshots are immutable once built
        return g

    @classmethod
    def from_graph(cls, graph: UndirectedGraph) -> "ArrayGraph":
        """Convert any :class:`UndirectedGraph` (always a copy).

        The dict adjacency is copied row by row — *not* replayed through
        ``edges()`` — so the per-vertex insertion order survives exactly (an
        ``edges()`` replay would reorder rows whose entries were interleaved
        with other edges).
        """
        if isinstance(graph, ArrayGraph):
            return graph.copy()
        g = cls()
        g._adj = {v: dict(nbrs) for v, nbrs in graph._adj.items()}
        g._num_edges = graph.num_edges
        for v in g._adj:
            g._ensure_slot(v)
        slot_of = g._slot_of
        srcs: List[int] = []
        dsts: List[int] = []
        for u, nbrs in g._adj.items():
            su = slot_of[u]
            for w in nbrs:
                srcs.append(su)
                dsts.append(slot_of[w])
        m2 = len(srcs)
        cap = max(m2, _MIN_EDGE_CAPACITY)
        g._esrc = np.empty(cap, dtype=np.int64)
        g._edst = np.empty(cap, dtype=np.int64)
        g._ealive = np.zeros(cap, dtype=bool)
        g._esrc[:m2] = srcs
        g._edst[:m2] = dsts
        g._ealive[:m2] = True
        g._elen = m2
        g._edge_pos = {(s, d): i for i, (s, d) in enumerate(zip(srcs, dsts))}
        return g
