"""Baseline: naive subtree rerooting by re-running a static DFS on the subtree.

Given a rerooting task (the primitive both the paper and Baswana et al. reduce
updates to), the naive approach simply runs a fresh DFS of the subgraph induced
by the subtree's vertices from the new root.  Its cost is ``O(m_τ + n_τ)``
*sequential* work with a dependency chain as long as the produced tree is deep —
the strawman against which both rerooting engines are compared in the ablation
benchmark.
"""

from __future__ import annotations

from typing import Dict, Hashable, Optional

from repro.core.reduction import RerootTask
from repro.graph.graph import UndirectedGraph
from repro.graph.traversal import static_dfs_tree
from repro.metrics.counters import MetricsRecorder
from repro.tree.dfs_tree import DFSTree

Vertex = Hashable


def naive_reroot_subtree(
    graph: UndirectedGraph,
    tree: DFSTree,
    task: RerootTask,
    *,
    metrics: Optional[MetricsRecorder] = None,
) -> Dict[Vertex, Vertex]:
    """Reroot ``T(task.subtree_root)`` at ``task.new_root`` by re-running DFS.

    Returns the new parent assignment for every vertex of the subtree (the new
    root's parent is ``task.attach``).  The result is a valid DFS tree of the
    induced subgraph but is computed with zero reuse of the existing tree.
    """
    vertices = tree.subtree_vertices(task.subtree_root)
    if metrics is not None:
        metrics.inc("naive_reroots")
        metrics.inc("naive_reroot_vertices", len(vertices))
    parent = static_dfs_tree(graph, task.new_root, restrict_to=vertices)
    out: Dict[Vertex, Vertex] = {}
    for v, p in parent.items():
        out[v] = task.attach if p is None else p
    return out
