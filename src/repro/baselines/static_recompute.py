"""Baseline: recompute the DFS forest from scratch after every update.

This is the classical ``O(m + n)`` static algorithm ([47] in the paper) applied
per update — the obvious competitor the dynamic algorithm must beat once the
graph is large.  The class exposes the same update API as
:class:`~repro.core.dynamic_dfs.FullyDynamicDFS` so benchmarks can drive both
with identical workloads (experiment E7).
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, Optional, Sequence

from repro.constants import VIRTUAL_ROOT
from repro.core.updates import (
    EdgeDeletion,
    EdgeInsertion,
    Update,
    VertexDeletion,
    VertexInsertion,
)
from repro.exceptions import UpdateError
from repro.graph.graph import UndirectedGraph
from repro.graph.traversal import static_dfs_forest
from repro.graph.validation import check_dfs_tree
from repro.metrics.counters import MetricsRecorder
from repro.tree.dfs_tree import DFSTree

Vertex = Hashable


class StaticRecomputeDFS:
    """Maintain a DFS forest by full recomputation after every update."""

    def __init__(
        self,
        graph: UndirectedGraph,
        *,
        metrics: Optional[MetricsRecorder] = None,
        copy_graph: bool = True,
    ) -> None:
        self._graph = graph.copy() if copy_graph else graph
        self.metrics = metrics or MetricsRecorder("static_recompute")
        self._tree = self._recompute()

    @property
    def graph(self) -> UndirectedGraph:
        """The current graph."""
        return self._graph

    @property
    def tree(self) -> DFSTree:
        """The current DFS forest (rooted at the virtual root)."""
        return self._tree

    def parent_map(self) -> Dict[Vertex, Optional[Vertex]]:
        """Parent map of the current forest."""
        return self._tree.parent_map()

    def is_valid(self) -> bool:
        """True iff the current tree is a valid DFS forest (it always is)."""
        return not check_dfs_tree(self._graph, self._tree.parent_map())

    # ------------------------------------------------------------------ #
    def insert_edge(self, u: Vertex, v: Vertex) -> DFSTree:
        return self.apply(EdgeInsertion(u, v))

    def delete_edge(self, u: Vertex, v: Vertex) -> DFSTree:
        return self.apply(EdgeDeletion(u, v))

    def insert_vertex(self, v: Vertex, neighbors: Iterable[Vertex] = ()) -> DFSTree:
        return self.apply(VertexInsertion(v, tuple(neighbors)))

    def delete_vertex(self, v: Vertex) -> DFSTree:
        return self.apply(VertexDeletion(v))

    def apply_all(self, updates: Sequence[Update]) -> DFSTree:
        for upd in updates:
            self.apply(upd)
        return self._tree

    def apply(self, update: Update) -> DFSTree:
        """Apply *update* and recompute the whole forest."""
        self.metrics.inc("updates")
        with self.metrics.timer("update"):
            if isinstance(update, EdgeInsertion):
                self._graph.add_edge(update.u, update.v)
            elif isinstance(update, EdgeDeletion):
                self._graph.remove_edge(update.u, update.v)
            elif isinstance(update, VertexInsertion):
                self._graph.add_vertex_with_edges(update.v, update.neighbors)
            elif isinstance(update, VertexDeletion):
                self._graph.remove_vertex(update.v)
            else:
                raise UpdateError(f"unknown update type {update!r}")
            self._tree = self._recompute()
        return self._tree

    # ------------------------------------------------------------------ #
    def _recompute(self) -> DFSTree:
        self.metrics.inc("full_recomputations")
        self.metrics.inc("static_work", self._graph.num_edges + self._graph.num_vertices)
        parent = static_dfs_forest(self._graph)
        return DFSTree(parent, root=VIRTUAL_ROOT)
