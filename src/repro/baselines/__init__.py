"""Baselines the paper's algorithm is compared against."""

from repro.baselines.static_recompute import StaticRecomputeDFS
from repro.baselines.naive_reroot import naive_reroot_subtree

__all__ = ["StaticRecomputeDFS", "naive_reroot_subtree"]
