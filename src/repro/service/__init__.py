"""MVCC snapshot query service for dynamic DFS trees.

The writer (any of the four drivers, all running one
:class:`~repro.core.engine.UpdateEngine`) keeps committing updates; on each
commit :class:`DFSTreeService` publishes an immutable versioned
:class:`TreeSnapshot` by an atomic pointer swap, and unboundedly many readers
answer LCA / path / connectivity / subtree-size / is-ancestor queries against
the last published version with zero locks and zero writer coordination.
:class:`BatchingQueryFront` fronts the service with an asyncio layer that
coalesces queries arriving within a tick into one vectorized pass over the
snapshot arrays.  See ``docs/architecture.md`` ("Query service").
"""

from repro.service.batch import BatchingQueryFront, QueryResult
from repro.service.service import DFSTreeService
from repro.service.snapshot import TreeSnapshot

__all__ = ["BatchingQueryFront", "DFSTreeService", "QueryResult", "TreeSnapshot"]
