"""Versioned immutable read views of committed DFS trees.

A :class:`TreeSnapshot` is the MVCC currency of :mod:`repro.service`: the
writer publishes one per committed version, readers answer every query against
the snapshot they hold and never coordinate with the writer.  Immutability is
structural — a snapshot wraps a committed :class:`~repro.tree.dfs_tree.DFSTree`
(which the engine never mutates; every update commits a *fresh* tree), so a
published version can never change underneath a reader.

Publication must be O(1) on the writer's commit path, so the heavy read
indices (Euler tour, LCA sparse table, component intervals) are built *lazily
inside the snapshot* by the first reader that needs them — at most one reader
per version pays the build (serialized by a small internal lock; steady-state
reads take no lock at all) and the cost is reported through the
``snapshot_build_ms`` counter rather than charged to the writer.

Two query paths share one semantics:

* **vectorized** (numpy importable): ``*_batch`` methods answer whole query
  batches with :class:`~repro.tree.lca.ArrayLCAIndex` gathers and
  tin/tout/size array fancy-indexing;
* **scalar fallback** (no numpy): the same answers via
  :class:`~repro.tree.lca.EulerTourLCA` and the tree's own O(1)/O(log n)
  accessors — a numpy-free install keeps the full service API.

Forest semantics: driver trees are rooted at the virtual root, whose children
are the component roots.  A pair in different components has the virtual root
as its tree LCA; snapshot queries surface that as ``None`` (LCA / path length)
or ``False`` (connectivity) instead of leaking the sentinel.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Dict, Hashable, List, Optional, Sequence, Tuple

from repro.constants import is_virtual_root
from repro.tree.dfs_tree import DFSTree

Vertex = Hashable

__all__ = ["TreeSnapshot"]


def _have_numpy() -> bool:
    from repro.backends import HAVE_NUMPY

    return HAVE_NUMPY


class TreeSnapshot:
    """One immutable, versioned, queryable view of a committed DFS forest.

    Parameters
    ----------
    version:
        The monotonically increasing commit sequence number this snapshot
        corresponds to (0 = the initial tree, before any update).
    tree:
        The committed :class:`DFSTree` (immutable by contract).
    on_build_ms:
        Optional callback receiving the milliseconds one lazy index build
        took (the service wires this to the ``snapshot_build_ms`` counter).
    """

    __slots__ = (
        "version",
        "tree",
        "_build_lock",
        "_lca_index",
        "_comp_data",
        "_on_build_ms",
        "_vr_idx",
    )

    def __init__(
        self,
        version: int,
        tree: DFSTree,
        *,
        on_build_ms: Optional[Callable[[float], None]] = None,
    ) -> None:
        self.version = version
        self.tree = tree
        self._build_lock = threading.Lock()
        self._lca_index = None
        self._comp_data = None
        self._on_build_ms = on_build_ms
        vr = -1
        for v in tree.roots():
            if is_virtual_root(v):
                vr = tree._i(v)
                break
        self._vr_idx = vr

    # ------------------------------------------------------------------ #
    # Lazy indices
    # ------------------------------------------------------------------ #
    def _index(self):
        """The lazily built LCA index (:class:`ArrayLCAIndex` with numpy,
        :class:`EulerTourLCA` without).  Double-checked so steady-state reads
        never lock; the one builder per version reports its cost."""
        index = self._lca_index
        if index is None:
            with self._build_lock:
                index = self._lca_index
                if index is None:
                    start = time.perf_counter()
                    if _have_numpy():
                        from repro.tree.lca import ArrayLCAIndex

                        index = ArrayLCAIndex(self.tree)
                    else:
                        from repro.tree.lca import EulerTourLCA

                        index = EulerTourLCA(self.tree)
                    self._lca_index = index
                    if self._on_build_ms is not None:
                        self._on_build_ms((time.perf_counter() - start) * 1e3)
        return index

    def _components(self):
        """Sorted component-root interval data ``(root_tins, root_idx)`` for
        the vectorized membership searchsorted (numpy path only)."""
        data = self._comp_data
        if data is None:
            with self._build_lock:
                data = self._comp_data
                if data is None:
                    import numpy as np

                    tree = self.tree
                    arrs = tree.as_arrays()
                    if self._vr_idx >= 0:
                        roots = np.flatnonzero(arrs["level"] == 1)
                    else:
                        roots = np.array(tree._roots_idx, dtype=np.int64)
                    order = np.argsort(arrs["tin"][roots], kind="stable")
                    roots = roots[order]
                    data = (arrs["tin"][roots], roots)
                    self._comp_data = data
        return data

    def _indices(self, vs: Sequence[Vertex]):
        """int64 tree indices for *vs* (raises ``VertexNotFound`` on unknown
        ids, like the scalar accessors)."""
        import numpy as np

        from repro.exceptions import VertexNotFound

        idx = self.tree._idx
        try:
            return np.fromiter((idx[v] for v in vs), dtype=np.int64, count=len(vs))
        except KeyError as exc:
            raise VertexNotFound(exc.args[0]) from None

    # ------------------------------------------------------------------ #
    # Scalar queries
    # ------------------------------------------------------------------ #
    def parent(self, v: Vertex) -> Optional[Vertex]:
        """Parent of *v* in the snapshot's tree (``None`` for component roots;
        the virtual-root sentinel never leaks)."""
        p = self.tree.parent(v)
        return None if p is None or is_virtual_root(p) else p

    def depth(self, v: Vertex) -> int:
        """Depth of *v* (the virtual root sits at 0, component roots at 1)."""
        return self.tree.level(v)

    def subtree_size(self, v: Vertex) -> int:
        """Number of vertices in the subtree rooted at *v*."""
        return self.tree.subtree_size(v)

    def is_ancestor(self, a: Vertex, b: Vertex) -> bool:
        """True iff *a* is an ancestor of *b* (not necessarily proper)."""
        return self.tree.is_ancestor(a, b)

    def lca(self, a: Vertex, b: Vertex) -> Optional[Vertex]:
        """Lowest common ancestor of *a* and *b*, or ``None`` when they sit in
        different components (their tree LCA is the virtual root)."""
        answer = self._index().lca(a, b)
        return None if is_virtual_root(answer) else answer

    def component(self, v: Vertex) -> Optional[Vertex]:
        """Component id of *v* — the root of its DFS component (``None`` for
        the virtual root itself)."""
        if _have_numpy():
            return self.component_batch([v])[0]
        tree = self.tree
        if self._vr_idx >= 0:
            if is_virtual_root(v):
                return None
            return tree.level_ancestor(v, 1)
        return tree.level_ancestor(v, 0)

    def connected(self, a: Vertex, b: Vertex) -> bool:
        """True iff *a* and *b* lie in the same component of the snapshot."""
        ca = self.component(a)
        cb = self.component(b)
        return ca is not None and ca == cb

    def path_length(self, a: Vertex, b: Vertex) -> Optional[int]:
        """Number of tree edges between *a* and *b*, or ``None`` when they are
        not connected."""
        l = self.lca(a, b)
        if l is None:
            return None
        tree = self.tree
        return tree.level(a) + tree.level(b) - 2 * tree.level(l)

    def parent_map(self) -> Dict[Vertex, Optional[Vertex]]:
        """A plain parent-map copy of the snapshot's tree, virtual root
        included — the byte-identity currency the property tests compare."""
        return self.tree.parent_map()

    # ------------------------------------------------------------------ #
    # Batch queries (vectorized with numpy, scalar loop without)
    # ------------------------------------------------------------------ #
    def lca_batch(self, avs: Sequence[Vertex], bvs: Sequence[Vertex]) -> List[Optional[Vertex]]:
        """LCAs of the pairs ``zip(avs, bvs)`` in one vectorized pass
        (``None`` per disconnected pair); equals the scalar :meth:`lca` answers."""
        if not _have_numpy():
            return [self.lca(a, b) for a, b in zip(avs, bvs)]
        raw = self._index().lca_batch(avs, bvs)
        return [None if is_virtual_root(x) else x for x in raw]

    def is_ancestor_batch(self, avs: Sequence[Vertex], bvs: Sequence[Vertex]) -> List[bool]:
        """Batched :meth:`is_ancestor` over the pairs ``zip(avs, bvs)``."""
        if not _have_numpy():
            return [self.is_ancestor(a, b) for a, b in zip(avs, bvs)]
        arrs = self.tree.as_arrays()
        ia = self._indices(avs)
        ib = self._indices(bvs)
        tin, tout = arrs["tin"], arrs["tout"]
        return ((tin[ia] <= tin[ib]) & (tout[ib] <= tout[ia])).tolist()

    def subtree_size_batch(self, vs: Sequence[Vertex]) -> List[int]:
        """Batched :meth:`subtree_size` over *vs*."""
        if not _have_numpy():
            return [self.subtree_size(v) for v in vs]
        return self.tree.as_arrays()["size"][self._indices(vs)].tolist()

    def component_batch(self, vs: Sequence[Vertex]) -> List[Optional[Vertex]]:
        """Batched :meth:`component` over *vs* (one searchsorted over the
        component roots' entry intervals)."""
        if not _have_numpy():
            return [self.component(v) for v in vs]
        import numpy as np

        tree = self.tree
        arrs = tree.as_arrays()
        root_tins, roots = self._components()
        iv = self._indices(vs)
        pos = np.searchsorted(root_tins, arrs["tin"][iv], side="right") - 1
        comp = roots[np.maximum(pos, 0)]
        out = arrs["vertices"][comp].tolist()
        if self._vr_idx >= 0:
            for i in np.flatnonzero(pos < 0).tolist():
                out[i] = None
        return out

    def connected_batch(self, avs: Sequence[Vertex], bvs: Sequence[Vertex]) -> List[bool]:
        """Batched :meth:`connected` over the pairs ``zip(avs, bvs)``."""
        if not _have_numpy():
            return [self.connected(a, b) for a, b in zip(avs, bvs)]
        import numpy as np

        arrs = self.tree.as_arrays()
        root_tins, roots = self._components()
        tin = arrs["tin"]
        pa = np.searchsorted(root_tins, tin[self._indices(avs)], side="right") - 1
        pb = np.searchsorted(root_tins, tin[self._indices(bvs)], side="right") - 1
        return ((pa == pb) & (pa >= 0)).tolist()

    def path_length_batch(
        self, avs: Sequence[Vertex], bvs: Sequence[Vertex]
    ) -> List[Optional[int]]:
        """Batched :meth:`path_length` over the pairs ``zip(avs, bvs)``
        (``None`` per disconnected pair)."""
        if not _have_numpy():
            return [self.path_length(a, b) for a, b in zip(avs, bvs)]
        import numpy as np

        index = self._index()
        ia = self._indices(avs)
        ib = self._indices(bvs)
        li = index.lca_indices_batch(ia, ib)
        level = self.tree.as_arrays()["level"]
        out = (level[ia] + level[ib] - 2 * level[li]).tolist()
        if self._vr_idx >= 0:
            for i in np.flatnonzero(li == self._vr_idx).tolist():
                out[i] = None
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"TreeSnapshot(version={self.version}, n={len(self.tree)})"
