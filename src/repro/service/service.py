"""The MVCC query service: one writer, versioned snapshots, lock-free readers.

:class:`DFSTreeService` wraps any of the four drivers (or a raw
:class:`~repro.core.engine.UpdateEngine`) and registers a commit listener
through :meth:`~repro.core.engine.UpdateEngine.add_commit_listener`.  Every
committed update bumps the monotonically increasing **version**; every
``publish_every``-th version wraps the committed tree in an immutable
:class:`~repro.service.snapshot.TreeSnapshot` and **publishes** it by a single
attribute assignment — an atomic pointer swap under the GIL, so readers on any
thread pick up either the previous version or the new one, never a torn state,
and never take a lock.  The writer keeps applying updates undisturbed; readers
keep answering against whichever version they hold (MVCC for DFS trees).

Every read reports ``(answer, version)`` so staleness is *observable*: the
difference between the service's ``committed_version`` and the answering
snapshot's ``version`` is accumulated under ``snapshot_staleness_updates``.

Counters recorded (all registered in ``WELL_KNOWN_COUNTERS``):
``snapshots_published``, ``snapshot_build_ms`` (lazy per-version index
builds), ``queries_served``, ``query_batches`` + ``max_query_batch_size``
(batched reads), ``snapshot_staleness_updates``.
"""

from __future__ import annotations

from typing import Hashable, List, Optional, Sequence, Tuple

from repro.metrics.counters import MetricsRecorder
from repro.service.snapshot import TreeSnapshot
from repro.tree.dfs_tree import DFSTree

Vertex = Hashable

__all__ = ["DFSTreeService"]


class DFSTreeService:
    """Versioned snapshot query service over a dynamic-DFS driver.

    Parameters
    ----------
    driver:
        Any object exposing ``add_commit_listener`` (all four drivers and the
        raw engine do) plus a current tree (``tree`` property, or ``base_tree``
        for the fault-tolerant driver).  The driver stays the single writer;
        this service never mutates it.
    metrics:
        Optional shared :class:`MetricsRecorder` (a private one is created
        otherwise).  Safe to pass a ``strict=True`` recorder — every counter
        recorded here is registered.
    publish_every:
        Publish a snapshot on every k-th commit (default 1 = every commit).
        Intermediate versions still bump ``committed_version``, so readers
        observe the widened staleness; :meth:`publish_now` force-publishes the
        driver's current tree between cadence points.
    """

    def __init__(
        self,
        driver,
        *,
        metrics: Optional[MetricsRecorder] = None,
        publish_every: int = 1,
    ) -> None:
        if not isinstance(publish_every, int) or publish_every < 1:
            raise ValueError(f"publish_every must be a positive int, got {publish_every!r}")
        self.driver = driver
        self.metrics = metrics or MetricsRecorder("service")
        self.publish_every = publish_every
        self._committed = 0
        self._closed = False
        initial = self._driver_tree()
        self._snapshot = TreeSnapshot(0, initial, on_build_ms=self._record_build_ms)
        driver.add_commit_listener(self._on_commit)

    def _driver_tree(self) -> DFSTree:
        tree = getattr(self.driver, "tree", None)
        if tree is None:
            tree = self.driver.base_tree
        return tree

    def _record_build_ms(self, ms: float) -> None:
        self.metrics.inc("snapshot_build_ms", ms)

    def _on_commit(self, tree: DFSTree) -> None:
        self._committed += 1
        if self._committed % self.publish_every == 0:
            self._publish(self._committed, tree)

    def _publish(self, version: int, tree: DFSTree) -> None:
        snap = TreeSnapshot(version, tree, on_build_ms=self._record_build_ms)
        # The swap is one attribute assignment: atomic under the GIL, so
        # readers see either the old or the new snapshot, never a torn state.
        self._snapshot = snap
        self.metrics.inc("snapshots_published")

    # ------------------------------------------------------------------ #
    # Versions and snapshots
    # ------------------------------------------------------------------ #
    @property
    def version(self) -> int:
        """Version of the currently *published* snapshot."""
        return self._snapshot.version

    @property
    def committed_version(self) -> int:
        """Number of updates the writer has committed so far (monotonic; may
        run ahead of :attr:`version` when ``publish_every > 1``)."""
        return self._committed

    def snapshot(self) -> TreeSnapshot:
        """The last published :class:`TreeSnapshot` (lock-free read; hold the
        returned object to pin a version across a whole read transaction)."""
        return self._snapshot

    def publish_now(self) -> TreeSnapshot:
        """Force-publish the driver's current tree at ``committed_version``
        (useful between ``publish_every`` cadence points); returns the new
        snapshot.

        A no-op when the published snapshot is already at
        ``committed_version``: the current snapshot object is returned as-is,
        so lazily built indices (LCA sparse table, component intervals) warm
        readers already paid for are preserved instead of being discarded by a
        spurious republish, and ``snapshots_published`` is not inflated.
        """
        snap = self._snapshot
        if snap.version == self._committed:
            return snap
        self._publish(self._committed, self._driver_tree())
        return self._snapshot

    @property
    def closed(self) -> bool:
        """True once :meth:`close` detached this service from its driver."""
        return self._closed

    def close(self) -> None:
        """Detach from the driver: deregister the commit listener so future
        commits are no longer observed (``committed_version`` and the
        published snapshot freeze at their current values).

        Idempotent — the shard router calls it on every drain, and a service
        discarded without ``close()`` would otherwise keep snapshotting every
        future commit forever (a listener leak on the writer's commit path).
        Reads keep working against the last published snapshot.
        """
        if self._closed:
            return
        self._closed = True
        remove = getattr(self.driver, "remove_commit_listener", None)
        if remove is not None:
            remove(self._on_commit)

    # ------------------------------------------------------------------ #
    # Accounting
    # ------------------------------------------------------------------ #
    def _note_served(self, count: int, snap: TreeSnapshot) -> None:
        m = self.metrics
        m.inc("queries_served", count)
        staleness = self._committed - snap.version
        if staleness > 0:
            m.inc("snapshot_staleness_updates", count * staleness)

    def _note_batch(self, count: int, snap: TreeSnapshot) -> None:
        self.metrics.inc("query_batches")
        self.metrics.observe_max("query_batch_size", count)
        self._note_served(count, snap)

    def _pin(self, snapshot: Optional[TreeSnapshot]) -> TreeSnapshot:
        return self._snapshot if snapshot is None else snapshot

    # ------------------------------------------------------------------ #
    # Scalar reads — each returns (answer, version)
    # ------------------------------------------------------------------ #
    def lca(self, a: Vertex, b: Vertex) -> Tuple[Optional[Vertex], int]:
        """LCA of *a* and *b* on the published snapshot (``None`` when
        disconnected); returns ``(answer, version)``."""
        snap = self._snapshot
        self._note_served(1, snap)
        return snap.lca(a, b), snap.version

    def connected(self, a: Vertex, b: Vertex) -> Tuple[bool, int]:
        """Connectivity of *a* and *b* on the published snapshot; returns
        ``(answer, version)``."""
        snap = self._snapshot
        self._note_served(1, snap)
        return snap.connected(a, b), snap.version

    def is_ancestor(self, a: Vertex, b: Vertex) -> Tuple[bool, int]:
        """Ancestor test on the published snapshot; returns
        ``(answer, version)``."""
        snap = self._snapshot
        self._note_served(1, snap)
        return snap.is_ancestor(a, b), snap.version

    def subtree_size(self, v: Vertex) -> Tuple[int, int]:
        """Subtree size of *v* on the published snapshot; returns
        ``(answer, version)``."""
        snap = self._snapshot
        self._note_served(1, snap)
        return snap.subtree_size(v), snap.version

    def path_length(self, a: Vertex, b: Vertex) -> Tuple[Optional[int], int]:
        """Tree-path length between *a* and *b* on the published snapshot
        (``None`` when disconnected); returns ``(answer, version)``."""
        snap = self._snapshot
        self._note_served(1, snap)
        return snap.path_length(a, b), snap.version

    # ------------------------------------------------------------------ #
    # Batched reads — one vectorized pass, (answers, version)
    # ------------------------------------------------------------------ #
    def lca_batch(
        self,
        avs: Sequence[Vertex],
        bvs: Sequence[Vertex],
        *,
        snapshot: Optional[TreeSnapshot] = None,
    ) -> Tuple[List[Optional[Vertex]], int]:
        """Batched LCA in one vectorized pass; returns ``(answers, version)``.
        Pass *snapshot* to answer against a pinned version (staleness is
        accounted against the writer's ``committed_version`` either way)."""
        snap = self._pin(snapshot)
        self._note_batch(len(avs), snap)
        return snap.lca_batch(avs, bvs), snap.version

    def connected_batch(
        self,
        avs: Sequence[Vertex],
        bvs: Sequence[Vertex],
        *,
        snapshot: Optional[TreeSnapshot] = None,
    ) -> Tuple[List[bool], int]:
        """Batched connectivity; returns ``(answers, version)``."""
        snap = self._pin(snapshot)
        self._note_batch(len(avs), snap)
        return snap.connected_batch(avs, bvs), snap.version

    def is_ancestor_batch(
        self,
        avs: Sequence[Vertex],
        bvs: Sequence[Vertex],
        *,
        snapshot: Optional[TreeSnapshot] = None,
    ) -> Tuple[List[bool], int]:
        """Batched ancestor tests; returns ``(answers, version)``."""
        snap = self._pin(snapshot)
        self._note_batch(len(avs), snap)
        return snap.is_ancestor_batch(avs, bvs), snap.version

    def subtree_size_batch(
        self,
        vs: Sequence[Vertex],
        *,
        snapshot: Optional[TreeSnapshot] = None,
    ) -> Tuple[List[int], int]:
        """Batched subtree sizes; returns ``(answers, version)``."""
        snap = self._pin(snapshot)
        self._note_batch(len(vs), snap)
        return snap.subtree_size_batch(vs), snap.version

    def path_length_batch(
        self,
        avs: Sequence[Vertex],
        bvs: Sequence[Vertex],
        *,
        snapshot: Optional[TreeSnapshot] = None,
    ) -> Tuple[List[Optional[int]], int]:
        """Batched tree-path lengths; returns ``(answers, version)``."""
        snap = self._pin(snapshot)
        self._note_batch(len(avs), snap)
        return snap.path_length_batch(avs, bvs), snap.version

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"DFSTreeService(version={self.version}, "
            f"committed={self._committed}, publish_every={self.publish_every})"
        )
