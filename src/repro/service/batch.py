"""Asyncio batching front for :class:`~repro.service.service.DFSTreeService`.

Production read traffic arrives as many tiny independent queries.  Answering
them one by one wastes the array backend's throughput — the snapshot's
``lca_batch`` answers 10^4 queries for barely more than one.  The
:class:`BatchingQueryFront` closes that gap: ``await front.lca(a, b)`` parks
the query on a pending list and the *batch tick* (an event-loop callback —
``call_soon`` by default, ``call_later(tick)`` when a coalescing window is
configured) flushes everything that arrived in the meantime as **one
vectorized pass per query kind** over a single pinned snapshot.

Every caller gets back a :class:`QueryResult` ``(answer, version)`` — all
queries answered by one flush share the same snapshot version, so staleness
is observable per answer.  A query that raises (e.g. an unknown vertex) fails
only its own future: the flush retries the failing kind scalar-by-scalar so
one bad query cannot poison a batch.

The front is single-event-loop by design (create one per loop); the service
and its snapshots stay shareable across threads.
"""

from __future__ import annotations

import asyncio
from typing import Any, Hashable, List, NamedTuple, Optional, Tuple

from repro.service.service import DFSTreeService
from repro.service.snapshot import TreeSnapshot

Vertex = Hashable

__all__ = ["BatchingQueryFront", "QueryResult"]


class QueryResult(NamedTuple):
    """One answered query: the answer plus the snapshot version it came from."""

    answer: Any
    version: int


#: kind -> (batched snapshot method name, scalar snapshot method name)
_KINDS = {
    "lca": ("lca_batch", "lca"),
    "connected": ("connected_batch", "connected"),
    "is_ancestor": ("is_ancestor_batch", "is_ancestor"),
    "subtree_size": ("subtree_size_batch", "subtree_size"),
    "path_length": ("path_length_batch", "path_length"),
}


class BatchingQueryFront:
    """Coalesces concurrent reader queries into vectorized snapshot passes.

    Parameters
    ----------
    service:
        The :class:`DFSTreeService` to answer from.
    max_batch:
        Flush immediately once this many queries are pending (before the tick
        fires), bounding per-flush latency under heavy load.
    tick:
        Coalescing window in seconds.  ``0`` (default) flushes on the next
        event-loop iteration — everything enqueued by the current burst of
        tasks (e.g. one ``asyncio.gather``) lands in one flush.
    """

    def __init__(
        self,
        service: DFSTreeService,
        *,
        max_batch: int = 4096,
        tick: float = 0.0,
    ) -> None:
        if not isinstance(max_batch, int) or max_batch < 1:
            raise ValueError(f"max_batch must be a positive int, got {max_batch!r}")
        self.service = service
        self.max_batch = max_batch
        self.tick = tick
        self._pending: List[Tuple[str, tuple, asyncio.Future]] = []
        self._flush_handle: Optional[asyncio.TimerHandle] = None

    # ------------------------------------------------------------------ #
    # Query API
    # ------------------------------------------------------------------ #
    async def lca(self, a: Vertex, b: Vertex) -> QueryResult:
        """LCA of *a* and *b* (``None`` when disconnected), coalesced."""
        return await self._enqueue("lca", (a, b))

    async def connected(self, a: Vertex, b: Vertex) -> QueryResult:
        """Connectivity of *a* and *b*, coalesced."""
        return await self._enqueue("connected", (a, b))

    async def is_ancestor(self, a: Vertex, b: Vertex) -> QueryResult:
        """Ancestor test ``a`` over ``b``, coalesced."""
        return await self._enqueue("is_ancestor", (a, b))

    async def subtree_size(self, v: Vertex) -> QueryResult:
        """Subtree size of *v*, coalesced."""
        return await self._enqueue("subtree_size", (v,))

    async def path_length(self, a: Vertex, b: Vertex) -> QueryResult:
        """Tree-path length between *a* and *b* (``None`` when disconnected),
        coalesced."""
        return await self._enqueue("path_length", (a, b))

    @property
    def pending(self) -> int:
        """Number of queries waiting for the next flush."""
        return len(self._pending)

    def flush(self) -> None:
        """Flush the pending queries now (normally driven by the tick).

        Futures cancelled while parked (a reader timed out or its task was
        torn down) are dropped here, *before* accounting: only the queries
        actually answered count towards ``queries_served`` and the staleness
        totals, so batched accounting equals what the same live queries would
        have recorded scalar-by-scalar.  A flush whose queries were all
        cancelled records nothing."""
        if self._flush_handle is not None:
            self._flush_handle.cancel()
            self._flush_handle = None
        pending, self._pending = self._pending, []
        pending = [item for item in pending if not item[2].cancelled()]
        if not pending:
            return
        service = self.service
        snap = service.snapshot()
        service._note_batch(len(pending), snap)
        by_kind: dict = {}
        for item in pending:
            by_kind.setdefault(item[0], []).append(item)
        for kind, items in by_kind.items():
            self._answer_kind(snap, kind, items)

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #
    def _enqueue(self, kind: str, args: tuple) -> "asyncio.Future[QueryResult]":
        loop = asyncio.get_running_loop()
        fut: asyncio.Future = loop.create_future()
        self._pending.append((kind, args, fut))
        if len(self._pending) >= self.max_batch:
            self.flush()
        elif self._flush_handle is None:
            if self.tick <= 0:
                self._flush_handle = loop.call_soon(self._on_tick)
            else:
                self._flush_handle = loop.call_later(self.tick, self._on_tick)
        return fut

    def _on_tick(self) -> None:
        self._flush_handle = None
        self.flush()

    def _answer_kind(self, snap: TreeSnapshot, kind: str, items: list) -> None:
        batch_name, scalar_name = _KINDS[kind]
        version = snap.version
        metrics = self.service.metrics
        try:
            if kind == "subtree_size":
                answers = getattr(snap, batch_name)([args[0] for _, args, _ in items])
            else:
                avs = [args[0] for _, args, _ in items]
                bvs = [args[1] for _, args, _ in items]
                answers = getattr(snap, batch_name)(avs, bvs)
        except Exception:
            # One bad query must not poison the batch: retry scalar-by-scalar
            # so only the offending futures fail (counted so a hot path that
            # keeps degrading to scalar reads is visible on dashboards).
            metrics.inc("query_batch_fallbacks")
            scalar = getattr(snap, scalar_name)
            for _, args, fut in items:
                if fut.cancelled():
                    continue
                try:
                    fut.set_result(QueryResult(scalar(*args), version))
                except Exception as exc:
                    # The error is the caller's answer, not a swallow: it
                    # travels to exactly one awaiting reader.
                    metrics.inc("query_errors")
                    fut.set_exception(exc)
            return
        for (_, _, fut), answer in zip(items, answers):
            if not fut.cancelled():
                fut.set_result(QueryResult(answer, version))
