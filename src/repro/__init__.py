"""repro — reproduction of "Near Optimal Parallel Algorithms for Dynamic DFS in
Undirected Graphs" (Shahbaz Khan, SPAA 2017).

Public API highlights
---------------------

* :class:`repro.graph.UndirectedGraph` — dynamic undirected graph store.
* :class:`repro.core.FullyDynamicDFS` — maintain a DFS forest under arbitrary
  edge/vertex updates (Theorem 13).
* :class:`repro.core.FaultTolerantDFS` — preprocess once, answer DFS trees for
  arbitrary batches of updates without rebuilding (Theorem 14).
* :class:`repro.streaming.SemiStreamingDynamicDFS` — the same algorithm in the
  semi-streaming model, metering passes (Theorem 15).
* :class:`repro.distributed.DistributedDynamicDFS` — the same algorithm in the
  synchronous CONGEST(n/D) model, metering rounds and messages (Theorem 16).
* :mod:`repro.pram` — the EREW PRAM cost-model substrate (Theorems 4–8).
* :class:`repro.service.DFSTreeService` — MVCC snapshot query service: every
  commit publishes a versioned immutable :class:`repro.service.TreeSnapshot`
  readers query lock-free (batched/async via
  :class:`repro.service.BatchingQueryFront`).

See DESIGN.md for the system inventory and EXPERIMENTS.md for the experiment
index mapping every theorem/figure to a benchmark.
"""

from repro._version import __version__
from repro.constants import VIRTUAL_ROOT, is_virtual_root
from repro.graph.graph import UndirectedGraph
from repro.graph.traversal import static_dfs_forest, static_dfs_tree
from repro.graph.validation import is_valid_dfs_forest, is_valid_dfs_tree
from repro.tree.dfs_tree import DFSTree
from repro.core.dynamic_dfs import FullyDynamicDFS
from repro.core.fault_tolerant import FaultTolerantDFS
from repro.core.updates import (
    EdgeDeletion,
    EdgeInsertion,
    Update,
    VertexDeletion,
    VertexInsertion,
)
from repro.metrics.counters import MetricsRecorder
from repro.service import BatchingQueryFront, DFSTreeService, TreeSnapshot

__all__ = [
    "__version__",
    "VIRTUAL_ROOT",
    "is_virtual_root",
    "UndirectedGraph",
    "static_dfs_tree",
    "static_dfs_forest",
    "is_valid_dfs_tree",
    "is_valid_dfs_forest",
    "DFSTree",
    "FullyDynamicDFS",
    "FaultTolerantDFS",
    "Update",
    "EdgeInsertion",
    "EdgeDeletion",
    "VertexInsertion",
    "VertexDeletion",
    "MetricsRecorder",
    "DFSTreeService",
    "TreeSnapshot",
    "BatchingQueryFront",
]
