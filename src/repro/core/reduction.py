"""The reduction algorithm (Section 3, Theorems 2 and 11).

Updating a DFS tree after any single update reduces to **rerooting disjoint
subtrees** of the current tree:

* deleting a tree edge ``(u, v)`` (``u = par(v)``) reroots ``T(v)`` at the
  endpoint of the *lowest* edge from ``T(v)`` to ``path(u, r)``;
* inserting a cross edge ``(u, v)`` reroots ``T(v')`` (the child subtree of
  ``LCA(u, v)`` containing ``v``) at ``v`` and hangs it from ``u``;
* deleting a vertex ``u`` reroots every child subtree ``T(v_i)`` of ``u`` at the
  endpoint of its lowest edge to ``path(par(u), r)``;
* inserting a vertex ``u`` with neighbours ``v_1..v_c`` makes ``u`` a child of an
  arbitrary neighbour ``v_j`` and reroots, for every other neighbour ``v_i``
  outside ``path(v_j, r)``, the subtree hanging from that path that contains
  ``v_i``, rooting it at ``v_i`` and hanging it from ``u``.

Back-edge insertions/deletions leave the tree untouched.  The reduction issues
at most one batch of independent queries on ``D`` (none for insertions) plus
LCA/ancestor queries on ``T``, matching Theorem 2.

The reduction is expressed against the *augmented* tree rooted at the virtual
root (Section 2): a subtree that loses all its connections is simply re-hung
from the virtual root.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Optional, Tuple

from repro.constants import VIRTUAL_ROOT, is_virtual_root
from repro.core.queries import EdgeQuery, QueryService
from repro.core.updates import (
    EdgeDeletion,
    EdgeInsertion,
    Update,
    VertexDeletion,
    VertexInsertion,
)
from repro.exceptions import UpdateError
from repro.metrics.counters import MetricsRecorder
from repro.tree.dfs_tree import DFSTree

Vertex = Hashable


@dataclass(frozen=True)
class RerootTask:
    """Reroot the subtree ``T(subtree_root)`` of the current tree at ``new_root``
    and hang it from ``attach`` in the updated tree ``T*``."""

    subtree_root: Vertex
    new_root: Vertex
    attach: Vertex

    def describe(self) -> str:
        return (
            f"reroot T({self.subtree_root!r}) at {self.new_root!r}"
            f" hanging from {self.attach!r}"
        )


@dataclass
class ReductionResult:
    """Outcome of reducing one update.

    ``tasks`` are the independent rerooting jobs; ``parent_overrides`` are
    direct parent reassignments that need no rerooting (e.g. the inserted
    vertex itself); ``removed_vertices`` must disappear from the tree;
    ``tree_unchanged`` is True when the update only touched back edges.
    """

    tasks: List[RerootTask] = field(default_factory=list)
    parent_overrides: Dict[Vertex, Optional[Vertex]] = field(default_factory=dict)
    removed_vertices: List[Vertex] = field(default_factory=list)
    tree_unchanged: bool = False


def _root_path_target(tree: DFSTree, bottom: Vertex) -> List[Vertex]:
    """The path from the virtual root (excluded) down to *bottom*, in
    shallow-to-deep order — the query target used by the deletion cases."""
    if is_virtual_root(bottom):
        return []
    path_up = tree.ancestor_path(bottom, VIRTUAL_ROOT if VIRTUAL_ROOT in tree else tree.root)
    path_down = list(reversed(path_up))
    return [v for v in path_down if not is_virtual_root(v)]


def reduce_update(
    update: Update,
    tree: DFSTree,
    service: QueryService,
    *,
    metrics: Optional[MetricsRecorder] = None,
) -> ReductionResult:
    """Reduce *update* to rerooting tasks against the current *tree*.

    The caller must have already applied the update to the graph (and to the
    query service's view of it); the reduction only needs the structural
    queries listed in Theorem 2.
    """
    if metrics is not None:
        metrics.inc("reductions")
    if isinstance(update, EdgeInsertion):
        return _reduce_edge_insertion(update, tree, metrics)
    if isinstance(update, EdgeDeletion):
        return _reduce_edge_deletion(update, tree, service, metrics)
    if isinstance(update, VertexInsertion):
        return _reduce_vertex_insertion(update, tree, metrics)
    if isinstance(update, VertexDeletion):
        return _reduce_vertex_deletion(update, tree, service, metrics)
    raise UpdateError(f"unknown update type: {update!r}")


# --------------------------------------------------------------------------- #
# Edge updates
# --------------------------------------------------------------------------- #
def _reduce_edge_insertion(
    update: EdgeInsertion, tree: DFSTree, metrics: Optional[MetricsRecorder]
) -> ReductionResult:
    u, v = update.u, update.v
    if u not in tree or v not in tree:
        raise UpdateError(f"edge insertion endpoints {u!r}, {v!r} must be existing vertices")
    if tree.is_ancestor(u, v) or tree.is_ancestor(v, u):
        # Back edge: the DFS tree is untouched.
        return ReductionResult(tree_unchanged=True)
    w = tree.lca(u, v)
    v_child = tree.child_towards(w, v)
    if metrics is not None:
        metrics.inc("reduction_tasks")
    return ReductionResult(tasks=[RerootTask(subtree_root=v_child, new_root=v, attach=u)])


def _reduce_edge_deletion(
    update: EdgeDeletion,
    tree: DFSTree,
    service: QueryService,
    metrics: Optional[MetricsRecorder],
) -> ReductionResult:
    u, v = update.u, update.v
    if u not in tree or v not in tree:
        raise UpdateError(f"edge deletion endpoints {u!r}, {v!r} must be existing vertices")
    if tree.parent(v) == u:
        parent_side, child_side = u, v
    elif tree.parent(u) == v:
        parent_side, child_side = v, u
    else:
        # Back edge: nothing to do (the edge is already gone from the graph).
        return ReductionResult(tree_unchanged=True)

    target = _root_path_target(tree, parent_side)
    if target:
        query = EdgeQuery.from_tree(child_side, target, prefer_last=True, label="edge_deletion")
        answer = service.answer_batch([query])[0]
    else:
        answer = None
    if metrics is not None:
        metrics.inc("reduction_tasks")
    if answer is None:
        # T(child_side) is disconnected from the rest: hang it from the virtual
        # root (the paper's augmentation edge), keeping its old root.
        task = RerootTask(subtree_root=child_side, new_root=child_side, attach=VIRTUAL_ROOT)
    else:
        x, y = answer  # x in T(child_side), y on path(parent_side, r)
        task = RerootTask(subtree_root=child_side, new_root=x, attach=y)
    return ReductionResult(tasks=[task])


# --------------------------------------------------------------------------- #
# Vertex updates
# --------------------------------------------------------------------------- #
def _reduce_vertex_insertion(
    update: VertexInsertion, tree: DFSTree, metrics: Optional[MetricsRecorder]
) -> ReductionResult:
    v = update.v
    neighbors = [w for w in update.neighbors if w in tree]
    if v in tree:
        raise UpdateError(f"vertex {v!r} already exists")
    if not neighbors:
        return ReductionResult(parent_overrides={v: VIRTUAL_ROOT})

    # Arbitrary choice of the attachment neighbour; the shallowest neighbour
    # keeps the rerooted subtrees small in practice and is deterministic
    # (ties broken by position, precomputed so an inserted hub vertex with c
    # neighbours costs O(c) rather than O(c^2)).
    order = {w: i for i, w in enumerate(neighbors)}
    vj = min(neighbors, key=lambda w: (tree.level(w), order[w]))
    result = ReductionResult(parent_overrides={v: vj})

    groups: Dict[Vertex, List[Vertex]] = {}
    for vi in neighbors:
        if vi == vj or tree.is_ancestor(vi, vj):
            continue  # vi lies on path(vj, r): the new edge is a back edge
        a = tree.lca(vi, vj)
        subtree_root = tree.child_towards(a, vi)
        groups.setdefault(subtree_root, []).append(vi)

    for subtree_root, members in groups.items():
        result.tasks.append(
            RerootTask(subtree_root=subtree_root, new_root=members[0], attach=v)
        )
    if metrics is not None:
        metrics.inc("reduction_tasks", len(result.tasks))
    return result


def _reduce_vertex_deletion(
    update: VertexDeletion,
    tree: DFSTree,
    service: QueryService,
    metrics: Optional[MetricsRecorder],
) -> ReductionResult:
    u = update.v
    if u not in tree or is_virtual_root(u):
        raise UpdateError(f"vertex {u!r} is not in the tree")
    parent_u = tree.parent(u)
    children = tree.children(u)
    result = ReductionResult(removed_vertices=[u])

    target = _root_path_target(tree, parent_u) if parent_u is not None else []
    queries = []
    if target:
        for child in children:
            queries.append(
                EdgeQuery.from_tree(child, target, prefer_last=True, label="vertex_deletion")
            )
        answers = service.answer_batch(queries)
    else:
        answers = [None] * len(children)

    for child, answer in zip(children, answers):
        if answer is None:
            result.tasks.append(
                RerootTask(subtree_root=child, new_root=child, attach=VIRTUAL_ROOT)
            )
        else:
            x, y = answer
            result.tasks.append(RerootTask(subtree_root=child, new_root=x, attach=y))
    if metrics is not None:
        metrics.inc("reduction_tasks", len(result.tasks))
    return result
