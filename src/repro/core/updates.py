"""Update vocabulary.

The paper's extended update model (Section 1.2): an update is the insertion or
deletion of an edge, or the insertion or deletion of a vertex — where an
inserted vertex may arrive together with an arbitrary set of incident edges.
These small dataclasses are the common currency between the workload
generators, the reduction algorithm and the dynamic-DFS drivers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable, List, Tuple, Union

Vertex = Hashable


@dataclass(frozen=True)
class EdgeInsertion:
    """Insert the edge ``(u, v)``; both endpoints must already exist."""

    u: Vertex
    v: Vertex

    def endpoints(self) -> Tuple[Vertex, Vertex]:
        return (self.u, self.v)

    def describe(self) -> str:
        return f"insert edge ({self.u!r}, {self.v!r})"


@dataclass(frozen=True)
class EdgeDeletion:
    """Delete the existing edge ``(u, v)``."""

    u: Vertex
    v: Vertex

    def endpoints(self) -> Tuple[Vertex, Vertex]:
        return (self.u, self.v)

    def describe(self) -> str:
        return f"delete edge ({self.u!r}, {self.v!r})"


@dataclass(frozen=True)
class VertexInsertion:
    """Insert vertex *v* together with edges to every vertex in *neighbors*."""

    v: Vertex
    neighbors: Tuple[Vertex, ...] = field(default_factory=tuple)

    def __init__(self, v: Vertex, neighbors: Union[Tuple[Vertex, ...], List[Vertex]] = ()) -> None:
        object.__setattr__(self, "v", v)
        object.__setattr__(self, "neighbors", tuple(neighbors))

    def describe(self) -> str:
        return f"insert vertex {self.v!r} with {len(self.neighbors)} edges"


@dataclass(frozen=True)
class VertexDeletion:
    """Delete vertex *v* and all of its incident edges."""

    v: Vertex

    def describe(self) -> str:
        return f"delete vertex {self.v!r}"


Update = Union[EdgeInsertion, EdgeDeletion, VertexInsertion, VertexDeletion]


def is_edge_update(update: Update) -> bool:
    """True for edge insertions/deletions."""
    return isinstance(update, (EdgeInsertion, EdgeDeletion))


def is_vertex_update(update: Update) -> bool:
    """True for vertex insertions/deletions."""
    return isinstance(update, (VertexInsertion, VertexDeletion))


def inverse(update: Update) -> Update:
    """The update that undoes *update*.

    Vertex deletion cannot be inverted without knowing the deleted adjacency;
    callers that need invertibility should capture it first (the workload
    generators do).
    """
    if isinstance(update, EdgeInsertion):
        return EdgeDeletion(update.u, update.v)
    if isinstance(update, EdgeDeletion):
        return EdgeInsertion(update.u, update.v)
    if isinstance(update, VertexInsertion):
        return VertexDeletion(update.v)
    raise ValueError("vertex deletions are not invertible without the lost adjacency")
