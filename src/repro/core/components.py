"""Components of the unvisited graph (Section 4 invariant).

During rerooting, the paper maintains that every connected component ``c`` of
the *unvisited* graph is of one of two types:

* **C1** — a single subtree ``τ_c`` of the base DFS tree ``T``;
* **C2** — a single ancestor–descendant path ``p_c`` of ``T`` plus a set
  ``T_c`` of subtrees of ``T``, each having at least one edge to ``p_c``.

Both piece shapes are cheap to describe against the (immutable) base tree: a
subtree piece is just its root, a path piece an ordered vertex list.  The
traversal routines carve paths out of these pieces and re-assemble the
leftovers into new components via ``Process-Comp``.

The classes below also carry the bookkeeping the engine needs: the component's
designated root ``r_c`` (where the DFS of the component will start), the vertex
of ``T*`` it will hang from, and its phase/stage counters.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable, Iterable, List, Optional, Sequence, Tuple

from repro.exceptions import InvariantViolation
from repro.tree.dfs_tree import DFSTree

Vertex = Hashable


@dataclass(frozen=True)
class TreePiece:
    """A full subtree ``T(root)`` of the base tree, entirely unvisited."""

    root: Vertex

    def vertices(self, tree: DFSTree) -> List[Vertex]:
        """All vertices of the piece (preorder)."""
        return tree.subtree_vertices(self.root)

    def size(self, tree: DFSTree) -> int:
        """Number of vertices in the piece."""
        return tree.subtree_size(self.root)

    def contains(self, tree: DFSTree, v: Vertex) -> bool:
        """True iff *v* belongs to the piece."""
        return v in tree and tree.is_ancestor(self.root, v)

    def describe(self) -> str:
        return f"T({self.root!r})"


@dataclass(frozen=True)
class PathPiece:
    """An ancestor–descendant path of the base tree, entirely unvisited.

    ``vertices`` are stored in path order; orientation (which end is the tree
    ancestor) is irrelevant to the component invariant and is recovered from
    the base tree when needed.
    """

    vertices: Tuple[Vertex, ...]

    def __init__(self, vertices: Sequence[Vertex]) -> None:
        object.__setattr__(self, "vertices", tuple(vertices))
        if not self.vertices:
            raise InvariantViolation("a path piece cannot be empty")

    def __len__(self) -> int:
        return len(self.vertices)

    def size(self, tree: DFSTree) -> int:  # noqa: ARG002 - uniform piece API
        """Number of vertices on the path."""
        return len(self.vertices)

    def contains(self, tree: DFSTree, v: Vertex) -> bool:  # noqa: ARG002
        """True iff *v* lies on the path."""
        return v in self.vertices

    def endpoints(self) -> Tuple[Vertex, Vertex]:
        """The two endpoints of the path."""
        return self.vertices[0], self.vertices[-1]

    def top_bottom(self, tree: DFSTree) -> Tuple[Vertex, Vertex]:
        """Endpoints ordered as (ancestor end, descendant end) in the base tree."""
        a, b = self.vertices[0], self.vertices[-1]
        known_a = a in tree
        known_b = b in tree
        if known_a and known_b and tree.level(a) > tree.level(b):
            return b, a
        return a, b

    def describe(self) -> str:
        a, b = self.endpoints()
        return f"path({a!r}..{b!r}, len={len(self.vertices)})"


@dataclass
class Component:
    """A connected component of the unvisited graph with its traversal state.

    Attributes
    ----------
    trees:
        The subtree pieces of the component.
    path:
        The path piece (``None`` for a type-C1 component).
    rc:
        The vertex the component's DFS will start from (its future root).
    attach:
        The vertex of the partially built tree ``T*`` that ``rc`` will hang
        from (``None`` only for the initial rerooting task whose root hangs
        from a vertex outside the rerooted subtree, supplied by the caller).
    phase / stage:
        The phase and stage counters of Section 4 (bookkeeping for metrics and
        for the dispatch thresholds).
    irregular:
        Set when the engine detected a violation of the C1/C2 invariant while
        assembling this component; such components are traversed by the
        correct-by-construction fallback DFS and counted in the metrics.
    extra_paths:
        Only populated for irregular components (more than one path piece).
    """

    trees: List[TreePiece] = field(default_factory=list)
    path: Optional[PathPiece] = None
    rc: Optional[Vertex] = None
    attach: Optional[Vertex] = None
    phase: int = 1
    stage: int = 1
    irregular: bool = False
    extra_paths: List[PathPiece] = field(default_factory=list)

    # ------------------------------------------------------------------ #
    # Typing / sizes
    # ------------------------------------------------------------------ #
    @property
    def kind(self) -> str:
        """``"C1"``, ``"C2"`` or ``"irregular"``."""
        if self.irregular:
            return "irregular"
        if self.path is None and len(self.trees) == 1:
            return "C1"
        if self.path is not None:
            return "C2"
        return "irregular"

    def pieces(self) -> List[object]:
        """All pieces of the component (path pieces first)."""
        out: List[object] = []
        if self.path is not None:
            out.append(self.path)
        out.extend(self.extra_paths)
        out.extend(self.trees)
        return out

    def vertices(self, tree: DFSTree) -> List[Vertex]:
        """All vertices of the component."""
        out: List[Vertex] = []
        if self.path is not None:
            out.extend(self.path.vertices)
        for p in self.extra_paths:
            out.extend(p.vertices)
        for t in self.trees:
            out.extend(t.vertices(tree))
        return out

    def size(self, tree: DFSTree) -> int:
        """Number of vertices in the component."""
        total = 0
        if self.path is not None:
            total += len(self.path)
        total += sum(len(p) for p in self.extra_paths)
        total += sum(t.size(tree) for t in self.trees)
        return total

    def path_length(self) -> int:
        """Length (vertex count) of the component path, 0 for C1 components."""
        return 0 if self.path is None else len(self.path)

    def heaviest_tree(self, tree: DFSTree) -> Optional[TreePiece]:
        """The largest subtree piece ``τ_c`` (ties broken by first occurrence)."""
        if not self.trees:
            return None
        return max(self.trees, key=lambda t: t.size(tree))

    def heavy_trees(self, tree: DFSTree, threshold: int) -> List[TreePiece]:
        """Subtree pieces with more than *threshold* vertices (the set ``T_c``)."""
        return [t for t in self.trees if t.size(tree) > threshold]

    # ------------------------------------------------------------------ #
    # Membership
    # ------------------------------------------------------------------ #
    def piece_containing(self, tree: DFSTree, v: Vertex) -> Optional[object]:
        """The piece containing *v*, or ``None``."""
        if self.path is not None and self.path.contains(tree, v):
            return self.path
        for p in self.extra_paths:
            if p.contains(tree, v):
                return p
        for t in self.trees:
            if t.contains(tree, v):
                return t
        return None

    def contains(self, tree: DFSTree, v: Vertex) -> bool:
        """True iff *v* belongs to the component."""
        return self.piece_containing(tree, v) is not None

    def describe(self, tree: DFSTree) -> str:
        """Compact human-readable description (used in logs and errors)."""
        parts = [p.describe() for p in self.pieces()]
        return (
            f"Component(kind={self.kind}, rc={self.rc!r}, attach={self.attach!r}, "
            f"phase={self.phase}, stage={self.stage}, size={self.size(tree)}, "
            f"pieces=[{', '.join(parts)}])"
        )


def component_from_subtree(tree: DFSTree, root: Vertex, rc: Vertex, attach: Optional[Vertex]) -> Component:
    """Build the initial C1 component for rerooting ``T(root)`` at ``rc``."""
    piece = TreePiece(root)
    if not piece.contains(tree, rc):
        raise InvariantViolation(f"new root {rc!r} does not lie in subtree T({root!r})")
    return Component(trees=[piece], path=None, rc=rc, attach=attach)


def assert_disjoint_pieces(tree: DFSTree, components: Iterable[Component]) -> None:
    """Validation helper: the pieces of all *components* must be disjoint."""
    seen: dict = {}
    for comp in components:
        for v in comp.vertices(tree):
            if v in seen:
                raise InvariantViolation(
                    f"vertex {v!r} appears in two components: {seen[v]} and {comp.describe(tree)}"
                )
            seen[v] = comp.describe(tree)
