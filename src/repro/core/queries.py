"""Query abstraction shared by the parallel, streaming and distributed engines.

The rerooting algorithm interacts with non-tree edges *only* through queries of
the form "among all edges between this unvisited piece and that path of the
partially built tree ``T*``, return the edge incident nearest to one end of the
path" (Section 2 of the paper).  The engines express those queries as
:class:`EdgeQuery` objects and submit them in *batches of independent queries*
(disjoint source pieces) to a :class:`QueryService`:

* :class:`DQueryService` answers a batch from the in-memory data structure
  ``D`` (the parallel / PRAM setting; one batch = one round of parallel
  queries, Theorem 8);
* :class:`repro.streaming.semi_streaming_dfs.StreamQueryService` answers a
  batch with a single pass over the edge stream (Theorem 15);
* :class:`repro.distributed.distributed_dfs.DistributedQueryService` answers a
  batch with one pipelined broadcast/convergecast over the network
  (Theorem 16);
* :class:`BruteForceQueryService` is the oracle used by tests to cross-check
  the fast implementations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Optional, Sequence, Tuple

from repro.graph.graph import UndirectedGraph
from repro.metrics.counters import MetricsRecorder
from repro.tree.dfs_tree import DFSTree
from repro.tree.tree_utils import ancestor_descendant_segments

Vertex = Hashable
Answer = Optional[Tuple[Vertex, Vertex]]  # (source endpoint, target/path endpoint)


@dataclass
class EdgeQuery:
    """One "lowest/highest edge from a piece to a path" query.

    Attributes
    ----------
    source_kind:
        ``"tree"`` — the piece is the full subtree of the base tree rooted at
        ``source_root``; ``"path"`` — the piece is the ancestor–descendant path
        ``source_vertices`` of the base tree; ``"vertices"`` — an explicit
        (small) vertex set.
    source_root:
        Root of the subtree piece (``source_kind == "tree"``).
    source_vertices:
        Vertices of the path / explicit piece (ordered along the path for
        ``"path"``).
    target:
        Ordered vertex list of the target path.  For queries against the newly
        traversed path of ``T*`` the order is shallow → deep in ``T*``; for
        queries against a component path ``p_c`` it is simply the path order.
    prefer_last:
        When True the answer is the edge whose target endpoint is nearest to
        ``target[-1]`` (the *lowest* edge for a ``T*`` path listed shallow →
        deep); otherwise nearest to ``target[0]``.
    label:
        Free-form tag used in metrics / debugging.
    """

    source_kind: str
    target: Tuple[Vertex, ...]
    prefer_last: bool = True
    source_root: Optional[Vertex] = None
    source_vertices: Tuple[Vertex, ...] = field(default_factory=tuple)
    label: str = ""

    def __post_init__(self) -> None:
        if self.source_kind not in ("tree", "path", "vertices"):
            raise ValueError(f"unknown source kind {self.source_kind!r}")
        if self.source_kind == "tree" and self.source_root is None:
            raise ValueError("tree queries need source_root")
        if self.source_kind in ("path", "vertices") and not self.source_vertices:
            raise ValueError(f"{self.source_kind} queries need source_vertices")
        self.target = tuple(self.target)
        self.source_vertices = tuple(self.source_vertices)

    # Convenience constructors --------------------------------------------------
    @classmethod
    def from_tree(cls, root: Vertex, target: Sequence[Vertex], *, prefer_last: bool = True, label: str = "") -> "EdgeQuery":
        """Query from the subtree ``T(root)`` of the base tree."""
        return cls("tree", tuple(target), prefer_last, source_root=root, label=label)

    @classmethod
    def from_path(cls, path_vertices: Sequence[Vertex], target: Sequence[Vertex], *, prefer_last: bool = True, label: str = "") -> "EdgeQuery":
        """Query from an ancestor–descendant path piece."""
        return cls("path", tuple(target), prefer_last, source_vertices=tuple(path_vertices), label=label)

    @classmethod
    def from_vertices(cls, vertices: Sequence[Vertex], target: Sequence[Vertex], *, prefer_last: bool = True, label: str = "") -> "EdgeQuery":
        """Query from an explicit vertex set (used for single vertices)."""
        return cls("vertices", tuple(target), prefer_last, source_vertices=tuple(vertices), label=label)

    def source_vertex_list(self, base_tree: DFSTree) -> List[Vertex]:
        """Materialise the source piece as a vertex list."""
        if self.source_kind == "tree":
            return base_tree.subtree_vertices(self.source_root)
        return list(self.source_vertices)

    def source_size(self, base_tree: DFSTree) -> int:
        """Number of vertices in the source piece (its processor budget)."""
        if self.source_kind == "tree":
            return base_tree.subtree_size(self.source_root)
        return len(self.source_vertices)


class QueryService:
    """Interface: answer a batch of *independent* :class:`EdgeQuery` objects.

    One call corresponds to one parallel query round / streaming pass /
    broadcast round, depending on the environment.
    """

    def answer_batch(self, queries: Sequence[EdgeQuery]) -> List[Answer]:
        raise NotImplementedError

    def answer(self, query: EdgeQuery) -> Answer:
        """Convenience wrapper for a single query."""
        return self.answer_batch([query])[0]


def _position_map(target: Sequence[Vertex]) -> Dict[Vertex, int]:
    return {v: i for i, v in enumerate(target)}


def _better(
    pos: Dict[Vertex, int],
    prefer_last: bool,
    a: Answer,
    b: Answer,
    source_rank=None,
) -> Answer:
    """Pick the answer whose target endpoint is nearer the preferred end.

    When *source_rank* (a ``vertex -> sortable`` callable) is given, ties on
    the target position are broken towards the smaller source rank — the hook
    the oracle service uses to produce canonical answers directly.
    """
    if a is None:
        return b
    if b is None:
        return a
    pa, pb = pos[a[1]], pos[b[1]]
    if pa == pb and source_rank is not None:
        return a if source_rank(a[0]) <= source_rank(b[0]) else b
    if prefer_last:
        return a if pa >= pb else b
    return a if pa <= pb else b


class BruteForceQueryService(QueryService):
    """Oracle service: scans the adjacency of every source vertex.

    Used by the tests to validate :class:`DQueryService` and the streaming /
    distributed services; also a perfectly good (if slower) production fallback.
    """

    def __init__(self, graph: UndirectedGraph, base_tree: DFSTree, *, metrics: Optional[MetricsRecorder] = None) -> None:
        self._graph = graph
        self._tree = base_tree
        self._metrics = metrics

    def answer_batch(self, queries: Sequence[EdgeQuery]) -> List[Answer]:
        if self._metrics is not None:
            self._metrics.inc("query_batches")
            self._metrics.inc("queries", len(queries))
        return [self._answer_one(q) for q in queries]

    def _answer_one(self, q: EdgeQuery) -> Answer:
        pos = _position_map(q.target)
        best: Answer = None
        tree = self._tree

        def rank(v: Vertex):
            return tree.postorder(v) if v in tree else (1 << 60)

        for u in q.source_vertex_list(self._tree):
            if not self._graph.has_vertex(u):
                continue
            for w in self._graph.neighbors(u):
                if w in pos:
                    best = _better(pos, q.prefer_last, best, (u, w), source_rank=rank)
        return best


class DQueryService(QueryService):
    """Answers query batches from the data structure ``D`` (Theorems 8–9).

    The target path is decomposed into maximal ancestor–descendant segments of
    ``D``'s base tree (a constant number for the fully dynamic algorithm, up to
    ``O(log^2 n)`` per elapsed update for the fault-tolerant / amortized
    setting — Theorem 9); inside a segment each source vertex performs one
    post-order range search.

    Answers are *canonical*: the target endpoint is the target vertex nearest
    the preferred end that has any alive edge to the source piece, and the
    source endpoint is the piece vertex with the smallest post-order number in
    the *current* tree among those with an alive edge to that target vertex.
    Both are properties of the updated graph and the current tree alone —
    independent of which base tree ``D`` happens to be built on — so every
    driver (and every rebuild policy) produces *identical* trees whether an
    update is served from a freshly rebuilt ``D``, from Theorem 9 overlays on
    a stale one, from stream passes, or from CONGEST broadcasts.
    """

    def __init__(
        self,
        structure: "StructureD",
        *,
        source_tree: Optional[DFSTree] = None,
        metrics: Optional[MetricsRecorder] = None,
    ) -> None:
        from repro.core.structure_d import StructureD  # local import to avoid cycle

        if not isinstance(structure, StructureD):
            raise TypeError("DQueryService requires a StructureD instance")
        self._d = structure
        self._tree = structure.base_tree
        # Tree used to materialise "subtree" source pieces.  For the fully
        # dynamic algorithm it equals D's base tree; the fault-tolerant driver
        # passes the *current* tree T*_{i-1} while D stays built on T*_0
        # (Theorem 9).
        self._source_tree = source_tree if source_tree is not None else structure.base_tree
        self._metrics = metrics

    @property
    def structure(self) -> "StructureD":
        return self._d

    def answer_batch(self, queries: Sequence[EdgeQuery]) -> List[Answer]:
        if self._metrics is not None:
            self._metrics.inc("query_batches")
            self._metrics.inc("queries", len(queries))
        return [self._answer_one(q) for q in queries]

    # ------------------------------------------------------------------ #
    def _answer_one(self, q: EdgeQuery) -> Answer:
        tree = self._tree
        pos = _position_map(q.target)
        source_list = q.source_vertex_list(self._source_tree)

        known = [v for v in q.target if v in tree]
        unknown = [v for v in q.target if v not in tree]
        segments = ancestor_descendant_segments(tree, known) if known else []
        # Feed the divergence EWMA the absorb-mode auto-rebase policy watches.
        self._d.note_query_segments(max(len(segments), 1))
        if self._metrics is not None:
            self._metrics.inc("d_target_segments", max(len(segments), 1))
            self._metrics.observe_max("d_target_segments_per_query", max(len(segments), 1))
            if self._source_tree is not self._tree:
                self._metrics.inc("d_overlay_view_queries")

        # Segments are contiguous runs of the target path, so their position
        # intervals are disjoint and ordered: probe them starting from the
        # preferred end and stop at the first hit — no later segment can hold
        # a better position.
        ordered_segments = sorted(
            segments,
            key=lambda seg: pos[seg[-1]] if q.prefer_last else -pos[seg[0]],
            reverse=True,
        )
        best: Answer = None
        for seg in ordered_segments:
            found = self._probe_segment(q, seg, pos, source_list)
            best = _better(pos, q.prefer_last, best, found)
            if found is not None:
                break

        # Target vertices that the base tree does not know about (vertices
        # inserted since D was built) are handled by scanning their overlay
        # adjacency — there are at most k of them.
        if unknown:
            unknown_hit = self._probe_unknown_targets(q, unknown, pos, source_list)
            best = _better(pos, q.prefer_last, best, unknown_hit)
        if best is None:
            return None
        return self._canonical_answer(q, best, source_list)

    def _canonical_answer(self, q: EdgeQuery, best: Answer, source_list: List[Vertex]) -> Answer:
        """Fix the source endpoint to the piece vertex with the smallest
        post-order number (in the *current* tree) having an alive edge to the
        chosen target vertex.

        The probes above guarantee the best *target* endpoint, but which source
        vertex reported it depends on which direction (direct, reversed,
        overlay) found the edge first — i.e. on the base tree ``D`` was built
        on.  Re-anchoring the source makes the full answer a pure function of
        the updated graph and the current tree, which is what lets the
        amortized rebuild policy of
        :class:`~repro.core.dynamic_dfs.FullyDynamicDFS` (and the streaming /
        distributed adapters) reproduce the per-update-rebuild trees exactly.

        Cost: for subtree pieces of ``D``'s own base tree the piece occupies a
        contiguous post-order interval, so the re-anchor is a single binary
        search in the target's sorted list (``O(log deg)``); other piece kinds
        fall back to scanning the target's adjacency (``O(deg)``), never the
        piece.  Probes are counted under ``d_reanchor_probes``.
        """
        found_u, t_star = best
        tree = self._tree
        src_tree = self._source_tree
        probes = 0
        canonical: Optional[Vertex] = None
        if (
            q.source_kind == "tree"
            and src_tree is tree
            and q.source_root in tree
        ):
            # Postorder-interval index: T(root) occupies exactly the interval
            # [post(root) - size(root) + 1, post(root)] of the base tree.
            hi = tree.postorder(q.source_root)
            lo = hi - tree.subtree_size(q.source_root) + 1
            canonical, probes = self._d.min_post_alive_neighbor(t_star, lo, hi)
        else:
            if q.source_kind == "tree" and q.source_root in src_tree:
                root = q.source_root

                def member(w: Vertex) -> bool:
                    return w in src_tree and src_tree.is_ancestor(root, w)

            else:
                src_set = set(source_list)

                def member(w: Vertex) -> bool:
                    return w in src_set

            best_rank: Optional[int] = None
            for w in self._d.neighbors_of(t_star):
                probes += 1
                if not member(w) or w not in src_tree:
                    continue
                r = src_tree.postorder(w)
                if best_rank is None or r < best_rank:
                    canonical, best_rank = w, r
        if self._metrics is not None:
            self._metrics.inc("d_reanchor_probes", max(probes, 1))
        if canonical is not None:
            return (canonical, t_star)
        return best

    def canonical_sources(
        self, items: Sequence[Tuple[Vertex, Vertex]]
    ) -> List[Optional[Vertex]]:
        """Batch canonical re-anchors for subtree pieces of the base tree.

        For each ``(t_star, source_root)`` pair, returns the vertex of the
        piece ``T(source_root)`` with the smallest base-tree post-order number
        among those with an alive edge to ``t_star`` (``None`` when the piece
        has no alive edge to it) — the same re-anchor
        :meth:`_canonical_answer` computes one query at a time, exposed as a
        batch so the array backend can serve the whole overlay-service sweep
        with one ``np.searchsorted`` (:meth:`StructureD
        <repro.core.structure_d.StructureD.min_post_alive_neighbor_batch>`).
        Probes are counted once per batch under ``d_reanchor_probes``
        (``max(total probes, 1)``); answers are backend-independent.
        """
        tree = self._tree
        us: List[Vertex] = []
        los: List[int] = []
        his: List[int] = []
        for t_star, root in items:
            hi = tree.postorder(root)
            lo = hi - tree.subtree_size(root) + 1
            us.append(t_star)
            los.append(lo)
            his.append(hi)
        best, probes = self._d.min_post_alive_neighbor_batch(us, los, his)
        if self._metrics is not None and items:
            self._metrics.inc("d_reanchor_probes", max(probes, 1))
        return best

    def _probe_segment(
        self, q: EdgeQuery, seg: List[Vertex], pos: Dict[Vertex, int], source_list: List[Vertex]
    ) -> Answer:
        tree = self._tree
        seg_set = set(seg)
        top, bottom = (seg[0], seg[-1]) if tree.level(seg[0]) <= tree.level(seg[-1]) else (seg[-1], seg[0])
        # Inside the segment, positions on the target path are monotone, so the
        # preferred end of the target corresponds to either the segment's top or
        # bottom endpoint.
        preferred_vertex = seg[-1] if q.prefer_last else seg[0]
        prefer_bottom = preferred_vertex == bottom

        def on_segment(w: Vertex) -> bool:
            return w in seg_set

        best: Answer = None
        # Direct direction: every source vertex searches its sorted list for a
        # neighbour on the segment (finds edges whose target endpoint is a
        # base-tree ancestor of the source vertex — the only possibility for
        # subtree sources in the fully dynamic setting).
        for u in source_list:
            w = self._d.neighbor_on_segment(u, top, bottom, prefer_bottom=prefer_bottom, on_segment=on_segment)
            if w is not None:
                best = _better(pos, q.prefer_last, best, (u, w))

        # Reversed direction: every segment vertex searches for a neighbour on
        # the source piece.  Needed when the source may contain base-tree
        # *ancestors* of target vertices: always for path-piece sources, and for
        # every source kind in the fault-tolerant / amortized-overlay setting,
        # where pieces are subtrees/paths of the current tree T*_{i-1} rather
        # than of D's base tree (Theorem 9).  The source is decomposed into
        # vertical runs of the base tree so each probe stays a range search.
        overlay_view = self._source_tree is not self._tree
        if q.source_kind in ("path", "vertices") or overlay_view:
            src_known = [v for v in source_list if v in tree]
            src_set = set(source_list)

            def on_source(w: Vertex) -> bool:
                return w in src_set

            src_segments = ancestor_descendant_segments(tree, src_known) if src_known else []
            src_ranges = []
            for s_seg in src_segments:
                s_top, s_bottom = (
                    (s_seg[0], s_seg[-1])
                    if tree.level(s_seg[0]) <= tree.level(s_seg[-1])
                    else (s_seg[-1], s_seg[0])
                )
                src_ranges.append((s_top, s_bottom))

            iteration = reversed(seg) if preferred_vertex == seg[-1] else seg
            for t in iteration:
                hit = None
                for s_top, s_bottom in src_ranges:
                    hit = self._d.neighbor_on_segment(
                        t, s_top, s_bottom, prefer_bottom=True, on_segment=on_source
                    )
                    if hit is not None:
                        break
                if hit is not None:
                    best = _better(pos, q.prefer_last, best, (hit, t))
                    break
        return best

    def _probe_unknown_targets(
        self, q: EdgeQuery, unknown: List[Vertex], pos: Dict[Vertex, int], source_list: List[Vertex]
    ) -> Answer:
        source_set = set(source_list)
        ordered = sorted(unknown, key=pos.__getitem__, reverse=q.prefer_last)
        for t in ordered:
            for w in self._d.neighbors_of(t):
                if w in source_set:
                    return (w, t)
        return None
