"""Shared update/overlay bookkeeping for the dynamic and fault-tolerant drivers.

Both :class:`repro.core.dynamic_dfs.FullyDynamicDFS` (between amortized rebuilds
of ``D``) and :class:`repro.core.fault_tolerant.FaultTolerantDFS` (always) serve
updates the same way: the update is applied to the graph *and* recorded as an
overlay on the preprocessed :class:`~repro.core.structure_d.StructureD`, so the
sorted lists never have to be rebuilt for the update itself (Theorem 9).  This
module is the single implementation of that bookkeeping.

It also owns the update-validation boundary: callers of the drivers' update APIs
get :class:`~repro.exceptions.UpdateError` for every malformed update (missing
edge, duplicate vertex, self loop, ...), never a bare graph-layer exception.
:func:`validate_update` performs the full check *without mutating anything*, so
drivers can reject an update before any metrics, timers or graph state are
touched.
"""

from __future__ import annotations

from math import isqrt
from typing import Optional

from repro.core.structure_d import StructureD
from repro.core.updates import (
    EdgeDeletion,
    EdgeInsertion,
    Update,
    VertexDeletion,
    VertexInsertion,
)
from repro.exceptions import GraphError, UpdateError
from repro.graph.graph import UndirectedGraph


def theorem9_overlay_budget(num_edges: int) -> int:
    """Overlay size that triggers a ``D`` refresh under the auto-tuned policy.

    Chosen as ``~sqrt(2m)``: a rebuild costs ``O(m)`` and is amortized over the
    ``~sqrt(2m)`` overlay-served updates it absorbs, while each query pays at
    most ``O(sqrt(2m))`` extra overlay probes (Theorem 9's ``k``).  Shared by
    every backend that amortizes over a :class:`StructureD`.
    """
    return max(8, isqrt(2 * max(num_edges, 1)))


def reused_vertex_id_needs_rebuild(structure: StructureD, update: Update) -> bool:
    """True when *update* re-inserts a vertex id the structure still indexes.

    The stale base entries of the previous incarnation make overlay service
    ambiguous, so amortizing backends must force a refresh (a rebuild, or an
    absorb — which purges the stale entries) before recording the insertion.
    """
    return isinstance(update, VertexInsertion) and structure.indexes_vertex(update.v)


def validate_update(graph: UndirectedGraph, update: Update) -> None:
    """Check that *update* can be applied to *graph*; raise :class:`UpdateError`
    otherwise.

    The check is side-effect free: neither the graph nor any overlay is touched,
    so a driver can call it before recording metrics for the update (a failed
    update must not skew per-update counters and benchmark denominators).
    """
    if isinstance(update, EdgeInsertion):
        u, v = update.u, update.v
        if u == v:
            raise UpdateError(f"cannot insert self loop ({u!r}, {v!r})")
        for w in (u, v):
            if not graph.has_vertex(w):
                raise UpdateError(f"edge insertion endpoint {w!r} is not in the graph")
        if graph.has_edge(u, v):
            raise UpdateError(f"edge ({u!r}, {v!r}) is already present")
    elif isinstance(update, EdgeDeletion):
        if not graph.has_edge(update.u, update.v):
            raise UpdateError(f"edge ({update.u!r}, {update.v!r}) is not in the graph")
    elif isinstance(update, VertexInsertion):
        if graph.has_vertex(update.v):
            raise UpdateError(f"vertex {update.v!r} is already present")
        for w in update.neighbors:
            if w != update.v and not graph.has_vertex(w):
                raise UpdateError(f"vertex insertion neighbor {w!r} is not in the graph")
    elif isinstance(update, VertexDeletion):
        if not graph.has_vertex(update.v):
            raise UpdateError(f"vertex {update.v!r} is not in the graph")
    else:
        raise UpdateError(f"unknown update type {update!r}")


def apply_update(
    graph: UndirectedGraph,
    update: Update,
    structure: Optional[StructureD] = None,
) -> None:
    """Apply *update* to *graph* and, when *structure* is given, record it as an
    overlay on ``D`` (Theorem 9) so queries keep answering without a rebuild.

    Graph-layer failures (which should not occur after :func:`validate_update`)
    are re-raised as :class:`UpdateError` so the exception taxonomy of the
    update API never leaks storage-level types.
    """
    try:
        if isinstance(update, EdgeInsertion):
            graph.add_edge(update.u, update.v)
            if structure is not None:
                structure.note_edge_inserted(update.u, update.v)
        elif isinstance(update, EdgeDeletion):
            graph.remove_edge(update.u, update.v)
            if structure is not None:
                structure.note_edge_deleted(update.u, update.v)
        elif isinstance(update, VertexInsertion):
            graph.add_vertex_with_edges(update.v, update.neighbors)
            if structure is not None:
                structure.note_vertex_inserted(update.v, update.neighbors)
        elif isinstance(update, VertexDeletion):
            graph.remove_vertex(update.v)
            if structure is not None:
                structure.note_vertex_deleted(update.v)
        else:
            raise UpdateError(f"unknown update type {update!r}")
    except (GraphError, ValueError) as exc:
        raise UpdateError(f"cannot apply {update.describe()}: {exc}") from exc
