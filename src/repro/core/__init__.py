"""Core of the reproduction: the data structure ``D``, the reduction from graph
updates to subtree rerooting, the sequential and parallel rerooting engines, and
the fully-dynamic / fault-tolerant DFS drivers."""

from repro.core.structure_d import StructureD
from repro.core.queries import (
    BruteForceQueryService,
    DQueryService,
    EdgeQuery,
    QueryService,
)
from repro.core.components import Component, PathPiece, TreePiece
from repro.core.overlay import apply_update, validate_update
from repro.core.reduction import RerootTask, reduce_update
from repro.core.updates import (
    EdgeDeletion,
    EdgeInsertion,
    Update,
    VertexDeletion,
    VertexInsertion,
)
from repro.core.reroot_sequential import SequentialRerootEngine
from repro.core.reroot_parallel import ParallelRerootEngine
from repro.core.engine import Backend, UpdateEngine
from repro.core.dynamic_dfs import FullyDynamicDFS
from repro.core.fault_tolerant import FaultTolerantDFS

__all__ = [
    "StructureD",
    "QueryService",
    "DQueryService",
    "BruteForceQueryService",
    "EdgeQuery",
    "Component",
    "TreePiece",
    "PathPiece",
    "RerootTask",
    "reduce_update",
    "apply_update",
    "validate_update",
    "Update",
    "EdgeInsertion",
    "EdgeDeletion",
    "VertexInsertion",
    "VertexDeletion",
    "SequentialRerootEngine",
    "ParallelRerootEngine",
    "Backend",
    "UpdateEngine",
    "FullyDynamicDFS",
    "FaultTolerantDFS",
]
