"""The parallel rerooting engine (Section 4, Theorems 3 and 12).

The engine maintains the set of *active components* of the unvisited graph and
repeatedly performs one traversal step on every active component.  Inside a
round, the query batches requested by different components are merged and
submitted together, because components of the unvisited graph are vertex
disjoint and non-adjacent — exactly the "set of independent queries" the paper
feeds to the data structure ``D`` in one parallel round / one streaming pass /
one CONGEST broadcast.

Metered quantities (per ``reroot_many`` call):

* ``traversal_rounds`` — outer rounds (each active component advances by one
  traversal);
* ``query_rounds`` — merged query batches submitted to the service (the
  quantity bounded by ``O(log^2 n)`` in Theorem 3);
* ``queries`` / ``queries_per_round`` — total and peak batch width;
* ``fallback_components`` — how often the correct-by-construction fallback DFS
  had to repair an invariant violation (expected 0).
"""

from __future__ import annotations

from typing import Callable, Dict, Hashable, Iterable, List, Optional, Sequence, Tuple

from repro.core.components import Component, component_from_subtree
from repro.core.queries import EdgeQuery, QueryService
from repro.core.reduction import RerootTask
from repro.core.traversals import StepResult, TraversalPlanner
from repro.exceptions import InvariantViolation
from repro.metrics.counters import MetricsRecorder
from repro.tree.dfs_tree import DFSTree

Vertex = Hashable
ParentAssignment = Dict[Vertex, Vertex]


class ParallelRerootEngine:
    """Reroots disjoint subtrees of a DFS tree in phased parallel rounds.

    Parameters
    ----------
    tree:
        The current DFS tree ``T`` (base tree of all pieces).
    service:
        The :class:`~repro.core.queries.QueryService` answering edge queries
        (``D``, a streaming pass, or a CONGEST broadcast).
    adjacency:
        ``vertex -> iterable of neighbours``; required for the fallback
        component DFS (drivers pass the graph's adjacency).
    validate:
        Raise :class:`InvariantViolation` on invariant failures instead of
        silently repairing them (tests enable this).
    enable_heavy / enable_path_halving:
        Ablation switches, see benchmark E8.
    """

    def __init__(
        self,
        tree: DFSTree,
        service: QueryService,
        *,
        adjacency: Optional[Callable[[Vertex], Iterable[Vertex]]] = None,
        metrics: Optional[MetricsRecorder] = None,
        validate: bool = False,
        enable_heavy: bool = True,
        enable_path_halving: bool = True,
    ) -> None:
        self.tree = tree
        self.service = service
        self.metrics = metrics or MetricsRecorder("parallel_reroot")
        self.validate = validate
        self.planner = TraversalPlanner(
            tree,
            metrics=self.metrics,
            validate=validate,
            adjacency=adjacency,
            enable_heavy=enable_heavy,
            enable_path_halving=enable_path_halving,
        )

    # ------------------------------------------------------------------ #
    def reroot(self, task: RerootTask) -> ParentAssignment:
        """Reroot a single subtree (Theorem 3)."""
        return self.reroot_many([task])

    def reroot_many(self, tasks: Sequence[RerootTask]) -> ParentAssignment:
        """Reroot all *tasks* (disjoint subtrees) and return the new parents of
        every vertex they cover."""
        result: ParentAssignment = {}
        active: List[Component] = []
        for t in tasks:
            comp = component_from_subtree(self.tree, t.subtree_root, t.new_root, t.attach)
            active.append(comp)
        if not active:
            return result

        total_size = sum(c.size(self.tree) for c in active)
        logn = max(total_size, 2).bit_length()
        generation_guard = 4 * logn * logn + 64
        round_guard = 8 * total_size + 64

        rounds = 0
        while active:
            rounds += 1
            self.metrics.inc("traversal_rounds")
            self.metrics.observe_max("active_components", len(active))
            if rounds > round_guard:
                raise InvariantViolation("parallel rerooting did not terminate")

            for comp in active:
                if comp.phase > generation_guard and not comp.irregular:
                    comp.irregular = True
                    self.metrics.inc("loop_guard_triggers")

            finished: List[Tuple[Component, StepResult]] = []
            runners: List[List[object]] = []
            for comp in active:
                gen = self.planner.step(comp)
                try:
                    batch = next(gen)
                    runners.append([comp, gen, batch])
                except StopIteration as stop:
                    finished.append((comp, stop.value))

            # Lock-step sub-rounds: merge the current batch of every runner into
            # one independent batch for the service.
            while runners:
                merged: List[EdgeQuery] = []
                slices: List[Tuple[int, int]] = []
                for entry in runners:
                    batch = entry[2]  # type: ignore[index]
                    slices.append((len(merged), len(merged) + len(batch)))
                    merged.extend(batch)  # type: ignore[arg-type]
                if merged:
                    self.metrics.inc("query_rounds")
                    self.metrics.observe_max("queries_per_round", len(merged))
                    answers = self.service.answer_batch(merged)
                else:
                    answers = []
                next_runners: List[List[object]] = []
                for entry, (lo, hi) in zip(runners, slices):
                    comp, gen, _batch = entry
                    try:
                        new_batch = gen.send(list(answers[lo:hi]))
                        next_runners.append([comp, gen, new_batch])
                    except StopIteration as stop:
                        finished.append((comp, stop.value))  # type: ignore[arg-type]
                runners = next_runners

            active = self._integrate(finished, result)
        return result

    # ------------------------------------------------------------------ #
    def _integrate(
        self,
        finished: List[Tuple[Component, StepResult]],
        result: ParentAssignment,
    ) -> List[Component]:
        """Write the traversed paths into the result and collect new components."""
        next_active: List[Component] = []
        for comp, step in finished:
            if step.used_fallback or step.direct_parents:
                for v, p in step.direct_parents.items():
                    result[v] = p
                root_v = step.pstar[0] if step.pstar else comp.rc
                if root_v is not None:
                    result[root_v] = comp.attach
                self.metrics.inc("vertices_added", len(step.pstar))
                continue
            prev = comp.attach
            for v in step.pstar:
                result[v] = prev
                prev = v
            self.metrics.inc("vertices_added", len(step.pstar))
            for nc in step.new_components:
                nc.phase = comp.phase + 1
                next_active.append(nc)
        return next_active
