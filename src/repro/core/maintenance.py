"""Cost-model-driven maintenance: one controller for every backend's triggers.

Every amortizing backend faces the same economic decision each update: keep
serving from stale-but-cheap cached state (Theorem 9 overlays, a frozen absorb
base tree, a cached broadcast tree) or pay for a refresh (rebuild ``D``,
snapshot the stream, re-run the BFS flood).  Before this module each backend
hard-coded its own trigger — the absorb-mode segment EWMA threshold, the
streaming overlay budget, the CONGEST as-built depth bound — with the same
shape re-implemented three times: *refresh once the accumulated excess
per-update cost catches up with the refresh cost*.

:class:`MaintenanceController` owns that decision once.  Backends report
:class:`CostSignal` observations after each update (per-query overlay
segments, pinned-overlay size, broadcast depth drift, overlay growth), each
signal is judged by a per-backend :class:`CostModel` against a budget — the
amortised refresh cost in the model's own unit — and
:class:`~repro.core.engine.UpdateEngine` consults the controller at every
policy decision:

* a **cadence** model (``forces=False``) drives the auto-tuned
  ``rebuild_every=None`` policy (e.g. the Theorem 9 overlay budget);
* a **forcing** model (``forces=True``) vetoes overlay service under *any*
  policy, exactly like a backend :meth:`~repro.core.engine.Backend.must_rebuild`
  veto (e.g. a due absorb-mode rebase, or accumulated broadcast depth-drift
  cost crossing the ``O(D)`` rebuild cost).

Two model kinds cover every trigger in the repo:

* ``kind="level"`` — the latest observation is compared against the budget
  (overlay sizes, the segment EWMA, pinned side lists: signals that already
  *are* a per-update cost level);
* ``kind="excess"`` — observations accumulate until a refresh resets the
  account (depth-drift rounds: each update's excess cost is paid once and
  gone, so only the running total can be weighed against the refresh cost).

Controller-demanded refreshes are counted under ``cost_model_triggers``;
accumulated excess is metered under ``cost_model_excess``.
"""

from __future__ import annotations

from typing import Callable, Dict, List, NamedTuple, Optional

from repro.metrics.counters import MetricsRecorder

__all__ = ["CostSignal", "CostModel", "MaintenanceController"]


class CostSignal(NamedTuple):
    """One backend observation: the *value* of maintenance signal *name* for
    the update that just completed."""

    name: str
    value: float


class CostModel:
    """How one maintenance signal is weighed against the refresh cost.

    Parameters
    ----------
    name:
        Signal name; :class:`CostSignal` observations are routed by it.
    budget:
        Zero-argument callable returning the current budget — the modeled
        (amortised) refresh cost in the signal's unit.  Evaluated lazily at
        decision time, so budgets may track live state (graph size, as-built
        broadcast depth).
    kind:
        ``"level"`` — :meth:`due` compares the latest observation against the
        budget.  ``"excess"`` — observations accumulate; :meth:`due` compares
        the running total (reset by :meth:`reset`).
    forces:
        True for models that veto overlay service under any rebuild policy
        (rebase triggers, depth drift); False for models that only drive the
        auto-tuned cadence (overlay budgets).
    inclusive:
        Due when ``value >= budget`` (the historical overlay-budget
        comparison) instead of the default strict ``value > budget``.
    """

    def __init__(
        self,
        name: str,
        budget: Callable[[], float],
        *,
        kind: str = "level",
        forces: bool = False,
        inclusive: bool = False,
    ) -> None:
        if kind not in ("level", "excess"):
            raise ValueError(f"unknown cost model kind {kind!r}")
        self.name = name
        self._budget = budget
        self.kind = kind
        self.forces = forces
        self.inclusive = inclusive
        self._value = 0.0

    def observe(self, value: float) -> None:
        """Fold one per-update observation into the model."""
        if self.kind == "excess":
            self._value += value
        else:
            self._value = value

    def value(self) -> float:
        """Latest level, or the accumulated excess since the last refresh."""
        return self._value

    def budget(self) -> float:
        """The current budget (modeled refresh cost), evaluated live."""
        return self._budget()

    def due(self) -> bool:
        """True when the signal has caught up with the refresh cost."""
        budget = self.budget()
        return self._value >= budget if self.inclusive else self._value > budget

    def reset(self) -> None:
        """Forget the account (called when the backend refreshed its state)."""
        self._value = 0.0


class MaintenanceController:
    """Routes backend :class:`CostSignal` reports into :class:`CostModel`\\ s
    and answers the engine's two policy questions: is a refresh *due* under
    the auto-tuned cadence, and is one *forced* regardless of policy.

    Models are evaluated in registration order, so a backend that registers
    ``pinned`` before ``segments`` preserves its historical trigger priority.
    """

    def __init__(self, metrics: Optional[MetricsRecorder] = None) -> None:
        self._models: List[CostModel] = []
        self._by_name: Dict[str, CostModel] = {}
        self._metrics = metrics

    def add(self, model: CostModel) -> CostModel:
        """Register *model*; returns it for call-site chaining."""
        if model.name in self._by_name:
            raise ValueError(f"duplicate cost model {model.name!r}")
        self._models.append(model)
        self._by_name[model.name] = model
        return model

    def model(self, name: str) -> CostModel:
        """The registered model for signal *name* (KeyError when absent)."""
        return self._by_name[name]

    def has_model(self, name: str) -> bool:
        """True when a model is registered for signal *name*."""
        return name in self._by_name

    # ------------------------------------------------------------------ #
    # Reporting (backends, once per update)
    # ------------------------------------------------------------------ #
    def report(self, signal: CostSignal) -> None:
        """Fold one observation; signals without a registered model are
        ignored (a backend may emit a superset of what it budgets)."""
        model = self._by_name.get(signal.name)
        if model is None:
            return
        model.observe(signal.value)
        if self._metrics is not None and model.kind == "excess" and signal.value:
            self._metrics.inc("cost_model_excess", signal.value)

    def observe(self, name: str, value: float) -> None:
        """Convenience wrapper for :meth:`report`."""
        self.report(CostSignal(name, value))

    # ------------------------------------------------------------------ #
    # Policy decisions (UpdateEngine, once per update)
    # ------------------------------------------------------------------ #
    def cadence_due(self) -> Optional[str]:
        """Name of the first due *cadence* model (auto-tuned ``rebuild_every=None``
        policy), or None to keep serving from the cached state."""
        for model in self._models:
            if not model.forces and model.due():
                return model.name
        return None

    def forced_due(self) -> Optional[str]:
        """Name of the first due *forcing* model (vetoes overlay service under
        any policy), or None."""
        for model in self._models:
            if model.forces and model.due():
                return model.name
        return None

    def on_refresh(self) -> None:
        """Reset every model's account after the backend refreshed its state."""
        for model in self._models:
            model.reset()
