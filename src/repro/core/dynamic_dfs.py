"""Fully dynamic DFS (Theorem 13) with an amortized batch-update engine.

:class:`FullyDynamicDFS` maintains a DFS tree of an undirected graph under an
arbitrary online sequence of edge/vertex insertions and deletions.  Each update
is processed exactly as in the paper:

1. the update is validated and applied to the graph;
2. the data structure ``D`` is brought up to date — either by a full rebuild on
   the updated graph and the *current* tree (``O(log n)`` parallel time with
   ``m`` processors — Theorem 8), or, between rebuilds, by recording the update
   as a small overlay on the existing ``D`` (the multi-update extension of
   Theorem 9, shared with the fault-tolerant driver);
3. the reduction algorithm turns the update into independent rerooting tasks
   (Theorem 11);
4. the rerooting engine (parallel by default, sequential baseline available)
   executes the tasks (Theorem 12);
5. the tree indices are rebuilt for the next update.

**Rebuild policy.**  Rebuilding ``D`` costs ``O(m)`` work per update, yet
Theorem 9 answers queries correctly for up to ``k`` overlaid updates without
touching the sorted lists.  The ``rebuild_every`` knob exploits that gap:

* ``rebuild_every=1`` — classic per-update rebuild (the seed behaviour);
* ``rebuild_every=k`` — every ``k``-th update rebuilds ``D``; the ``k - 1``
  updates in between are served from overlays, so the amortized rebuild work
  drops to ``O(m / k)`` per update while every query pays ``O(k)`` extra;
* ``rebuild_every=None`` (default) — auto-tuned: ``D`` is rebuilt once the
  overlay grows past ``~sqrt(2m)`` entries, balancing rebuild work against
  per-query overlay cost under the actual churn rate.

Because query answers are canonical (see
:class:`repro.core.queries.DQueryService`), the maintained tree is *identical*
under every policy — amortization changes the cost, not the output.

The graph is augmented with a virtual root connected to every vertex
(implicitly), so disconnected graphs are handled transparently: the children of
the virtual root are the roots of the DFS forest.
"""

from __future__ import annotations

from math import isqrt
from typing import Dict, Hashable, Iterable, List, Optional, Sequence

from repro.constants import VIRTUAL_ROOT, is_virtual_root
from repro.core.overlay import apply_update, validate_update
from repro.core.queries import BruteForceQueryService, DQueryService, QueryService
from repro.core.reduction import reduce_update
from repro.core.reroot_parallel import ParallelRerootEngine
from repro.core.reroot_sequential import SequentialRerootEngine
from repro.core.structure_d import StructureD
from repro.core.updates import (
    EdgeDeletion,
    EdgeInsertion,
    Update,
    VertexDeletion,
    VertexInsertion,
)
from repro.exceptions import NotADFSTree
from repro.graph.graph import UndirectedGraph
from repro.graph.traversal import static_dfs_forest
from repro.graph.validation import check_dfs_tree
from repro.metrics.counters import MetricsRecorder
from repro.tree.dfs_tree import DFSTree

Vertex = Hashable


class FullyDynamicDFS:
    """Maintain a DFS forest of an undirected graph under updates.

    Parameters
    ----------
    graph:
        Initial graph.  It is copied unless ``copy_graph=False``.
    engine:
        ``"parallel"`` (the paper's algorithm) or ``"sequential"`` (the Baswana
        et al. baseline).
    service:
        ``"d"`` (data structure ``D``, default) or ``"brute"`` (adjacency scan
        oracle; used for cross-validation).
    rebuild_every:
        Rebuild policy for ``D`` (only meaningful with ``service="d"``):
        ``1`` rebuilds after every update, ``k > 1`` rebuilds on every ``k``-th
        update and serves the rest from Theorem 9 overlays, ``None`` (default)
        auto-tunes the rebuild period to keep the overlay near ``sqrt(2m)``.
    validate:
        Check after every update that the maintained tree is a valid DFS forest
        and raise :class:`NotADFSTree` otherwise.  Also enables the strict
        invariant checks inside the parallel engine.
    metrics:
        Optional shared recorder; every model quantity (query rounds, queries,
        traversal rounds, ``D`` rebuild work, overlay sizes, ...) is
        accumulated there.

    Examples
    --------
    >>> from repro.graph.generators import gnp_random_graph
    >>> g = gnp_random_graph(50, 0.1, seed=7, connected=True)
    >>> dyn = FullyDynamicDFS(g)
    >>> _ = dyn.delete_edge(*next(iter(g.edges())))
    >>> dyn.is_valid()
    True
    """

    def __init__(
        self,
        graph: UndirectedGraph,
        *,
        engine: str = "parallel",
        service: str = "d",
        rebuild_every: Optional[int] = None,
        validate: bool = False,
        metrics: Optional[MetricsRecorder] = None,
        copy_graph: bool = True,
    ) -> None:
        if engine not in ("parallel", "sequential"):
            raise ValueError(f"unknown engine {engine!r}")
        if service not in ("d", "brute"):
            raise ValueError(f"unknown service {service!r}")
        if rebuild_every is not None and (not isinstance(rebuild_every, int) or rebuild_every < 1):
            raise ValueError(f"rebuild_every must be a positive int or None, got {rebuild_every!r}")
        self._graph = graph.copy() if copy_graph else graph
        self._engine_kind = engine
        self._service_kind = service
        self._rebuild_every = rebuild_every
        self._validate = validate
        self.metrics = metrics or MetricsRecorder("dynamic_dfs")
        self._tree = self._initial_tree()
        self._structure: Optional[StructureD] = None
        self._service: Optional[QueryService] = None
        self._updates_since_rebuild = 0
        self._rebuild_structures()
        if self._validate:
            self._check()

    # ------------------------------------------------------------------ #
    # Construction helpers
    # ------------------------------------------------------------------ #
    def _initial_tree(self) -> DFSTree:
        with self.metrics.timer("initial_dfs"):
            parent = static_dfs_forest(self._graph)
        return DFSTree(parent, root=VIRTUAL_ROOT)

    def _rebuild_structures(self) -> None:
        # For service="d" only the structure is (re)built here; the query
        # service is constructed per update with the then-current tree.
        with self.metrics.timer("build_d"):
            if self._service_kind == "d":
                self._structure = StructureD(self._graph, self._tree, metrics=self.metrics)
            else:
                self._structure = None
                self._service = BruteForceQueryService(self._graph, self._tree, metrics=self.metrics)
        self._updates_since_rebuild = 0
        self.metrics.inc("d_rebuilds")

    def _make_engine(self):
        if self._engine_kind == "parallel":
            return ParallelRerootEngine(
                self._tree,
                self._service,
                adjacency=self._graph.neighbor_list,
                metrics=self.metrics,
                validate=self._validate,
            )
        return SequentialRerootEngine(self._tree, self._service, metrics=self.metrics)

    # ------------------------------------------------------------------ #
    # Read access
    # ------------------------------------------------------------------ #
    @property
    def graph(self) -> UndirectedGraph:
        """The current graph (do not mutate it directly; use the update API)."""
        return self._graph

    @property
    def tree(self) -> DFSTree:
        """The current DFS tree (rooted at the virtual root)."""
        return self._tree

    @property
    def rebuild_every(self) -> Optional[int]:
        """The configured rebuild period (``None`` = auto-tuned)."""
        return self._rebuild_every

    def overlay_budget(self) -> int:
        """Overlay size that triggers a rebuild under the auto-tuned policy.

        Chosen as ``~sqrt(2m)``: a rebuild costs ``O(m)`` and is amortized over
        the ``~sqrt(2m)`` overlay-served updates it absorbs, while each query
        pays at most ``O(sqrt(2m))`` extra overlay probes (Theorem 9's ``k``).
        """
        return max(8, isqrt(2 * max(self._graph.num_edges, 1)))

    def parent_map(self, *, include_virtual_root: bool = True) -> Dict[Vertex, Optional[Vertex]]:
        """Parent map of the maintained DFS forest.

        Without the virtual root, component roots map to ``None`` (a plain DFS
        forest of the graph).
        """
        parent = self._tree.parent_map()
        if include_virtual_root:
            return parent
        out: Dict[Vertex, Optional[Vertex]] = {}
        for v, p in parent.items():
            if is_virtual_root(v):
                continue
            out[v] = None if p is None or is_virtual_root(p) else p
        return out

    def roots(self) -> List[Vertex]:
        """Roots of the DFS forest (children of the virtual root)."""
        return self._tree.children(VIRTUAL_ROOT)

    def is_valid(self) -> bool:
        """True iff the maintained tree is currently a valid DFS forest."""
        return not check_dfs_tree(self._graph, self._tree.parent_map())

    # ------------------------------------------------------------------ #
    # Update API
    # ------------------------------------------------------------------ #
    def insert_edge(self, u: Vertex, v: Vertex) -> DFSTree:
        """Insert edge ``(u, v)`` and return the updated tree."""
        return self.apply(EdgeInsertion(u, v))

    def delete_edge(self, u: Vertex, v: Vertex) -> DFSTree:
        """Delete edge ``(u, v)`` and return the updated tree."""
        return self.apply(EdgeDeletion(u, v))

    def insert_vertex(self, v: Vertex, neighbors: Iterable[Vertex] = ()) -> DFSTree:
        """Insert vertex *v* with edges to *neighbors* and return the updated tree."""
        return self.apply(VertexInsertion(v, tuple(neighbors)))

    def delete_vertex(self, v: Vertex) -> DFSTree:
        """Delete vertex *v* (and its incident edges) and return the updated tree."""
        return self.apply(VertexDeletion(v))

    def apply(self, update: Update) -> DFSTree:
        """Apply one update and return the updated DFS tree.

        Malformed updates raise :class:`~repro.exceptions.UpdateError` *before*
        any metric, timer or graph state is touched, so failed updates never
        skew per-update counters.
        """
        validate_update(self._graph, update)
        self.metrics.inc("updates")
        with self.metrics.timer("update"):
            self._apply_validated(update)
        if self._validate:
            self._check()
        return self._tree

    def apply_all(self, updates: Sequence[Update]) -> DFSTree:
        """Apply a whole batch of updates in one pass; returns the final tree.

        The batch is served by the amortized engine: ``D`` is rebuilt only when
        the rebuild policy demands it, so a batch of ``b`` updates pays
        ``O(b / k)`` rebuilds rather than ``b``.  With ``validate=True`` the
        resulting tree is checked once at the end of the batch (the parallel
        engine's per-task invariant checks still run throughout).
        """
        updates = list(updates)
        self.metrics.inc("update_batches")
        self.metrics.observe_max("update_batch_size", len(updates))
        with self.metrics.timer("batch_update"):
            for update in updates:
                validate_update(self._graph, update)
                self.metrics.inc("updates")
                with self.metrics.timer("update"):
                    self._apply_validated(update)
        if self._validate and updates:
            self._check()
        return self._tree

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #
    def _apply_validated(self, update: Update) -> None:
        if self._service_kind == "d":
            if not self._overlay_can_serve(update):
                # Refresh the base: rebuild D on the pre-update graph and the
                # current tree (Theorem 8).  The update itself still enters D
                # as an overlay below — rebuilding before the mutation keeps
                # every vertex of the updated graph visible to D even when the
                # update inserts a vertex the current tree cannot index yet.
                self._rebuild_structures()
            else:
                self._updates_since_rebuild += 1
                self.metrics.inc("overlay_served_updates")
            # Theorem 9: record the update as an overlay and answer this
            # update's queries without touching the sorted lists.
            apply_update(self._graph, update, self._structure)
            self.metrics.observe_max("overlay_size", self._structure.overlay_size())
            self._service = DQueryService(
                self._structure, source_tree=self._tree, metrics=self.metrics
            )
        else:
            apply_update(self._graph, update)
            self._rebuild_structures()
        service = self._service
        reduction = reduce_update(update, self._tree, service, metrics=self.metrics)

        new_parent = self._tree.parent_map()
        for v in reduction.removed_vertices:
            new_parent.pop(v, None)
        new_parent.update(reduction.parent_overrides)
        if reduction.tasks:
            engine = self._make_engine()
            assignment = engine.reroot_many(reduction.tasks)
            new_parent.update(assignment)

        if not reduction.tree_unchanged or reduction.parent_overrides or reduction.removed_vertices:
            with self.metrics.timer("rebuild_tree"):
                self._tree = DFSTree(new_parent, root=VIRTUAL_ROOT)

    def _overlay_can_serve(self, update: Update) -> bool:
        """True iff this update should be served from overlays instead of a
        rebuild, according to the rebuild policy."""
        if self._service_kind != "d":
            return False  # the brute oracle reads the live graph; no overlays
        if isinstance(update, VertexInsertion) and self._structure.indexes_vertex(update.v):
            # Re-used vertex id: the base lists still reference the previous
            # incarnation of v; a rebuild keeps the structure unambiguous.
            return False
        if self._rebuild_every is not None:
            return self._updates_since_rebuild + 1 < self._rebuild_every
        return self._structure.overlay_size() < self.overlay_budget()

    def _check(self) -> None:
        problems = check_dfs_tree(self._graph, self._tree.parent_map())
        if problems:
            raise NotADFSTree("; ".join(problems[:5]))
