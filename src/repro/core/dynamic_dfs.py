"""Fully dynamic DFS (Theorem 13) on the shared :class:`UpdateEngine`.

:class:`FullyDynamicDFS` maintains a DFS tree of an undirected graph under an
arbitrary online sequence of edge/vertex insertions and deletions.  Each update
is processed exactly as in the paper:

1. the update is validated and applied to the graph;
2. the data structure ``D`` is brought up to date — either by a full refresh on
   the updated graph (rebuild on the current tree, Theorem 8, or an in-place
   :meth:`~repro.core.structure_d.StructureD.absorb_overlays`), or, between
   refreshes, by recording the update as a small overlay on the existing ``D``
   (the multi-update extension of Theorem 9, shared with the fault-tolerant
   driver);
3. the reduction algorithm turns the update into independent rerooting tasks
   (Theorem 11);
4. the rerooting engine (parallel by default, sequential baseline available)
   executes the tasks (Theorem 12);
5. the tree indices are rebuilt for the next update.

The pipeline itself — validation, metrics, the rebuild policy, the
reduce → reroot → commit loop — lives in
:class:`~repro.core.engine.UpdateEngine`; this module only provides the two
in-memory backends (``D`` and the brute-force oracle).

**Rebuild policy.**  Rebuilding ``D`` costs ``O(m)`` work per update, yet
Theorem 9 answers queries correctly for up to ``k`` overlaid updates without
touching the sorted lists.  The ``rebuild_every`` knob exploits that gap:

* ``rebuild_every=1`` — classic per-update rebuild (the seed behaviour);
* ``rebuild_every=k`` — every ``k``-th update rebuilds ``D``; the ``k - 1``
  updates in between are served from overlays, so the amortized rebuild work
  drops to ``O(m / k)`` per update while every query pays ``O(k)`` extra;
* ``rebuild_every=None`` (default) — auto-tuned: ``D`` is rebuilt once the
  overlay grows past ``~sqrt(2m)`` entries, balancing rebuild work against
  per-query overlay cost under the actual churn rate.

**D maintenance.**  ``d_maintenance="rebuild"`` (default) replaces ``D``
wholesale at each refresh (``O(m)`` spike, re-based on the current tree);
``d_maintenance="absorb"`` folds the overlays into the existing sorted lists
in ``O(overlay · log deg)`` (:meth:`StructureD.absorb_overlays`), keeping the
original base tree and turning the spike into a smooth amortized cost.

Because query answers are canonical (see
:class:`repro.core.queries.DQueryService`), the maintained tree is *identical*
under every policy and maintenance mode — amortization changes the cost, not
the output.

The graph is augmented with a virtual root connected to every vertex
(implicitly), so disconnected graphs are handled transparently: the children of
the virtual root are the roots of the DFS forest.
"""

from __future__ import annotations

from math import isqrt
from typing import Dict, Hashable, Iterable, List, Optional, Sequence

from repro.backends import native_graph, resolve_backend, structure_class
from repro.constants import VIRTUAL_ROOT
from repro.core.engine import Backend, UpdateEngine
from repro.core.maintenance import CostModel, CostSignal, MaintenanceController
from repro.core.overlay import (
    apply_update,
    reused_vertex_id_needs_rebuild,
    theorem9_overlay_budget,
)
from repro.core.queries import BruteForceQueryService, DQueryService, QueryService
from repro.core.structure_d import StructureD
from repro.core.updates import (
    EdgeDeletion,
    EdgeInsertion,
    Update,
    VertexDeletion,
    VertexInsertion,
)
from repro.graph.graph import UndirectedGraph
from repro.graph.traversal import static_dfs_forest
from repro.metrics.counters import MetricsRecorder
from repro.tree.dfs_tree import DFSTree

Vertex = Hashable


class DStructureBackend(Backend):
    """In-memory backend over the data structure ``D`` (Theorems 8–9).

    ``rebuild()`` refreshes ``D`` on the *pre-update* graph and the current
    tree; the update itself then enters ``D`` as an overlay, which keeps every
    vertex of the updated graph visible to ``D`` even when the update inserts
    a vertex the current tree cannot index yet.
    """

    name = "dynamic_dfs"
    supports_amortization = True
    rebuild_stage = "pre"

    def __init__(
        self,
        graph: UndirectedGraph,
        metrics: MetricsRecorder,
        *,
        d_maintenance: str = "rebuild",
        rebase_segment_threshold: Optional[float] = None,
        structure_cls: type = StructureD,
    ) -> None:
        if d_maintenance not in ("rebuild", "absorb"):
            raise ValueError(f"unknown d_maintenance {d_maintenance!r}")
        if rebase_segment_threshold is not None and rebase_segment_threshold < 1:
            raise ValueError(
                f"rebase_segment_threshold must be >= 1 or None, got {rebase_segment_threshold!r}"
            )
        self.graph = graph
        self.metrics = metrics
        self.structure: Optional[StructureD] = None
        self._structure_cls = structure_cls
        self._d_maintenance = d_maintenance
        self._rebase_segment_threshold = rebase_segment_threshold
        # Cost-model maintenance: the Theorem 9 overlay budget drives the
        # auto-tuned rebuild cadence, and in absorb mode the rebase triggers
        # (pinned side lists, then the segment EWMA — historical priority) are
        # forcing models that veto overlay service under any policy.
        self.controller = MaintenanceController(metrics=metrics)
        self.controller.add(
            CostModel("overlay", self.overlay_budget, inclusive=True)
        )
        if d_maintenance == "absorb":
            self.controller.add(
                CostModel("pinned", self.overlay_budget, forces=True)
            )
            self.controller.add(
                CostModel("segments", self.rebase_segment_threshold, forces=True)
            )

    def rebase_segment_threshold(self) -> float:
        """Segment EWMA that triggers an absorb-mode rebase (auto ~sqrt(m))."""
        if self._rebase_segment_threshold is not None:
            return self._rebase_segment_threshold
        return float(max(4, isqrt(max(self.graph.num_edges, 1))))

    def rebase_trigger(self) -> Optional[str]:
        """Which cost model (if any) demands a full rebase of absorb-mode ``D``.

        ``"segments"`` — the per-query segment EWMA crossed the threshold: the
        frozen base tree has diverged so far from the current tree that query
        decompositions have caught up with the rebuild cost it was avoiding.
        ``"pinned"`` — the pinned cross-edge side lists outgrew the overlay
        budget: their per-query scans cost more than a rebuild.  ``None`` —
        keep absorbing.  Thin wrapper over the controller's forcing models.
        """
        if self.structure is None:
            return None
        return self.controller.forced_due()

    def rebuild(self, tree: DFSTree, update: Optional[Update]) -> None:
        self.metrics.inc("d_rebuilds")
        if self._d_maintenance == "absorb" and self.structure is not None:
            trigger = self.rebase_trigger()
            if trigger is None:
                with self.metrics.timer("build_d"):
                    self.structure.absorb_overlays()
                return
            # Adaptive rebase: replace the frozen base tree with the current
            # one (a full rebuild), resetting the segment EWMA and clearing
            # the pinned side lists.  Counted separately from routine
            # d_rebuilds so benchmarks can assert the trigger bound.
            self.metrics.inc("d_rebases")
            if trigger == "segments":
                self.metrics.inc("d_rebase_trigger_segments")
            else:
                self.metrics.inc("d_rebase_trigger_pinned")
        with self.metrics.timer("build_d"):
            self.structure = self._structure_cls(self.graph, tree, metrics=self.metrics)
        self.controller.on_refresh()

    def must_rebuild(self, update: Update) -> bool:
        # Re-used vertex ids make overlays ambiguous; the rebase triggers go
        # through the controller's forcing models instead (engine-level veto).
        return reused_vertex_id_needs_rebuild(self.structure, update)

    def overlay_size(self) -> int:
        return self.structure.overlay_size()

    def overlay_budget(self) -> float:
        return theorem9_overlay_budget(self.graph.num_edges)

    def mutate(self, update: Update) -> None:
        # Theorem 9: record the update as an overlay and answer this update's
        # queries without touching the sorted lists.
        apply_update(self.graph, update, self.structure)
        self.metrics.observe_max("overlay_size", self.structure.overlay_size())

    def make_query_service(self, tree: DFSTree) -> QueryService:
        return DQueryService(self.structure, source_tree=tree, metrics=self.metrics)

    def end_update(self, update: Update) -> None:
        # One divergence sample per update: this update's mean target
        # segments per query (see StructureD.fold_segment_sample), then the
        # structure's cost signals are reported to the controller — the
        # policy decision of the next update reads them from there.
        if self.structure is not None:
            self.structure.fold_segment_sample()
            self.metrics.set("avg_target_segments", self.structure.avg_target_segments())
            for name, value in self.structure.maintenance_signals().items():
                self.controller.report(CostSignal(name, value))


class BruteBackend(Backend):
    """Oracle backend: the adjacency-scan service reads the live graph, so
    every update "rebuilds" (there is no reusable state to amortize)."""

    name = "dynamic_dfs"
    supports_amortization = False

    def __init__(self, graph: UndirectedGraph, metrics: MetricsRecorder) -> None:
        self.graph = graph
        self.metrics = metrics

    def rebuild(self, tree: DFSTree, update: Optional[Update]) -> None:
        # The oracle scans the live graph at answer time, so there is no state
        # to construct here — only the rebuild cadence is recorded.
        self.metrics.inc("d_rebuilds")

    def mutate(self, update: Update) -> None:
        apply_update(self.graph, update)

    def make_query_service(self, tree: DFSTree) -> QueryService:
        return BruteForceQueryService(self.graph, tree, metrics=self.metrics)


class FullyDynamicDFS:
    """Maintain a DFS forest of an undirected graph under updates.

    Parameters
    ----------
    graph:
        Initial graph.  It is copied unless ``copy_graph=False``.
    backend:
        Storage core: ``"dict"`` (the reference implementation, default) or
        ``"array"`` (numpy flat/CSR core — same results byte for byte, built
        for large graphs; requires numpy).  ``None`` reads the
        ``REPRO_BACKEND`` environment variable, falling back to ``"dict"``.
        With ``backend="array"`` the input graph is converted to an
        :class:`~repro.graph.array_graph.ArrayGraph` (always a copy unless it
        already is one and ``copy_graph=False``).
    engine:
        ``"parallel"`` (the paper's algorithm) or ``"sequential"`` (the Baswana
        et al. baseline).
    service:
        ``"d"`` (data structure ``D``, default) or ``"brute"`` (adjacency scan
        oracle; used for cross-validation).
    rebuild_every:
        Rebuild policy for ``D`` (only meaningful with ``service="d"``):
        ``1`` rebuilds after every update, ``k > 1`` rebuilds on every ``k``-th
        update and serves the rest from Theorem 9 overlays, ``None`` (default)
        auto-tunes the rebuild period to keep the overlay near ``sqrt(2m)``.
    d_maintenance:
        ``"rebuild"`` (default) — each refresh constructs a fresh ``D`` on the
        current tree; ``"absorb"`` — each refresh folds the overlays into the
        existing sorted lists in place (``O(overlay · log deg)`` instead of
        ``O(m)``; the base tree stays fixed until the auto-rebase policy
        replaces it).
    rebase_segment_threshold:
        Absorb mode only.  A full rebase of ``D`` (rebuild on the current
        tree) is triggered once the EWMA of target segments per query crosses
        this value, or the pinned cross-edge side lists outgrow the overlay
        budget — bounding the per-query decomposition cost that otherwise
        grows without bound as the frozen base tree diverges.  ``None``
        (default) auto-tunes to ``~sqrt(m)``.  Counted under ``d_rebases`` /
        ``d_rebase_trigger_segments`` / ``d_rebase_trigger_pinned``.
    validate:
        Check after every update that the maintained tree is a valid DFS forest
        and raise :class:`NotADFSTree` otherwise.  Also enables the strict
        invariant checks inside the parallel engine.
    metrics:
        Optional shared recorder; every model quantity (query rounds, queries,
        traversal rounds, ``D`` rebuild work, overlay sizes, ...) is
        accumulated there.

    Examples
    --------
    >>> from repro.graph.generators import gnp_random_graph
    >>> g = gnp_random_graph(50, 0.1, seed=7, connected=True)
    >>> dyn = FullyDynamicDFS(g)
    >>> _ = dyn.delete_edge(*next(iter(g.edges())))
    >>> dyn.is_valid()
    True
    """

    def __init__(
        self,
        graph: UndirectedGraph,
        *,
        backend: Optional[str] = None,
        engine: str = "parallel",
        service: str = "d",
        rebuild_every: Optional[int] = None,
        d_maintenance: str = "rebuild",
        rebase_segment_threshold: Optional[float] = None,
        validate: bool = False,
        metrics: Optional[MetricsRecorder] = None,
        copy_graph: bool = True,
    ) -> None:
        # Fail fast on every knob before copying the graph or running the
        # initial DFS, so a bad argument never records partial work.
        backend_name = resolve_backend(backend)
        UpdateEngine.validate_options(engine, rebuild_every)
        if service not in ("d", "brute"):
            raise ValueError(f"unknown service {service!r}")
        if service == "brute" and d_maintenance != "rebuild":
            raise ValueError('d_maintenance requires service="d"')
        if rebase_segment_threshold is not None and d_maintenance != "absorb":
            raise ValueError('rebase_segment_threshold requires d_maintenance="absorb"')
        self._backend_name = backend_name
        self._graph = native_graph(graph, backend_name, copy=copy_graph)
        self.metrics = metrics or MetricsRecorder("dynamic_dfs")
        with self.metrics.timer("initial_dfs"):
            parent = static_dfs_forest(self._graph)
        tree = DFSTree(parent, root=VIRTUAL_ROOT)
        if service == "d":
            backend_impl: Backend = DStructureBackend(
                self._graph,
                self.metrics,
                d_maintenance=d_maintenance,
                rebase_segment_threshold=rebase_segment_threshold,
                structure_cls=structure_class(backend_name),
            )
        else:
            backend_impl = BruteBackend(self._graph, self.metrics)
        self._backend = backend_impl
        self._engine = UpdateEngine(
            backend_impl,
            tree,
            rebuild_every=rebuild_every,
            reroot_engine=engine,
            validate=validate,
            metrics=self.metrics,
        )

    # ------------------------------------------------------------------ #
    # Read access
    # ------------------------------------------------------------------ #
    @property
    def graph(self) -> UndirectedGraph:
        """The current graph (do not mutate it directly; use the update API)."""
        return self._graph

    @property
    def tree(self) -> DFSTree:
        """The current DFS tree (rooted at the virtual root)."""
        return self._engine.tree

    @property
    def rebuild_every(self) -> Optional[int]:
        """The configured rebuild period (``None`` = auto-tuned)."""
        return self._engine.rebuild_every

    @property
    def backend(self) -> str:
        """The resolved storage backend name (``"dict"`` or ``"array"``)."""
        return self._backend_name

    @property
    def update_engine(self) -> UpdateEngine:
        """The shared :class:`UpdateEngine` driving this adapter."""
        return self._engine

    def add_commit_listener(self, listener) -> None:
        """Register *listener* to run with the committed tree after every
        update (the MVCC snapshot-publication hook; see
        :meth:`UpdateEngine.add_commit_listener`)."""
        self._engine.add_commit_listener(listener)

    def remove_commit_listener(self, listener) -> None:
        """Deregister a commit listener (the service-detach hook; unknown
        listeners are ignored — see
        :meth:`UpdateEngine.remove_commit_listener`)."""
        self._engine.remove_commit_listener(listener)

    def overlay_budget(self) -> int:
        """Overlay size that triggers a rebuild under the auto-tuned policy."""
        return int(self._backend.overlay_budget())

    def rebase_segment_threshold(self) -> Optional[float]:
        """Effective absorb-mode rebase threshold (None for rebuild maintenance
        or the brute oracle, which have no frozen base tree to rebase)."""
        backend = self._backend
        if isinstance(backend, DStructureBackend) and backend._d_maintenance == "absorb":
            return backend.rebase_segment_threshold()
        return None

    def parent_map(self, *, include_virtual_root: bool = True) -> Dict[Vertex, Optional[Vertex]]:
        """Parent map of the maintained DFS forest.

        Without the virtual root, component roots map to ``None`` (a plain DFS
        forest of the graph).
        """
        return self._engine.parent_map(include_virtual_root=include_virtual_root)

    def roots(self) -> List[Vertex]:
        """Roots of the DFS forest (children of the virtual root)."""
        return self._engine.roots()

    def is_valid(self) -> bool:
        """True iff the maintained tree is currently a valid DFS forest."""
        return self._engine.is_valid()

    # ------------------------------------------------------------------ #
    # Update API
    # ------------------------------------------------------------------ #
    def insert_edge(self, u: Vertex, v: Vertex) -> DFSTree:
        """Insert edge ``(u, v)`` and return the updated tree."""
        return self.apply(EdgeInsertion(u, v))

    def delete_edge(self, u: Vertex, v: Vertex) -> DFSTree:
        """Delete edge ``(u, v)`` and return the updated tree."""
        return self.apply(EdgeDeletion(u, v))

    def insert_vertex(self, v: Vertex, neighbors: Iterable[Vertex] = ()) -> DFSTree:
        """Insert vertex *v* with edges to *neighbors* and return the updated tree."""
        return self.apply(VertexInsertion(v, tuple(neighbors)))

    def delete_vertex(self, v: Vertex) -> DFSTree:
        """Delete vertex *v* (and its incident edges) and return the updated tree."""
        return self.apply(VertexDeletion(v))

    def apply(self, update: Update) -> DFSTree:
        """Apply one update and return the updated DFS tree."""
        return self._engine.apply(update)

    def apply_all(self, updates: Sequence[Update]) -> DFSTree:
        """Apply a whole batch of updates in one pass; returns the final tree."""
        return self._engine.apply_all(updates)
