"""Fully dynamic DFS (Theorem 13).

:class:`FullyDynamicDFS` maintains a DFS tree of an undirected graph under an
arbitrary online sequence of edge/vertex insertions and deletions.  Each update
is processed exactly as in the paper:

1. the update is applied to the graph;
2. the data structure ``D`` is rebuilt on the updated graph and the *current*
   tree (``O(log n)`` parallel time with ``m`` processors — Theorem 8; this is
   the step that forces the ``m``-processor bound of Theorem 13);
3. the reduction algorithm turns the update into independent rerooting tasks
   (Theorem 11);
4. the rerooting engine (parallel by default, sequential baseline available)
   executes the tasks (Theorem 12);
5. the tree indices are rebuilt for the next update.

The graph is augmented with a virtual root connected to every vertex
(implicitly), so disconnected graphs are handled transparently: the children of
the virtual root are the roots of the DFS forest.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, List, Optional, Sequence

from repro.constants import VIRTUAL_ROOT, is_virtual_root
from repro.core.queries import BruteForceQueryService, DQueryService, QueryService
from repro.core.reduction import reduce_update
from repro.core.reroot_parallel import ParallelRerootEngine
from repro.core.reroot_sequential import SequentialRerootEngine
from repro.core.structure_d import StructureD
from repro.core.updates import (
    EdgeDeletion,
    EdgeInsertion,
    Update,
    VertexDeletion,
    VertexInsertion,
)
from repro.exceptions import NotADFSTree, UpdateError
from repro.graph.graph import UndirectedGraph
from repro.graph.traversal import static_dfs_forest
from repro.graph.validation import check_dfs_tree
from repro.metrics.counters import MetricsRecorder
from repro.tree.dfs_tree import DFSTree

Vertex = Hashable


class FullyDynamicDFS:
    """Maintain a DFS forest of an undirected graph under updates.

    Parameters
    ----------
    graph:
        Initial graph.  It is copied unless ``copy_graph=False``.
    engine:
        ``"parallel"`` (the paper's algorithm) or ``"sequential"`` (the Baswana
        et al. baseline).
    service:
        ``"d"`` (data structure ``D``, default) or ``"brute"`` (adjacency scan
        oracle; used for cross-validation).
    validate:
        Check after every update that the maintained tree is a valid DFS forest
        and raise :class:`NotADFSTree` otherwise.  Also enables the strict
        invariant checks inside the parallel engine.
    metrics:
        Optional shared recorder; every model quantity (query rounds, queries,
        traversal rounds, ``D`` rebuild work, ...) is accumulated there.

    Examples
    --------
    >>> from repro.graph.generators import gnp_random_graph
    >>> g = gnp_random_graph(50, 0.1, seed=7, connected=True)
    >>> dyn = FullyDynamicDFS(g)
    >>> _ = dyn.delete_edge(*next(iter(g.edges())))
    >>> dyn.is_valid()
    True
    """

    def __init__(
        self,
        graph: UndirectedGraph,
        *,
        engine: str = "parallel",
        service: str = "d",
        validate: bool = False,
        metrics: Optional[MetricsRecorder] = None,
        copy_graph: bool = True,
    ) -> None:
        if engine not in ("parallel", "sequential"):
            raise ValueError(f"unknown engine {engine!r}")
        if service not in ("d", "brute"):
            raise ValueError(f"unknown service {service!r}")
        self._graph = graph.copy() if copy_graph else graph
        self._engine_kind = engine
        self._service_kind = service
        self._validate = validate
        self.metrics = metrics or MetricsRecorder("dynamic_dfs")
        self._tree = self._initial_tree()
        self._structure: Optional[StructureD] = None
        self._service: Optional[QueryService] = None
        self._rebuild_structures()
        if self._validate:
            self._check()

    # ------------------------------------------------------------------ #
    # Construction helpers
    # ------------------------------------------------------------------ #
    def _initial_tree(self) -> DFSTree:
        with self.metrics.timer("initial_dfs"):
            parent = static_dfs_forest(self._graph)
        return DFSTree(parent, root=VIRTUAL_ROOT)

    def _rebuild_structures(self) -> None:
        with self.metrics.timer("build_d"):
            if self._service_kind == "d":
                self._structure = StructureD(self._graph, self._tree, metrics=self.metrics)
                self._service = DQueryService(self._structure, metrics=self.metrics)
            else:
                self._structure = None
                self._service = BruteForceQueryService(self._graph, self._tree, metrics=self.metrics)

    def _make_engine(self):
        if self._engine_kind == "parallel":
            return ParallelRerootEngine(
                self._tree,
                self._service,
                adjacency=self._graph.neighbor_list,
                metrics=self.metrics,
                validate=self._validate,
            )
        return SequentialRerootEngine(self._tree, self._service, metrics=self.metrics)

    # ------------------------------------------------------------------ #
    # Read access
    # ------------------------------------------------------------------ #
    @property
    def graph(self) -> UndirectedGraph:
        """The current graph (do not mutate it directly; use the update API)."""
        return self._graph

    @property
    def tree(self) -> DFSTree:
        """The current DFS tree (rooted at the virtual root)."""
        return self._tree

    def parent_map(self, *, include_virtual_root: bool = True) -> Dict[Vertex, Optional[Vertex]]:
        """Parent map of the maintained DFS forest.

        Without the virtual root, component roots map to ``None`` (a plain DFS
        forest of the graph).
        """
        parent = self._tree.parent_map()
        if include_virtual_root:
            return parent
        out: Dict[Vertex, Optional[Vertex]] = {}
        for v, p in parent.items():
            if is_virtual_root(v):
                continue
            out[v] = None if p is None or is_virtual_root(p) else p
        return out

    def roots(self) -> List[Vertex]:
        """Roots of the DFS forest (children of the virtual root)."""
        return self._tree.children(VIRTUAL_ROOT)

    def is_valid(self) -> bool:
        """True iff the maintained tree is currently a valid DFS forest."""
        return not check_dfs_tree(self._graph, self._tree.parent_map())

    # ------------------------------------------------------------------ #
    # Update API
    # ------------------------------------------------------------------ #
    def insert_edge(self, u: Vertex, v: Vertex) -> DFSTree:
        """Insert edge ``(u, v)`` and return the updated tree."""
        return self.apply(EdgeInsertion(u, v))

    def delete_edge(self, u: Vertex, v: Vertex) -> DFSTree:
        """Delete edge ``(u, v)`` and return the updated tree."""
        return self.apply(EdgeDeletion(u, v))

    def insert_vertex(self, v: Vertex, neighbors: Iterable[Vertex] = ()) -> DFSTree:
        """Insert vertex *v* with edges to *neighbors* and return the updated tree."""
        return self.apply(VertexInsertion(v, tuple(neighbors)))

    def delete_vertex(self, v: Vertex) -> DFSTree:
        """Delete vertex *v* (and its incident edges) and return the updated tree."""
        return self.apply(VertexDeletion(v))

    def apply_all(self, updates: Sequence[Update]) -> DFSTree:
        """Apply a sequence of updates; returns the final tree."""
        for upd in updates:
            self.apply(upd)
        return self._tree

    def apply(self, update: Update) -> DFSTree:
        """Apply one update and return the updated DFS tree."""
        self.metrics.inc("updates")
        with self.metrics.timer("update"):
            self._mutate_graph(update)
            # Rebuild D on the updated graph and the current tree (Theorem 8).
            self._rebuild_structures()
            reduction = reduce_update(update, self._tree, self._service, metrics=self.metrics)

            new_parent = self._tree.parent_map()
            for v in reduction.removed_vertices:
                new_parent.pop(v, None)
            new_parent.update(reduction.parent_overrides)
            if reduction.tasks:
                engine = self._make_engine()
                assignment = engine.reroot_many(reduction.tasks)
                new_parent.update(assignment)

            if not reduction.tree_unchanged or reduction.parent_overrides or reduction.removed_vertices:
                with self.metrics.timer("rebuild_tree"):
                    self._tree = DFSTree(new_parent, root=VIRTUAL_ROOT)
        if self._validate:
            self._check()
        return self._tree

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #
    def _mutate_graph(self, update: Update) -> None:
        if isinstance(update, EdgeInsertion):
            self._graph.add_edge(update.u, update.v)
        elif isinstance(update, EdgeDeletion):
            self._graph.remove_edge(update.u, update.v)
        elif isinstance(update, VertexInsertion):
            self._graph.add_vertex_with_edges(update.v, update.neighbors)
        elif isinstance(update, VertexDeletion):
            self._graph.remove_vertex(update.v)
        else:
            raise UpdateError(f"unknown update type {update!r}")

    def _check(self) -> None:
        problems = check_dfs_tree(self._graph, self._tree.parent_map())
        if problems:
            raise NotADFSTree("; ".join(problems[:5]))
