"""The traversal families of the parallel rerooting algorithm (Section 4).

Every *step* of the rerooting algorithm picks one component of the unvisited
graph and performs one traversal on it:

* **disintegrating traversal** (Section 4.1) — carve the path from the
  component root ``r_c`` to the minimal heavy vertex ``v_H`` of the heaviest
  subtree, so every leftover subtree has at most half the size;
* **path halving** (Section 4.2) — when ``r_c`` lies on the component path
  ``p_c``, walk towards the farther endpoint so the leftover path halves;
* **disconnecting traversal** (Section 4.3) — when ``r_c`` lies in a light
  subtree (or inside ``T(v_H)``), walk through the subtree into ``p_c`` in a way
  that separates the subtree's leftovers from the leftover path;
* **heavy subtree traversal** (Section 4.4) — when ``r_c`` lies in a heavy
  subtree but outside ``T(v_H)``, try the *l*, *p* and *r* scenarios in turn;
  the applicability lemma guarantees one of them (or the special case) works.

Each traversal is implemented as a *generator*: it ``yield``s batches of
independent :class:`~repro.core.queries.EdgeQuery` objects and receives the
answers via ``send``; its return value is a :class:`StepResult`.  The driving
engine (:mod:`repro.core.reroot_parallel`) runs the generators of all active
components in lock-step so that queries of different components issued in the
same sub-round are answered by a single batch — one parallel query round, one
streaming pass, or one CONGEST broadcast, depending on the backing service.

Robustness: after carving a path, leftover pieces are reassembled by
:meth:`TraversalPlanner._process_comp`, which *checks* the C1/C2 invariant
(a leftover subtree adjacent to two leftover paths, or two leftover paths
adjacent to each other, would merge components).  If a violation is detected —
which the paper's traversals should never produce — the affected pieces are
merged into an ``irregular`` component that the engine traverses with a
correct-by-construction component DFS, and the event is counted in the metrics.
The final tree is therefore always a valid DFS tree regardless.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Generator, Hashable, Iterable, List, Optional, Sequence, Set, Tuple

from repro.core.components import Component, PathPiece, TreePiece
from repro.core.queries import Answer, EdgeQuery
from repro.exceptions import InvariantViolation
from repro.metrics.counters import MetricsRecorder
from repro.tree.dfs_tree import DFSTree
from repro.tree.tree_utils import ancestor_descendant_segments, hanging_subtrees, heavy_vertex

Vertex = Hashable
QueryBatch = List[EdgeQuery]
TraversalGen = Generator[QueryBatch, List[Answer], "StepResult"]


@dataclass
class StepResult:
    """Outcome of one traversal step on one component."""

    #: Vertices added to ``T*`` in traversal order (first vertex is the
    #: component root ``r_c`` and hangs from ``component.attach``).
    pstar: List[Vertex] = field(default_factory=list)
    #: Components of the still-unvisited part, each with root/attach set.
    new_components: List[Component] = field(default_factory=list)
    #: Parent assignments produced directly (only the fallback DFS uses this).
    direct_parents: Dict[Vertex, Vertex] = field(default_factory=dict)
    #: Which traversal produced the result (for metrics / tests).
    traversal: str = ""
    #: True when the fallback component DFS was used.
    used_fallback: bool = False


class TraversalPlanner:
    """Implements the traversal families against a fixed base tree.

    Parameters
    ----------
    tree:
        The base DFS tree ``T`` (the tree being rerooted).
    metrics:
        Counter sink.
    validate:
        When True, structural invariants raise :class:`InvariantViolation`
        instead of being repaired silently (used by the test-suite).
    adjacency:
        ``vertex -> iterable of neighbours`` callable used by the fallback
        component DFS (and only by it).
    enable_heavy / enable_path_halving:
        Ablation switches (benchmark E8): disabling them keeps the output
        correct but destroys the stage/phase progress guarantees.
    """

    def __init__(
        self,
        tree: DFSTree,
        *,
        metrics: Optional[MetricsRecorder] = None,
        validate: bool = False,
        adjacency=None,
        enable_heavy: bool = True,
        enable_path_halving: bool = True,
    ) -> None:
        self.tree = tree
        self.metrics = metrics or MetricsRecorder("traversals")
        self.validate = validate
        self.adjacency = adjacency
        self.enable_heavy = enable_heavy
        self.enable_path_halving = enable_path_halving

    # ------------------------------------------------------------------ #
    # Dispatch (procedure Reroot-DFS)
    # ------------------------------------------------------------------ #
    def step(self, comp: Component) -> TraversalGen:
        """Return the traversal generator appropriate for *comp*."""
        tree = self.tree
        if comp.irregular or comp.rc is None:
            return self._fallback(comp)

        if comp.path is not None and comp.path.contains(tree, comp.rc):
            if self.enable_path_halving:
                return self._path_halving(comp)
            return self._path_full_walk(comp)

        tau = None
        for t in comp.trees:
            if t.contains(tree, comp.rc):
                tau = t
                break
        if tau is None:
            self.metrics.inc("invariant_rc_not_found")
            if self.validate:
                raise InvariantViolation(f"root {comp.rc!r} not found in {comp.describe(tree)}")
            return self._fallback(comp)

        heaviest = comp.heaviest_tree(tree)
        threshold = max(heaviest.size(tree) // 2, 1) if heaviest is not None else 1
        tau_heavy = tau.size(tree) > threshold

        if comp.path is None:
            return self._disintegrate(comp, tau, threshold)
        if not tau_heavy:
            return self._disconnect(comp, tau, threshold)
        if comp.rc == tau.root:
            return self._disintegrate(comp, tau, threshold)
        v_h = heavy_vertex(tree, tau.root, threshold)
        if tree.is_ancestor(v_h, comp.rc):
            return self._disconnect(comp, tau, threshold)
        if self.enable_heavy:
            return self._heavy(comp, tau, threshold, v_h)
        # Ablation mode: treat the heavy case like a disintegrating traversal;
        # Process-Comp's invariant checks repair (and count) the fallout.
        self.metrics.inc("ablation_heavy_disabled")
        return self._disintegrate(comp, tau, threshold)

    # ------------------------------------------------------------------ #
    # Shared helpers
    # ------------------------------------------------------------------ #
    def _hanging_within(self, tau: TreePiece, covered: Sequence[Vertex]) -> List[TreePiece]:
        """Subtrees of *tau* hanging from the *covered* vertices."""
        roots = hanging_subtrees(self.tree, covered, exclude=covered)
        return [TreePiece(r) for r in roots if tau.contains(self.tree, r)]

    def _piece_query(self, piece, target, *, prefer_last: bool, label: str) -> EdgeQuery:
        if isinstance(piece, TreePiece):
            return EdgeQuery.from_tree(piece.root, target, prefer_last=prefer_last, label=label)
        if isinstance(piece, PathPiece):
            return EdgeQuery.from_path(piece.vertices, target, prefer_last=prefer_last, label=label)
        raise TypeError(f"unknown piece type {piece!r}")

    @staticmethod
    def _positions(target: Sequence[Vertex]) -> Dict[Vertex, int]:
        return {v: i for i, v in enumerate(target)}

    def _is_walkable(self, pstar: Sequence[Vertex], jump: Optional[Tuple[Vertex, Vertex]]) -> bool:
        """Consecutive vertices of a traversal path must be tree neighbours,
        except for at most one designated back-edge jump."""
        tree = self.tree
        jump_set = {frozenset(jump)} if jump is not None else set()
        for a, b in zip(pstar, pstar[1:]):
            if tree.parent(a) == b or tree.parent(b) == a:
                continue
            if frozenset((a, b)) in jump_set:
                continue
            return False
        return len(set(pstar)) == len(pstar)

    # ------------------------------------------------------------------ #
    # Process-Comp (appendix procedure)
    # ------------------------------------------------------------------ #
    def _process_comp(
        self,
        comp: Component,
        pstar: List[Vertex],
        leftover_paths: List[Optional[PathPiece]],
        leftover_trees: List[TreePiece],
    ) -> Generator[QueryBatch, List[Answer], List[Component]]:
        """Assemble the leftover pieces into new components with roots.

        Yields the query batches described in ``Process-Comp``: one eligibility
        batch per leftover path (which trees have an edge to it), one batch for
        path-to-path adjacency (invariant check), and one batch that locates
        every new component's lowest edge on ``pstar``.
        """
        tree = self.tree
        paths = [p for p in leftover_paths if p is not None and len(p) > 0]
        trees = list(leftover_trees)
        self.metrics.inc("process_comp_calls")
        pstar_t = tuple(pstar)

        # --- 1. Which trees attach to which leftover path? -------------------
        tree_hits: Dict[int, List[int]] = {ti: [] for ti in range(len(trees))}
        for pi, p in enumerate(paths):
            if not trees:
                break
            target = tuple(p.vertices)
            batch = [
                self._piece_query(t, target, prefer_last=True, label=f"eligibility:{pi}")
                for t in trees
            ]
            answers = yield batch
            for ti, ans in enumerate(answers):
                if ans is not None:
                    tree_hits[ti].append(pi)

        # --- 2. Are two leftover paths directly connected? ------------------
        path_links: List[Tuple[int, int]] = []
        if len(paths) > 1:
            pair_queries = []
            pairs = []
            for i in range(len(paths)):
                for j in range(i + 1, len(paths)):
                    pair_queries.append(
                        EdgeQuery.from_path(
                            paths[i].vertices, tuple(paths[j].vertices), prefer_last=True, label="path_pair"
                        )
                    )
                    pairs.append((i, j))
            answers = yield pair_queries
            for (i, j), ans in zip(pairs, answers):
                if ans is not None:
                    path_links.append((i, j))

        # --- 3. Union pieces into components. --------------------------------
        parent = list(range(len(paths)))

        def find(x: int) -> int:
            while parent[x] != x:
                parent[x] = parent[parent[x]]
                x = parent[x]
            return x

        def union(a: int, b: int) -> None:
            ra, rb = find(a), find(b)
            if ra != rb:
                parent[rb] = ra

        merged_any: Set[int] = set()
        for i, j in path_links:
            union(i, j)
        for ti, hits in tree_hits.items():
            for a, b in zip(hits, hits[1:]):
                union(a, b)
        for i, j in path_links:
            merged_any.add(find(i))
        for ti, hits in tree_hits.items():
            if len(hits) > 1:
                merged_any.add(find(hits[0]))

        groups: Dict[int, Dict[str, list]] = {}
        for pi in range(len(paths)):
            root = find(pi)
            groups.setdefault(root, {"paths": [], "trees": []})["paths"].append(paths[pi])
        loose_trees: List[TreePiece] = []
        for ti, hits in tree_hits.items():
            if hits:
                groups[find(hits[0])]["trees"].append(trees[ti])
            else:
                loose_trees.append(trees[ti])

        new_components: List[Component] = []
        for root, grp in groups.items():
            irregular = len(grp["paths"]) > 1 or root in merged_any
            if irregular:
                self.metrics.inc("invariant_merged_paths")
                if self.validate:
                    raise InvariantViolation(
                        "leftover pieces violate the C1/C2 invariant: "
                        + ", ".join(p.describe() for p in grp["paths"])
                    )
            primary, *extra = grp["paths"]
            new_components.append(
                Component(
                    trees=grp["trees"],
                    path=primary,
                    extra_paths=extra,
                    irregular=irregular,
                    phase=comp.phase + 1,
                )
            )
        for t in loose_trees:
            new_components.append(Component(trees=[t], path=None, phase=comp.phase + 1))

        # --- 4. Find each new component's lowest edge on pstar. --------------
        root_queries: List[EdgeQuery] = []
        owners: List[int] = []
        for ci, c in enumerate(new_components):
            for piece in c.pieces():
                root_queries.append(
                    self._piece_query(piece, pstar_t, prefer_last=True, label="component_root")
                )
                owners.append(ci)
        answers = yield root_queries
        pos = self._positions(pstar)
        best: Dict[int, Answer] = {ci: None for ci in range(len(new_components))}
        for ci, ans in zip(owners, answers):
            if ans is None:
                continue
            cur = best[ci]
            if cur is None or pos[ans[1]] > pos[cur[1]]:
                best[ci] = ans

        for ci, c in enumerate(new_components):
            ans = best[ci]
            if ans is not None:
                c.rc, c.attach = ans[0], ans[1]
                continue
            # No edge to the newly traversed path: should be impossible (every
            # leftover piece hangs from the traversed path or from a leftover
            # path).  Repair via the base-tree parent edge, mark irregular.
            self.metrics.inc("invariant_unattached_component")
            if self.validate:
                raise InvariantViolation(
                    f"component {c.describe(tree)} has no edge to the traversed path"
                )
            c.irregular = True
            anchor = c.path.vertices[0] if c.path is not None else c.trees[0].root
            c.rc = anchor
            c.attach = tree.parent(anchor)
        return new_components

    # ------------------------------------------------------------------ #
    # Disintegrating traversal (Section 4.1)
    # ------------------------------------------------------------------ #
    def _disintegrate(self, comp: Component, tau: TreePiece, threshold: int) -> TraversalGen:
        tree = self.tree
        self.metrics.inc("traversal_disintegrating")
        rc = comp.rc
        r_prime = tau.root
        if tau.size(tree) <= threshold:
            v_h = tau.root
        else:
            v_h = heavy_vertex(tree, tau.root, threshold)

        v_l = tree.lca(rc, v_h)
        pstar = tree.path(rc, v_h)

        leftover_paths: List[Optional[PathPiece]] = []
        covered = list(pstar)
        if v_l != r_prime:
            upper = tree.ancestor_path(tree.parent(v_l), r_prime)
            leftover_paths.append(PathPiece(upper))
            covered.extend(upper)
        if comp.path is not None:
            leftover_paths.append(comp.path)

        leftover_trees = self._hanging_within(tau, covered)
        leftover_trees.extend(t for t in comp.trees if t is not tau)

        new_components = yield from self._process_comp(comp, pstar, leftover_paths, leftover_trees)
        return StepResult(pstar=pstar, new_components=new_components, traversal="disintegrating")

    # ------------------------------------------------------------------ #
    # Path halving (Section 4.2)
    # ------------------------------------------------------------------ #
    def _path_halving(self, comp: Component) -> TraversalGen:
        self.metrics.inc("traversal_path_halving")
        pc = list(comp.path.vertices)
        i = pc.index(comp.rc)
        if i >= len(pc) - 1 - i:
            pstar = list(reversed(pc[: i + 1]))  # rc back towards the first endpoint
            remainder = pc[i + 1 :]
        else:
            pstar = pc[i:]
            remainder = pc[:i]
        leftover_paths = [PathPiece(remainder)] if remainder else []
        new_components = yield from self._process_comp(comp, pstar, leftover_paths, list(comp.trees))
        return StepResult(pstar=pstar, new_components=new_components, traversal="path_halving")

    def _path_full_walk(self, comp: Component) -> TraversalGen:
        """Ablation variant of path halving: walk to the *nearer* endpoint, so
        the remaining path shrinks only by the traversed prefix."""
        self.metrics.inc("traversal_path_full_walk")
        pc = list(comp.path.vertices)
        i = pc.index(comp.rc)
        if i < len(pc) - 1 - i:
            pstar = list(reversed(pc[: i + 1]))
            remainder = pc[i + 1 :]
        else:
            pstar = pc[i:]
            remainder = pc[:i]
        leftover_paths = [PathPiece(remainder)] if remainder else []
        new_components = yield from self._process_comp(comp, pstar, leftover_paths, list(comp.trees))
        return StepResult(pstar=pstar, new_components=new_components, traversal="path_full_walk")

    # ------------------------------------------------------------------ #
    # Disconnecting traversal (Section 4.3)
    # ------------------------------------------------------------------ #
    def _disconnect(self, comp: Component, tau: TreePiece, threshold: int) -> TraversalGen:
        tree = self.tree
        self.metrics.inc("traversal_disconnecting")
        rc = comp.rc
        pc = comp.path
        assert pc is not None

        pc_top, pc_bottom = pc.top_bottom(tree)
        pc_list = list(pc.vertices)
        if pc_list[0] != pc_top:
            pc_list = list(reversed(pc_list))  # orient top -> bottom
        pc_t = tuple(pc_list)
        pos = self._positions(pc_list)

        # Lowest edge from tau to pc (nearest the bottom endpoint).
        answers = yield [self._piece_query(tau, pc_t, prefer_last=True, label="disconnect_lowest")]
        lowest = answers[0]
        if lowest is None:
            self.metrics.inc("invariant_tree_without_path_edge")
            if self.validate:
                raise InvariantViolation(f"{tau.describe()} has no edge to {pc.describe()}")
            result = yield from self._fallback(comp)
            return result

        x_low, y_low = lowest
        lower_half = pos[y_low] >= (len(pc_list) - 1) / 2.0
        if lower_half:
            # Entering at the lowest edge and walking up covers every tau edge
            # and at least half of pc.
            x, y = x_low, y_low
            traversed_pc = list(reversed(pc_list[: pos[y] + 1]))
            remainder_pc = pc_list[pos[y] + 1 :]
        else:
            answers = yield [self._piece_query(tau, pc_t, prefer_last=False, label="disconnect_highest")]
            highest = answers[0]
            x, y = highest if highest is not None else lowest
            traversed_pc = pc_list[pos[y] :]
            remainder_pc = pc_list[: pos[y]]

        tau_path = tree.path(rc, x)
        pstar = tau_path + traversed_pc

        v_meet = tree.lca(rc, x)
        leftover_paths: List[Optional[PathPiece]] = []
        covered = list(tau_path)
        if v_meet != tau.root:
            upper = tree.ancestor_path(tree.parent(v_meet), tau.root)
            leftover_paths.append(PathPiece(upper))
            covered.extend(upper)
        if remainder_pc:
            leftover_paths.append(PathPiece(remainder_pc))

        leftover_trees = self._hanging_within(tau, covered)
        leftover_trees.extend(t for t in comp.trees if t is not tau)

        new_components = yield from self._process_comp(comp, pstar, leftover_paths, leftover_trees)
        return StepResult(pstar=pstar, new_components=new_components, traversal="disconnecting")

    # ------------------------------------------------------------------ #
    # Heavy subtree traversal (Section 4.4)
    # ------------------------------------------------------------------ #
    def _heavy(self, comp: Component, tau: TreePiece, threshold: int, v_h: Vertex) -> TraversalGen:
        tree = self.tree
        self.metrics.inc("traversal_heavy")
        rc = comp.rc
        r_prime = tau.root
        pc = comp.path
        assert pc is not None
        pc_list = tuple(pc.vertices)
        pc_set = set(pc_list)

        # The ancestor path rc -> r' in T* order (rc first, r' last): "lowest on
        # p*" for the l traversal therefore means nearest to r'.
        root_path = tree.ancestor_path(rc, r_prime)
        root_path_t = tuple(root_path)
        pos_root = self._positions(root_path)
        v_l = tree.lca(rc, v_h)
        v_l_child = tree.child_towards(v_l, v_h) if v_l != v_h else v_h

        hanging_root = self._hanging_within(tau, root_path)

        # Eligibility of the subtrees hanging from the root path (edge to pc?).
        answers = yield [
            self._piece_query(t, pc_list, prefer_last=True, label="heavy_eligibility_root")
            for t in hanging_root
        ]
        eligible_root = [t for t, a in zip(hanging_root, answers) if a is not None]

        def in_subtree(root: Optional[Vertex], v: Vertex) -> bool:
            return root is not None and v in tree and tree.is_ancestor(root, v)

        # ------------------------------------------------------------------ #
        # Scenario 1: l traversal along path(rc, r').
        # ------------------------------------------------------------------ #
        sources_1: List[object] = list(eligible_root) + [pc]
        answers = yield [
            self._piece_query(p, root_path_t, prefer_last=True, label="heavy_l_lowest") for p in sources_1
        ]
        x1y1: Answer = None
        for ans in answers:
            if ans is None:
                continue
            if x1y1 is None or pos_root[ans[1]] > pos_root[x1y1[1]]:
                x1y1 = ans

        l_applicable = (
            x1y1 is None
            or not in_subtree(v_l_child, x1y1[0])
            or in_subtree(v_h, x1y1[0])
            or x1y1[0] == v_l_child
            or x1y1[0] in pc_set
        )
        if l_applicable:
            self.metrics.inc("heavy_scenario_l")
            pstar = list(root_path)
            leftover_trees = list(hanging_root)
            leftover_trees.extend(t for t in comp.trees if t is not tau)
            new_components = yield from self._process_comp(comp, pstar, [pc], leftover_trees)
            return StepResult(pstar=pstar, new_components=new_components, traversal="heavy_l")

        # ------------------------------------------------------------------ #
        # Scenario 2: p traversal.
        # ------------------------------------------------------------------ #
        chain = tree.path(v_l_child, v_h)
        hanging_chain = self._hanging_within(tau, chain)
        eligible_chain: List[TreePiece] = []
        if hanging_chain:
            answers = yield [
                self._piece_query(t, pc_list, prefer_last=True, label="heavy_eligibility_chain")
                for t in hanging_chain
            ]
            eligible_chain = [t for t, a in zip(hanging_chain, answers) if a is not None]

        # (x_d, y_d): the lowest edge on the root path from any piece that will
        # stay connected to pc after the traversal — the eligible hanging
        # trees, the hanging trees of the heavy chain, the other component
        # trees (every one of them is adjacent to pc by the C2 invariant), and
        # pc itself.  The p traversal only covers the root path from y_* down,
        # so y_d must dominate *all* of these edges: leaving out pc (or a
        # pc-connected tree) lets the untraversed remainder above y_* stay
        # adjacent to pc, merging two path pieces into one component — the
        # C1/C2 leftover-piece gap Process-Comp used to trip on.
        other_trees = [t for t in comp.trees if t is not tau]
        restricted_trees = (
            [t for t in eligible_root if t.root != v_l_child] + eligible_chain + other_trees
        )
        restricted: List[object] = restricted_trees + [pc]
        xd_yd: Answer = None
        if restricted:
            answers = yield [
                self._piece_query(t, root_path_t, prefer_last=True, label="heavy_xd") for t in restricted
            ]
            for ans in answers:
                if ans is None:
                    continue
                if xd_yd is None or pos_root[ans[1]] > pos_root[xd_yd[1]]:
                    xd_yd = ans
        y_d = xd_yd[1] if xd_yd is not None else rc
        tau_d: Optional[TreePiece] = None
        if xd_yd is not None:
            for t in restricted_trees:
                if t.contains(tree, xd_yd[0]):
                    tau_d = t
                    break

        # (x_p, y_p): among edges from T(v_L) to path(y_d, r'), the edge whose
        # source has the deepest LCA with v_H (one independent single-vertex
        # query per vertex of T(v_L)).
        upper_path = tuple(root_path[pos_root[y_d] :])
        tvl_vertices = tree.subtree_vertices(v_l_child)
        answers = yield [
            EdgeQuery.from_vertices((v,), upper_path, prefer_last=True, label="heavy_xp")
            for v in tvl_vertices
        ]
        xp_yp: Answer = None
        best_lca_level = -1
        for v, ans in zip(tvl_vertices, answers):
            if ans is None:
                continue
            lca_level = tree.level(tree.lca(v, v_h))
            better = lca_level > best_lca_level or (
                lca_level == best_lca_level
                and xp_yp is not None
                and pos_root.get(ans[1], -1) > pos_root.get(xp_yp[1], -1)
            )
            if xp_yp is None or better:
                best_lca_level = lca_level
                xp_yp = (v, ans[1])

        if xp_yp is None:
            # Scenario 1 failed because of a back edge from T(v_L) into the
            # root path, which is itself a valid (x_p, y_p) candidate; reaching
            # here means bookkeeping broke — repair via fallback.
            self.metrics.inc("invariant_heavy_missing_xp")
            if self.validate:
                raise InvariantViolation("heavy traversal could not find the p-traversal edge")
            result = yield from self._fallback(comp)
            return result

        x_p, y_p = xp_yp
        committed, failed_edge = yield from self._try_heavy_commit(
            comp, tau, v_l, v_l_child, v_h, x_p, y_p, pc, eligible_root,
            scenario="heavy_p", walk_down=True, r_prime=r_prime, root_path=root_path,
        )
        if committed is not None:
            return committed

        # ------------------------------------------------------------------ #
        # Scenario 3: r traversal.
        # ------------------------------------------------------------------ #
        x_r, y_r = failed_edge if failed_edge is not None else (x_p, y_p)
        if tau_d is not None and xd_yd is not None and y_p in pos_root:
            # Pseudocode lines 26-28: if tau_d has an edge below y_r on the
            # lower part of the root path, jump through it instead.
            lower_path = tuple(root_path[: pos_root[y_p] + 1])
            answers = yield [
                self._piece_query(tau_d, lower_path, prefer_last=False, label="heavy_x2_prime")
            ]
            alt = answers[0]
            if alt is not None and (
                y_r not in pos_root or pos_root[alt[1]] < pos_root[y_r]
            ):
                x_r, y_r = alt

        if y_r in pos_root:
            committed, failed_edge_r = yield from self._try_heavy_commit(
                comp, tau, v_l, v_l_child, v_h, x_r, y_r, pc, eligible_root,
                scenario="heavy_r", walk_down=False, r_prime=r_prime, root_path=root_path,
            )
            if committed is not None:
                return committed
        else:
            failed_edge_r = failed_edge

        # Special case (Section 4.4, Figure 5): commit the modified r' traversal
        # using the edge that defeated the previous scenario.  Stage progress
        # may be imperfect here (documented deviation); correctness is kept by
        # Process-Comp's invariant checks and the engine's loop guard.
        self.metrics.inc("heavy_special_case")
        x_m, y_m = failed_edge_r if failed_edge_r is not None else (x_p, y_p)
        if y_m not in pos_root:
            x_m, y_m = x_p, y_p
        result = yield from self._commit_heavy(
            comp, tau, v_l, x_m, y_m, pc,
            scenario="heavy_special", walk_down=False, r_prime=r_prime, root_path=root_path,
        )
        return result

    # ------------------------------------------------------------------ #
    # Heavy traversal helpers
    # ------------------------------------------------------------------ #
    def _heavy_pstar(
        self,
        rc: Vertex,
        x_star: Vertex,
        y_star: Vertex,
        v_l: Vertex,
        r_prime: Vertex,
        walk_down: bool,
    ) -> Tuple[List[Vertex], List[Vertex], Optional[Tuple[Vertex, Vertex]]]:
        """Build ``path(rc, x*) ∪ (x*, y*) ∪ tail`` and return
        ``(pstar, dive, jump_edge)``."""
        tree = self.tree
        dive = tree.path(rc, x_star)
        dive_set = set(dive)
        if y_star in dive_set:
            return dive, dive, None
        if walk_down:
            end = tree.parent(v_l)
            if end is not None and tree.is_ancestor(y_star, end):
                tail = list(reversed(tree.ancestor_path(end, y_star)))
            else:
                tail = [y_star]
        else:
            if tree.is_ancestor(r_prime, y_star):
                tail = tree.ancestor_path(y_star, r_prime)
            else:
                tail = [y_star]
        clean_tail: List[Vertex] = []
        for v in tail:
            if v in dive_set:
                break
            clean_tail.append(v)
        pstar = dive + clean_tail
        return pstar, dive, (x_star, y_star)

    def _try_heavy_commit(
        self,
        comp: Component,
        tau: TreePiece,
        v_l: Vertex,
        v_l_child: Vertex,
        v_h: Vertex,
        x_star: Vertex,
        y_star: Vertex,
        pc: PathPiece,
        eligible_root: List[TreePiece],
        *,
        scenario: str,
        walk_down: bool,
        r_prime: Vertex,
        root_path: List[Vertex],
    ) -> Generator[QueryBatch, List[Answer], Tuple[Optional[StepResult], Answer]]:
        """Check the applicability condition for the traversal through
        ``(x_star, y_star)``; commit it when the condition holds, otherwise
        return the offending edge so the caller can try the next scenario."""
        tree = self.tree
        pstar, dive, jump = self._heavy_pstar(comp.rc, x_star, y_star, v_l, r_prime, walk_down)
        if not self._is_walkable(pstar, jump):
            self.metrics.inc("invariant_unwalkable_pstar")
            if self.validate:
                raise InvariantViolation(f"{scenario}: candidate traversal path is not walkable")
            return None, None
        pc_list = tuple(pc.vertices)
        pc_set = set(pc_list)

        hanging_dive = self._hanging_within(tau, dive)
        eligible_dive: List[TreePiece] = []
        if hanging_dive:
            answers = yield [
                self._piece_query(t, pc_list, prefer_last=True, label=f"{scenario}_eligibility")
                for t in hanging_dive
            ]
            eligible_dive = [t for t, a in zip(hanging_dive, answers) if a is not None]

        pstar_t = tuple(pstar)
        sources: List[object] = [t for t in eligible_root if t.root != v_l_child]
        sources += eligible_dive + [pc]
        answers = yield [
            self._piece_query(p, pstar_t, prefer_last=True, label=f"{scenario}_lowest") for p in sources
        ]
        pos = self._positions(pstar)
        lowest: Answer = None
        for ans in answers:
            if ans is None:
                continue
            if lowest is None or pos[ans[1]] > pos[lowest[1]]:
                lowest = ans

        # T(v_P): the subtree hanging from the dive that contains v_H.
        v_p: Optional[Vertex] = None
        if v_h not in pos:
            anchor = tree.lca(x_star, v_h) if tree.is_ancestor(v_l_child, x_star) else v_l
            if anchor != v_h and tree.is_ancestor(anchor, v_h):
                candidate = tree.child_towards(anchor, v_h)
                if candidate not in pos:
                    v_p = candidate

        def in_subtree(root: Optional[Vertex], v: Vertex) -> bool:
            return root is not None and v in tree and tree.is_ancestor(root, v)

        applicable = (
            lowest is None
            or not in_subtree(v_p, lowest[0])
            or in_subtree(v_h, lowest[0])
            or lowest[0] == v_p
            or lowest[0] in pc_set
        )
        if not applicable:
            return None, lowest

        if scenario == "heavy_p":
            self.metrics.inc("heavy_p_committed")
        elif scenario == "heavy_r":
            self.metrics.inc("heavy_r_committed")
        else:
            self.metrics.inc("heavy_special_committed")
        result = yield from self._commit_heavy(
            comp, tau, v_l, x_star, y_star, pc,
            scenario=scenario, walk_down=walk_down, r_prime=r_prime, root_path=root_path,
        )
        return result, lowest

    def _commit_heavy(
        self,
        comp: Component,
        tau: TreePiece,
        v_l: Vertex,
        x_star: Vertex,
        y_star: Vertex,
        pc: PathPiece,
        *,
        scenario: str,
        walk_down: bool,
        r_prime: Vertex,
        root_path: List[Vertex],
    ) -> Generator[QueryBatch, List[Answer], StepResult]:
        tree = self.tree
        pstar, dive, jump = self._heavy_pstar(comp.rc, x_star, y_star, v_l, r_prime, walk_down)
        if not self._is_walkable(pstar, jump):
            self.metrics.inc("invariant_unwalkable_pstar")
            if self.validate:
                raise InvariantViolation(f"{scenario}: committed traversal path is not walkable")
            result = yield from self._fallback(comp)
            return result
        pstar_set = set(pstar)

        # Untraversed remainder of the root path: split into vertical runs (a
        # single run for the paper's traversals).
        leftover_root = [v for v in root_path if v not in pstar_set]
        leftover_paths: List[Optional[PathPiece]] = []
        for run in ancestor_descendant_segments(tree, leftover_root) if leftover_root else []:
            leftover_paths.append(PathPiece(run))
        leftover_paths.append(pc)

        covered = list(pstar) + [v for v in root_path if v not in pstar_set]
        leftover_trees = self._hanging_within(tau, covered)
        leftover_trees.extend(t for t in comp.trees if t is not tau)

        new_components = yield from self._process_comp(comp, pstar, leftover_paths, leftover_trees)
        return StepResult(pstar=pstar, new_components=new_components, traversal=scenario)

    # ------------------------------------------------------------------ #
    # Fallback: correct-by-construction component DFS
    # ------------------------------------------------------------------ #
    def _fallback(self, comp: Component) -> TraversalGen:
        """Traverse the whole component with a plain DFS restricted to its
        vertices.  Always correct (the components property only requires the
        component to hang from its chosen ``rc``/``attach`` edge), but
        sequential — every use is counted in the metrics."""
        tree = self.tree
        self.metrics.inc("fallback_components")
        vertices = set(comp.vertices(tree))
        self.metrics.inc("fallback_vertices", len(vertices))
        if self.adjacency is None:
            raise InvariantViolation(
                "fallback component DFS requested but no adjacency provider was configured"
            )
        rc = comp.rc if comp.rc is not None else next(iter(vertices))
        parent: Dict[Vertex, Vertex] = {}
        visited = {rc}
        order = [rc]
        stack: List[Tuple[Vertex, Iterable[Vertex]]] = [(rc, iter(self.adjacency(rc)))]
        while stack:
            v, it = stack[-1]
            advanced = False
            for w in it:
                if w in vertices and w not in visited:
                    visited.add(w)
                    parent[w] = v
                    order.append(w)
                    stack.append((w, iter(self.adjacency(w))))
                    advanced = True
                    break
            if not advanced:
                stack.pop()
        unreached = vertices - visited
        if unreached:
            self.metrics.inc("fallback_unreached", len(unreached))
            if self.validate:
                raise InvariantViolation(
                    f"fallback DFS could not reach {len(unreached)} vertices of the component"
                )
        result = StepResult(
            pstar=order,
            new_components=[],
            direct_parents=parent,
            traversal="fallback",
            used_fallback=True,
        )
        if False:  # pragma: no cover - makes this function a generator
            yield []
        return result
