"""The shared update pipeline: :class:`UpdateEngine` over a :class:`Backend`.

Khan's framework maintains a DFS tree under updates with one conceptual
pipeline, whatever the environment:

1. **validate** the update (malformed updates raise
   :class:`~repro.exceptions.UpdateError` before any state or metric is
   touched);
2. **refresh the query-service base state** when the rebuild policy demands it
   (rebuild ``D``, snapshot the stream, rebuild the BFS/broadcast tree), or
   serve the update from the existing state plus a small overlay (Theorem 9);
3. **mutate** the graph and the backend's bookkeeping;
4. **reduce** the update to independent rerooting tasks (Theorem 11) using the
   backend's :class:`~repro.core.queries.QueryService`;
5. **reroot** the affected subtrees (Theorem 12) and **commit** the new tree.

Historically this pipeline was implemented four times (fully dynamic,
semi-streaming, distributed, fault tolerant), and only the in-memory driver
had the amortized ``rebuild_every`` policy.  :class:`UpdateEngine` owns the
pipeline once — validation, metrics, the rebuild policy, the reduce → reroot →
commit loop — and every environment plugs in as a small :class:`Backend`.
Because query answers are *canonical* (see
:class:`~repro.core.queries.DQueryService`), all backends and all policies
maintain byte-identical trees; the policy changes the cost, never the output.

**Rebuild policy** (``rebuild_every``):

* ``1`` — rebuild the service state before every update (the classic
  behaviour of all four drivers);
* ``k > 1`` — rebuild on every ``k``-th update, serve the rest from the
  backend's overlay state;
* ``None`` — auto-tuned: rebuild when the backend's overlay grows past its
  budget (``~sqrt(2m)`` for ``D``-based backends; never, for backends whose
  overlays do not decay queries).

A backend can veto overlay service for a specific update
(:meth:`Backend.must_rebuild`, e.g. a re-used vertex id whose stale base
entries would make overlays ambiguous) and can declare that its cached state
became structurally invalid after a mutation (:meth:`Backend.cache_invalid`,
e.g. a deleted BFS-tree edge in the CONGEST backend).

**Cost-model maintenance.**  A backend may attach a
:class:`~repro.core.maintenance.MaintenanceController`; the engine then
consults it at every policy decision.  Its *cadence* models implement the
auto-tuned ``rebuild_every=None`` policy (the Theorem 9 overlay budget), and
its *forcing* models veto overlay service under any policy — the absorb-mode
rebase triggers and the CONGEST depth-drift voluntary rebuild both flow
through this single path instead of per-backend trigger plumbing.
Controller-demanded refreshes are counted under ``service_rebuilds_forced``
plus ``cost_model_triggers``.
"""

from __future__ import annotations

from typing import Callable, Dict, Hashable, Iterable, List, Optional, Sequence

from repro.constants import VIRTUAL_ROOT, is_virtual_root
from repro.core.overlay import validate_update
from repro.core.queries import QueryService
from repro.core.reduction import reduce_update
from repro.core.reroot_parallel import ParallelRerootEngine
from repro.core.reroot_sequential import SequentialRerootEngine
from repro.core.updates import (
    EdgeDeletion,
    EdgeInsertion,
    Update,
    VertexDeletion,
    VertexInsertion,
)
from repro.exceptions import NotADFSTree
from repro.graph.graph import UndirectedGraph
from repro.graph.validation import check_dfs_tree
from repro.metrics.counters import MetricsRecorder
from repro.tree.dfs_tree import DFSTree

Vertex = Hashable

__all__ = ["Backend", "UpdateEngine"]


class Backend:
    """Environment adapter for :class:`UpdateEngine`.

    A backend owns the graph representation of its environment, the query
    service that answers the rerooting engine's edge queries, and the state
    that service is based on.  Subclasses override the hooks they need; the
    defaults describe a backend with no reusable state (every update rebuilds).

    Attributes
    ----------
    name:
        Used in metrics recorder defaults and error messages.
    supports_amortization:
        When False the engine rebuilds on every update regardless of policy
        (e.g. the brute-force oracle, which reads the live graph).
    rebuild_stage:
        ``"pre"`` — the service state is rebuilt *before* the mutation (the
        ``D``-based backends: Theorem 8 rebuilds ``D`` on the pre-update graph
        and the current tree; the update itself then enters as an overlay).
        ``"post"`` — the state is rebuilt *after* the mutation (the CONGEST
        backend: the broadcast tree must span the post-update graph).
    """

    name = "backend"
    supports_amortization = False
    rebuild_stage = "pre"

    #: The environment's live graph (mutated through :meth:`mutate` only).
    graph: UndirectedGraph

    #: Optional cost-model maintenance controller (see
    #: :mod:`repro.core.maintenance`).  Backends that attach one report
    #: :class:`~repro.core.maintenance.CostSignal` observations in
    #: :meth:`end_update`; the engine consults the controller's cadence
    #: models under the auto-tuned policy and its forcing models under every
    #: policy.  When None, the auto-tuned policy falls back to the raw
    #: :meth:`overlay_size` / :meth:`overlay_budget` comparison (the
    #: fault-tolerant backend's never-rebuild infinite budget).
    controller = None

    # ------------------------------------------------------------------ #
    # State refresh
    # ------------------------------------------------------------------ #
    def rebuild(self, tree: DFSTree, update: Optional[Update]) -> None:
        """Bring the query-service base state up to date against *tree*.

        *update* is the update being served (``None`` for the initial build);
        ``rebuild_stage`` decides whether the graph already reflects it.
        """
        raise NotImplementedError

    def must_rebuild(self, update: Update) -> bool:
        """Backend veto: True when *update* cannot be served from overlays."""
        return False

    def cache_invalid(self, update: Update) -> bool:
        """Post-mutation check (``rebuild_stage == "post"`` only): True when
        the mutation structurally invalidated the cached state."""
        return False

    def overlay_size(self) -> int:
        """Current overlay size (drives the auto-tuned policy)."""
        return 0

    def overlay_budget(self) -> float:
        """Overlay size that triggers a rebuild under the auto-tuned policy."""
        return 0

    # ------------------------------------------------------------------ #
    # Update plumbing
    # ------------------------------------------------------------------ #
    def mutate(self, update: Update) -> None:
        """Apply *update* to the graph and the backend's bookkeeping."""
        raise NotImplementedError

    def on_mutated(self, update: Update) -> None:
        """Hook after mutation and state refresh (e.g. disseminate the update
        over the broadcast tree)."""

    def make_query_service(self, tree: DFSTree) -> QueryService:
        """The query service answering this update's edge queries against the
        current *tree*."""
        raise NotImplementedError

    def adjacency(self) -> Callable[[Vertex], Iterable[Vertex]]:
        """Adjacency provider for the fallback component DFS."""
        return self.graph.neighbor_list

    # ------------------------------------------------------------------ #
    # Per-update hooks
    # ------------------------------------------------------------------ #
    def begin_update(self, update: Update) -> None:
        """Called first, before the policy decision (snapshot counters here)."""

    def on_commit(self, tree: DFSTree) -> None:
        """Called with the committed tree (e.g. re-broadcast tree summaries)."""

    def end_update(self, update: Update) -> None:
        """Called last (flush per-update counters here)."""


class UpdateEngine:
    """Drives the shared update pipeline over a :class:`Backend`.

    Parameters
    ----------
    backend:
        The environment adapter.
    initial_tree:
        The DFS tree to start from (rooted at the virtual root).
    rebuild_every:
        The rebuild policy (see the module docstring).
    reroot_engine:
        ``"parallel"`` (the paper's engine) or ``"sequential"`` (baseline).
    validate:
        Check the maintained tree after every :meth:`apply` (and after every
        :meth:`apply_all` batch) and raise :class:`NotADFSTree` on failure.
    initial_rebuild:
        Build the service state at construction (the fault-tolerant driver
        passes False: its preprocessed ``D`` is never rebuilt).
    """

    def __init__(
        self,
        backend: Backend,
        initial_tree: DFSTree,
        *,
        rebuild_every: Optional[int] = None,
        reroot_engine: str = "parallel",
        validate: bool = False,
        metrics: Optional[MetricsRecorder] = None,
        initial_rebuild: bool = True,
    ) -> None:
        self.validate_options(reroot_engine, rebuild_every)
        self.backend = backend
        self.metrics = metrics or MetricsRecorder(backend.name)
        self._tree = initial_tree
        self._rebuild_every = rebuild_every
        self._reroot_kind = reroot_engine
        self._validate = validate
        self._updates_since_rebuild = 0
        self._updates_applied = 0
        self._commit_listeners: List[Callable[[DFSTree], None]] = []
        if initial_rebuild:
            self._do_rebuild(None)
            if self._validate:
                self._check(None)

    @staticmethod
    def validate_options(reroot_engine: str, rebuild_every: Optional[int]) -> None:
        """Reject malformed engine options.  Drivers call this *before* doing
        any per-construction work (graph copy, initial DFS), keeping the
        fail-fast contract of the update API at construction time too."""
        if reroot_engine not in ("parallel", "sequential"):
            raise ValueError(f"unknown reroot engine {reroot_engine!r}")
        if rebuild_every is not None and (not isinstance(rebuild_every, int) or rebuild_every < 1):
            raise ValueError(f"rebuild_every must be a positive int or None, got {rebuild_every!r}")

    # ------------------------------------------------------------------ #
    # Read access
    # ------------------------------------------------------------------ #
    @property
    def tree(self) -> DFSTree:
        """The current DFS tree (rooted at the virtual root)."""
        return self._tree

    @property
    def rebuild_every(self) -> Optional[int]:
        """The configured rebuild period (``None`` = auto-tuned)."""
        return self._rebuild_every

    @property
    def storage_backend(self) -> str:
        """Storage core of the backend's live graph: ``"array"`` when the flat
        CSR mirror is present (:class:`repro.graph.array_graph.ArrayGraph`),
        ``"dict"`` otherwise.  Purely observational — the pipeline is
        backend-agnostic and both cores maintain byte-identical trees."""
        return "array" if getattr(self.backend.graph, "is_array_backend", False) else "dict"

    def parent_map(self, *, include_virtual_root: bool = True) -> Dict[Vertex, Optional[Vertex]]:
        """Parent map of the maintained DFS forest."""
        parent = self._tree.parent_map()
        if include_virtual_root:
            return parent
        out: Dict[Vertex, Optional[Vertex]] = {}
        for v, p in parent.items():
            if is_virtual_root(v):
                continue
            out[v] = None if p is None or is_virtual_root(p) else p
        return out

    def roots(self) -> List[Vertex]:
        """Roots of the DFS forest (children of the virtual root)."""
        return self._tree.children(VIRTUAL_ROOT)

    def is_valid(self) -> bool:
        """True iff the maintained tree is a valid DFS forest of the graph."""
        return not check_dfs_tree(self.backend.graph, self._tree.parent_map())

    def add_commit_listener(self, listener: Callable[[DFSTree], None]) -> None:
        """Register *listener* to run after every committed update.

        The listener receives the committed :class:`DFSTree` (immutable; the
        engine never mutates a committed tree) right after
        :meth:`Backend.on_commit`, once per applied update — including updates
        that left the tree object unchanged, so listeners can count commits.
        It runs on the writer's thread: keep it O(1) (publish a pointer, bump
        a counter) and defer heavy work to readers.  This is the hook the
        MVCC snapshot service (:mod:`repro.service`) builds on.

        Listeners are *isolated*: one that raises never poisons the writer —
        the exception is swallowed (counted under ``commit_listener_errors``),
        the remaining listeners still run, and the backend's
        :meth:`Backend.end_update` is still guaranteed to run, so the update
        pipeline can never be left mid-update by a misbehaving observer.
        """
        self._commit_listeners.append(listener)

    def remove_commit_listener(self, listener: Callable[[DFSTree], None]) -> None:
        """Deregister a commit listener previously added with
        :meth:`add_commit_listener`.

        Removes one registration (matched by equality — bound methods like
        ``service._on_commit`` are a fresh object per attribute access, so an
        identity match would never fire — latest first, so a listener
        registered twice needs two removals); unknown listeners are ignored,
        which makes detach paths — e.g.
        :meth:`repro.service.DFSTreeService.close` draining a shard —
        idempotent.  Without this, a discarded service would keep receiving
        (and snapshotting) every future commit forever.
        """
        for i in range(len(self._commit_listeners) - 1, -1, -1):
            if self._commit_listeners[i] == listener:
                del self._commit_listeners[i]
                return

    @property
    def commit_listener_count(self) -> int:
        """Number of currently registered commit listeners (observability for
        detach paths: a drained service must shrink this)."""
        return len(self._commit_listeners)

    # ------------------------------------------------------------------ #
    # Update API
    # ------------------------------------------------------------------ #
    def apply(self, update: Update) -> DFSTree:
        """Apply one update and return the updated DFS tree.

        Malformed updates raise :class:`~repro.exceptions.UpdateError` *before*
        any metric, timer or graph state is touched, so failed updates never
        skew per-update counters.
        """
        validate_update(self.backend.graph, update)
        self.metrics.inc("updates")
        with self.metrics.timer("update"):
            self._apply_validated(update)
        if self._validate:
            self._check(update)
        return self._tree

    def apply_all(self, updates: Sequence[Update]) -> DFSTree:
        """Apply a whole batch of updates in one pass; returns the final tree.

        The batch is served by the amortized engine: the service state is
        rebuilt only when the rebuild policy demands it, so a batch of ``b``
        updates pays ``O(b / k)`` rebuilds rather than ``b``.  With
        ``validate=True`` the resulting tree is checked once at the end of the
        batch (the parallel engine's per-task invariant checks still run
        throughout).
        """
        updates = list(updates)
        self.metrics.inc("update_batches")
        self.metrics.observe_max("update_batch_size", len(updates))
        with self.metrics.timer("batch_update"):
            for update in updates:
                validate_update(self.backend.graph, update)
                self.metrics.inc("updates")
                with self.metrics.timer("update"):
                    self._apply_validated(update)
        if self._validate and updates:
            self._check(updates[-1])
        return self._tree

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #
    def _policy_allows_overlay(self, update: Update) -> bool:
        """True iff this update should be served from the existing service
        state instead of a rebuild, according to the rebuild policy."""
        backend = self.backend
        if not backend.supports_amortization:
            return False
        controller = backend.controller
        if self._rebuild_every is not None:
            allowed = self._updates_since_rebuild + 1 < self._rebuild_every
        elif controller is not None:
            allowed = controller.cadence_due() is None
        else:
            allowed = backend.overlay_size() < backend.overlay_budget()
        if not allowed:
            return False
        if backend.must_rebuild(update):
            # Backend veto (re-used vertex id): the refresh happens now rather
            # than at the next cadence point.  Counted only here — a veto
            # coinciding with a cadence rebuild forced nothing extra.
            self.metrics.inc("service_rebuilds_forced")
            return False
        if controller is not None and controller.forced_due() is not None:
            # Cost-model veto (due absorb-mode rebase, accumulated broadcast
            # depth-drift cost): the excess per-update cost the cached state
            # was charging has caught up with the refresh cost it avoided.
            self.metrics.inc("service_rebuilds_forced")
            self.metrics.inc("cost_model_triggers")
            return False
        return True

    def _do_rebuild(self, update: Optional[Update]) -> None:
        self.backend.rebuild(self._tree, update)
        self._updates_since_rebuild = 0
        self.metrics.inc("service_rebuilds")

    def _apply_validated(self, update: Update) -> None:
        backend = self.backend
        self._updates_applied += 1
        backend.begin_update(update)
        try:
            # Everything between begin_update and end_update runs under the
            # writer protocol: whatever raises, the finally below closes the
            # backend's update so the pipeline can never be left mid-update
            # (statically enforced by repro-lint's writer-pairing rule).
            serve_overlay = self._policy_allows_overlay(update)
            rebuilt = False
            if not serve_overlay and backend.rebuild_stage == "pre":
                self._do_rebuild(update)
                rebuilt = True
            backend.mutate(update)
            if backend.rebuild_stage == "post" and (
                not serve_overlay or backend.cache_invalid(update)
            ):
                self._do_rebuild(update)
                rebuilt = True
            if not rebuilt:
                self._updates_since_rebuild += 1
                self.metrics.inc("overlay_served_updates")
            backend.on_mutated(update)

            service = backend.make_query_service(self._tree)
            reduction = reduce_update(update, self._tree, service, metrics=self.metrics)

            new_parent = self._tree.parent_map()
            for v in reduction.removed_vertices:
                new_parent.pop(v, None)
            new_parent.update(reduction.parent_overrides)
            if reduction.tasks:
                engine = self._make_reroot_engine(service)
                new_parent.update(engine.reroot_many(reduction.tasks))

            if not reduction.tree_unchanged or reduction.parent_overrides or reduction.removed_vertices:
                with self.metrics.timer("rebuild_tree"):
                    self._tree = DFSTree(new_parent, root=VIRTUAL_ROOT)
            backend.on_commit(self._tree)
            # Iterate a copy: a listener may detach itself (or another) via
            # remove_commit_listener mid-commit (e.g. DFSTreeService.close).
            for listener in tuple(self._commit_listeners):
                try:
                    listener(self._tree)
                except Exception:
                    # Listener isolation: an observer that raises must never
                    # poison the writer — the remaining listeners still run
                    # and the finally below still closes the backend's update.
                    self.metrics.inc("commit_listener_errors")
        finally:
            backend.end_update(update)

    def _make_reroot_engine(self, service: QueryService):
        if self._reroot_kind == "parallel":
            return ParallelRerootEngine(
                self._tree,
                service,
                adjacency=self.backend.adjacency(),
                metrics=self.metrics,
                validate=self._validate,
            )
        return SequentialRerootEngine(self._tree, service, metrics=self.metrics)

    def _check(self, update: Optional[Update]) -> None:
        problems = check_dfs_tree(self.backend.graph, self._tree.parent_map())
        if problems:
            prefix = (
                f"after update {self._updates_applied} ({update.describe()}): "
                if update is not None
                else ""
            )
            raise NotADFSTree(prefix + "; ".join(problems[:5]))


def update_words(update: Update, graph: UndirectedGraph) -> int:
    """Description size of *update* in words (for dissemination accounting).

    For a vertex deletion the size is measured on the *pre-deletion* graph
    (the incident edge list travels with the announcement).
    """
    if isinstance(update, (EdgeInsertion, EdgeDeletion)):
        return 2
    if isinstance(update, VertexInsertion):
        return 1 + len(update.neighbors)
    if isinstance(update, VertexDeletion):
        return 1 + graph.degree(update.v)
    return 1
