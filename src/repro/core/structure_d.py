"""The data structure ``D`` (Section 5.2 of the paper, Theorems 8–9).

``D`` is deliberately simple: for every vertex ``v`` it stores the neighbours of
``v`` sorted by their post-order number in the base DFS tree ``T``.  Because a
DFS tree of an undirected graph has no cross edges, a neighbour of ``v`` with a
*larger* post-order number than ``v`` is necessarily an ancestor of ``v``, and
the ancestors of ``v`` appear in the sorted list in root-to-``v`` order.  A
query "among all edges from ``v`` incident on the ancestor–descendant path
``path(x, y)``, return the edge incident nearest to ``x``" therefore reduces to
a binary search for a post-order range followed by picking one end of the range.

The structure also supports the *multi-update extension* of Theorem 9: after the
graph has been modified by up to ``k`` updates, queries are still answered from
the original sorted lists plus small per-vertex overlays (inserted edges,
deleted edges, deleted vertices), at an extra ``O(k)`` cost per query — the
original lists are never rebuilt.  This is what the fault-tolerant driver uses.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from itertools import chain
from typing import Dict, Hashable, Iterable, List, Optional, Sequence, Set, Tuple

from repro.exceptions import VertexNotFound
from repro.graph.graph import UndirectedGraph
from repro.metrics.counters import MetricsRecorder
from repro.tree.dfs_tree import DFSTree

Vertex = Hashable

#: Weight of the newest sample in the segment EWMA.  One sample = one update's
#: mean target segments per query (see :meth:`StructureD.fold_segment_sample`);
#: sampling per update rather than per query keeps the estimate from being
#: dragged down by the cheap trailing queries every update ends with.  Large
#: enough that a sustained plateau is reflected within a handful of updates,
#: small enough that a single pathological update cannot trigger a rebase on
#: its own.
SEGMENT_EWMA_ALPHA = 0.25


class StructureD:
    """Per-vertex adjacency lists sorted by post-order number of the base tree.

    Parameters
    ----------
    graph:
        The graph whose edges the structure indexes.
    tree:
        The base DFS tree ``T`` the post-order numbers come from.  Vertices of
        *graph* that are missing from *tree* (possible only through overlays)
        are not indexed.
    metrics:
        Optional recorder; the build cost and per-query probe counts are
        reported under ``d_*`` counters.

    Notes
    -----
    The structure never mutates the graph; overlays (:meth:`note_edge_inserted`
    etc.) only affect how queries are answered, mirroring the paper's use of the
    *original* ``D`` to answer queries about the updated graph.
    """

    def __init__(
        self,
        graph: UndirectedGraph,
        tree: DFSTree,
        *,
        metrics: Optional[MetricsRecorder] = None,
    ) -> None:
        self._graph = graph
        self._tree = tree
        self._metrics = metrics
        self._post: Dict[Vertex, int] = {}
        self._sorted_posts: Dict[Vertex, List[int]] = {}
        self._sorted_nbrs: Dict[Vertex, List[Vertex]] = {}
        # Overlays for the multi-update extension (Theorem 9).
        self._extra_edges: Dict[Vertex, List[Vertex]] = {}
        self._deleted_edges: Set[frozenset] = set()
        self._deleted_vertices: Set[Vertex] = set()
        # Pinned side lists (absorb mode): inserted edges that are *cross*
        # edges w.r.t. the base tree, or incident to overlay-inserted
        # vertices, cannot enter the sorted lists without breaking the
        # back-edge property the range searches rely on; absorb_overlays()
        # parks them here and queries keep scanning them like overlays.
        self._cross_edges: Dict[Vertex, List[Vertex]] = {}
        self._next_virtual_post = tree.num_vertices  # inserted vertices go last
        # EWMA of target segments per query: the divergence signal the
        # absorb-mode auto-rebase policy watches.  A fresh structure (base
        # tree == current tree) decomposes every target into one segment.
        self._segment_ewma = 1.0
        self._segments_since = 0
        self._queries_since = 0
        self._build()

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    def _build(self) -> None:
        tree = self._tree
        post = {v: tree.postorder(v) for v in tree.vertices()}
        self._post = post
        total_work = 0
        for v in self._graph.vertices():
            if v not in post:
                continue
            nbrs = [w for w in self._graph.neighbors(v) if w in post]
            nbrs.sort(key=post.__getitem__)
            self._sorted_nbrs[v] = nbrs
            self._sorted_posts[v] = [post[w] for w in nbrs]
            total_work += max(len(nbrs), 1)
        if self._metrics is not None:
            self._metrics.inc("d_builds")
            self._metrics.inc("d_build_work", total_work)

    def _row(self, u: Vertex):
        """Base sorted row of *u* as ``(posts, nbrs)``, or ``None`` if unindexed.

        The single access point every query goes through: the dict backend
        returns the per-vertex python lists, the array backend
        (:class:`~repro.core.array_structure_d.ArrayStructureD`) returns
        slices of its flat postorder-sorted arrays.  Both are sequences
        supporting ``len``/indexing/``bisect``, which is what keeps the scalar
        query code byte-identical across backends.
        """
        posts = self._sorted_posts.get(u)
        if posts is None:
            return None
        return posts, self._sorted_nbrs[u]

    def _base_row_neighbors(self, v: Vertex):
        """Neighbour sequence of *v*'s base row (empty if *v* is unindexed)."""
        row = self._row(v)
        return () if row is None else row[1]

    @property
    def base_tree(self) -> DFSTree:
        """The DFS tree whose post-order numbers index the structure."""
        return self._tree

    @property
    def graph(self) -> UndirectedGraph:
        """The graph the structure was built on."""
        return self._graph

    def size(self) -> int:
        """Total number of indexed adjacency entries (``O(m)``)."""
        return sum(len(lst) for lst in self._sorted_nbrs.values())

    def postorder(self, v: Vertex) -> int:
        """Post-order number of *v* (inserted vertices get fresh, maximal numbers)."""
        try:
            return self._post[v]
        except KeyError:
            raise VertexNotFound(v) from None

    def indexes_vertex(self, v: Vertex) -> bool:
        """True iff the structure has a post-order number for *v* (either from
        the base tree or from an earlier overlay insertion).  Drivers use this
        to detect re-used vertex ids, whose stale base entries make overlay
        service ambiguous."""
        return v in self._post

    # ------------------------------------------------------------------ #
    # Overlays (Theorem 9: reuse D across up to k updates)
    # ------------------------------------------------------------------ #
    def note_edge_inserted(self, u: Vertex, v: Vertex) -> None:
        """Record the insertion of edge ``(u, v)`` without rebuilding the lists."""
        key = frozenset((u, v))
        self._deleted_edges.discard(key)
        self._extra_edges.setdefault(u, []).append(v)
        self._extra_edges.setdefault(v, []).append(u)

    def note_edge_deleted(self, u: Vertex, v: Vertex) -> None:
        """Record the deletion of edge ``(u, v)``.

        The edge may live in the base sorted lists, in the overlay lists (e.g.
        the adjacency of a vertex inserted after preprocessing), or in both; the
        overlay entries are dropped and the edge is masked for the base lists.
        """
        for store in (self._extra_edges, self._cross_edges):
            lst_u = store.get(u)
            if lst_u and v in lst_u:
                lst_u.remove(v)
            lst_v = store.get(v)
            if lst_v and u in lst_v:
                lst_v.remove(u)
        self._deleted_edges.add(frozenset((u, v)))

    def note_vertex_inserted(self, v: Vertex, neighbors: Iterable[Vertex]) -> None:
        """Record the insertion of vertex *v* with the given incident edges.

        As in the paper, the new vertex receives a post-order number larger than
        every existing one and is appended (via the overlay) to its neighbours'
        lists; its own list is sorted by post-order so range queries from *v*
        keep their logarithmic cost.

        If *v* re-uses the id of a vertex the structure already knows (deleted
        earlier in the same overlay epoch), the old incarnation's edges are
        masked first: discarding *v* from the deleted-vertex set must not bring
        edges back to life that the updated graph no longer has.
        """
        for w in self._base_row_neighbors(v):
            self._deleted_edges.add(frozenset((v, w)))
        for store in (self._extra_edges, self._cross_edges):
            stale = store.get(v)
            if stale:
                for w in stale:
                    self._deleted_edges.add(frozenset((v, w)))
                store[v] = []
        self._deleted_vertices.discard(v)
        # Mirror the graph layer's normalisation: self loops dropped,
        # duplicates collapsed — otherwise the overlay's alive-edge view
        # diverges from the graph and overlay_size() over-counts.
        neighbors = [w for w in dict.fromkeys(neighbors) if w != v]
        if v in self._tree:
            # Re-used base-tree id: the base lists and post-order number are
            # kept (so reset_overlays() restores the pristine structure and
            # range searches anchored at v stay consistent) and the new
            # incident edges are recorded exactly like edge insertions.
            for w in neighbors:
                if w not in self._post:
                    continue
                self._deleted_edges.discard(frozenset((v, w)))
                self._extra_edges.setdefault(v, []).append(w)
                self._extra_edges.setdefault(w, []).append(v)
            return
        self._post[v] = self._next_virtual_post
        self._next_virtual_post += 1
        nbrs = [w for w in neighbors if w in self._post]
        nbrs.sort(key=self._post.__getitem__)
        self._sorted_nbrs[v] = nbrs
        self._sorted_posts[v] = [self._post[w] for w in nbrs]
        for w in nbrs:
            self._deleted_edges.discard(frozenset((v, w)))
            self._extra_edges.setdefault(w, []).append(v)

    def note_vertex_deleted(self, v: Vertex) -> None:
        """Record the deletion of vertex *v* (its stale entries are masked)."""
        self._deleted_vertices.add(v)

    def reset_overlays(self) -> None:
        """Forget every overlay (used by the fault-tolerant driver between
        independent batches of updates, which always start from the original
        graph again).  Must not be mixed with :meth:`absorb_overlays`, which
        folds overlays into the base lists destructively."""
        self._extra_edges.clear()
        self._cross_edges.clear()
        self._deleted_edges.clear()
        self._deleted_vertices.clear()
        # Drop sorted lists of vertices that only exist through overlays.
        for v in [v for v in self._sorted_nbrs if v not in self._tree and not self._graph.has_vertex(v)]:
            self._sorted_nbrs.pop(v, None)
            self._sorted_posts.pop(v, None)
            self._post.pop(v, None)
        self._next_virtual_post = self._tree.num_vertices

    def overlay_size(self) -> int:
        """Number of overlay entries currently masking / extending the base
        lists.  Pinned cross entries (see :meth:`absorb_overlays`) are *not*
        counted: no rebuild policy can absorb them, so counting them would
        make the auto-tuned policy rebuild forever for no gain — use
        :meth:`pinned_size` to observe them."""
        return (
            sum(len(lst) for lst in self._extra_edges.values())
            + len(self._deleted_edges)
            + len(self._deleted_vertices)
        )

    def pinned_size(self) -> int:
        """Number of pinned cross entries left behind by :meth:`absorb_overlays`."""
        return sum(len(lst) for lst in self._cross_edges.values())

    def note_query_segments(self, segments: int) -> None:
        """Record one query's target-segment count for the divergence EWMA.

        Called by :class:`~repro.core.queries.DQueryService` for every query it
        decomposes.  Under absorb maintenance the base tree is frozen, so as
        the current tree drifts away from it each target path shatters into
        more and more base-tree segments; this per-query cost is the signal
        the auto-rebase policy of
        :class:`~repro.core.dynamic_dfs.DStructureBackend` thresholds on.
        """
        self._segments_since += segments
        self._queries_since += 1

    def fold_segment_sample(self) -> None:
        """Fold the queries recorded since the last fold into the EWMA.

        Drivers call this once per update (one sample = one update's mean
        segments per query); updates that needed no queries contribute no
        sample.  Folding per update keeps one expensive decomposition burst
        from being averaged away by the cheap trailing queries of the same
        update before the policy gets to look at it.
        """
        if self._queries_since:
            sample = self._segments_since / self._queries_since
            self._segment_ewma += SEGMENT_EWMA_ALPHA * (sample - self._segment_ewma)
            self._segments_since = 0
            self._queries_since = 0

    def avg_target_segments(self) -> float:
        """EWMA of mean target segments per query since this structure was built."""
        return self._segment_ewma

    def maintenance_signals(self) -> Dict[str, float]:
        """The structure's maintenance cost signals, one value per update.

        Keys match the :class:`~repro.core.maintenance.CostModel` names the
        ``D``-based backends register: ``overlay`` (Theorem 9 entries masking
        or extending the base lists — the auto-tuned rebuild cadence),
        ``pinned`` (cross-edge side lists no absorb can retire) and
        ``segments`` (the per-query divergence EWMA).  Backends report these
        through :meth:`MaintenanceController.observe
        <repro.core.maintenance.MaintenanceController.observe>` after every
        update instead of each policy re-reading structure internals.
        """
        return {
            "overlay": float(self.overlay_size()),
            "pinned": float(self.pinned_size()),
            "segments": self._segment_ewma,
        }

    def _overlay_neighbors(self, u: Vertex):
        """All overlay-recorded neighbours of *u* (inserted + pinned)."""
        return chain(self._extra_edges.get(u, ()), self._cross_edges.get(u, ()))

    # ------------------------------------------------------------------ #
    # Incremental maintenance (absorb instead of rebuild)
    # ------------------------------------------------------------------ #
    def _remove_sorted_entry(self, u: Vertex, w: Vertex) -> int:
        """Remove *w* from *u*'s sorted lists if present; returns entries probed."""
        posts = self._sorted_posts.get(u)
        if not posts:
            return 0
        p = self._post.get(w)
        if p is None:
            return 0
        nbrs = self._sorted_nbrs[u]
        i = bisect_left(posts, p)
        probes = 1
        while i < len(posts) and posts[i] == p:
            if nbrs[i] == w:
                posts.pop(i)
                nbrs.pop(i)
                return probes
            i += 1
            probes += 1
        return probes

    def _insert_sorted_entry(self, u: Vertex, w: Vertex) -> int:
        """Insert *w* into *u*'s sorted lists (no-op when already present)."""
        posts = self._sorted_posts.setdefault(u, [])
        nbrs = self._sorted_nbrs.setdefault(u, [])
        p = self._post[w]
        i = bisect_left(posts, p)
        probes = 1
        while i < len(posts) and posts[i] == p:
            if nbrs[i] == w:
                return probes  # already absorbed (e.g. mask discarded by re-insert)
            i += 1
            probes += 1
        posts.insert(i, p)
        nbrs.insert(i, w)
        return probes

    def absorb_overlays(self) -> None:
        """Fold the accumulated overlays into the sorted base lists in place.

        The incremental alternative to a full ``_build()``: deletions are
        purged from the lists, and inserted edges whose endpoints form an
        ancestor–descendant pair of the base tree are insorted by post-order
        number — ``O(log deg)`` to locate each entry, ``O(overlay)`` entries —
        so the periodic ``O(m)`` rebuild spike becomes a smooth amortized
        cost.  Inserted edges that are *cross* edges w.r.t. the base tree (or
        incident to overlay-inserted vertices) cannot enter the sorted lists:
        the range searches would miss them because neither endpoint is a
        base-tree ancestor of the other.  They are pinned to a side list that
        queries keep scanning exactly like Theorem 9 overlays.

        After absorbing, queries answer *byte-identically* to a structure
        freshly built on the updated graph and the same base tree (the
        property the tests cross-validate); unlike a rebuild, the base tree —
        and therefore every post-order number — stays fixed.  Counted under
        ``d_absorbs`` / ``d_absorb_work``.
        """
        work = 0
        # 1. Deleted edges: purge from the sorted and side lists of both ends.
        for key in self._deleted_edges:
            pair = tuple(key)
            u, v = pair if len(pair) == 2 else (pair[0], pair[0])
            for a, b in ((u, v), (v, u)):
                work += self._remove_sorted_entry(a, b)
                for store in (self._extra_edges, self._cross_edges):
                    lst = store.get(a)
                    if lst and b in lst:
                        lst.remove(b)
                        work += 1
        self._deleted_edges.clear()
        # 2. Deleted vertices: drop their lists and their entries at every
        #    ex-neighbour.  Base-tree vertices keep their post-order number
        #    (queries still anchor ranges at them); overlay vertices vanish.
        for v in self._deleted_vertices:
            nbrs = set(self._sorted_nbrs.pop(v, ()))
            self._sorted_posts.pop(v, None)
            nbrs.update(self._extra_edges.pop(v, ()))
            nbrs.update(self._cross_edges.pop(v, ()))
            for w in nbrs:
                work += self._remove_sorted_entry(w, v)
                for store in (self._extra_edges, self._cross_edges):
                    lst = store.get(w)
                    while lst and v in lst:
                        lst.remove(v)
                        work += 1
            if v not in self._tree:
                self._post.pop(v, None)
            work += 1
        self._deleted_vertices.clear()
        # 3. Inserted edges: absorb ancestor–descendant pairs, pin the rest.
        tree = self._tree
        pinned_seen: Dict[Vertex, Set[Vertex]] = {}
        for u, lst in list(self._extra_edges.items()):
            for w in lst:  # the mirror entry handles the other endpoint
                if (
                    u in tree
                    and w in tree
                    and (tree.is_ancestor(u, w) or tree.is_ancestor(w, u))
                ):
                    work += self._insert_sorted_entry(u, w)
                else:
                    pinned = self._cross_edges.setdefault(u, [])
                    seen = pinned_seen.get(u)
                    if seen is None:
                        seen = pinned_seen[u] = set(pinned)
                    if w not in seen:
                        pinned.append(w)
                        seen.add(w)
                    work += 1
        self._extra_edges.clear()
        if self._metrics is not None:
            self._metrics.inc("d_absorbs")
            self._metrics.inc("d_absorb_work", work)
            self._metrics.observe_max("pinned_overlay_size", self.pinned_size())

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #
    def _edge_alive(self, u: Vertex, w: Vertex) -> bool:
        if w in self._deleted_vertices or u in self._deleted_vertices:
            return False
        return frozenset((u, w)) not in self._deleted_edges

    def neighbor_on_segment(
        self,
        u: Vertex,
        top: Vertex,
        bottom: Vertex,
        *,
        prefer_bottom: bool,
        on_segment=None,
    ) -> Optional[Vertex]:
        """Neighbour of *u* lying on the ancestor–descendant segment ``top..bottom``.

        *top* must be an ancestor of *bottom* in the base tree.  Returns the
        neighbour nearest to *bottom* (``prefer_bottom=True``) or nearest to
        *top*, or ``None`` when no edge from *u* reaches the segment.

        Precondition (matching the paper's query types): the base lists can only
        report neighbours that are base-tree *ancestors* of ``u`` (plus overlay
        edges); neighbours that are descendants of ``u`` on the segment are the
        querying side's responsibility (the query service runs the role-reversed
        search in exactly those situations).

        ``on_segment(w)`` may be supplied to verify candidates (used when the
        overlay contains edges that are cross edges w.r.t. the base tree); by
        default membership is decided by the base tree's ancestor intervals.
        """
        tree = self._tree
        if on_segment is None:
            endpoints_known = top in tree and bottom in tree

            def on_segment(w: Vertex) -> bool:
                if not endpoints_known or w not in tree:
                    return w == top or w == bottom
                return tree.is_ancestor(top, w) and tree.is_ancestor(w, bottom)

        best: Optional[Vertex] = None
        best_level = None
        probes = 0

        row = self._row(u)
        if row is not None:
            posts, nbrs = row
            if u in tree and top in tree and bottom in tree:
                # The ancestors of u on the segment occupy the post-order range
                # [post(lca(u, bottom)), post(top)] — see the module docstring.
                if tree.is_ancestor(top, u):
                    low_anchor = tree.lca(u, bottom)
                    lo = self._post[low_anchor]
                    hi = self._post[top]
                    left = bisect_left(posts, lo)
                    right = bisect_right(posts, hi)
                    indices = range(left, right) if prefer_bottom else range(right - 1, left - 1, -1)
                    for i in indices:
                        probes += 1
                        w = nbrs[i]
                        if not self._edge_alive(u, w):
                            continue
                        if on_segment(w):
                            best = w
                            break
            else:
                # u was inserted after the base tree was built (Theorem 9
                # overlay): its sorted list is small (k updates) or freshly
                # sorted; scan it and keep the candidate nearest the preferred
                # end of the segment.
                for w in nbrs:
                    probes += 1
                    if not self._edge_alive(u, w) or not on_segment(w):
                        continue
                    w_level = self._segment_depth(w)
                    if best is None:
                        best, best_level = w, w_level
                    elif (prefer_bottom and w_level > best_level) or (
                        not prefer_bottom and w_level < best_level
                    ):
                        best, best_level = w, w_level

        # Overlay edges (few per vertex; linear scan as in Theorem 9).
        for w in self._overlay_neighbors(u):  # pragma: no branch
            probes += 1
            if not self._edge_alive(u, w):
                continue
            if not on_segment(w):
                continue
            if best is None:
                best = w
                best_level = self._segment_depth(w)
                continue
            if best_level is None:
                best_level = self._segment_depth(best)
            w_level = self._segment_depth(w)
            if (prefer_bottom and w_level > best_level) or (not prefer_bottom and w_level < best_level):
                best = w
                best_level = w_level
        if self._metrics is not None:
            self._metrics.inc("d_vertex_queries")
            self._metrics.inc("d_probes", max(probes, 1))
        return best

    def _segment_depth(self, w: Vertex) -> int:
        try:
            return self._tree.level(w)
        except VertexNotFound:  # vertex inserted after the base tree was built
            return 1 << 30

    def min_post_alive_neighbor(
        self, u: Vertex, lo: int, hi: int
    ) -> Tuple[Optional[Vertex], int]:
        """Alive neighbour of *u* with the smallest post-order number in
        ``[lo, hi]``, together with the number of entries probed.

        Because a subtree of the base tree occupies a contiguous post-order
        interval, this answers "the piece vertex adjacent to *u* that comes
        first in post order" with one binary search plus a short scan — the
        postorder-interval index behind canonical source re-anchoring
        (:meth:`repro.core.queries.DQueryService._canonical_answer`).
        """
        probes = 0
        best: Optional[Vertex] = None
        best_post: Optional[int] = None
        row = self._row(u)
        if row is not None and len(row[0]):
            posts, nbrs = row
            i = bisect_left(posts, lo)
            while i < len(posts) and posts[i] <= hi:
                probes += 1
                w = nbrs[i]
                if self._edge_alive(u, w):
                    best, best_post = w, posts[i]
                    break
                i += 1
        for w in self._overlay_neighbors(u):  # overlay edges (few per vertex)
            probes += 1
            if not self._edge_alive(u, w):
                continue
            p = self._post.get(w)
            if p is None or p < lo or p > hi:
                continue
            if best_post is None or p < best_post:
                best, best_post = w, p
        return best, probes

    def min_post_alive_neighbor_batch(
        self, us: Sequence[Vertex], los: Sequence[int], his: Sequence[int]
    ) -> Tuple[List[Optional[Vertex]], int]:
        """Batched :meth:`min_post_alive_neighbor` over aligned query triples.

        Returns ``(answers, total_probes)`` — exactly the results of calling
        the scalar method once per triple.  The dict backend loops; the array
        backend answers all clean rows with one ``np.searchsorted`` sweep and
        falls back to the scalar path only for rows an overlay has touched.
        """
        best: List[Optional[Vertex]] = []
        probes = 0
        for u, lo, hi in zip(us, los, his):
            b, p = self.min_post_alive_neighbor(u, lo, hi)
            best.append(b)
            probes += p
        return best, probes

    def neighbors_of(self, u: Vertex) -> List[Vertex]:
        """All currently-alive neighbours of *u* according to the structure."""
        out = []
        for w in self._base_row_neighbors(u):
            if self._edge_alive(u, w):
                out.append(w)
        for w in self._overlay_neighbors(u):  # inserted + pinned edges
            if self._edge_alive(u, w):
                out.append(w)
        return out

    def has_alive_edge(self, u: Vertex, w: Vertex) -> bool:
        """True iff the edge ``(u, w)`` exists after applying the overlays."""
        if not self._edge_alive(u, w):
            return False
        if w in self._extra_edges.get(u, ()) or w in self._cross_edges.get(u, ()):
            return True
        row = self._row(u)
        if row is None or w not in self._post:
            return False
        posts, nbrs = row
        p = self._post[w]
        i = bisect_left(posts, p)
        while i < len(posts) and posts[i] == p:
            if nbrs[i] == w:
                return True
            i += 1
        return False
