"""Fault tolerant DFS (Theorem 14) on the shared :class:`UpdateEngine`.

The graph is preprocessed **once**: the initial DFS forest ``T_0`` and the data
structure ``D`` (built on ``T_0``) are stored.  A query then supplies a batch of
``k`` updates (failures and/or insertions); the answer is a DFS tree of the
updated graph, computed *without ever rebuilding* ``D``:

* updates are recorded as overlays on ``D`` (deleted edges/vertices are masked,
  inserted edges/vertices get small side lists — Theorem 9);
* the intermediate trees ``T*_1, ..., T*_k`` are computed one after another
  with the parallel rerooting engine;
* every query the engine makes against a path of ``T*_{i-1}`` is decomposed by
  the query service into ancestor–descendant segments of ``T_0`` — the number
  of segments per query is the quantity that grows like ``O(log^{2(i-1)} n)``
  and gives Theorem 14 its ``k``-dependent exponent.  The per-query segment
  counts are recorded in the metrics so benchmark E2 can reproduce that growth.

In :class:`~repro.core.engine.UpdateEngine` terms the driver is simply the
``D`` pipeline with a *never-rebuild* policy: the backend reports an infinite
overlay budget, so every update of a query batch is overlay-served against the
preprocessed structure.  Because the preprocessed state is never modified
(overlays are reset after each query), :meth:`FaultTolerantDFS.query` may be
called any number of times with independent update batches, exactly like a
fault-tolerant data structure.
"""

from __future__ import annotations

import math
from typing import Hashable, Optional, Sequence, Tuple

from repro.backends import native_graph, resolve_backend, structure_class
from repro.constants import VIRTUAL_ROOT
from repro.core.engine import Backend, UpdateEngine
from repro.core.overlay import apply_update
from repro.core.queries import DQueryService, QueryService
from repro.core.structure_d import StructureD
from repro.core.updates import Update
from repro.graph.graph import UndirectedGraph
from repro.graph.traversal import static_dfs_forest
from repro.metrics.counters import MetricsRecorder
from repro.tree.dfs_tree import DFSTree

Vertex = Hashable


class _PreprocessedDBackend(Backend):
    """Backend over a preprocessed ``D`` that is never rebuilt (Theorem 9
    with unbounded ``k``): every update is overlay-served."""

    name = "fault_tolerant_dfs"
    supports_amortization = True

    def __init__(
        self, graph: UndirectedGraph, structure: StructureD, metrics: MetricsRecorder
    ) -> None:
        self.graph = graph
        self.structure = structure
        self.metrics = metrics

    def overlay_budget(self) -> float:
        return math.inf  # never rebuild: the preprocessed D must stay pristine

    def rebuild(self, tree: DFSTree, update: Optional[Update]) -> None:  # pragma: no cover
        raise AssertionError("the fault-tolerant backend never rebuilds D")

    def mutate(self, update: Update) -> None:
        # Shared overlay bookkeeping (also used by FullyDynamicDFS between
        # amortized rebuilds): mutate the working graph and record the update
        # on the preprocessed D (Theorem 9).
        apply_update(self.graph, update, self.structure)

    def make_query_service(self, tree: DFSTree) -> QueryService:
        return DQueryService(self.structure, source_tree=tree, metrics=self.metrics)

    def begin_update(self, update: Update) -> None:
        self.metrics.inc("ft_updates")


class FaultTolerantDFS:
    """Preprocess a graph once; answer DFS trees for arbitrary update batches.

    Parameters
    ----------
    graph:
        The graph to preprocess (copied).
    backend:
        Storage core: ``"dict"`` (default), ``"array"`` (numpy flat/CSR core,
        byte-identical answers) or ``None`` to read the ``REPRO_BACKEND``
        environment variable.
    validate:
        Check every produced tree with the DFS validator (tests enable this).
    metrics:
        Optional shared recorder.

    Examples
    --------
    >>> from repro.graph.generators import gnp_random_graph
    >>> from repro.core.updates import EdgeDeletion
    >>> g = gnp_random_graph(40, 0.15, seed=3, connected=True)
    >>> ft = FaultTolerantDFS(g)
    >>> e = next(iter(g.edges()))
    >>> tree = ft.query([EdgeDeletion(*e)])
    >>> tree.num_vertices == g.num_vertices + 1  # + virtual root
    True
    """

    def __init__(
        self,
        graph: UndirectedGraph,
        *,
        backend: Optional[str] = None,
        validate: bool = False,
        metrics: Optional[MetricsRecorder] = None,
    ) -> None:
        self._backend_name = resolve_backend(backend)
        self._graph0 = native_graph(graph, self._backend_name, copy=True)
        self._validate = validate
        self._commit_listeners: list = []
        self.metrics = metrics or MetricsRecorder("fault_tolerant_dfs")
        with self.metrics.timer("preprocess"):
            parent = static_dfs_forest(self._graph0)
            self._tree0 = DFSTree(parent, root=VIRTUAL_ROOT)
            self._structure = structure_class(self._backend_name)(
                self._graph0, self._tree0, metrics=self.metrics
            )

    # ------------------------------------------------------------------ #
    @property
    def backend(self) -> str:
        """The resolved storage backend name (``"dict"`` or ``"array"``)."""
        return self._backend_name

    @property
    def base_tree(self) -> DFSTree:
        """The preprocessed DFS tree ``T_0``."""
        return self._tree0

    @property
    def structure(self) -> StructureD:
        """The preprocessed data structure ``D`` (never rebuilt)."""
        return self._structure

    def structure_size(self) -> int:
        """Size of the preprocessed structure (``O(m)``)."""
        return self._structure.size()

    def add_commit_listener(self, listener) -> None:
        """Register *listener* to run with each tree committed while a query
        replays its update batch (the MVCC snapshot-publication hook).  This
        driver builds a fresh throwaway engine per :meth:`query`, so listeners
        are stored here and re-registered on every query's engine; versions
        keep increasing monotonically across queries."""
        self._commit_listeners.append(listener)

    def remove_commit_listener(self, listener) -> None:
        """Deregister a commit listener (the service-detach hook): future
        :meth:`query` engines no longer re-register it.  Unknown listeners
        are ignored, keeping detach idempotent."""
        for i in range(len(self._commit_listeners) - 1, -1, -1):
            if self._commit_listeners[i] == listener:
                del self._commit_listeners[i]
                return

    # ------------------------------------------------------------------ #
    def query(self, updates: Sequence[Update]) -> DFSTree:
        """Return a DFS tree of ``graph + updates`` using only the preprocessed
        data (Theorem 14).  *updates* are applied in order."""
        tree, _ = self.query_with_graph(updates)
        return tree

    def query_with_graph(self, updates: Sequence[Update]) -> Tuple[DFSTree, UndirectedGraph]:
        """Like :meth:`query` but also returns the updated graph (useful for
        validation and for the examples)."""
        self.metrics.inc("ft_queries")
        self.metrics.observe_max("ft_batch_size", len(updates))
        graph = self._graph0.copy()
        self._structure.reset_overlays()
        backend = _PreprocessedDBackend(graph, self._structure, self.metrics)
        engine = UpdateEngine(
            backend,
            self._tree0,
            rebuild_every=None,  # with an infinite budget: never rebuild
            validate=self._validate,
            metrics=self.metrics,
            initial_rebuild=False,
        )
        for listener in self._commit_listeners:
            engine.add_commit_listener(listener)
        try:
            for update in updates:
                engine.apply(update)
        finally:
            # The preprocessed structure must stay pristine for the next query.
            self._structure.reset_overlays()
        return engine.tree, graph
