"""Sequential rerooting (the Baswana et al. style baseline, Section 1.4 / [6]).

Rerooting ``T(r0)`` at ``r*`` walks the tree path from ``r*`` up to ``r0``,
hangs it in the new tree, and recurses on every subtree hanging from that path,
attaching each one through its *lowest* edge to the path (components property).
The procedure is simple and produces the same kind of output as the parallel
engine, but its recursion chain can be ``Θ(n)`` long: a subtree hanging from
the path may contain almost the whole tree, and its own rerooting must finish
before its children components are known.

For a fair comparison the baseline is given the benefit of batching: all
subtrees discovered at the same recursion depth are queried together in one
batch, so its ``query_rounds`` equals its dependency-chain depth — the quantity
the parallel algorithm improves from ``Θ(n)`` to ``O(log^2 n)`` (benchmark E1).
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Optional, Sequence, Tuple

from repro.core.queries import EdgeQuery, QueryService
from repro.core.reduction import RerootTask
from repro.exceptions import InvariantViolation
from repro.metrics.counters import MetricsRecorder
from repro.tree.dfs_tree import DFSTree
from repro.tree.tree_utils import hanging_subtrees

Vertex = Hashable
ParentAssignment = Dict[Vertex, Vertex]


class SequentialRerootEngine:
    """Baseline rerooting engine with a potentially linear dependency chain."""

    def __init__(
        self,
        tree: DFSTree,
        service: QueryService,
        *,
        metrics: Optional[MetricsRecorder] = None,
    ) -> None:
        self.tree = tree
        self.service = service
        self.metrics = metrics or MetricsRecorder("sequential_reroot")

    def reroot(self, task: RerootTask) -> ParentAssignment:
        """Reroot a single subtree."""
        return self.reroot_many([task])

    def reroot_many(self, tasks: Sequence[RerootTask]) -> ParentAssignment:
        """Reroot all *tasks* (disjoint subtrees of the base tree)."""
        tree = self.tree
        result: ParentAssignment = {}
        # Each level entry: (subtree_root, new_root, attach).
        level: List[Tuple[Vertex, Vertex, Vertex]] = [
            (t.subtree_root, t.new_root, t.attach) for t in tasks
        ]
        guard = 4 * sum(tree.subtree_size(t.subtree_root) for t in tasks) + 64
        depth = 0

        while level:
            depth += 1
            if depth > guard:
                raise InvariantViolation("sequential rerooting did not terminate")
            self.metrics.inc("sequential_reroot_steps", len(level))

            # 1. Carve the root path of every job at this depth.
            pending: List[Tuple[Vertex, Tuple[Vertex, ...]]] = []  # (hanging root, its path)
            batch: List[EdgeQuery] = []
            for subtree_root, new_root, attach in level:
                path = tree.ancestor_path(new_root, subtree_root)  # new_root ... subtree_root
                prev = attach
                for v in path:
                    result[v] = prev
                    prev = v
                self.metrics.inc("vertices_added", len(path))
                target = tuple(path)
                for w in hanging_subtrees(tree, path, exclude=path):
                    pending.append((w, target))
                    batch.append(
                        EdgeQuery.from_tree(w, target, prefer_last=True, label="sequential_reroot")
                    )

            # 2. One query batch for every subtree hanging at this depth.
            next_level: List[Tuple[Vertex, Vertex, Vertex]] = []
            if batch:
                self.metrics.inc("query_rounds")
                self.metrics.inc("queries", len(batch))
                answers = self.service.answer_batch(batch)
                for (w, _target), ans in zip(pending, answers):
                    if ans is None:
                        # Impossible for a connected subtree: the tree edge from
                        # w to its parent on the path always exists.
                        raise InvariantViolation(
                            f"hanging subtree T({w!r}) has no edge to the rerooted path"
                        )
                    x, y = ans
                    next_level.append((w, x, y))
            level = next_level

        self.metrics.observe_max("sequential_chain_depth", depth)
        return result
