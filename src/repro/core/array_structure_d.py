"""Flat array implementation of the structure ``D`` (the ``"array"`` backend).

:class:`ArrayStructureD` stores the postorder-sorted adjacency of *every*
base-tree vertex in one flat pair of numpy arrays instead of per-vertex python
lists: a CSR-style ``indptr`` over vertex slots plus parallel ``posts``
(int64) and ``ids`` (object) arrays.  Construction is a single composite-key
argsort over the graph's half-edge arrays — ``key = slot * K + post`` with
``K = |T|`` makes one global sort equivalent to sorting every row by
post-order number — which is what buys the ≥10x rebuild speedup of the E11
large tier.

Queries go through the same scalar code as the dict backend: the only override
on the read path is :meth:`_row`, which hands :class:`StructureD`'s bisect
loops a slice of the flat arrays instead of python lists, so answers and probe
counters are **byte-identical by construction**.  Bulk work gets vectorized
fast paths: :meth:`min_post_alive_neighbor_batch` answers every
overlay-untouched row with one global ``np.searchsorted``, falling back to the
scalar path exactly for the rows a Theorem 9 overlay has dirtied.

The flat arrays are snapshots of the base lists that overlays mask without
touching (as in the paper).  :meth:`absorb_overlays` — which must edit the
base lists in place — has two paths.  **Edge-only** overlay epochs (the
sustained-churn steady state) are absorbed *into the flat arrays themselves*:
removals become one ``np.delete`` keep-mask, ancestor–descendant insertions
one batched ``np.insert`` at row-bounded searchsorted positions, and cross
pairs are pinned exactly like the dict absorb — the flat core stays hot and
``d_flat_absorbs`` counts the epoch.  Epochs involving *vertex* overlays (a
deleted vertex, or rows created for overlay-inserted vertices) still
*materialize* the flat rows into the exact per-vertex python lists the dict
backend would hold and run the inherited absorb (``d_flat_materializations``),
degrading to the dict representation until the next rebuild/rebase constructs
fresh flat arrays.  Both paths produce byte-identical rows and identical
``d_absorb_work`` accounting to the dict backend's absorb.
"""

from __future__ import annotations

from functools import cached_property
from itertools import repeat
from typing import Dict, Hashable, Iterable, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.core.structure_d import StructureD
from repro.graph.array_graph import _FREE, ArrayGraph

Vertex = Hashable


class ArrayStructureD(StructureD):
    """``D`` over flat postorder-sorted arrays, query-identical to the dict core.

    Accepts the same ``(graph, tree, metrics=...)`` constructor as
    :class:`StructureD`.  When *graph* is an :class:`ArrayGraph` the sorted
    adjacency is built by one argsort over its half-edge arrays; for any other
    graph (e.g. a semi-streaming snapshot materialised as a plain dict graph)
    it silently falls back to the inherited per-vertex build, so callers never
    need to special-case.
    """

    def _build(self) -> None:
        graph = self._graph
        tree = self._tree
        self._flat_posts: Optional[np.ndarray] = None
        self._flat_dst_slots: Optional[np.ndarray] = None
        self._flat_indptr: Optional[np.ndarray] = None
        self._flat_K = 1
        self._flat_total = 0
        self._flat_bisect_iters = 0
        self._post_of_slot: Optional[np.ndarray] = None
        self._frozen_slot_ids: List = []
        self._frozen_has_free = False
        self._id2slot: Optional[np.ndarray] = None  # dense int-id -> slot table
        self._dirty: Set[Vertex] = set()
        self._materialized = False
        if not isinstance(graph, ArrayGraph):
            self._materialized = True
            super()._build()
            return
        # Arm the lazy caches: ``_post`` / ``_slot_of_frozen`` / ``_flat_ids``
        # are python-level dicts/object arrays the vectorized build never
        # touches; the first *scalar* access materializes them from the
        # build-time snapshots below.
        self.__dict__.pop("_post", None)
        # Freeze the slot map at build time: if the graph later recycles a
        # slot for a new vertex id, queries must keep resolving the *old*
        # vertices (masked by overlays) and treat the new id as unindexed.
        # ``list(...)`` is a C-level pointer copy, so freezing is O(n) cheap.
        self._frozen_slot_ids = list(graph._slot_ids)
        self._frozen_has_free = bool(graph._free_slots)
        n_slots = graph.num_slots
        slot_of = graph.slot_index()
        # tree._verts / tree._post are index-aligned: same mapping as
        # {v: tree.postorder(v) for v in tree.vertices()} without n method
        # calls; vertices absent from the graph (the virtual root) map to -1.
        tslots = self._tree_vertex_slots(graph, tree, slot_of)
        tposts = tree.as_arrays()["post"]
        post_of_slot = np.full(n_slots, -1, dtype=np.int64)
        mask = tslots >= 0
        post_of_slot[tslots[mask]] = tposts[mask]
        self._post_of_slot = post_of_slot
        src, dst, alive = graph.edge_arrays()
        psrc = post_of_slot[src] if len(src) else np.empty(0, dtype=np.int64)
        pdst = post_of_slot[dst] if len(dst) else np.empty(0, dtype=np.int64)
        sel = alive & (psrc >= 0) & (pdst >= 0)
        ssel = src[sel]
        K = max(tree.num_vertices, 1)
        # Composite key: rows are contiguous slot blocks, sorted by neighbour
        # post-order inside each block.  Keys are unique (simple graph, unique
        # posts), so any sort reproduces the dict backend's per-row order.
        key = ssel * K + pdst[sel]
        order = np.argsort(key, kind="stable")
        self._flat_posts = pdst[sel][order]
        self._flat_dst_slots = dst[sel][order]
        counts = np.bincount(ssel, minlength=n_slots)
        indptr = np.zeros(n_slots + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        self._flat_indptr = indptr
        self._flat_K = K
        self._flat_total = int(indptr[-1])
        # Row-bounded bisects converge in log2(longest row) vectorized steps.
        self._flat_bisect_iters = int(counts.max()).bit_length() if n_slots else 0
        if self._metrics is not None:
            indexed = np.flatnonzero(post_of_slot >= 0)
            total_work = int(np.maximum(counts[indexed], 1).sum()) if len(indexed) else 0
            self._metrics.inc("d_builds")
            self._metrics.inc("d_build_work", total_work)

    def _tree_vertex_slots(self, graph: ArrayGraph, tree, slot_of) -> np.ndarray:
        """Slot of every tree vertex (-1 when not in the graph), index-aligned
        with ``tree._verts``.

        Fast path for the common dense case — non-negative int vertex ids, no
        free slots — via one int64 conversion and a dense ``id -> slot``
        scatter table; anything else (object ids, negative/sparse ids,
        recycled slots) falls back to one python pass over the dict.
        """
        verts = tree._verts
        n = len(verts)
        if not graph._free_slots and graph.num_slots:
            try:
                root_i = verts.index(tree.root) if not isinstance(tree.root, int) else -1
                if root_i >= 0:
                    tmp = list(verts)
                    tmp[root_i] = -1  # the (non-int) root is never a graph vertex
                    tv = np.array(tmp, dtype=np.int64)
                else:
                    tv = np.array(verts, dtype=np.int64)
                sids = np.array(graph._slot_ids, dtype=np.int64)
            except (TypeError, ValueError, OverflowError):
                pass
            else:
                hi = int(sids.max()) if len(sids) else -1
                lo = int(sids.min()) if len(sids) else 0
                if lo >= 0 and hi <= 8 * (graph.num_slots + n):
                    id2slot = np.full(hi + 1, -1, dtype=np.int64)
                    id2slot[sids] = np.arange(len(sids), dtype=np.int64)
                    # Keep the dense table: it snapshots the same build-time
                    # slot map as ``_frozen_slot_ids``, and lets the batched
                    # re-anchor resolve int vertex ids without a python loop.
                    self._id2slot = id2slot
                    tslots = np.full(n, -1, dtype=np.int64)
                    in_range = (tv >= 0) & (tv <= hi)
                    tslots[in_range] = id2slot[tv[in_range]]
                    return tslots
        return np.fromiter(
            map(slot_of.get, verts, repeat(-1)), dtype=np.int64, count=n
        )

    # ------------------------------------------------------------------ #
    # Lazy python-level views of the build-time snapshots.  These are
    # ``cached_property``s (non-data descriptors): the base class's plain
    # attribute writes shadow them on the fallback paths, while the
    # vectorized build pops/never-sets the instance slot so the first scalar
    # access pays the dict construction exactly once.
    # ------------------------------------------------------------------ #
    @cached_property
    def _post(self) -> Dict[Vertex, int]:
        """Base post-order map, materialized on first scalar access."""
        tree = self._tree
        return dict(zip(tree._verts, tree._post))

    @cached_property
    def _slot_of_frozen(self) -> Dict[Vertex, int]:
        """Build-time ``vertex -> slot`` snapshot (tree-indexed slots only)."""
        pos = self._post_of_slot
        if pos is None:
            return {}
        valid = (pos >= 0).tolist()
        return {
            v: s
            for s, v in enumerate(self._frozen_slot_ids)
            if valid[s] and v is not _FREE
        }

    @cached_property
    def _flat_ids(self) -> Optional[np.ndarray]:
        """Vertex ids parallel to the flat rows (object array, built lazily)."""
        if self._flat_dst_slots is None:
            return None
        lookup = np.empty(len(self._frozen_slot_ids), dtype=object)
        if self._frozen_has_free:
            lookup[:] = [None if v is _FREE else v for v in self._frozen_slot_ids]
        elif len(self._frozen_slot_ids):
            lookup[:] = self._frozen_slot_ids
        return lookup[self._flat_dst_slots]

    # ------------------------------------------------------------------ #
    # Row access (the one read-path override)
    # ------------------------------------------------------------------ #
    def _row(self, u: Vertex):
        posts = self._sorted_posts.get(u)
        if posts is not None:
            return posts, self._sorted_nbrs[u]
        if self._materialized:
            return None
        s = self._slot_of_frozen.get(u)
        if s is None:
            return None
        lo = self._flat_indptr[s]
        hi = self._flat_indptr[s + 1]
        return self._flat_posts[lo:hi], self._flat_ids[lo:hi]

    def size(self) -> int:
        """Total number of indexed adjacency entries (``O(overlay)``)."""
        total = sum(len(lst) for lst in self._sorted_nbrs.values())
        if not self._materialized:
            # Pre-materialization the dict rows are exactly the
            # overlay-inserted vertices, disjoint from the flat rows.
            total += self._flat_total
        return total

    # ------------------------------------------------------------------ #
    # Overlay bookkeeping: track which rows the flat arrays no longer answer
    # ------------------------------------------------------------------ #
    def note_edge_inserted(self, u: Vertex, v: Vertex) -> None:
        super().note_edge_inserted(u, v)
        self._dirty.add(u)
        self._dirty.add(v)

    def note_edge_deleted(self, u: Vertex, v: Vertex) -> None:
        super().note_edge_deleted(u, v)
        self._dirty.add(u)
        self._dirty.add(v)

    def note_vertex_inserted(self, v: Vertex, neighbors: Iterable[Vertex]) -> None:
        neighbors = list(neighbors)
        super().note_vertex_inserted(v, neighbors)
        self._dirty.add(v)
        self._dirty.update(neighbors)

    def note_vertex_deleted(self, v: Vertex) -> None:
        # The ex-neighbours' rows now hold dead entries, so they leave the
        # vectorized fast path too.
        row = self._row(v)
        if row is not None:
            self._dirty.update(list(row[1]))
        self._dirty.update(self._overlay_neighbors(v))
        self._dirty.add(v)
        super().note_vertex_deleted(v)

    def reset_overlays(self) -> None:
        super().reset_overlays()
        self._dirty.clear()

    # ------------------------------------------------------------------ #
    # Absorb: degrade to the exact dict representation, then reuse it
    # ------------------------------------------------------------------ #
    def _materialize(self) -> None:
        """Expand the flat rows into per-vertex python lists (one-way door).

        Absorbing edits the base lists in place, which an immutable flat
        snapshot cannot support; after materializing, this structure *is* a
        dict-backend :class:`StructureD` (same lists, same answers) until the
        next rebuild constructs fresh flat arrays.
        """
        if self._materialized:
            return
        indptr = self._flat_indptr
        posts = self._flat_posts
        ids = self._flat_ids
        for v, s in self._slot_of_frozen.items():
            if v in self._sorted_posts:
                continue
            lo = int(indptr[s])
            hi = int(indptr[s + 1])
            self._sorted_posts[v] = posts[lo:hi].tolist()
            self._sorted_nbrs[v] = list(ids[lo:hi])
        self._materialized = True
        if self._metrics is not None:
            self._metrics.inc("d_flat_materializations")

    def absorb_overlays(self) -> None:
        """Fold the accumulated overlays into the base representation.

        Edge-only epochs are absorbed directly into the flat arrays
        (:meth:`_absorb_flat`), keeping the vectorized query paths hot; epochs
        involving vertex overlays materialize the flat rows into python lists
        and run the inherited absorb.
        """
        if self._absorb_flat():
            return
        self._materialize()
        super().absorb_overlays()

    def _absorb_flat(self) -> bool:
        """Absorb an edge-only overlay epoch into the flat arrays in place.

        Returns ``False`` — without mutating anything — when the epoch
        involves vertex overlays (a deleted vertex, or python rows created for
        overlay-inserted vertices) or the structure already degraded to python
        lists; the caller then takes the materialize path.  Otherwise the
        result is byte-identical to the dict backend's absorb: same rows, same
        pinned side lists, and the same ``d_absorb_work`` — row probes are
        replayed entry for entry (live per-row counts reproduce the dict's
        sequential row-emptied-mid-absorb accounting; every row's posts are
        unique, so each dict probe loop is exactly one probe).
        """
        if self._materialized or self._flat_indptr is None:
            return False
        if self._deleted_vertices or self._sorted_posts:
            return False
        indptr = self._flat_indptr
        posts = self._flat_posts
        frozen = self._slot_of_frozen
        post_of = self._post
        tree = self._tree
        n_slots = len(indptr) - 1
        counts = np.diff(indptr)
        work = 0
        # -- Step 1 (deleted edges), planned without mutation: positions to
        # drop from the flat arrays, plus side-list purges to apply later.
        live = counts.copy()
        removed: List[int] = []
        removed_slots: List[int] = []
        removed_set: Set[int] = set()
        purges: List[Tuple[Dict[Vertex, List[Vertex]], Vertex, Vertex]] = []
        for key in self._deleted_edges:
            pair = tuple(key)
            u, v = pair if len(pair) == 2 else (pair[0], pair[0])
            for a, b in ((u, v), (v, u)):
                sa = frozen.get(a)
                if sa is not None:
                    p = post_of.get(b)
                    if p is not None and live[sa]:
                        work += 1
                        lo = int(indptr[sa])
                        hi = int(indptr[sa + 1])
                        pos = lo + int(np.searchsorted(posts[lo:hi], p))
                        if pos < hi and int(posts[pos]) == p:
                            removed.append(pos)
                            removed_slots.append(sa)
                            removed_set.add(pos)
                            live[sa] -= 1
                for store in (self._extra_edges, self._cross_edges):
                    lst = store.get(a)
                    if lst and b in lst:
                        purges.append((store, a, b))
                        work += 1
        # -- Bail before any mutation if an inserted endpoint resolves to no
        # frozen slot (defensive: tree vertices always have build slots).
        for u, lst in self._extra_edges.items():
            for w in lst:
                if (
                    u in tree
                    and w in tree
                    and (frozen.get(u) is None or frozen.get(w) is None)
                ):
                    return False
        # -- Commit: purge side lists (one occurrence each, like list.remove).
        for store, a, b in purges:
            store[a].remove(b)
        self._deleted_edges.clear()
        # -- Step 3 (inserted edges): classify in dict iteration order.
        ins: List[Tuple[int, int, int]] = []
        ins_seen: Set[Tuple[int, int]] = set()
        pinned_seen: Dict[Vertex, Set[Vertex]] = {}
        for u, lst in list(self._extra_edges.items()):
            for w in lst:  # the mirror entry handles the other endpoint
                if (
                    u in tree
                    and w in tree
                    and (tree.is_ancestor(u, w) or tree.is_ancestor(w, u))
                ):
                    work += 1
                    su = frozen[u]
                    p = post_of[w]
                    lo = int(indptr[su])
                    hi = int(indptr[su + 1])
                    pos = lo + int(np.searchsorted(posts[lo:hi], p))
                    if pos < hi and int(posts[pos]) == p and pos not in removed_set:
                        continue  # already absorbed (e.g. mask discarded by re-insert)
                    key2 = (su, p)
                    if key2 in ins_seen:
                        continue  # duplicate overlay entry within this epoch
                    ins_seen.add(key2)
                    ins.append((su, p, frozen[w]))
                else:
                    pinned = self._cross_edges.setdefault(u, [])
                    seen = pinned_seen.get(u)
                    if seen is None:
                        seen = pinned_seen[u] = set(pinned)
                    if w not in seen:
                        pinned.append(w)
                        seen.add(w)
                    work += 1
        self._extra_edges.clear()
        # -- One vectorized delete + insert pass over the flat arrays.
        if removed or ins:
            dsts = self._flat_dst_slots
            if removed:
                rem = np.array(sorted(removed), dtype=np.int64)
                keep_posts = np.delete(posts, rem)
                keep_dsts = np.delete(dsts, rem)
                rem_per_slot = np.bincount(
                    np.array(removed_slots, dtype=np.int64), minlength=n_slots
                )
            else:
                rem = np.empty(0, dtype=np.int64)
                keep_posts = posts
                keep_dsts = dsts
                rem_per_slot = np.zeros(n_slots, dtype=np.int64)
            if ins:
                ins.sort()  # (slot, post): np.insert keeps given order at ties
                ins_slots = np.array([t[0] for t in ins], dtype=np.int64)
                ins_posts = np.array([t[1] for t in ins], dtype=np.int64)
                ins_dsts = np.array([t[2] for t in ins], dtype=np.int64)
                # Insertion points w.r.t. the original rows, shifted into the
                # kept array by the number of removals before each.
                pos_orig = indptr[ins_slots] + np.array(
                    [
                        int(np.searchsorted(posts[int(indptr[s]) : int(indptr[s + 1])], p))
                        for s, p, _ in ins
                    ],
                    dtype=np.int64,
                )
                pos_kept = pos_orig - np.searchsorted(rem, pos_orig)
                new_posts = np.insert(keep_posts, pos_kept, ins_posts)
                new_dsts = np.insert(keep_dsts, pos_kept, ins_dsts)
                ins_per_slot = np.bincount(ins_slots, minlength=n_slots)
            else:
                new_posts = keep_posts
                new_dsts = keep_dsts
                ins_per_slot = np.zeros(n_slots, dtype=np.int64)
            new_counts = counts - rem_per_slot + ins_per_slot
            new_indptr = np.zeros(n_slots + 1, dtype=np.int64)
            np.cumsum(new_counts, out=new_indptr[1:])
            self._flat_posts = new_posts
            self._flat_dst_slots = new_dsts
            self._flat_indptr = new_indptr
            self._flat_total = int(new_indptr[-1])
            self._flat_bisect_iters = int(new_counts.max()).bit_length() if n_slots else 0
            self.__dict__.pop("_flat_ids", None)
        # Absorbed rows answer from the flat arrays again; only rows with
        # pinned cross entries stay off the vectorized fast path.
        self._dirty = {u for u, lst in self._cross_edges.items() if lst}
        if self._metrics is not None:
            self._metrics.inc("d_absorbs")
            self._metrics.inc("d_absorb_work", work)
            self._metrics.observe_max("pinned_overlay_size", self.pinned_size())
            self._metrics.inc("d_flat_absorbs")
        return True

    # ------------------------------------------------------------------ #
    # Vectorized bulk queries
    # ------------------------------------------------------------------ #
    def min_post_alive_neighbor_batch(
        self, us: Sequence[Vertex], los: Sequence[int], his: Sequence[int]
    ) -> Tuple[List[Optional[Vertex]], int]:
        """Batched min-post re-anchor probes via one global ``searchsorted``.

        Rows untouched by any overlay are answered together: the first flat
        entry with post-order number in ``[lo, hi]`` is alive by definition,
        so one ``np.searchsorted`` on the composite keys plus one gather
        resolves the whole clean subset (probes: 1 per hit, 0 per miss — the
        scalar accounting).  Dirty, materialized or unindexed rows take the
        inherited scalar path; answers equal the scalar method's exactly.
        """
        if self._metrics is not None:
            self._metrics.inc("d_batch_queries")
        n = len(us)
        if self._materialized or self._flat_indptr is None or n == 0:
            if self._metrics is not None:
                self._metrics.inc("d_batch_query_fallbacks")
            return super(ArrayStructureD, self).min_post_alive_neighbor_batch(us, los, his)
        slots, clean = self._clean_query_slots(us, n)
        out_arr = np.full(n, None, dtype=object)
        probes = 0
        all_clean = bool(clean.all())
        idx = None if all_clean else np.flatnonzero(clean)
        if self._flat_total and (all_clean or len(idx)):
            los_c = np.asarray(los, dtype=np.int64)
            his_c = np.asarray(his, dtype=np.int64)
            if idx is None:
                ss = slots
            else:
                los_c = los_c[idx]
                his_c = his_c[idx]
                ss = slots[idx]
            # Vectorized bisect bounded to each query's row: log2(longest
            # row) gather steps beat one global searchsorted's ~log2(m)
            # random hops.  Same position as bisect_left on the row.  Short
            # rows converge in the first few steps, so after PHASE1 rounds
            # the still-active queries (long hub rows) are compressed and
            # finished on their own.
            posts = self._flat_posts
            total_m1 = self._flat_total - 1
            pos = self._flat_indptr[ss]
            row_end = self._flat_indptr[ss + 1]
            hi_b = row_end
            iters = self._flat_bisect_iters
            PHASE1 = min(4, iters)
            for _ in range(PHASE1):
                mid = (pos + hi_b) >> 1
                go_right = posts[np.minimum(mid, total_m1)] < los_c
                go_right &= pos < hi_b
                pos = np.where(go_right, mid + 1, pos)
                hi_b = np.where(go_right, hi_b, mid)
            if iters > PHASE1:
                act = np.flatnonzero(pos < hi_b)
                if len(act):
                    pos_a = pos[act]
                    hi_a = hi_b[act]
                    los_a = los_c[act]
                    for _ in range(iters - PHASE1):
                        mid = (pos_a + hi_a) >> 1
                        go_right = posts[np.minimum(mid, total_m1)] < los_a
                        go_right &= pos_a < hi_a
                        pos_a = np.where(go_right, mid + 1, pos_a)
                        hi_a = np.where(go_right, hi_a, mid)
                    pos[act] = pos_a
            valid = (pos < row_end) & (posts[np.minimum(pos, total_m1)] <= his_c)
            probes += int(valid.sum())
            hits = valid if idx is None else idx[valid]
            out_arr[hits] = self._flat_ids[pos[valid]]
        if not all_clean:
            out = out_arr.tolist()
            for i in np.flatnonzero(~clean).tolist():
                b, p = self.min_post_alive_neighbor(us[i], los[i], his[i])
                out[i] = b
                probes += p
            return out, probes
        return out_arr.tolist(), probes

    def _clean_query_slots(self, us: Sequence[Vertex], n: int) -> Tuple[np.ndarray, np.ndarray]:
        """Per-query flat slot (where resolvable) and a mask of the queries the
        vectorized path may answer: base-indexed rows no overlay has dirtied.

        With the dense int-id table from the build fast path the whole marking
        is array ops; otherwise (object ids, recycled slots) it is one python
        pass over the frozen dict — answers are identical either way.
        """
        id2slot = self._id2slot
        if id2slot is not None:
            us_arr: Optional[np.ndarray] = np.asarray(us)
            # ints only — float/object dtypes would silently truncate/convert
            if us_arr.shape != (n,) or us_arr.dtype.kind not in "iub":
                us_arr = None
            else:
                us_arr = us_arr.astype(np.int64, copy=False)
            if us_arr is not None:
                if int(us_arr.min()) >= 0 and int(us_arr.max()) < len(id2slot):
                    slots = id2slot[us_arr]
                else:
                    in_range = (us_arr >= 0) & (us_arr < len(id2slot))
                    slots = np.where(in_range, id2slot[np.where(in_range, us_arr, 0)], -1)
                clean = slots >= 0
                # only rows indexed by the base tree live in the flat arrays
                if clean.all():
                    clean = self._post_of_slot[slots] >= 0
                else:
                    clean &= self._post_of_slot[np.where(clean, slots, 0)] >= 0
                for excl in (self._dirty, self._sorted_posts):
                    if not excl or not clean.any():
                        continue
                    if all(isinstance(v, int) for v in excl):
                        ids = np.fromiter(excl, dtype=np.int64, count=len(excl))
                        clean &= ~np.isin(us_arr, ids)
                    else:  # non-int overlay ids: per-element membership
                        for i in np.flatnonzero(clean).tolist():
                            if us[i] in excl:
                                clean[i] = False
                return slots, clean
        frozen = self._slot_of_frozen
        dirty = self._dirty
        overlay_rows = self._sorted_posts
        slots = np.full(n, -1, dtype=np.int64)
        clean = np.zeros(n, dtype=bool)
        for i, u in enumerate(us):
            s = frozen.get(u)
            if s is not None and u not in dirty and u not in overlay_rows:
                slots[i] = s
                clean[i] = True
        return slots, clean
