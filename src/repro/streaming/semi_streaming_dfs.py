"""Semi-streaming fully dynamic DFS (Theorem 15) on the shared
:class:`~repro.core.engine.UpdateEngine`.

The classic algorithm stores only the current tree ``T``, the partially built
tree ``T*`` and ``O(n)`` per-query state; the graph's edges are accessible
solely through :class:`~repro.streaming.stream.EdgeStream` passes.  All tree
operations are local; every batch of independent queries the rerooting engine
asks for is answered by **one pass** over the stream (each query keeps exactly
one candidate edge — its best-so-far — so the extra space is one edge per
query, ``O(n)`` in total).  The per-update pass count is therefore the number
of query batches, which the paper bounds by ``O(log^2 n)``.

**Amortized policy.**  With ``rebuild_every=k > 1`` (or ``None``) the driver
trades local memory for passes: every ``k``-th update *snapshots* the stream
into the data structure ``D`` with a single pass, and the updates in between
are served from ``D`` plus Theorem 9 overlays with **zero** passes — the
update stream itself tells the driver exactly how the graph changed.  The
amortized pass cost drops from ``O(log^2 n)`` per update to ``O(1/k)``, at the
price of ``O(m)`` local memory for the snapshot (no longer semi-streaming in
the strict sense; the classic ``rebuild_every=1`` default keeps the paper's
``O(n)`` space).  Because query answers are canonical, both policies maintain
byte-identical trees.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, List, Optional, Sequence, Set

from repro.backends import graph_class, native_graph, resolve_backend, structure_class
from repro.constants import VIRTUAL_ROOT
from repro.core.engine import Backend, UpdateEngine
from repro.core.maintenance import CostModel, CostSignal, MaintenanceController
from repro.core.overlay import reused_vertex_id_needs_rebuild, theorem9_overlay_budget
from repro.core.queries import Answer, DQueryService, EdgeQuery, QueryService
from repro.core.structure_d import StructureD
from repro.core.updates import (
    EdgeDeletion,
    EdgeInsertion,
    Update,
    VertexDeletion,
    VertexInsertion,
)
from repro.exceptions import UpdateError
from repro.graph.graph import UndirectedGraph
from repro.graph.traversal import static_dfs_forest
from repro.metrics.counters import MetricsRecorder
from repro.streaming.stream import EdgeStream
from repro.tree.dfs_tree import DFSTree

Vertex = Hashable


class StreamQueryService(QueryService):
    """Answers a batch of independent edge queries with a single stream pass.

    For every query the service keeps one best-so-far edge; when the pass ends,
    the per-query candidates are the answers.  Because the queries of a batch
    have disjoint source pieces, a reverse index ``vertex -> query`` fits in
    ``O(n)`` space.  Ties on the target position are broken towards the source
    with the smallest current-tree post-order number — the same canonical rule
    as :class:`~repro.core.queries.DQueryService`, so every driver and policy
    maintains byte-identical trees.
    """

    def __init__(
        self,
        stream: EdgeStream,
        base_tree: DFSTree,
        *,
        metrics: Optional[MetricsRecorder] = None,
    ) -> None:
        self._stream = stream
        self._tree = base_tree
        self._metrics = metrics

    def answer_batch(self, queries: Sequence[EdgeQuery]) -> List[Answer]:
        if self._metrics is not None:
            self._metrics.inc("query_batches")
            self._metrics.inc("queries", len(queries))
        if not queries:
            return []

        # O(n) working state: one source-owner entry per vertex (sources are
        # disjoint across independent queries) and per-query target positions.
        source_owner: Dict[Vertex, int] = {}
        target_pos: List[Dict[Vertex, int]] = []
        best: List[Answer] = [None] * len(queries)
        for qi, q in enumerate(queries):
            for v in q.source_vertex_list(self._tree):
                source_owner[v] = qi
            target_pos.append({v: i for i, v in enumerate(q.target)})
        if self._metrics is not None:
            self._metrics.observe_max("stream_state_entries", len(source_owner) + sum(len(t) for t in target_pos))

        tree = self._tree

        def rank(v: Vertex) -> int:
            return tree.postorder(v) if v in tree else (1 << 60)

        def consider(qi: int, src: Vertex, tgt: Vertex) -> None:
            q = queries[qi]
            pos = target_pos[qi]
            cur = best[qi]
            p = pos[tgt]
            if cur is None:
                best[qi] = (src, tgt)
                return
            cur_p = pos[cur[1]]
            if (q.prefer_last and p > cur_p) or (not q.prefer_last and p < cur_p):
                best[qi] = (src, tgt)
            elif p == cur_p and rank(src) < rank(cur[0]):
                # Canonical tie-break (same rule as DQueryService /
                # BruteForceQueryService): smallest current-tree post-order
                # source, so every driver maintains byte-identical trees.
                best[qi] = (src, tgt)

        for u, v in self._stream.pass_over():
            qi = source_owner.get(u)
            if qi is not None and v in target_pos[qi]:
                consider(qi, u, v)
            qj = source_owner.get(v)
            if qj is not None and u in target_pos[qj]:
                consider(qj, v, u)
        return best


class _StreamBackendBase(Backend):
    """Shared stream bookkeeping: per-update pass accounting hooks."""

    name = "semi_streaming_dfs"

    def __init__(
        self,
        graph: UndirectedGraph,
        stream: EdgeStream,
        vertices: Set[Vertex],
        metrics: MetricsRecorder,
    ) -> None:
        self.graph = graph
        self.stream = stream
        self.vertices = vertices
        self.metrics = metrics
        self._passes_before = 0

    def begin_update(self, update: Update) -> None:
        self._passes_before = self.stream.passes

    def end_update(self, update: Update) -> None:
        self.metrics.observe_max("passes_per_update", self.stream.passes - self._passes_before)


class StreamPassBackend(_StreamBackendBase):
    """Classic semi-streaming backend: ``O(n)`` state, one pass per query
    batch, no reusable service state (every update "rebuilds" trivially)."""

    supports_amortization = False

    def rebuild(self, tree: DFSTree, update: Optional[Update]) -> None:
        pass  # the per-pass query state is rebuilt inside every answer_batch

    def mutate(self, update: Update) -> None:
        _mutate_stream(self.graph, self.stream, self.vertices, update)

    def make_query_service(self, tree: DFSTree) -> QueryService:
        return StreamQueryService(self.stream, tree, metrics=self.metrics)


class StreamSnapshotBackend(_StreamBackendBase):
    """Amortized streaming backend: every rebuild snapshots the stream into
    ``D`` with one pass; overlay-served updates between rebuilds cost zero
    passes (the update API tells the backend exactly how the stream changed)."""

    supports_amortization = True
    rebuild_stage = "pre"

    def __init__(
        self,
        graph: UndirectedGraph,
        stream: EdgeStream,
        vertices: Set[Vertex],
        metrics: MetricsRecorder,
        *,
        graph_cls: type = UndirectedGraph,
        structure_cls: type = StructureD,
    ) -> None:
        super().__init__(graph, stream, vertices, metrics)
        self.structure: Optional[StructureD] = None
        # Snapshot representation: the array backend materialises each stream
        # pass straight into an ArrayGraph/ArrayStructureD pair.
        self._graph_cls = graph_cls
        self._structure_cls = structure_cls
        # The snapshot policy on the shared cost-model controller: one
        # snapshot pass per refresh amortizes against the per-query overlay
        # scans the stale snapshot charges, so the cadence model re-snapshots
        # exactly when the Theorem 9 overlay outgrows its budget.
        self.controller = MaintenanceController(metrics=metrics)
        self.controller.add(CostModel("overlay", self.overlay_budget, inclusive=True))

    def rebuild(self, tree: DFSTree, update: Optional[Update]) -> None:
        self.metrics.inc("d_rebuilds")
        with self.metrics.timer("build_d"):
            # One pass materialises the edge set; StructureD sorts it by the
            # current tree's post-order numbers (Theorem 8 on a snapshot).
            snapshot = self._graph_cls(vertices=list(self.vertices), edges=self.stream.pass_over())
            self.structure = self._structure_cls(snapshot, tree, metrics=self.metrics)
        self.controller.on_refresh()

    def must_rebuild(self, update: Update) -> bool:
        return reused_vertex_id_needs_rebuild(self.structure, update)

    def end_update(self, update: Update) -> None:
        super().end_update(update)
        if self.structure is not None:
            self.controller.report(CostSignal("overlay", float(self.structure.overlay_size())))

    def overlay_size(self) -> int:
        return self.structure.overlay_size()

    def overlay_budget(self) -> float:
        return theorem9_overlay_budget(self.stream.num_edges)

    def mutate(self, update: Update) -> None:
        _mutate_stream(self.graph, self.stream, self.vertices, update, self.structure)
        self.metrics.observe_max("overlay_size", self.structure.overlay_size())

    def make_query_service(self, tree: DFSTree) -> QueryService:
        return DQueryService(self.structure, source_tree=tree, metrics=self.metrics)


def _mutate_stream(
    graph: UndirectedGraph,
    stream: EdgeStream,
    vertices: Set[Vertex],
    update: Update,
    structure: Optional[StructureD] = None,
) -> None:
    """Apply *update* to the reference graph, the stream, the vertex set and
    (when amortizing) the snapshot's Theorem 9 overlays."""
    if isinstance(update, EdgeInsertion):
        graph.add_edge(update.u, update.v)
        stream.insert_edge(update.u, update.v)
        if structure is not None:
            structure.note_edge_inserted(update.u, update.v)
    elif isinstance(update, EdgeDeletion):
        graph.remove_edge(update.u, update.v)
        stream.delete_edge(update.u, update.v)
        if structure is not None:
            structure.note_edge_deleted(update.u, update.v)
    elif isinstance(update, VertexInsertion):
        graph.add_vertex_with_edges(update.v, update.neighbors)
        vertices.add(update.v)
        for w in update.neighbors:
            stream.insert_edge(update.v, w)
        if structure is not None:
            structure.note_vertex_inserted(update.v, update.neighbors)
    elif isinstance(update, VertexDeletion):
        graph.remove_vertex(update.v)
        vertices.discard(update.v)
        stream.delete_vertex_edges(update.v)
        if structure is not None:
            structure.note_vertex_deleted(update.v)
    else:
        raise UpdateError(f"unknown update type {update!r}")


class SemiStreamingDynamicDFS:
    """Maintain a DFS forest with ``O(n)`` memory and stream passes only.

    The public update API mirrors :class:`~repro.core.dynamic_dfs.FullyDynamicDFS`;
    per-update pass counts are available from ``metrics["stream_passes"]`` (or
    via the convenience property :attr:`passes`).

    Parameters
    ----------
    rebuild_every:
        ``1`` (default) — the paper's pass-per-query-batch algorithm in
        ``O(n)`` space.  ``k > 1`` or ``None`` — the amortized hybrid: a
        one-pass snapshot of the stream into ``D`` every ``k``-th update
        (``None`` auto-tunes on the overlay budget), zero passes in between,
        ``O(m)`` local memory.  Both policies maintain identical trees.
    backend:
        Storage core for the reference graph and (in the amortized hybrid)
        the stream snapshots: ``"dict"`` (default), ``"array"`` (numpy
        flat/CSR core, byte-identical trees) or ``None`` to read
        ``REPRO_BACKEND``.  The classic ``rebuild_every=1`` algorithm keeps
        no snapshot, so there the knob only accelerates the initial DFS.
    """

    def __init__(
        self,
        graph: UndirectedGraph,
        *,
        rebuild_every: Optional[int] = 1,
        backend: Optional[str] = None,
        validate: bool = False,
        metrics: Optional[MetricsRecorder] = None,
    ) -> None:
        self._backend_name = resolve_backend(backend)
        UpdateEngine.validate_options("parallel", rebuild_every)  # fail fast
        self.metrics = metrics or MetricsRecorder("semi_streaming_dfs")
        # The "reference" graph exists only for validation and for the fallback
        # adjacency provider; the algorithm itself touches edges only through
        # the stream.
        self._graph = native_graph(graph, self._backend_name, copy=True)
        self._stream = EdgeStream.from_graph(graph, metrics=self.metrics)
        self._vertices = set(graph.vertices())
        with self.metrics.timer("initial_dfs"):
            parent = static_dfs_forest(self._graph)
        tree = DFSTree(parent, root=VIRTUAL_ROOT)
        if rebuild_every == 1:
            self._backend: _StreamBackendBase = StreamPassBackend(
                self._graph, self._stream, self._vertices, self.metrics
            )
        else:
            self._backend = StreamSnapshotBackend(
                self._graph,
                self._stream,
                self._vertices,
                self.metrics,
                graph_cls=graph_class(self._backend_name),
                structure_cls=structure_class(self._backend_name),
            )
        self._engine = UpdateEngine(
            self._backend,
            tree,
            rebuild_every=rebuild_every,
            validate=validate,
            metrics=self.metrics,
        )

    # ------------------------------------------------------------------ #
    @property
    def tree(self) -> DFSTree:
        """The current DFS forest."""
        return self._engine.tree

    @property
    def passes(self) -> int:
        """Total number of stream passes performed so far."""
        return self._stream.passes

    @property
    def stream(self) -> EdgeStream:
        """The underlying edge stream."""
        return self._stream

    @property
    def rebuild_every(self) -> Optional[int]:
        """The configured rebuild policy (``1`` = classic pass-based)."""
        return self._engine.rebuild_every

    @property
    def backend(self) -> str:
        """The resolved storage backend name (``"dict"`` or ``"array"``)."""
        return self._backend_name

    @property
    def update_engine(self) -> UpdateEngine:
        """The shared :class:`UpdateEngine` driving this adapter."""
        return self._engine

    def add_commit_listener(self, listener) -> None:
        """Register *listener* to run with the committed tree after every
        update (the MVCC snapshot-publication hook; see
        :meth:`UpdateEngine.add_commit_listener`)."""
        self._engine.add_commit_listener(listener)

    def remove_commit_listener(self, listener) -> None:
        """Deregister a commit listener (the service-detach hook; unknown
        listeners are ignored — see
        :meth:`UpdateEngine.remove_commit_listener`)."""
        self._engine.remove_commit_listener(listener)

    def local_space(self) -> int:
        """Vertices of state kept between passes: ``O(n)`` for the classic
        policy, plus the ``O(m)`` snapshot in the amortized hybrid."""
        extra = getattr(self._backend, "structure", None)
        return self._engine.tree.num_vertices + (extra.size() if extra is not None else 0)

    def is_valid(self) -> bool:
        """Validate the maintained forest against the reference graph."""
        return self._engine.is_valid()

    def parent_map(self, **kwargs) -> Dict[Vertex, Optional[Vertex]]:
        """Parent map of the maintained DFS forest."""
        return self._engine.parent_map(**kwargs)

    # ------------------------------------------------------------------ #
    def insert_edge(self, u: Vertex, v: Vertex) -> DFSTree:
        """Insert edge ``(u, v)`` (``O(1)`` passes amortized; ``stream_passes``)."""
        return self.apply(EdgeInsertion(u, v))

    def delete_edge(self, u: Vertex, v: Vertex) -> DFSTree:
        """Delete edge ``(u, v)`` from the stream and repair the tree."""
        return self.apply(EdgeDeletion(u, v))

    def insert_vertex(self, v: Vertex, neighbors: Iterable[Vertex] = ()) -> DFSTree:
        """Insert vertex *v* with *neighbors* appended to the stream."""
        return self.apply(VertexInsertion(v, tuple(neighbors)))

    def delete_vertex(self, v: Vertex) -> DFSTree:
        """Delete vertex *v* and every incident stream edge."""
        return self.apply(VertexDeletion(v))

    def apply(self, update: Update) -> DFSTree:
        """Apply one update; the stream is updated first, then the tree."""
        return self._engine.apply(update)

    def apply_all(self, updates: Sequence[Update]) -> DFSTree:
        """Apply a whole batch through the shared engine (batch metrics, one
        end-of-batch validation)."""
        return self._engine.apply_all(updates)
