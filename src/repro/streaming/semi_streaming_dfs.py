"""Semi-streaming fully dynamic DFS (Theorem 15).

The algorithm stores only the current tree ``T``, the partially built tree
``T*`` and ``O(n)`` per-query state; the graph's edges are accessible solely
through :class:`~repro.streaming.stream.EdgeStream` passes.  All tree
operations are local; every batch of independent queries the rerooting engine
asks for is answered by **one pass** over the stream (each query keeps exactly
one candidate edge — its best-so-far — so the extra space is one edge per
query, ``O(n)`` in total).  The per-update pass count is therefore the number
of query batches, which the paper bounds by ``O(log^2 n)``.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, List, Optional, Sequence

from repro.constants import VIRTUAL_ROOT
from repro.core.queries import Answer, EdgeQuery, QueryService
from repro.core.reduction import reduce_update
from repro.core.reroot_parallel import ParallelRerootEngine
from repro.core.updates import (
    EdgeDeletion,
    EdgeInsertion,
    Update,
    VertexDeletion,
    VertexInsertion,
)
from repro.exceptions import NotADFSTree, UpdateError
from repro.graph.graph import UndirectedGraph
from repro.graph.traversal import static_dfs_forest
from repro.graph.validation import check_dfs_tree
from repro.metrics.counters import MetricsRecorder
from repro.streaming.stream import EdgeStream
from repro.tree.dfs_tree import DFSTree

Vertex = Hashable


class StreamQueryService(QueryService):
    """Answers a batch of independent edge queries with a single stream pass.

    For every query the service keeps one best-so-far edge; when the pass ends,
    the per-query candidates are the answers.  Because the queries of a batch
    have disjoint source pieces, a reverse index ``vertex -> query`` fits in
    ``O(n)`` space.
    """

    def __init__(
        self,
        stream: EdgeStream,
        base_tree: DFSTree,
        *,
        metrics: Optional[MetricsRecorder] = None,
    ) -> None:
        self._stream = stream
        self._tree = base_tree
        self._metrics = metrics

    def answer_batch(self, queries: Sequence[EdgeQuery]) -> List[Answer]:
        if self._metrics is not None:
            self._metrics.inc("query_batches")
            self._metrics.inc("queries", len(queries))
        if not queries:
            return []

        # O(n) working state: one source-owner entry per vertex (sources are
        # disjoint across independent queries) and per-query target positions.
        source_owner: Dict[Vertex, int] = {}
        target_pos: List[Dict[Vertex, int]] = []
        best: List[Answer] = [None] * len(queries)
        for qi, q in enumerate(queries):
            for v in q.source_vertex_list(self._tree):
                source_owner[v] = qi
            target_pos.append({v: i for i, v in enumerate(q.target)})
        if self._metrics is not None:
            self._metrics.observe_max("stream_state_entries", len(source_owner) + sum(len(t) for t in target_pos))

        def consider(qi: int, src: Vertex, tgt: Vertex) -> None:
            q = queries[qi]
            pos = target_pos[qi]
            cur = best[qi]
            p = pos[tgt]
            if cur is None:
                best[qi] = (src, tgt)
                return
            cur_p = pos[cur[1]]
            if (q.prefer_last and p > cur_p) or (not q.prefer_last and p < cur_p):
                best[qi] = (src, tgt)

        for u, v in self._stream.pass_over():
            qi = source_owner.get(u)
            if qi is not None and v in target_pos[qi]:
                consider(qi, u, v)
            qj = source_owner.get(v)
            if qj is not None and u in target_pos[qj]:
                consider(qj, v, u)
        return best


class SemiStreamingDynamicDFS:
    """Maintain a DFS forest with ``O(n)`` memory and stream passes only.

    The public update API mirrors :class:`~repro.core.dynamic_dfs.FullyDynamicDFS`;
    per-update pass counts are available from ``metrics["stream_passes"]`` (or
    via the convenience property :attr:`passes`).
    """

    def __init__(
        self,
        graph: UndirectedGraph,
        *,
        validate: bool = False,
        metrics: Optional[MetricsRecorder] = None,
    ) -> None:
        self.metrics = metrics or MetricsRecorder("semi_streaming_dfs")
        self._validate = validate
        # The "reference" graph exists only for validation and for the fallback
        # adjacency provider; the algorithm itself touches edges only through
        # the stream.
        self._graph = graph.copy()
        self._stream = EdgeStream.from_graph(graph, metrics=self.metrics)
        self._vertices = set(graph.vertices())
        with self.metrics.timer("initial_dfs"):
            parent = static_dfs_forest(self._graph)
        self._tree = DFSTree(parent, root=VIRTUAL_ROOT)

    # ------------------------------------------------------------------ #
    @property
    def tree(self) -> DFSTree:
        """The current DFS forest."""
        return self._tree

    @property
    def passes(self) -> int:
        """Total number of stream passes performed so far."""
        return self._stream.passes

    @property
    def stream(self) -> EdgeStream:
        """The underlying edge stream."""
        return self._stream

    def local_space(self) -> int:
        """Vertices of state the algorithm keeps between passes (``O(n)``)."""
        return self._tree.num_vertices

    def is_valid(self) -> bool:
        """Validate the maintained forest against the reference graph."""
        return not check_dfs_tree(self._graph, self._tree.parent_map())

    # ------------------------------------------------------------------ #
    def insert_edge(self, u: Vertex, v: Vertex) -> DFSTree:
        return self.apply(EdgeInsertion(u, v))

    def delete_edge(self, u: Vertex, v: Vertex) -> DFSTree:
        return self.apply(EdgeDeletion(u, v))

    def insert_vertex(self, v: Vertex, neighbors: Iterable[Vertex] = ()) -> DFSTree:
        return self.apply(VertexInsertion(v, tuple(neighbors)))

    def delete_vertex(self, v: Vertex) -> DFSTree:
        return self.apply(VertexDeletion(v))

    def apply_all(self, updates: Sequence[Update]) -> DFSTree:
        for upd in updates:
            self.apply(upd)
        return self._tree

    def apply(self, update: Update) -> DFSTree:
        """Apply one update; the stream is updated first, then the tree."""
        self.metrics.inc("updates")
        before_passes = self._stream.passes
        self._mutate(update)

        service = StreamQueryService(self._stream, self._tree, metrics=self.metrics)
        reduction = reduce_update(update, self._tree, service, metrics=self.metrics)
        new_parent = self._tree.parent_map()
        for v in reduction.removed_vertices:
            new_parent.pop(v, None)
        new_parent.update(reduction.parent_overrides)
        if reduction.tasks:
            engine = ParallelRerootEngine(
                self._tree,
                service,
                adjacency=self._graph.neighbor_list,
                metrics=self.metrics,
                validate=self._validate,
            )
            new_parent.update(engine.reroot_many(reduction.tasks))
        self._tree = DFSTree(new_parent, root=VIRTUAL_ROOT)
        self.metrics.observe_max("passes_per_update", self._stream.passes - before_passes)
        if self._validate:
            problems = check_dfs_tree(self._graph, self._tree.parent_map())
            if problems:
                raise NotADFSTree("; ".join(problems[:5]))
        return self._tree

    # ------------------------------------------------------------------ #
    def _mutate(self, update: Update) -> None:
        if isinstance(update, EdgeInsertion):
            self._graph.add_edge(update.u, update.v)
            self._stream.insert_edge(update.u, update.v)
        elif isinstance(update, EdgeDeletion):
            self._graph.remove_edge(update.u, update.v)
            self._stream.delete_edge(update.u, update.v)
        elif isinstance(update, VertexInsertion):
            self._graph.add_vertex_with_edges(update.v, update.neighbors)
            self._vertices.add(update.v)
            for w in update.neighbors:
                self._stream.insert_edge(update.v, w)
        elif isinstance(update, VertexDeletion):
            self._graph.remove_vertex(update.v)
            self._vertices.discard(update.v)
            self._stream.delete_vertex_edges(update.v)
        else:
            raise UpdateError(f"unknown update type {update!r}")
