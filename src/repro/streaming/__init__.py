"""Semi-streaming environment (Theorem 15): edge stream with pass counting and
the streaming dynamic-DFS driver."""

from repro.streaming.stream import EdgeStream
from repro.streaming.semi_streaming_dfs import SemiStreamingDynamicDFS, StreamQueryService

__all__ = ["EdgeStream", "SemiStreamingDynamicDFS", "StreamQueryService"]
