"""The edge stream abstraction.

In the semi-streaming model the graph is only accessible as a stream of edges;
the algorithm may use ``O(n)`` local memory and is charged one *pass* every time
it reads the stream end to end.  :class:`EdgeStream` models exactly that: the
edge list lives "outside" the algorithm (the stream can be updated between
passes to reflect graph updates, as in the dynamic setting), and every call to
:meth:`EdgeStream.pass_over` increments the pass counter.
"""

from __future__ import annotations

from typing import Hashable, Iterable, Iterator, List, Optional, Set, Tuple

from repro.exceptions import StreamingError
from repro.graph.graph import UndirectedGraph
from repro.metrics.counters import MetricsRecorder

Vertex = Hashable
Edge = Tuple[Vertex, Vertex]


class EdgeStream:
    """A replayable, updatable stream of undirected edges."""

    def __init__(
        self,
        edges: Iterable[Edge] = (),
        *,
        metrics: Optional[MetricsRecorder] = None,
    ) -> None:
        self._edges: Set[frozenset] = set()
        for u, v in edges:
            if u != v:
                self._edges.add(frozenset((u, v)))
        self.metrics = metrics or MetricsRecorder("edge_stream")
        self._passes = 0

    @classmethod
    def from_graph(cls, graph: UndirectedGraph, *, metrics: Optional[MetricsRecorder] = None) -> "EdgeStream":
        """Stream over the edges of an existing graph."""
        return cls(graph.edges(), metrics=metrics)

    # ------------------------------------------------------------------ #
    @property
    def num_edges(self) -> int:
        """Current number of edges in the stream."""
        return len(self._edges)

    @property
    def passes(self) -> int:
        """Number of passes performed so far."""
        return self._passes

    def pass_over(self) -> Iterator[Edge]:
        """Iterate over every edge once; counts as one pass."""
        self._passes += 1
        self.metrics.inc("stream_passes")
        for e in self._edges:
            u, v = tuple(e)
            yield (u, v)

    # ------------------------------------------------------------------ #
    # Stream updates (the dynamic setting: the input stream itself changes)
    # ------------------------------------------------------------------ #
    def insert_edge(self, u: Vertex, v: Vertex) -> None:
        """Add edge ``(u, v)`` to the stream."""
        if u == v:
            raise StreamingError("self loops are not supported")
        key = frozenset((u, v))
        if key in self._edges:
            raise StreamingError(f"edge ({u!r}, {v!r}) is already in the stream")
        self._edges.add(key)

    def delete_edge(self, u: Vertex, v: Vertex) -> None:
        """Remove edge ``(u, v)`` from the stream."""
        key = frozenset((u, v))
        if key not in self._edges:
            raise StreamingError(f"edge ({u!r}, {v!r}) is not in the stream")
        self._edges.discard(key)

    def delete_vertex_edges(self, v: Vertex) -> List[Edge]:
        """Remove every edge incident to *v*; returns the removed edges."""
        removed = [e for e in self._edges if v in e]
        for e in removed:
            self._edges.discard(e)
        return [tuple(e) for e in removed]

    def has_edge(self, u: Vertex, v: Vertex) -> bool:
        """Membership test (used only by stream maintenance, not by passes)."""
        return frozenset((u, v)) in self._edges
