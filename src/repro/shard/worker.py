"""The shard worker: one tenant table, one command loop.

A worker owns every tenant placed on the shards assigned to it.  Each tenant
is one independent :class:`~repro.core.dynamic_dfs.FullyDynamicDFS` engine
(array backend where numpy is available) fronted by its own
:class:`~repro.service.DFSTreeService`, so the MVCC read path and the
amortized write path of the single-graph service carry over per tenant
unchanged.  Each *shard* gets one strict
:class:`~repro.metrics.counters.MetricsRecorder` shared by its tenants'
drivers and services; the router rolls the per-shard recorders of every
worker into a fleet view (see :func:`repro.shard.rollup_counters`).

:class:`ShardWorker` is deliberately process-agnostic — a plain object that
the router can drive **in process** (``mode="inline"``, used by tests and
platforms without ``fork``) or behind a :func:`worker_main` command loop in a
``multiprocessing`` child (``mode="process"``), one request/response pair per
command over a duplex pipe.  Both modes run the identical code, which is what
makes the cross-process determinism tests meaningful.

Drain/restore protocol: :meth:`ShardWorker.export_shard` quiesces a shard by
closing every tenant's service (the commit-listener detach fixed in this PR)
and handing back each tenant's *genesis graph + update log + current parent
map*; :meth:`ShardWorker.import_tenants` rebuilds each tenant by replaying
the log from genesis — canonical answers make the replayed parent map
byte-identical to the drained one, which the router asserts on every move.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Optional, Sequence, Tuple

from repro.core.dynamic_dfs import FullyDynamicDFS
from repro.core.updates import Update
from repro.graph.graph import UndirectedGraph
from repro.metrics.counters import MetricsRecorder
from repro.service import DFSTreeService

TenantId = Hashable
Vertex = Hashable

__all__ = ["ShardWorker", "TenantExport", "worker_main"]

#: query kind -> (DFSTreeService batch method, takes a pair of vertex lists)
QUERY_KINDS: Dict[str, Tuple[str, bool]] = {
    "lca": ("lca_batch", True),
    "connected": ("connected_batch", True),
    "is_ancestor": ("is_ancestor_batch", True),
    "path_length": ("path_length_batch", True),
    "subtree_size": ("subtree_size_batch", False),
}


@dataclass
class TenantExport:
    """Everything needed to re-home one tenant: its genesis graph, the full
    validated update log, and the parent map it must replay back to."""

    tenant_id: TenantId
    graph: UndirectedGraph
    log: List[Update]
    parent_map: Dict[Vertex, Optional[Vertex]]


@dataclass
class _TenantRecord:
    shard_id: int
    driver: FullyDynamicDFS
    service: DFSTreeService
    genesis: UndirectedGraph
    log: List[Update] = field(default_factory=list)


class ShardWorker:
    """The tenant table of one worker (process-agnostic; see module docs).

    Parameters
    ----------
    worker_id:
        Stable id of this worker in the fleet (used in recorder names).
    backend:
        Storage backend forwarded to every tenant driver (``"dict"`` /
        ``"array"`` / ``None`` = resolve ``REPRO_BACKEND`` then ``"dict"``).
    driver_options:
        Extra keyword arguments for every tenant's
        :class:`FullyDynamicDFS` (e.g. ``rebuild_every``, ``d_maintenance``).
    publish_every:
        Snapshot publication cadence of every tenant's
        :class:`DFSTreeService`.
    """

    def __init__(
        self,
        worker_id: Hashable,
        *,
        backend: Optional[str] = None,
        driver_options: Optional[dict] = None,
        publish_every: int = 1,
    ) -> None:
        self.worker_id = worker_id
        self._backend = backend
        self._driver_options = dict(driver_options or {})
        self._publish_every = publish_every
        self._tenants: Dict[TenantId, _TenantRecord] = {}
        self._recorders: Dict[int, MetricsRecorder] = {}

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    def tenant_count(self) -> int:
        """Number of tenants currently resident on this worker."""
        return len(self._tenants)

    def tenant_ids(self) -> List[TenantId]:
        """Resident tenant ids, in placement order."""
        return list(self._tenants)

    def shard_tenants(self, shard_id: int) -> List[TenantId]:
        """Resident tenants of one logical shard, in placement order."""
        return [t for t, rec in self._tenants.items() if rec.shard_id == shard_id]

    def _recorder(self, shard_id: int) -> MetricsRecorder:
        rec = self._recorders.get(shard_id)
        if rec is None:
            rec = MetricsRecorder(f"shard_{shard_id}@{self.worker_id}", strict=True)
            self._recorders[shard_id] = rec
        return rec

    def _record(self, tenant_id: TenantId) -> _TenantRecord:
        try:
            return self._tenants[tenant_id]
        except KeyError:
            raise KeyError(f"tenant {tenant_id!r} is not resident on worker {self.worker_id!r}") from None

    # ------------------------------------------------------------------ #
    # Tenant lifecycle
    # ------------------------------------------------------------------ #
    def create_tenant(self, shard_id: int, tenant_id: TenantId, graph: UndirectedGraph) -> int:
        """Place a new tenant graph on *shard_id*; returns the resident tenant
        count (the router's ``max_worker_tenants`` gauge)."""
        if tenant_id in self._tenants:
            raise ValueError(f"tenant {tenant_id!r} already exists on worker {self.worker_id!r}")
        metrics = self._recorder(shard_id)
        driver = FullyDynamicDFS(
            graph, backend=self._backend, metrics=metrics, **self._driver_options
        )
        service = DFSTreeService(driver, metrics=metrics, publish_every=self._publish_every)
        self._tenants[tenant_id] = _TenantRecord(
            shard_id=shard_id,
            driver=driver,
            service=service,
            genesis=graph.copy(),
        )
        return len(self._tenants)

    def apply(self, tenant_id: TenantId, updates: Sequence[Update]) -> int:
        """Apply an update batch to one tenant (appended to its replay log);
        returns the tenant's committed version."""
        record = self._record(tenant_id)
        updates = list(updates)
        record.driver.apply_all(updates)
        record.log.extend(updates)
        return record.service.committed_version

    def apply_many(self, items: Sequence[Tuple[TenantId, Sequence[Update]]]) -> Dict[TenantId, int]:
        """Apply one batch per tenant (one command for a whole routed round);
        returns each tenant's committed version."""
        return {tenant_id: self.apply(tenant_id, updates) for tenant_id, updates in items}

    def query(
        self,
        tenant_id: TenantId,
        kind: str,
        avs: Sequence[Vertex],
        bvs: Optional[Sequence[Vertex]] = None,
    ) -> Tuple[list, int]:
        """Answer one batched snapshot query (``kind`` from
        :data:`QUERY_KINDS`) against the tenant's published snapshot; returns
        ``(answers, version)``."""
        record = self._record(tenant_id)
        try:
            method_name, pairwise = QUERY_KINDS[kind]
        except KeyError:
            raise ValueError(f"unknown query kind {kind!r}; choose from {sorted(QUERY_KINDS)}") from None
        method = getattr(record.service, method_name)
        if pairwise:
            return method(avs, bvs if bvs is not None else [])
        return method(avs)

    def publish_now(self, tenant_id: TenantId) -> int:
        """Force-publish the tenant's current tree (no-op when already at the
        committed version); returns the published snapshot version."""
        return self._record(tenant_id).service.publish_now().version

    def parent_map(self, tenant_id: TenantId) -> Dict[Vertex, Optional[Vertex]]:
        """The tenant's *committed* parent map (from the writer's tree, not a
        possibly stale snapshot) — the byte-identity currency of the
        drain/rebalance protocol."""
        return self._record(tenant_id).driver.parent_map()

    def committed_version(self, tenant_id: TenantId) -> int:
        """Number of updates committed to this tenant so far."""
        return self._record(tenant_id).service.committed_version

    # ------------------------------------------------------------------ #
    # Drain / restore
    # ------------------------------------------------------------------ #
    def export_shard(self, shard_id: int) -> List[TenantExport]:
        """Quiesce and evict every tenant of *shard_id*: each tenant's
        service is closed (its commit listener detaches from the engine — the
        leak fixed in this PR), the tenant leaves the table, and its genesis
        graph + update log + current parent map travel to the new worker.
        The shard's recorder stays behind: counters are charged where the
        work actually ran."""
        exports: List[TenantExport] = []
        for tenant_id in self.shard_tenants(shard_id):
            record = self._tenants.pop(tenant_id)
            record.service.close()
            exports.append(
                TenantExport(
                    tenant_id=tenant_id,
                    graph=record.genesis,
                    log=list(record.log),
                    parent_map=record.driver.parent_map(),
                )
            )
        return exports

    def import_tenants(
        self, shard_id: int, exports: Sequence[TenantExport]
    ) -> Dict[TenantId, Dict[Vertex, Optional[Vertex]]]:
        """Re-home drained tenants onto *shard_id* of this worker: rebuild
        each driver from its genesis graph and replay the logged updates
        (canonical answers make the result byte-identical to the drained
        parent map — asserted by the router on every move).  Returns each
        re-homed tenant's parent map."""
        maps: Dict[TenantId, Dict[Vertex, Optional[Vertex]]] = {}
        for export in exports:
            self.create_tenant(shard_id, export.tenant_id, export.graph)
            record = self._tenants[export.tenant_id]
            if export.log:
                record.driver.apply_all(export.log)
                record.log.extend(export.log)
            maps[export.tenant_id] = record.driver.parent_map()
        return maps

    # ------------------------------------------------------------------ #
    # Metrics
    # ------------------------------------------------------------------ #
    def metrics(self) -> Dict[int, Dict[str, float]]:
        """Per-shard counter dicts (``shard_id -> as_dict()``) for the fleet
        rollup.  A shard that moved away keeps its history here; the same
        shard id may therefore report from several workers, and the rollup
        sums them."""
        return {shard_id: rec.as_dict() for shard_id, rec in self._recorders.items()}


#: Commands a worker process accepts, mapped to ShardWorker methods.
_COMMANDS = frozenset(
    {
        "tenant_count",
        "tenant_ids",
        "shard_tenants",
        "create_tenant",
        "apply",
        "apply_many",
        "query",
        "publish_now",
        "parent_map",
        "committed_version",
        "export_shard",
        "import_tenants",
        "metrics",
    }
)


def worker_main(conn, worker_id: Hashable, options: dict) -> None:
    """Command loop of a worker process: receive ``(command, args)`` pairs
    over the duplex pipe *conn*, dispatch onto a fresh :class:`ShardWorker`,
    and reply ``("ok", result)`` or ``("err", exception)``.  Exceptions are
    forwarded to the router (re-raised there); the loop itself never dies of
    a tenant error.  A ``("shutdown", ())`` message acknowledges and exits.
    """
    worker = ShardWorker(worker_id, **options)
    while True:
        try:
            command, args = conn.recv()
        except (EOFError, OSError):
            break
        if command == "shutdown":
            conn.send(("ok", None))
            break
        try:
            if command not in _COMMANDS:
                raise ValueError(f"unknown worker command {command!r}")
            result = getattr(worker, command)(*args)
            reply = ("ok", result)
        except Exception as exc:  # forwarded to the router, never fatal to the loop  # repro-lint: disable=except-swallow
            reply = ("err", exc)
        try:
            conn.send(reply)
        except Exception as exc:  # unpicklable result/exception: degrade  # repro-lint: disable=except-swallow
            conn.send(("err", RuntimeError(f"unpicklable worker reply: {exc!r}")))
