"""Sharded multi-tenant engine: many tenant graphs, one worker fleet.

See :mod:`repro.shard.router` for the architecture overview.
"""

from repro.shard.placement import HashRing, shard_of_tenant, stable_hash
from repro.shard.router import ShardRouter, rollup_counters
from repro.shard.worker import QUERY_KINDS, ShardWorker, TenantExport

__all__ = [
    "HashRing",
    "QUERY_KINDS",
    "ShardRouter",
    "ShardWorker",
    "TenantExport",
    "rollup_counters",
    "shard_of_tenant",
    "stable_hash",
]
