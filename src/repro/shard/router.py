"""The shard router: one fleet, many tenants, many workers.

:class:`ShardRouter` is the multi-tenant front of the engine: it owns a pool
of workers (``multiprocessing`` children by default, in-process objects with
``mode="inline"``), places every tenant graph onto a logical shard by stable
hash, maps shards onto workers through a consistent-hash ring
(:mod:`repro.shard.placement`), and forwards update batches and snapshot
queries to the owning worker.  Each worker runs the unmodified single-graph
stack per tenant — :class:`~repro.core.dynamic_dfs.FullyDynamicDFS` under a
:class:`~repro.service.DFSTreeService` — so everything the repo guarantees
for one graph (canonical byte-identical trees, MVCC reads, strict metrics)
holds per tenant, and the router only adds placement, transport and rollup.

**Rebalance.**  :meth:`move_shard` drains a shard on its current worker
(every tenant's service is closed — the detach path fixed in this PR — and
its genesis graph + update log travel out) and replays it on the target
worker; the parent map of every moved tenant is asserted byte-identical
before and after the move (canonical answers make replay exact, not
approximate).  :meth:`drain_worker` removes a worker from the ring and moves
all of its shards to the survivors.

**Fleet metrics.**  Every shard has its own strict
:class:`~repro.metrics.counters.MetricsRecorder` inside its worker; the
router's :meth:`fleet_metrics` rolls all of them (plus its own routing
counters) into one view with :func:`rollup_counters` — the strict
``WELL_KNOWN_COUNTERS`` registry is what makes blind aggregation safe: every
key is known, ``max_``-prefixed keys take the maximum, everything else sums.
"""

from __future__ import annotations

import multiprocessing
from typing import Dict, Hashable, Iterable, List, Optional, Sequence, Tuple

from repro.core.updates import Update
from repro.graph.graph import UndirectedGraph
from repro.metrics.counters import WELL_KNOWN_COUNTERS, MetricsRecorder
from repro.shard.placement import HashRing, shard_of_tenant
from repro.shard.worker import ShardWorker, worker_main

TenantId = Hashable
Vertex = Hashable

__all__ = ["ShardRouter", "rollup_counters"]


def rollup_counters(dicts: Iterable[Dict[str, float]]) -> Dict[str, float]:
    """Fold per-shard counter dicts into one fleet view.

    Aggregation is driven by the ``WELL_KNOWN_COUNTERS`` registry contract:
    every key must be registered (the per-shard recorders are strict, so an
    unknown key here is a programming error and raises ``KeyError``),
    ``max_``-prefixed keys keep the maximum across shards, and every other
    key (counts, work, accumulated timers) sums.  Gauges (e.g.
    ``avg_target_segments``) sum too — meaningful per shard, not across the
    fleet; read them from :meth:`ShardRouter.shard_metrics` instead.
    """
    out: Dict[str, float] = {}
    for counters in dicts:
        for key, value in counters.items():
            if key not in WELL_KNOWN_COUNTERS and not (
                key.startswith("max_") and key[4:] in WELL_KNOWN_COUNTERS
            ):
                raise KeyError(
                    f"counter {key!r} is not registered in WELL_KNOWN_COUNTERS; "
                    "the fleet rollup only aggregates registered counters"
                )
            if key.startswith("max_"):
                out[key] = max(out.get(key, float("-inf")), value)
            else:
                out[key] = out.get(key, 0) + value
    return out


class _InlineWorker:
    """In-process worker handle: dispatch is a direct method call.  ``send``
    runs the command eagerly and parks the outcome for ``recv``, so the
    send-all/recv-all pattern of the router works identically (minus the
    parallelism)."""

    def __init__(self, worker_id: Hashable, options: dict) -> None:
        self.worker_id = worker_id
        self._worker = ShardWorker(worker_id, **options)
        self._outcomes: List[Tuple[bool, object]] = []

    def send(self, command: str, args: tuple) -> None:
        try:
            self._outcomes.append((True, getattr(self._worker, command)(*args)))
        except Exception as exc:  # re-raised by recv(), mirroring the pipe protocol  # repro-lint: disable=except-swallow
            self._outcomes.append((False, exc))

    def recv(self):
        ok, payload = self._outcomes.pop(0)
        if not ok:
            raise payload
        return payload

    def request(self, command: str, args: tuple = ()):
        self.send(command, args)
        return self.recv()

    def shutdown(self) -> None:
        self._outcomes.clear()


class _ProcessWorker:
    """Handle to a ``multiprocessing`` worker running :func:`worker_main`
    behind a duplex pipe.  One in-flight request per worker (the router sends
    to many workers before collecting, which is where fleet parallelism
    comes from)."""

    def __init__(self, worker_id: Hashable, options: dict, ctx) -> None:
        self.worker_id = worker_id
        parent_conn, child_conn = ctx.Pipe(duplex=True)
        self._conn = parent_conn
        self._process = ctx.Process(
            target=worker_main,
            args=(child_conn, worker_id, options),
            name=f"repro-shard-worker-{worker_id}",
            daemon=True,
        )
        self._process.start()
        child_conn.close()

    def send(self, command: str, args: tuple) -> None:
        self._conn.send((command, args))

    def recv(self):
        status, payload = self._conn.recv()
        if status == "err":
            raise payload
        return payload

    def request(self, command: str, args: tuple = ()):
        self.send(command, args)
        return self.recv()

    def shutdown(self) -> None:
        try:
            self.request("shutdown")
        except (EOFError, OSError, BrokenPipeError):
            pass
        self._conn.close()
        self._process.join(timeout=5)
        if self._process.is_alive():  # pragma: no cover - defensive
            self._process.terminate()
            self._process.join(timeout=5)


class ShardRouter:
    """Routes tenants onto a worker fleet with consistent-hash placement.

    Parameters
    ----------
    num_workers:
        Size of the worker pool (ids ``0 .. num_workers-1``).
    num_shards:
        Number of logical shards — the unit of placement and rebalance.
        Fixed for the life of the fleet; choose a small multiple of the
        worker count (the default 16 suits up to ~8 workers).
    mode:
        ``"process"`` (default) — each worker is a ``multiprocessing`` child
        driven over a pipe; ``"inline"`` — workers are plain objects in this
        process (no parallelism, identical semantics; used by tests and
        platforms without a usable start method).
    backend, driver_options, publish_every:
        Forwarded to every tenant's driver/service (see
        :class:`~repro.shard.worker.ShardWorker`).
    metrics:
        Optional strict-safe recorder for the router's own routing counters
        (``shard_*``; a private one is created otherwise).
    mp_context:
        ``multiprocessing`` start method (name or context object).  Default:
        ``"fork"`` where available (cheap, inherits the parent's imports),
        else ``"spawn"``.
    """

    def __init__(
        self,
        *,
        num_workers: int = 2,
        num_shards: int = 16,
        mode: str = "process",
        backend: Optional[str] = None,
        driver_options: Optional[dict] = None,
        publish_every: int = 1,
        metrics: Optional[MetricsRecorder] = None,
        mp_context=None,
    ) -> None:
        if num_workers < 1:
            raise ValueError(f"num_workers must be >= 1, got {num_workers!r}")
        if num_shards < num_workers:
            raise ValueError(
                f"num_shards ({num_shards!r}) must be >= num_workers ({num_workers!r})"
            )
        if mode not in ("process", "inline"):
            raise ValueError(f"unknown mode {mode!r}; choose 'process' or 'inline'")
        self.num_shards = num_shards
        self.mode = mode
        self.metrics = metrics or MetricsRecorder("shard_router", strict=True)
        options = {
            "backend": backend,
            "driver_options": dict(driver_options or {}),
            "publish_every": publish_every,
        }
        self._workers: Dict[Hashable, object] = {}
        if mode == "process":
            if mp_context is None or isinstance(mp_context, str):
                methods = multiprocessing.get_all_start_methods()
                name = mp_context or ("fork" if "fork" in methods else "spawn")
                ctx = multiprocessing.get_context(name)
            else:
                ctx = mp_context
            for wid in range(num_workers):
                self._workers[wid] = _ProcessWorker(wid, options, ctx)
        else:
            for wid in range(num_workers):
                self._workers[wid] = _InlineWorker(wid, options)
        self._ring = HashRing(list(self._workers))
        self._placement: Dict[int, Hashable] = {
            shard: self._ring.node_for(("shard", shard)) for shard in range(num_shards)
        }
        self._tenant_shard: Dict[TenantId, int] = {}
        self._closed = False

    # ------------------------------------------------------------------ #
    # Placement
    # ------------------------------------------------------------------ #
    def shard_of(self, tenant_id: TenantId) -> int:
        """The logical shard owning *tenant_id* (stable hash; see
        :func:`repro.shard.placement.shard_of_tenant`)."""
        return shard_of_tenant(tenant_id, self.num_shards)

    def worker_of_shard(self, shard_id: int) -> Hashable:
        """The worker currently hosting *shard_id* (ring placement plus any
        explicit moves)."""
        return self._placement[shard_id]

    def worker_of_tenant(self, tenant_id: TenantId) -> Hashable:
        """The worker currently hosting *tenant_id*."""
        return self._placement[self.shard_of(tenant_id)]

    def workers(self) -> List[Hashable]:
        """The worker ids of the fleet (drained workers included)."""
        return list(self._workers)

    def tenants(self) -> List[TenantId]:
        """Every tenant id ever placed, in placement order."""
        return list(self._tenant_shard)

    def _handle(self, worker_id: Hashable):
        return self._workers[worker_id]

    def _tenant_handle(self, tenant_id: TenantId):
        if tenant_id not in self._tenant_shard:
            raise KeyError(f"unknown tenant {tenant_id!r}")
        return self._handle(self.worker_of_tenant(tenant_id))

    # ------------------------------------------------------------------ #
    # Tenant API
    # ------------------------------------------------------------------ #
    def create_tenant(self, tenant_id: TenantId, graph: UndirectedGraph) -> Hashable:
        """Place a new tenant graph on the fleet; returns the hosting worker
        id.  The graph is copied into the worker (the caller's object is
        never mutated)."""
        if tenant_id in self._tenant_shard:
            raise ValueError(f"tenant {tenant_id!r} already exists")
        shard = self.shard_of(tenant_id)
        worker_id = self._placement[shard]
        resident = self._handle(worker_id).request("create_tenant", (shard, tenant_id, graph))
        self._tenant_shard[tenant_id] = shard
        self.metrics.inc("shard_tenants_created")
        self.metrics.observe_max("worker_tenants", resident)
        return worker_id

    def apply(self, tenant_id: TenantId, updates: Sequence[Update]) -> int:
        """Apply an update batch to one tenant; returns its committed
        version."""
        updates = list(updates)
        version = self._tenant_handle(tenant_id).request("apply", (tenant_id, updates))
        self.metrics.inc("shard_update_batches_routed")
        self.metrics.inc("shard_updates_routed", len(updates))
        return version

    def apply_many(
        self, items: Sequence[Tuple[TenantId, Sequence[Update]]]
    ) -> Dict[TenantId, int]:
        """Apply one batch per tenant across the fleet: batches are grouped
        by owning worker and each worker receives *one* command for all of
        its tenants — workers execute concurrently in process mode (this is
        the fleet's aggregate-throughput path).  Returns each tenant's
        committed version."""
        by_worker: Dict[Hashable, List[Tuple[TenantId, List[Update]]]] = {}
        total = 0
        for tenant_id, updates in items:
            if tenant_id not in self._tenant_shard:
                raise KeyError(f"unknown tenant {tenant_id!r}")
            updates = list(updates)
            total += len(updates)
            by_worker.setdefault(self.worker_of_tenant(tenant_id), []).append(
                (tenant_id, updates)
            )
        # Send everything first, then collect: process workers overlap.
        for worker_id, worker_items in by_worker.items():
            self._handle(worker_id).send("apply_many", (worker_items,))
        versions: Dict[TenantId, int] = {}
        errors: List[Exception] = []
        for worker_id, worker_items in by_worker.items():
            try:
                versions.update(self._handle(worker_id).recv())
            except Exception as exc:  # re-raised after the drain so pipes stay in sync  # repro-lint: disable=except-swallow
                errors.append(exc)
        if errors:
            raise errors[0]
        self.metrics.inc("shard_update_batches_routed", len(items))
        self.metrics.inc("shard_updates_routed", total)
        return versions

    def query(
        self,
        tenant_id: TenantId,
        kind: str,
        avs: Sequence[Vertex],
        bvs: Optional[Sequence[Vertex]] = None,
    ) -> Tuple[list, int]:
        """Answer one batched snapshot query (``kind`` in
        :data:`~repro.shard.worker.QUERY_KINDS`) against the tenant's
        published snapshot; returns ``(answers, version)``."""
        result = self._tenant_handle(tenant_id).request(
            "query", (tenant_id, kind, list(avs), None if bvs is None else list(bvs))
        )
        self.metrics.inc("shard_query_batches_routed")
        return result

    def publish_now(self, tenant_id: TenantId) -> int:
        """Force-publish the tenant's current tree; returns its version."""
        return self._tenant_handle(tenant_id).request("publish_now", (tenant_id,))

    def parent_map(self, tenant_id: TenantId) -> Dict[Vertex, Optional[Vertex]]:
        """The tenant's committed parent map (fetched from its worker)."""
        return self._tenant_handle(tenant_id).request("parent_map", (tenant_id,))

    def committed_version(self, tenant_id: TenantId) -> int:
        """Number of updates committed to this tenant so far."""
        return self._tenant_handle(tenant_id).request("committed_version", (tenant_id,))

    # ------------------------------------------------------------------ #
    # Rebalance
    # ------------------------------------------------------------------ #
    def move_shard(self, shard_id: int, worker_id: Hashable) -> int:
        """Gracefully move one shard to *worker_id*: quiesce (the router is
        the only writer and stops routing during the move), drain every
        tenant on the old worker (services closed, genesis + update log
        exported), replay on the new worker, and assert each tenant's parent
        map byte-identical before and after.  Returns the number of tenants
        moved (0 moves — including a move onto the current worker — are
        no-ops)."""
        if not 0 <= shard_id < self.num_shards:
            raise ValueError(f"shard_id must be in [0, {self.num_shards}), got {shard_id!r}")
        if worker_id not in self._workers:
            raise KeyError(f"unknown worker {worker_id!r}")
        source = self._placement[shard_id]
        if source == worker_id:
            return 0
        exports = self._handle(source).request("export_shard", (shard_id,))
        self._placement[shard_id] = worker_id
        if not exports:
            return 0
        replayed = self._handle(worker_id).request("import_tenants", (shard_id, exports))
        for export in exports:
            if replayed[export.tenant_id] != export.parent_map:
                raise RuntimeError(
                    f"shard move lost determinism: tenant {export.tenant_id!r} "
                    f"replayed to a different parent map on worker {worker_id!r}"
                )
        self.metrics.inc("shard_moves")
        self.metrics.inc("shard_tenants_moved", len(exports))
        self.metrics.inc("shard_replayed_updates", sum(len(e.log) for e in exports))
        return len(exports)

    def drain_worker(self, worker_id: Hashable) -> int:
        """Remove *worker_id* from the placement ring and move all of its
        shards to the surviving workers (ring placement decides the
        targets).  The drained worker stays in the fleet for metrics history
        but receives no new placements.  Returns the number of tenants
        moved."""
        if worker_id not in self._workers:
            raise KeyError(f"unknown worker {worker_id!r}")
        if worker_id not in self._ring.nodes:
            raise ValueError(f"worker {worker_id!r} is already drained")
        if len(self._ring.nodes) == 1:
            raise ValueError("cannot drain the last worker on the ring")
        self._ring.remove_node(worker_id)
        moved = 0
        for shard_id, owner in sorted(self._placement.items()):
            if owner == worker_id:
                moved += self.move_shard(shard_id, self._ring.node_for(("shard", shard_id)))
        return moved

    # ------------------------------------------------------------------ #
    # Metrics
    # ------------------------------------------------------------------ #
    def shard_metrics(self) -> Dict[int, Dict[str, float]]:
        """Per-shard counter dicts, merged across workers (a shard that moved
        reports the sum of its history on every worker it lived on)."""
        merged: Dict[int, List[Dict[str, float]]] = {}
        for handle in self._workers.values():
            for shard_id, counters in handle.request("metrics").items():
                merged.setdefault(shard_id, []).append(counters)
        return {shard_id: rollup_counters(parts) for shard_id, parts in sorted(merged.items())}

    def fleet_metrics(self) -> Dict[str, float]:
        """The fleet view: every shard recorder on every worker plus the
        router's own routing counters, rolled up via
        :func:`rollup_counters`."""
        parts: List[Dict[str, float]] = [self.metrics.as_dict()]
        for handle in self._workers.values():
            parts.extend(handle.request("metrics").values())
        return rollup_counters(parts)

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    def close(self) -> None:
        """Shut every worker down (idempotent).  Process workers receive a
        shutdown command and are joined; tenant state is discarded."""
        if self._closed:
            return
        self._closed = True
        for handle in self._workers.values():
            handle.shutdown()

    def __enter__(self) -> "ShardRouter":
        """Context-manager entry: the router itself."""
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        """Context-manager exit: :meth:`close` the fleet."""
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"ShardRouter(workers={len(self._workers)}, shards={self.num_shards}, "
            f"tenants={len(self._tenant_shard)}, mode={self.mode!r})"
        )
