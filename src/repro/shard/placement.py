"""Consistent-hash placement: ``tenant_id -> shard -> worker``.

Placement must be *stable across processes and runs* — the router in the
parent process and the command loops in the workers have to agree on where a
tenant lives, and the differential tests replay the same fleet layout in
fresh interpreters.  Python's builtin ``hash`` is salted per process for
strings, so everything here hashes through BLAKE2b instead (keyed only by the
repr of the id, which is deterministic for the int/str/tuple tenant ids the
workloads use).

Two layers:

* :func:`shard_of_tenant` — tenants spread over a fixed number of *logical
  shards* by stable hash.  The shard is the unit of placement, draining and
  rebalancing; its count never changes over the life of a fleet.
* :class:`HashRing` — logical shards map onto *workers* through a classic
  consistent-hash ring with virtual nodes, so adding or removing one worker
  re-places only ``~shards/workers`` shards instead of reshuffling the world.
  The router may override the ring's verdict per shard after an explicit
  rebalance (the override table lives in the router; the ring stays pure).
"""

from __future__ import annotations

from bisect import bisect_right
from hashlib import blake2b
from typing import Dict, Hashable, List, Sequence

__all__ = ["HashRing", "shard_of_tenant", "stable_hash"]


def stable_hash(key: Hashable, *, salt: bytes = b"") -> int:
    """A 64-bit hash of *key* that is identical in every process and run.

    Hashes ``repr(key)`` through BLAKE2b — deterministic for the value-like
    ids (ints, strings, tuples of those) used as tenant and worker names,
    unlike the per-process-salted builtin ``hash``.
    """
    digest = blake2b(repr(key).encode("utf-8"), digest_size=8, salt=salt)
    return int.from_bytes(digest.digest(), "big")


def shard_of_tenant(tenant_id: Hashable, num_shards: int) -> int:
    """The logical shard (``0 .. num_shards-1``) that owns *tenant_id*."""
    if num_shards < 1:
        raise ValueError(f"num_shards must be >= 1, got {num_shards!r}")
    return stable_hash(tenant_id) % num_shards


class HashRing:
    """Consistent-hash ring mapping keys (logical shards) onto nodes (workers).

    Parameters
    ----------
    nodes:
        Initial node ids (any hashable value-like ids).
    replicas:
        Virtual nodes per real node; more replicas smooth the load split at
        the cost of a larger ring (binary-searched, so lookups stay
        ``O(log(nodes * replicas))``).
    """

    def __init__(self, nodes: Sequence[Hashable] = (), *, replicas: int = 64) -> None:
        if replicas < 1:
            raise ValueError(f"replicas must be >= 1, got {replicas!r}")
        self._replicas = replicas
        self._ring: List[int] = []
        self._owner: Dict[int, Hashable] = {}
        self._nodes: List[Hashable] = []
        for node in nodes:
            self.add_node(node)

    @property
    def nodes(self) -> List[Hashable]:
        """The live node ids, in insertion order."""
        return list(self._nodes)

    def add_node(self, node: Hashable) -> None:
        """Add *node* (with its virtual replicas) to the ring."""
        if node in self._nodes:
            raise ValueError(f"node {node!r} is already on the ring")
        self._nodes.append(node)
        for r in range(self._replicas):
            point = stable_hash((node, r), salt=b"ring")
            # Extremely unlikely 64-bit collision: keep the first owner so
            # both sides of a collision still resolve deterministically.
            if point not in self._owner:
                self._owner[point] = node
                self._ring.insert(bisect_right(self._ring, point), point)

    def remove_node(self, node: Hashable) -> None:
        """Remove *node* and its replicas (keys re-place onto survivors)."""
        if node not in self._nodes:
            raise ValueError(f"node {node!r} is not on the ring")
        self._nodes.remove(node)
        points = [p for p, owner in self._owner.items() if owner == node]
        for point in points:
            del self._owner[point]
        self._ring = [p for p in self._ring if p in self._owner]

    def node_for(self, key: Hashable) -> Hashable:
        """The node owning *key*: the first ring point clockwise of its hash."""
        if not self._ring:
            raise ValueError("hash ring has no nodes")
        point = stable_hash(key, salt=b"key")
        idx = bisect_right(self._ring, point)
        if idx == len(self._ring):
            idx = 0
        return self._owner[self._ring[idx]]
