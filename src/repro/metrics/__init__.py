"""Instrumentation: counters for the model quantities the paper's theorems bound
(query rounds, traversal rounds, phases, stages, streaming passes, CONGEST
rounds/messages, simulated PRAM depth and work) and helpers for analysing their
growth."""

from repro.metrics.counters import WELL_KNOWN_COUNTERS, MetricsRecorder
from repro.metrics.complexity import (
    estimate_power_law_exponent,
    fit_polylog_exponent,
    format_table,
    geometric_sizes,
)

__all__ = [
    "MetricsRecorder",
    "WELL_KNOWN_COUNTERS",
    "estimate_power_law_exponent",
    "fit_polylog_exponent",
    "format_table",
    "geometric_sizes",
]
