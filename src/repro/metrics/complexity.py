"""Growth-rate analysis helpers.

The experiments check the *shape* of measured curves against the theorems:
per-update query rounds should grow like ``polylog(n)`` (small fitted exponent
in ``log n``), whereas the sequential baseline grows polynomially in ``n`` on
adversarial inputs.  These helpers do the fits and render plain-text tables for
the benchmark harnesses and EXPERIMENTS.md.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Sequence, Tuple


def _least_squares_slope(xs: Sequence[float], ys: Sequence[float]) -> Tuple[float, float]:
    """Ordinary least squares fit ``y = a + b x``; returns ``(a, b)``."""
    n = len(xs)
    if n < 2:
        raise ValueError("need at least two points to fit a slope")
    mean_x = sum(xs) / n
    mean_y = sum(ys) / n
    sxx = sum((x - mean_x) ** 2 for x in xs)
    if sxx == 0:
        raise ValueError("x values are all identical")
    sxy = sum((x - mean_x) * (y - mean_y) for x, y in zip(xs, ys))
    b = sxy / sxx
    a = mean_y - b * mean_x
    return a, b


def estimate_power_law_exponent(sizes: Sequence[float], values: Sequence[float]) -> float:
    """Fit ``value ≈ c · size^e`` and return the exponent ``e``.

    Zero values are clamped to a small positive constant so occasional zero
    measurements (e.g. zero fallbacks) do not break the fit.
    """
    xs = [math.log(max(s, 1e-12)) for s in sizes]
    ys = [math.log(max(v, 1e-12)) for v in values]
    _, slope = _least_squares_slope(xs, ys)
    return slope


def fit_polylog_exponent(sizes: Sequence[float], values: Sequence[float]) -> float:
    """Fit ``value ≈ c · (log2 size)^e`` and return the exponent ``e``.

    A parallel-update metric matching the paper should produce a small constant
    exponent here (roughly ≤ 3 for the `O(log^3 n)` bound), while a linear-in-n
    metric produces an exponent that grows with the size range.
    """
    xs = [math.log(max(math.log2(max(s, 2.0)), 1e-12)) for s in sizes]
    ys = [math.log(max(v, 1e-12)) for v in values]
    _, slope = _least_squares_slope(xs, ys)
    return slope


def doubling_ratios(sizes: Sequence[float], values: Sequence[float]) -> List[float]:
    """Return ``value[i+1] / value[i]`` for consecutive measurements.

    For polylog quantities measured on geometrically growing sizes these ratios
    tend to 1; for linear quantities they tend to the size ratio.
    """
    ratios = []
    for (s0, v0), (s1, v1) in zip(zip(sizes, values), zip(sizes[1:], values[1:])):
        if v0 <= 0:
            ratios.append(float("nan"))
        else:
            ratios.append(v1 / v0)
    return ratios


def geometric_sizes(start: int, stop: int, factor: float = 2.0) -> List[int]:
    """Geometrically spaced integer sizes in ``[start, stop]`` (inclusive-ish)."""
    if start <= 0 or factor <= 1:
        raise ValueError("start must be positive and factor > 1")
    sizes = []
    s = float(start)
    while s <= stop + 1e-9:
        size = int(round(s))
        if not sizes or size != sizes[-1]:
            sizes.append(size)
        s *= factor
    return sizes


def format_table(headers: Sequence[str], rows: Iterable[Sequence[object]]) -> str:
    """Render a plain-text table (used by benchmark harnesses and examples)."""
    str_rows = [[str(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            if i < len(widths):
                widths[i] = max(widths[i], len(cell))
            else:
                widths.append(len(cell))
    def fmt(row: Sequence[str]) -> str:
        return " | ".join(cell.ljust(widths[i]) for i, cell in enumerate(row))
    sep = "-+-".join("-" * w for w in widths)
    lines = [fmt(list(headers)), sep]
    lines.extend(fmt(row) for row in str_rows)
    return "\n".join(lines)


def summarize_scaling(
    label: str,
    sizes: Sequence[float],
    metrics: Dict[str, Sequence[float]],
) -> str:
    """Render a table of metric values over sizes plus fitted exponents."""
    headers = ["n"] + list(metrics)
    rows: List[List[object]] = []
    for i, s in enumerate(sizes):
        rows.append([s] + [metrics[k][i] for k in metrics])
    fits = []
    for k, vals in metrics.items():
        try:
            poly = estimate_power_law_exponent(sizes, vals)
            plog = fit_polylog_exponent(sizes, vals)
            fits.append(f"{k}: n^{poly:.2f} or (log n)^{plog:.2f}")
        except ValueError:
            fits.append(f"{k}: (not enough points)")
    return f"== {label} ==\n" + format_table(headers, rows) + "\nfits: " + "; ".join(fits)
