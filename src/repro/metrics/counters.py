"""Metric counters.

The reproduction's headline measurements are *model quantities* — numbers of
query rounds, passes, CONGEST rounds, messages, simulated PRAM depth — rather
than wall-clock time (see DESIGN.md §3 on the GIL substitution).  Every engine
accepts a :class:`MetricsRecorder` and increments named counters; benchmarks and
tests read them back through :meth:`MetricsRecorder.as_dict`.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Dict, Iterator, Optional

#: Well-known counter names and what they measure.  The recorder itself is
#: schema-free by default; this registry documents the names the engines agree
#: on so benchmarks and dashboards do not have to reverse-engineer call sites.
#: It is *complete*: a recorder constructed with ``strict=True`` rejects any
#: key missing from the registry, and the cross-driver differential harness
#: drives every driver through strict recorders — so adding a counter without
#: registering it here fails the tier-1 suite (drift is impossible, not just
#: discouraged).  Maxima may be registered under either their raw name or the
#: ``max_``-prefixed name :meth:`MetricsRecorder.as_dict` reports them under;
#: timers are registered under their full ``time_<name>`` key.
WELL_KNOWN_COUNTERS: Dict[str, str] = {
    # Update pipeline (UpdateEngine)
    "updates": "updates accepted by a dynamic driver (failed updates are not counted)",
    "update_batches": "apply_all() batches served by the amortized engine",
    "max_update_batch_size": "largest batch handed to apply_all()",
    "service_rebuilds": "query-service base-state rebuilds by UpdateEngine (initial build included)",
    "service_rebuilds_forced": "rebuilds forced by a backend veto (re-used vertex id, due rebase) rather than the policy cadence",
    "overlay_served_updates": "updates served from the existing service state instead of a rebuild",
    "max_overlay_size": "largest overlay (masked + extra entries) observed between rebuilds",
    "commit_listener_errors": "commit listeners that raised and were isolated by UpdateEngine (the writer is never poisoned; end_update still ran)",
    # Cost-model maintenance (MaintenanceController)
    "cost_model_triggers": "service refreshes demanded by a MaintenanceController forcing model (cost-model veto of overlay service)",
    "cost_model_excess": "excess per-update cost accumulated by MaintenanceController excess models (e.g. depth-drift rounds)",
    # Data structure D (Theorems 8-9) and its maintenance policies
    "d_builds": "StructureD constructions (one per full rebuild of D)",
    "d_build_work": "total adjacency entries processed while building D",
    "d_rebuilds": "D-state refreshes triggered by a driver (initial build included; absorbs count too)",
    "d_absorbs": "StructureD.absorb_overlays() calls (incremental D maintenance)",
    "d_absorb_work": "entries touched while absorbing overlays into the sorted lists",
    "max_pinned_overlay_size": "largest pinned cross-edge side list left behind by absorbs",
    "d_rebases": "full rebases of absorb-mode D (base tree replaced by the current tree)",
    "d_rebase_trigger_segments": "rebases triggered by the per-query segment EWMA crossing its threshold",
    "d_rebase_trigger_pinned": "rebases triggered by the pinned side lists outgrowing the overlay budget",
    "avg_target_segments": "EWMA of target segments per query against absorb-mode D (gauge)",
    "d_vertex_queries": "per-source-vertex range searches answered by D",
    "d_probes": "adjacency entries touched by D's range searches",
    "d_target_segments": "base-tree segments the query targets decomposed into",
    "max_d_target_segments_per_query": "largest segment decomposition one query needed",
    "d_reanchor_probes": "adjacency entries touched while re-anchoring canonical source endpoints",
    "d_overlay_view_queries": "queries answered while D's base tree differs from the current tree",
    # Array backend (flat/CSR core of ArrayStructureD)
    "d_flat_materializations": "flat array rows degraded to python lists (only when an overlay absorb involves vertex updates; edge-only absorbs stay flat)",
    "d_flat_absorbs": "vectorized in-place absorbs of edge-only overlays into the flat array core (no materialization)",
    "d_batch_queries": "batched min-postorder re-anchor calls answered by D",
    "d_batch_query_fallbacks": "batched re-anchor calls that fell back entirely to the scalar path",
    # Query services
    "queries": "EdgeQuery objects answered by a query service",
    "query_batches": "independent query batches (one parallel round each; also: coalesced flushes of the snapshot service's batch front)",
    "query_rounds": "parallel query rounds spent by the reroot engine",
    "max_queries_per_round": "largest independent query batch in one round",
    # MVCC snapshot service (repro.service)
    "snapshots_published": "versioned TreeSnapshots published by DFSTreeService commit hooks",
    "snapshot_build_ms": "milliseconds spent lazily building snapshot indices (Euler tour / LCA / component ids; paid once per version by the first reader that needs them)",
    "queries_served": "reader queries answered from published snapshots (scalar and batched)",
    "max_query_batch_size": "largest coalesced batch one snapshot query pass answered",
    "snapshot_staleness_updates": "total staleness observed by snapshot reads, in committed-but-unpublished-to-this-reader updates (committed_version - snapshot.version summed over answered queries)",
    "query_batch_fallbacks": "coalesced batches the query front degraded to scalar-by-scalar retries (one query's error must not poison the batch)",
    "query_errors": "reader queries that raised and failed only their own future (the error is the caller's answer, never swallowed)",
    # Shard router (repro.shard)
    "shard_tenants_created": "tenant graphs placed onto shards by a ShardRouter",
    "shard_update_batches_routed": "per-tenant update batches a ShardRouter forwarded to workers",
    "shard_updates_routed": "individual updates a ShardRouter forwarded to workers",
    "shard_query_batches_routed": "snapshot query batches a ShardRouter forwarded to workers",
    "shard_moves": "completed shard moves (drain on the old worker, replay on the new, byte-identical parent maps asserted)",
    "shard_tenants_moved": "tenants carried across workers by shard moves",
    "shard_replayed_updates": "logged updates replayed while restoring moved tenants",
    "max_worker_tenants": "most tenants resident on one worker at placement time",
    # Reduction (Theorem 11)
    "reductions": "reduce_update() calls",
    "reduction_tasks": "independent rerooting tasks produced by reductions",
    "vertices_added": "vertices attached to T* by the reroot engines",
    "max_active_components": "most unvisited components the parallel engine held at once",
    "process_comp_calls": "process-component invocations of the parallel engine",
    "loop_guard_triggers": "parallel-engine safety-guard activations (diagnostic)",
    "fallback_components": "components the engine re-attached with a fallback DFS",
    "fallback_vertices": "vertices attached through the fallback DFS",
    "fallback_unreached": "vertices a fallback DFS found unreachable (diagnostic)",
    # Parallel traversal scenarios (Theorem 12)
    "traversal_rounds": "path-halving traversal rounds of the parallel engine",
    "traversal_path_halving": "path-halving steps taken by the parallel engine",
    "traversal_path_full_walk": "traversals that walked a full path without halving",
    "traversal_heavy": "heavy-subtree traversals (the C1/C2 machinery)",
    "traversal_disconnecting": "traversals entering the disconnecting case",
    "traversal_disintegrating": "traversals entering the disintegrating case",
    "heavy_scenario_l": "heavy traversals resolved through scenario L",
    "heavy_special_case": "heavy traversals resolved through the special case",
    "heavy_p_committed": "heavy traversals that committed the p-walk",
    "heavy_r_committed": "heavy traversals that committed the r-walk",
    "heavy_special_committed": "heavy traversals that committed the special-case walk",
    "ablation_heavy_disabled": "heavy traversals skipped because the ablation flag disabled them",
    "invariant_merged_paths": "C1/C2 invariant repair: merged paths detected",
    "invariant_rc_not_found": "C1/C2 invariant repair: r_c not found on the path",
    "invariant_unattached_component": "C1/C2 invariant repair: unattached component detected",
    "invariant_tree_without_path_edge": "C1/C2 invariant repair: tree lacking the path edge",
    "invariant_unwalkable_pstar": "C1/C2 invariant repair: unwalkable p* detected",
    "invariant_heavy_missing_xp": "C1/C2 invariant repair: heavy traversal missing x_p",
    # Sequential baseline engines
    "sequential_reroot_steps": "edges walked by the sequential reroot engine",
    "max_sequential_chain_depth": "deepest reroot chain the sequential engine followed",
    "naive_reroots": "whole-component recomputations by the naive baseline",
    "naive_reroot_vertices": "vertices rebuilt by the naive baseline",
    "full_recomputations": "from-scratch recomputations by the static baseline",
    "static_work": "adjacency entries scanned by the static baseline",
    # Fault tolerance (Theorem 9)
    "ft_queries": "fault-tolerant query() calls",
    "ft_updates": "updates replayed inside fault-tolerant queries",
    "max_ft_batch_size": "largest update batch one fault-tolerant query replayed",
    # Semi-streaming (Theorem 15)
    "stream_passes": "end-to-end passes over the edge stream",
    "max_passes_per_update": "worst stream passes one update needed",
    "max_stream_state_entries": "largest per-pass working state (vertices) one query batch needed",
    # Distributed CONGEST (Theorem 16)
    "congest_rounds": "synchronous CONGEST rounds simulated (components run concurrently: one wave advances this by the deepest component's schedule)",
    "congest_messages": "CONGEST messages sent (one per edge per round)",
    "component_rounds_charged": "per-component ledger rounds (each broadcast tree charged its own wave schedule; equals congest_rounds on connected graphs, exceeds it under fragmentation)",
    "max_broadcast_components": "most trees the broadcast forest held during one charged wave or flood",
    "max_congest_max_message_words": "largest CONGEST message observed (words)",
    "max_rounds_per_update": "worst CONGEST rounds one update needed",
    "max_messages_per_update": "worst CONGEST messages one update needed",
    "bfs_repairs": "broadcast-tree local repairs (orphaned subtree reattached in O(depth) rounds)",
    "bfs_repair_rounds": "CONGEST rounds spent inside local broadcast-tree repairs",
    "bfs_repair_fallbacks": "local repairs abandoned for a full rebuild (orphaned subtree disconnected, or the cheapest reattachment's depth drift alone would exceed the modeled rebuild cost)",
    "max_bfs_repair_subtree_depth": "deepest orphaned subtree a local repair reattached",
    "voluntary_rebuilds": "depth-aware voluntary BFS rebuilds (accumulated query-wave x depth-drift rounds exceeded the modeled O(D) rebuild cost)",
    "center_sweeps": "accounted BFS sweeps charged by the 2-sweep center approximation ahead of a voluntary rebuild (two per center-rooted rebuild)",
    "max_voluntary_rebuild_root_depth": "deepest broadcast forest a voluntary rebuild left behind (center-rooted rebuilds approach the component radius)",
    # PRAM simulation
    "pram_depth": "simulated PRAM depth (parallel time)",
    "pram_work": "simulated PRAM work (total operations)",
    "max_pram_processors": "largest simulated PRAM processor count",
    # Timers (wall-clock seconds; informational, never asserted on)
    "time_initial_dfs": "initial static DFS at construction",
    "time_preprocess": "fault-tolerant preprocessing",
    "time_build_d": "StructureD builds / absorbs",
    "time_update": "end-to-end single-update processing",
    "time_batch_update": "end-to-end apply_all() batches",
    "time_rebuild_tree": "DFSTree snapshot construction after updates",
}


class MetricsRecorder:
    """A hierarchical bag of counters, maxima and timers.

    Counter semantics:

    * :meth:`inc` accumulates (used for rounds, queries, messages, ...);
    * :meth:`observe_max` keeps the maximum observed value (used for e.g.
      largest message size, maximum queries in one round);
    * :meth:`timer` accumulates wall-clock seconds under ``time_<name>`` keys.

    The recorder is deliberately permissive: reading an unknown counter returns
    0 so call sites do not need existence checks.  Constructed with
    ``strict=True`` it rejects *recording* under any key absent from
    :data:`WELL_KNOWN_COUNTERS` (maxima match either their raw or ``max_``
    name), which is how the test suite makes registry drift impossible.
    """

    def __init__(self, name: str = "metrics", *, strict: bool = False) -> None:
        self.name = name
        self.strict = strict
        self._counters: Dict[str, float] = {}
        self._maxima: Dict[str, float] = {}

    def _check_registered(self, key: str, *, allow_max_alias: bool = False) -> None:
        if not self.strict or key in WELL_KNOWN_COUNTERS:
            return
        # Only maxima may match through their reported max_<name> alias; an
        # inc()/set() under such a raw name would still produce an
        # unregistered key in as_dict(), which is exactly the drift strict
        # mode exists to forbid.
        if allow_max_alias and f"max_{key}" in WELL_KNOWN_COUNTERS:
            return
        raise KeyError(
            f"counter {key!r} is not registered in WELL_KNOWN_COUNTERS; "
            "add it to repro.metrics.counters so benchmarks and dashboards "
            "can rely on the registry being complete"
        )

    # ------------------------------------------------------------------ #
    # Recording
    # ------------------------------------------------------------------ #
    def inc(self, key: str, amount: float = 1) -> None:
        """Add *amount* to counter *key*."""
        self._check_registered(key)
        self._counters[key] = self._counters.get(key, 0) + amount

    def observe_max(self, key: str, value: float) -> None:
        """Record *value* under *key*, keeping the maximum seen so far."""
        self._check_registered(key, allow_max_alias=True)
        if value > self._maxima.get(key, float("-inf")):
            self._maxima[key] = value

    def set(self, key: str, value: float) -> None:
        """Overwrite counter *key* with *value*."""
        self._check_registered(key)
        self._counters[key] = value

    @contextmanager
    def timer(self, key: str) -> Iterator[None]:
        """Accumulate the elapsed wall-clock time under ``time_<key>``."""
        start = time.perf_counter()
        try:
            yield
        finally:
            self.inc(f"time_{key}", time.perf_counter() - start)

    # ------------------------------------------------------------------ #
    # Reading
    # ------------------------------------------------------------------ #
    def __getitem__(self, key: str) -> float:
        return self.get(key, 0)

    def get(self, key: str, default: float = 0) -> float:
        """Counter value, or *default* when never recorded.

        Maxima are reachable both under their raw name and under the
        ``max_``-prefixed name used by :meth:`as_dict`.
        """
        if key in self._counters:
            return self._counters[key]
        if key in self._maxima:
            return self._maxima[key]
        if key.startswith("max_") and key[4:] in self._maxima:
            return self._maxima[key[4:]]
        return default

    def as_dict(self) -> Dict[str, float]:
        """A plain dict snapshot (counters and maxima merged; maxima prefixed
        with ``max_`` when the key does not already carry the prefix)."""
        out = dict(self._counters)
        for k, v in self._maxima.items():
            key = k if k.startswith("max_") else f"max_{k}"
            out[key] = v
        return out

    def reset(self) -> None:
        """Forget every recorded value."""
        self._counters.clear()
        self._maxima.clear()

    def merge(self, other: "MetricsRecorder") -> None:
        """Fold *other* into this recorder (counters add, maxima take max)."""
        for k, v in other._counters.items():
            self.inc(k, v)
        for k, v in other._maxima.items():
            self.observe_max(k, v)

    def snapshot_delta(self, before: Optional[Dict[str, float]] = None) -> Dict[str, float]:
        """Return counters minus the values captured in *before*.

        Useful for per-update measurements: snapshot, perform one update, then
        ask for the delta.
        """
        if before is None:
            return self.as_dict()
        now = self.as_dict()
        return {k: now.get(k, 0) - before.get(k, 0) for k in sorted(set(now) | set(before))}

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        items = ", ".join(f"{k}={v}" for k, v in sorted(self.as_dict().items()))
        return f"MetricsRecorder({self.name}: {items})"
