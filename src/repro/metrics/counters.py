"""Metric counters.

The reproduction's headline measurements are *model quantities* — numbers of
query rounds, passes, CONGEST rounds, messages, simulated PRAM depth — rather
than wall-clock time (see DESIGN.md §3 on the GIL substitution).  Every engine
accepts a :class:`MetricsRecorder` and increments named counters; benchmarks and
tests read them back through :meth:`MetricsRecorder.as_dict`.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Dict, Iterator, Optional

#: Well-known counter names and what they measure.  The recorder itself is
#: schema-free; this registry documents the names the engines agree on so
#: benchmarks and dashboards do not have to reverse-engineer call sites.
WELL_KNOWN_COUNTERS: Dict[str, str] = {
    "updates": "updates accepted by a dynamic driver (failed updates are not counted)",
    "update_batches": "apply_all() batches served by the amortized engine",
    "max_update_batch_size": "largest batch handed to apply_all()",
    "d_builds": "StructureD constructions (one per full rebuild of D)",
    "d_build_work": "total adjacency entries processed while building D",
    "d_rebuilds": "D-state refreshes triggered by a driver (initial build included; absorbs count too)",
    "d_absorbs": "StructureD.absorb_overlays() calls (incremental D maintenance)",
    "d_absorb_work": "entries touched while absorbing overlays into the sorted lists",
    "max_pinned_overlay_size": "largest pinned cross-edge side list left behind by absorbs",
    "service_rebuilds": "query-service base-state rebuilds by UpdateEngine (initial build included)",
    "overlay_served_updates": "updates served from the existing service state instead of a rebuild",
    "max_overlay_size": "largest overlay (masked + extra entries) observed between rebuilds",
    "d_vertex_queries": "per-source-vertex range searches answered by D",
    "d_probes": "adjacency entries touched by D's range searches",
    "d_target_segments": "base-tree segments the query targets decomposed into",
    "d_reanchor_probes": "adjacency entries touched while re-anchoring canonical source endpoints",
    "d_overlay_view_queries": "queries answered while D's base tree differs from the current tree",
    "queries": "EdgeQuery objects answered by a query service",
    "query_batches": "independent query batches (one parallel round each)",
    "ft_queries": "fault-tolerant query() calls",
    "ft_updates": "updates replayed inside fault-tolerant queries",
    "stream_passes": "end-to-end passes over the edge stream",
    "max_passes_per_update": "worst stream passes one update needed",
    "max_rounds_per_update": "worst CONGEST rounds one update needed",
    "max_messages_per_update": "worst CONGEST messages one update needed",
}


class MetricsRecorder:
    """A hierarchical bag of counters, maxima and timers.

    Counter semantics:

    * :meth:`inc` accumulates (used for rounds, queries, messages, ...);
    * :meth:`observe_max` keeps the maximum observed value (used for e.g.
      largest message size, maximum queries in one round);
    * :meth:`timer` accumulates wall-clock seconds under ``time_<name>`` keys.

    The recorder is deliberately permissive: reading an unknown counter returns
    0 so call sites do not need existence checks.
    """

    def __init__(self, name: str = "metrics") -> None:
        self.name = name
        self._counters: Dict[str, float] = {}
        self._maxima: Dict[str, float] = {}

    # ------------------------------------------------------------------ #
    # Recording
    # ------------------------------------------------------------------ #
    def inc(self, key: str, amount: float = 1) -> None:
        """Add *amount* to counter *key*."""
        self._counters[key] = self._counters.get(key, 0) + amount

    def observe_max(self, key: str, value: float) -> None:
        """Record *value* under *key*, keeping the maximum seen so far."""
        if value > self._maxima.get(key, float("-inf")):
            self._maxima[key] = value

    def set(self, key: str, value: float) -> None:
        """Overwrite counter *key* with *value*."""
        self._counters[key] = value

    @contextmanager
    def timer(self, key: str) -> Iterator[None]:
        """Accumulate the elapsed wall-clock time under ``time_<key>``."""
        start = time.perf_counter()
        try:
            yield
        finally:
            self.inc(f"time_{key}", time.perf_counter() - start)

    # ------------------------------------------------------------------ #
    # Reading
    # ------------------------------------------------------------------ #
    def __getitem__(self, key: str) -> float:
        return self.get(key, 0)

    def get(self, key: str, default: float = 0) -> float:
        """Counter value, or *default* when never recorded.

        Maxima are reachable both under their raw name and under the
        ``max_``-prefixed name used by :meth:`as_dict`.
        """
        if key in self._counters:
            return self._counters[key]
        if key in self._maxima:
            return self._maxima[key]
        if key.startswith("max_") and key[4:] in self._maxima:
            return self._maxima[key[4:]]
        return default

    def as_dict(self) -> Dict[str, float]:
        """A plain dict snapshot (counters and maxima merged; maxima prefixed
        with ``max_`` when the key does not already carry the prefix)."""
        out = dict(self._counters)
        for k, v in self._maxima.items():
            key = k if k.startswith("max_") else f"max_{k}"
            out[key] = v
        return out

    def reset(self) -> None:
        """Forget every recorded value."""
        self._counters.clear()
        self._maxima.clear()

    def merge(self, other: "MetricsRecorder") -> None:
        """Fold *other* into this recorder (counters add, maxima take max)."""
        for k, v in other._counters.items():
            self.inc(k, v)
        for k, v in other._maxima.items():
            self.observe_max(k, v)

    def snapshot_delta(self, before: Optional[Dict[str, float]] = None) -> Dict[str, float]:
        """Return counters minus the values captured in *before*.

        Useful for per-update measurements: snapshot, perform one update, then
        ask for the delta.
        """
        if before is None:
            return self.as_dict()
        now = self.as_dict()
        return {k: now.get(k, 0) - before.get(k, 0) for k in set(now) | set(before)}

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        items = ", ".join(f"{k}={v}" for k, v in sorted(self.as_dict().items()))
        return f"MetricsRecorder({self.name}: {items})"
