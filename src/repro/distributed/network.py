"""Synchronous CONGEST(B) network simulator (Section 6.2).

A :class:`CongestNetwork` has one node per graph vertex; communication happens
in synchronous rounds, and in each round a node may send at most ``B`` *words*
along each incident edge.  The simulator meters

* ``rounds`` — synchronous rounds elapsed,
* ``messages`` — messages sent (one message = one (edge, round) transmission),
* ``max_message_words`` — the largest message, which must stay within ``B``.

Three building blocks used by the distributed dynamic-DFS algorithm are
implemented on top of the raw round mechanics:

* :meth:`build_bfs_tree` — flooding BFS from a chosen root (``O(D)`` rounds,
  ``O(m)`` messages), the broadcast tree of the paper;
* :meth:`pipelined_broadcast` — send ``k`` words from the root to every node
  along the BFS tree in ``O(depth + k / B)`` rounds (standard pipelining);
* :meth:`pipelined_convergecast` — combine per-node ``k``-word vectors upward
  to the root with the same pipelining bound.

The per-round, per-edge budget is enforced: exceeding it raises
:class:`~repro.exceptions.DistributedError`, so the CONGEST(n/D) message-size
claim of Theorem 16 is *checked*, not assumed.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, Hashable, Iterable, List, Optional, Sequence, Tuple

from repro.exceptions import DistributedError
from repro.graph.graph import UndirectedGraph
from repro.graph.traversal import bfs_tree
from repro.metrics.counters import MetricsRecorder

Vertex = Hashable


class CongestNetwork:
    """A synchronous message-passing network over the edges of *graph*."""

    def __init__(
        self,
        graph: UndirectedGraph,
        bandwidth_words: int,
        *,
        metrics: Optional[MetricsRecorder] = None,
    ) -> None:
        if bandwidth_words < 1:
            raise DistributedError("bandwidth must be at least one word")
        self._graph = graph
        self.bandwidth = bandwidth_words
        self.metrics = metrics or MetricsRecorder("congest")
        self.rounds = 0
        self.messages = 0
        self.max_message_words = 0

    # ------------------------------------------------------------------ #
    @property
    def graph(self) -> UndirectedGraph:
        return self._graph

    def _charge_round(self, transmissions: Iterable[int]) -> None:
        """Account one synchronous round with the given per-message word counts."""
        self.rounds += 1
        self.metrics.inc("congest_rounds")
        for words in transmissions:
            if words > self.bandwidth:
                raise DistributedError(
                    f"message of {words} words exceeds the CONGEST budget of {self.bandwidth}"
                )
            self.messages += 1
            self.metrics.inc("congest_messages")
            self.max_message_words = max(self.max_message_words, words)
            self.metrics.observe_max("congest_max_message_words", words)

    # ------------------------------------------------------------------ #
    def build_bfs_tree(self, root: Vertex) -> Tuple[Dict[Vertex, Optional[Vertex]], Dict[Vertex, int]]:
        """Flooding BFS from *root*: each frontier node notifies its neighbours.

        Returns ``(parent, depth)`` for the component of *root*.  Costs one
        round per BFS level and one single-word message per explored edge
        direction — ``O(D)`` rounds, ``O(m)`` messages.
        """
        parent: Dict[Vertex, Optional[Vertex]] = {root: None}
        depth: Dict[Vertex, int] = {root: 0}
        frontier: List[Vertex] = [root]
        while frontier:
            transmissions: List[int] = []
            nxt: List[Vertex] = []
            for v in frontier:
                for w in self._graph.neighbors(v):
                    transmissions.append(1)
                    if w not in parent:
                        parent[w] = v
                        depth[w] = depth[v] + 1
                        nxt.append(w)
            self._charge_round(transmissions)
            frontier = nxt
        return parent, depth

    # ------------------------------------------------------------------ #
    def pipelined_broadcast(
        self,
        bfs_parent: Dict[Vertex, Optional[Vertex]],
        bfs_depth: Dict[Vertex, int],
        payload_words: int,
    ) -> None:
        """Broadcast *payload_words* words from the BFS root to every node.

        The payload is split into ``ceil(words / B)`` chunks, sent down the BFS
        tree in a pipeline: a node forwards chunk ``i`` to its children one
        round after receiving it.  Simulated chunk by chunk, round by round.
        """
        if payload_words <= 0 or len(bfs_parent) <= 1:
            return
        children: Dict[Vertex, List[Vertex]] = {v: [] for v in bfs_parent}
        for v, p in bfs_parent.items():
            if p is not None:
                children[p].append(v)
        chunks = math.ceil(payload_words / self.bandwidth)
        last_chunk_words = payload_words - (chunks - 1) * self.bandwidth
        depth = max(bfs_depth.values())
        # In the pipelined schedule, in round r (1-based) the edges at tree
        # level l forward chunk r - l (if it exists).
        total_rounds = depth + chunks - 1
        edges_at_level: Dict[int, int] = {}
        for v, p in bfs_parent.items():
            if p is not None:
                lvl = bfs_depth[v]
                edges_at_level[lvl] = edges_at_level.get(lvl, 0) + 1
        for r in range(1, total_rounds + 1):
            transmissions: List[int] = []
            for lvl, count in edges_at_level.items():
                chunk_index = r - lvl
                if 1 <= chunk_index <= chunks:
                    words = self.bandwidth if chunk_index < chunks else last_chunk_words
                    transmissions.extend([words] * count)
            self._charge_round(transmissions)

    def pipelined_convergecast(
        self,
        bfs_parent: Dict[Vertex, Optional[Vertex]],
        bfs_depth: Dict[Vertex, int],
        payload_words: int,
    ) -> None:
        """Combine a *payload_words*-word vector from every node up to the root.

        Partial aggregates are merged on the way (the combination is by-key
        minimum/maximum, so the vector size never grows); the schedule is the
        mirror image of :meth:`pipelined_broadcast`.
        """
        if payload_words <= 0 or len(bfs_parent) <= 1:
            return
        chunks = math.ceil(payload_words / self.bandwidth)
        last_chunk_words = payload_words - (chunks - 1) * self.bandwidth
        depth = max(bfs_depth.values())
        total_rounds = depth + chunks - 1
        edges_at_level: Dict[int, int] = {}
        for v, p in bfs_parent.items():
            if p is not None:
                lvl = bfs_depth[v]
                edges_at_level[lvl] = edges_at_level.get(lvl, 0) + 1
        for r in range(1, total_rounds + 1):
            transmissions: List[int] = []
            for lvl, count in edges_at_level.items():
                # Deeper edges transmit earlier; edge at level l sends chunk
                # r - (depth - l) upward.
                chunk_index = r - (depth - lvl)
                if 1 <= chunk_index <= chunks:
                    words = self.bandwidth if chunk_index < chunks else last_chunk_words
                    transmissions.extend([words] * count)
            self._charge_round(transmissions)

    # ------------------------------------------------------------------ #
    def aggregate_query_round(
        self,
        bfs_parent: Dict[Vertex, Optional[Vertex]],
        bfs_depth: Dict[Vertex, int],
        num_queries: int,
    ) -> None:
        """Account one full query round: convergecast the ``num_queries`` partial
        answers (one word each) to the root, then broadcast the combined
        answers back to every node."""
        self.pipelined_convergecast(bfs_parent, bfs_depth, num_queries)
        self.pipelined_broadcast(bfs_parent, bfs_depth, num_queries)


def recommended_bandwidth(graph: UndirectedGraph, root: Vertex) -> Tuple[int, int]:
    """Return ``(diameter_estimate, ceil(n / D))`` — the CONGEST(n/D) budget the
    paper assumes.  The diameter estimate is the BFS eccentricity of *root*."""
    _, depth = bfs_tree(graph, root)
    diameter = max(depth.values()) if depth else 1
    diameter = max(diameter, 1)
    n = graph.num_vertices
    return diameter, max(math.ceil(n / diameter), 1)
