"""Synchronous CONGEST(B) network simulator (Section 6.2) with a
per-component round ledger.

A :class:`CongestNetwork` has one node per graph vertex; communication happens
in synchronous rounds, and in each round a node may send at most ``B`` *words*
along each incident edge.  The simulator meters

* ``rounds`` — synchronous rounds elapsed (components operate concurrently,
  so one wave over a multi-tree broadcast forest advances the global round
  counter by the *maximum* per-component schedule length);
* ``messages`` — messages sent (one message = one (edge, round) transmission),
  summed over every component;
* ``max_message_words`` — the largest message, which must stay within ``B``;
* ``component_rounds`` — the **per-component ledger**: for every broadcast,
  convergecast and BFS flood, each broadcast tree (identified by its root) is
  charged the rounds *it* was busy.  This is what makes round accounting
  meaningful once the graph fragments: a component no longer rides another
  component's wave for free — its own dissemination work is attributed to it
  (``component_rounds_charged`` meters the total, which equals the global
  ``rounds`` on connected graphs and exceeds it under fragmentation).

Three building blocks used by the distributed dynamic-DFS algorithm are
implemented on top of the raw round mechanics:

* :meth:`build_bfs_forest` — concurrent flooding BFS from one root per
  component (``O(max ecc)`` rounds globally, each component charged its own
  eccentricity, ``O(m)`` messages), the broadcast forest of the paper;
  :meth:`build_bfs_tree` is the single-root special case;
* :meth:`pipelined_broadcast` — send ``k`` words from every tree root to
  every node of its tree in ``O(depth + k / B)`` rounds (standard
  pipelining, scheduled per component);
* :meth:`pipelined_convergecast` — combine per-node ``k``-word vectors upward
  to each tree root with the same pipelining bound.

The per-round, per-edge budget is enforced: exceeding it raises
:class:`~repro.exceptions.DistributedError`, so the CONGEST(n/D) message-size
claim of Theorem 16 is *checked*, not assumed.
"""

from __future__ import annotations

import math
from typing import Dict, Hashable, Iterable, List, Optional, Sequence, Tuple

from repro.distributed.forest import forest_roots
from repro.exceptions import DistributedError
from repro.graph.graph import UndirectedGraph
from repro.graph.traversal import bfs_tree
from repro.metrics.counters import MetricsRecorder

Vertex = Hashable


class CongestNetwork:
    """A synchronous message-passing network over the edges of *graph*.

    Knobs: ``bandwidth_words`` (the per-edge, per-round word budget ``B``).
    Counters: ``congest_rounds``, ``congest_messages``,
    ``max_congest_max_message_words``, ``component_rounds_charged``,
    ``max_broadcast_components`` (see :data:`repro.metrics.counters.WELL_KNOWN_COUNTERS`).
    """

    def __init__(
        self,
        graph: UndirectedGraph,
        bandwidth_words: int,
        *,
        metrics: Optional[MetricsRecorder] = None,
    ) -> None:
        if bandwidth_words < 1:
            raise DistributedError("bandwidth must be at least one word")
        self._graph = graph
        self.bandwidth = bandwidth_words
        self.metrics = metrics or MetricsRecorder("congest")
        self.rounds = 0
        self.messages = 0
        self.max_message_words = 0
        #: Cumulative per-component ledger: broadcast-tree root (at charge
        #: time) -> rounds that component's tree spent executing waves.
        self.component_rounds: Dict[Vertex, int] = {}

    # ------------------------------------------------------------------ #
    @property
    def graph(self) -> UndirectedGraph:
        """The graph whose edges carry the messages."""
        return self._graph

    def _charge_round(self, transmissions: Iterable[int]) -> None:
        """Account one synchronous round with the given per-message word counts."""
        self.rounds += 1
        self.metrics.inc("congest_rounds")
        for words in transmissions:
            if words > self.bandwidth:
                raise DistributedError(
                    f"message of {words} words exceeds the CONGEST budget of {self.bandwidth}"
                )
            self.messages += 1
            self.metrics.inc("congest_messages")
            self.max_message_words = max(self.max_message_words, words)
            self.metrics.observe_max("congest_max_message_words", words)

    def _charge_component(self, root: Vertex, rounds: int) -> None:
        """Attribute *rounds* of wave work to the component rooted at *root*."""
        if rounds <= 0:
            return
        self.component_rounds[root] = self.component_rounds.get(root, 0) + rounds
        self.metrics.inc("component_rounds_charged", rounds)

    # ------------------------------------------------------------------ #
    def build_bfs_forest(
        self, roots: Sequence[Vertex]
    ) -> Tuple[Dict[Vertex, Optional[Vertex]], Dict[Vertex, int]]:
        """Concurrent flooding BFS from each of *roots* (one per component).

        All floods advance in lockstep — the network is synchronous, so
        components explore their frontiers in the same global rounds.  Costs
        ``max_c (ecc_c + 1)`` global rounds, one single-word message per
        explored edge direction (``O(m)`` messages overall), and charges each
        component's ledger its own ``ecc_c + 1`` rounds.  Callers supply at
        most one root per component; duplicate roots are ignored.
        """
        parent: Dict[Vertex, Optional[Vertex]] = {}
        depth: Dict[Vertex, int] = {}
        frontiers: Dict[Vertex, List[Vertex]] = {}
        levels: Dict[Vertex, int] = {}
        for root in roots:
            if root in parent:
                continue
            parent[root] = None
            depth[root] = 0
            frontiers[root] = [root]
            levels[root] = 0
        while any(frontiers.values()):
            transmissions: List[int] = []
            for root, frontier in frontiers.items():
                if not frontier:
                    continue
                nxt: List[Vertex] = []
                for v in frontier:
                    for w in self._graph.neighbors(v):
                        transmissions.append(1)
                        if w not in parent:
                            parent[w] = v
                            depth[w] = depth[v] + 1
                            nxt.append(w)
                frontiers[root] = nxt
                levels[root] += 1
            self._charge_round(transmissions)
        for root, spent in levels.items():
            self._charge_component(root, spent)
        if frontiers:
            self.metrics.observe_max("broadcast_components", len(frontiers))
        return parent, depth

    def build_bfs_tree(self, root: Vertex) -> Tuple[Dict[Vertex, Optional[Vertex]], Dict[Vertex, int]]:
        """Flooding BFS from a single *root* (the component of *root* only).

        ``O(ecc(root))`` rounds — charged globally and to *root*'s component
        ledger — and ``O(m)`` messages.  The multi-component entry point is
        :meth:`build_bfs_forest`.
        """
        return self.build_bfs_forest([root])

    # ------------------------------------------------------------------ #
    def _component_schedules(
        self,
        bfs_parent: Dict[Vertex, Optional[Vertex]],
        bfs_depth: Dict[Vertex, int],
    ) -> Tuple[Dict[Vertex, int], Dict[Vertex, Dict[int, int]]]:
        """Per-component wave schedule of a broadcast forest.

        Returns ``(depth_by_root, edges_at_level_by_root)``: for every tree of
        the forest (keyed by its root), its depth and its per-level tree-edge
        counts — the inputs of the pipelined schedule that tree executes.
        """
        root_of = forest_roots(bfs_parent)
        depth_by_root: Dict[Vertex, int] = {}
        edges_by_root: Dict[Vertex, Dict[int, int]] = {}
        for v, p in bfs_parent.items():
            root = root_of[v]
            d = bfs_depth[v]
            if d > depth_by_root.get(root, 0):
                depth_by_root[root] = d
            if p is not None:
                levels = edges_by_root.setdefault(root, {})
                levels[d] = levels.get(d, 0) + 1
            else:
                depth_by_root.setdefault(root, 0)
        return depth_by_root, edges_by_root

    def pipelined_broadcast(
        self,
        bfs_parent: Dict[Vertex, Optional[Vertex]],
        bfs_depth: Dict[Vertex, int],
        payload_words: int,
    ) -> None:
        """Broadcast *payload_words* words from every tree root to every node
        of its tree.

        The payload is split into ``ceil(words / B)`` chunks, sent down each
        tree in a pipeline: a node forwards chunk ``i`` to its children one
        round after receiving it.  All trees of the forest run concurrently;
        the global round cost is the deepest tree's schedule
        (``max_depth + chunks - 1``) while each component's ledger is charged
        its own ``depth_c + chunks - 1``.
        """
        if payload_words <= 0 or len(bfs_parent) <= 1:
            return
        chunks = math.ceil(payload_words / self.bandwidth)
        last_chunk_words = payload_words - (chunks - 1) * self.bandwidth
        depth_by_root, edges_by_root = self._component_schedules(bfs_parent, bfs_depth)
        total_rounds = max(depth_by_root.values()) + chunks - 1
        # In the pipelined schedule, in round r (1-based) the edges at tree
        # level l forward chunk r - l (if it exists).
        for r in range(1, total_rounds + 1):
            transmissions: List[int] = []
            for edges_at_level in edges_by_root.values():
                for lvl, count in edges_at_level.items():
                    chunk_index = r - lvl
                    if 1 <= chunk_index <= chunks:
                        words = self.bandwidth if chunk_index < chunks else last_chunk_words
                        transmissions.extend([words] * count)
            self._charge_round(transmissions)
        for root, depth in depth_by_root.items():
            if depth > 0:
                self._charge_component(root, depth + chunks - 1)
        self.metrics.observe_max("broadcast_components", len(depth_by_root))

    def pipelined_convergecast(
        self,
        bfs_parent: Dict[Vertex, Optional[Vertex]],
        bfs_depth: Dict[Vertex, int],
        payload_words: int,
    ) -> None:
        """Combine a *payload_words*-word vector from every node up to its
        tree root.

        Partial aggregates are merged on the way (the combination is by-key
        minimum/maximum, so the vector size never grows); each tree's schedule
        is the mirror image of :meth:`pipelined_broadcast`, all trees run
        concurrently, and the ledger attribution matches the broadcast's.
        """
        if payload_words <= 0 or len(bfs_parent) <= 1:
            return
        chunks = math.ceil(payload_words / self.bandwidth)
        last_chunk_words = payload_words - (chunks - 1) * self.bandwidth
        depth_by_root, edges_by_root = self._component_schedules(bfs_parent, bfs_depth)
        total_rounds = max(depth_by_root.values()) + chunks - 1
        for r in range(1, total_rounds + 1):
            transmissions: List[int] = []
            for root, edges_at_level in edges_by_root.items():
                depth = depth_by_root[root]
                for lvl, count in edges_at_level.items():
                    # Deeper edges transmit earlier; an edge at level l of its
                    # own tree sends chunk r - (depth_c - l) upward.
                    chunk_index = r - (depth - lvl)
                    if 1 <= chunk_index <= chunks:
                        words = self.bandwidth if chunk_index < chunks else last_chunk_words
                        transmissions.extend([words] * count)
            self._charge_round(transmissions)
        for root, depth in depth_by_root.items():
            if depth > 0:
                self._charge_component(root, depth + chunks - 1)
        self.metrics.observe_max("broadcast_components", len(depth_by_root))

    # ------------------------------------------------------------------ #
    def aggregate_query_round(
        self,
        bfs_parent: Dict[Vertex, Optional[Vertex]],
        bfs_depth: Dict[Vertex, int],
        num_queries: int,
    ) -> None:
        """Account one full query round: convergecast the ``num_queries`` partial
        answers (one word each) to each tree root, then broadcast the combined
        answers back to every node."""
        self.pipelined_convergecast(bfs_parent, bfs_depth, num_queries)
        self.pipelined_broadcast(bfs_parent, bfs_depth, num_queries)


def recommended_bandwidth(graph: UndirectedGraph, root: Vertex) -> Tuple[int, int]:
    """Return ``(diameter_estimate, ceil(n / D))`` — the CONGEST(n/D) budget the
    paper assumes.  The diameter estimate is the BFS eccentricity of *root*."""
    _, depth = bfs_tree(graph, root)
    diameter = max(depth.values()) if depth else 1
    diameter = max(diameter, 1)
    n = graph.num_vertices
    return diameter, max(math.ceil(n / diameter), 1)
