"""Distributed fully dynamic DFS in synchronous CONGEST(n/D) (Theorem 16) on
the shared :class:`~repro.core.engine.UpdateEngine`.

Model (Section 6.2 of the paper): one processor per graph vertex, communication
only along graph edges, messages of at most ``B = ceil(n/D)`` words per edge per
round, ``O(n)`` memory per node.  Every node stores the current DFS tree ``T``
and its own adjacency list; tree operations are therefore local, and the only
distributed computation is answering the rerooting engine's query batches:

1. a BFS (broadcast) tree rooted at a deterministic initiator is rebuilt when
   the rebuild policy demands it (``O(D)`` rounds, ``O(m)`` messages) — or,
   under the amortized policy, the cached BFS tree of a previous update is
   reused as long as the mutations left it structurally intact;
2. the update itself (up to ``O(n)`` words for a vertex insertion) is
   disseminated with a pipelined broadcast;
3. each batch of ``q ≤ n`` independent queries is answered by a pipelined
   convergecast of the per-node partial answers followed by a broadcast of the
   combined answers (``O(D + q/B)`` rounds);
4. after the tree is updated, the articulation points/bridges summary is
   re-broadcast on rebuild updates so future deletions can pick broadcast
   initiators locally.

**Amortized policy.**  ``rebuild_every=1`` (default) rebuilds the BFS tree and
re-broadcasts the summary on every update (the classic behaviour);
``rebuild_every=k > 1`` (or ``None``) reuses the cached broadcast state, so an
overlay-served update only pays the dissemination and query rounds.  A
mutation that structurally invalidates the cache — a deleted BFS-tree edge or
node — forces a rebuild regardless of the policy.  Query *answers* never
depend on the cache (each node answers from its live adjacency list), so all
policies maintain byte-identical trees.

The driver reports rounds, messages and maximum message size per update so
benchmark E4 can check the ``O(D log^2 n)`` rounds / ``O(nD log^2 n + m)``
messages / ``O(n/D)`` message-size claims.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, List, Optional, Sequence

from repro.constants import VIRTUAL_ROOT
from repro.core.engine import Backend, UpdateEngine, update_words
from repro.core.queries import Answer, BruteForceQueryService, EdgeQuery, QueryService
from repro.core.updates import (
    EdgeDeletion,
    EdgeInsertion,
    Update,
    VertexDeletion,
    VertexInsertion,
)
from repro.distributed.forest import articulation_points_and_bridges
from repro.distributed.network import CongestNetwork, recommended_bandwidth
from repro.exceptions import UpdateError
from repro.graph.graph import UndirectedGraph
from repro.graph.traversal import static_dfs_forest
from repro.metrics.counters import MetricsRecorder
from repro.tree.dfs_tree import DFSTree

Vertex = Hashable


class DistributedQueryService(QueryService):
    """Answers query batches with one convergecast + broadcast over the network.

    Every node evaluates, from its *local adjacency list only*, the best
    candidate edge for each query in which one of its vertices is a source;
    the per-query partial answers (one word each) are then combined up the BFS
    tree and redistributed.  The local evaluation reuses
    :class:`BruteForceQueryService`, which scans exactly the per-node adjacency
    lists — the same work each node would do on its own.
    """

    def __init__(
        self,
        network: CongestNetwork,
        graph: UndirectedGraph,
        base_tree: DFSTree,
        bfs_parent: Dict[Vertex, Optional[Vertex]],
        bfs_depth: Dict[Vertex, int],
        *,
        metrics: Optional[MetricsRecorder] = None,
    ) -> None:
        self._network = network
        self._local = BruteForceQueryService(graph, base_tree, metrics=None)
        self._bfs_parent = bfs_parent
        self._bfs_depth = bfs_depth
        self._metrics = metrics

    def answer_batch(self, queries: Sequence[EdgeQuery]) -> List[Answer]:
        if self._metrics is not None:
            self._metrics.inc("query_batches")
            self._metrics.inc("queries", len(queries))
        if not queries:
            return []
        answers = self._local.answer_batch(queries)
        # One word of partial answer per query travels up and back down.
        self._network.aggregate_query_round(self._bfs_parent, self._bfs_depth, len(queries))
        return answers


class CongestBackend(Backend):
    """CONGEST backend: owns the network simulator and the cached broadcast
    (BFS) tree.  The cache is maintained incrementally across overlay-served
    updates and declared invalid when a mutation removes one of its edges."""

    name = "distributed_dfs"
    supports_amortization = True
    rebuild_stage = "post"  # the broadcast tree must span the updated graph

    def __init__(
        self, graph: UndirectedGraph, network: CongestNetwork, metrics: MetricsRecorder
    ) -> None:
        self.graph = graph
        self.network = network
        self.metrics = metrics
        self.bfs_parent: Dict[Vertex, Optional[Vertex]] = {}
        self.bfs_depth: Dict[Vertex, int] = {}
        self._cache_broken = True
        self._rebuilt_this_update = False
        self._update_words = 0
        self._rounds_before = 0
        self._messages_before = 0
        self.articulation: set = set()
        self.bridges: set = set()

    # ------------------------------------------------------------------ #
    def overlay_budget(self) -> float:
        # A stale (but intact) broadcast tree never degrades query answers —
        # only the round accounting of its depths — so the auto policy
        # rebuilds only when the cache is structurally broken.
        return float("inf")

    def rebuild(self, tree: DFSTree, update: Optional[Update]) -> None:
        self._rebuilt_this_update = True
        initiator = self._pick_initiator(tree, update)
        if self.graph.num_vertices:
            self.bfs_parent, self.bfs_depth = self.network.build_bfs_tree(initiator)
            # Components the initiator cannot reach still hold their nodes:
            # track them as additional broadcast roots (accounting only).
            for v in self.graph.vertices():
                if v not in self.bfs_parent:
                    self.bfs_parent[v] = None
                    self.bfs_depth[v] = 0
        else:  # pragma: no cover - the model needs at least one node
            self.bfs_parent, self.bfs_depth = {initiator: None}, {initiator: 0}
        self._cache_broken = False

    def cache_invalid(self, update: Update) -> bool:
        return self._cache_broken

    def _pick_initiator(self, tree: DFSTree, update: Optional[Update]) -> Vertex:
        """The unique node that initiates the recovery broadcast (Section 6.2).

        Deterministic and O(degree): an endpoint of the update, or — for a
        vertex deletion — the first surviving old-tree neighbour in tree
        order.  The fallback takes the graph's first vertex (insertion order)
        instead of stringifying the whole vertex set.
        """
        graph = self.graph
        candidates: List[Vertex] = []
        if isinstance(update, (EdgeInsertion, EdgeDeletion)):
            candidates = [v for v in (update.u, update.v) if graph.has_vertex(v)]
        elif isinstance(update, VertexInsertion):
            candidates = [update.v] if graph.has_vertex(update.v) else []
        elif isinstance(update, VertexDeletion) and update.v in tree:
            candidates = [
                w
                for w in list(tree.children(update.v)) + [tree.parent(update.v)]
                if w is not None and graph.has_vertex(w) and w != VIRTUAL_ROOT
            ]
        if candidates:
            return candidates[0]
        vertices = iter(graph.vertices())
        return next(vertices, VIRTUAL_ROOT)

    # ------------------------------------------------------------------ #
    def mutate(self, update: Update) -> None:
        """Apply the update to the graph and patch the cached broadcast tree."""
        self._update_words = update_words(update, self.graph)
        if isinstance(update, EdgeInsertion):
            self.graph.add_edge(update.u, update.v)
        elif isinstance(update, EdgeDeletion):
            self.graph.remove_edge(update.u, update.v)
            if self.bfs_parent.get(update.u) == update.v or self.bfs_parent.get(update.v) == update.u:
                self._cache_broken = True  # a broadcast-tree edge died
        elif isinstance(update, VertexInsertion):
            self.graph.add_vertex_with_edges(update.v, update.neighbors)
            self._attach_to_cache(update.v, update.neighbors)
        elif isinstance(update, VertexDeletion):
            degree_children = any(p == update.v for p in self.bfs_parent.values())
            self.graph.remove_vertex(update.v)
            self.bfs_parent.pop(update.v, None)
            self.bfs_depth.pop(update.v, None)
            if degree_children:
                self._cache_broken = True  # its broadcast children are orphaned
        else:
            raise UpdateError(f"unknown update type {update!r}")

    def _attach_to_cache(self, v: Vertex, neighbors: Iterable[Vertex]) -> None:
        """Hook a joining node into the cached broadcast tree (one local
        message to its first cached neighbour; covered by the dissemination
        broadcast's accounting)."""
        for w in neighbors:
            if w in self.bfs_parent:
                self.bfs_parent[v] = w
                self.bfs_depth[v] = self.bfs_depth[w] + 1
                return
        self.bfs_parent[v] = None  # isolated joiner: its own broadcast root
        self.bfs_depth[v] = 0

    def on_mutated(self, update: Update) -> None:
        # Recovery stage: disseminate the update itself over the (fresh or
        # cached) broadcast tree.
        self.network.pipelined_broadcast(self.bfs_parent, self.bfs_depth, self._update_words)

    def make_query_service(self, tree: DFSTree) -> QueryService:
        return DistributedQueryService(
            self.network, self.graph, tree, self.bfs_parent, self.bfs_depth, metrics=self.metrics
        )

    # ------------------------------------------------------------------ #
    def begin_update(self, update: Update) -> None:
        self._rebuilt_this_update = False
        self._rounds_before = self.network.rounds
        self._messages_before = self.network.messages

    def on_commit(self, tree: DFSTree) -> None:
        # Every node recomputes the forest summary locally; re-disseminating
        # it (an O(n)-word broadcast so the next deletion can pick initiators
        # locally) is paid on rebuild updates only — the amortized policy's
        # second saving besides the BFS construction itself.
        self.articulation, self.bridges = articulation_points_and_bridges(self.graph)
        if self._rebuilt_this_update and self.graph.num_vertices > 1:
            summary_words = max(len(self.articulation) + len(self.bridges), 1)
            self.network.pipelined_broadcast(
                self.bfs_parent,
                self.bfs_depth,
                min(summary_words, self.graph.num_vertices),
            )

    def end_update(self, update: Update) -> None:
        self.metrics.observe_max("rounds_per_update", self.network.rounds - self._rounds_before)
        self.metrics.observe_max("messages_per_update", self.network.messages - self._messages_before)


class DistributedDynamicDFS:
    """Maintain a DFS forest in the CONGEST(n/D) model.

    Parameters
    ----------
    rebuild_every:
        ``1`` (default) — rebuild the broadcast tree and re-disseminate the
        forest summary on every update.  ``k > 1`` / ``None`` — reuse the
        cached broadcast state between rebuilds (``None``: rebuild only when a
        mutation breaks the cached tree).  All policies maintain identical
        trees.
    """

    def __init__(
        self,
        graph: UndirectedGraph,
        *,
        bandwidth_words: Optional[int] = None,
        rebuild_every: Optional[int] = 1,
        validate: bool = False,
        metrics: Optional[MetricsRecorder] = None,
    ) -> None:
        if graph.num_vertices == 0:
            raise ValueError("the distributed model needs at least one node")
        UpdateEngine.validate_options("parallel", rebuild_every)  # fail fast
        self.metrics = metrics or MetricsRecorder("distributed_dfs")
        self._graph = graph.copy()
        root = next(iter(self._graph.vertices()))
        self.diameter, auto_bandwidth = recommended_bandwidth(self._graph, root)
        self.bandwidth = bandwidth_words if bandwidth_words is not None else auto_bandwidth
        self.network = CongestNetwork(self._graph, self.bandwidth, metrics=self.metrics)
        with self.metrics.timer("initial_dfs"):
            parent = static_dfs_forest(self._graph)
        tree = DFSTree(parent, root=VIRTUAL_ROOT)
        self._backend = CongestBackend(self._graph, self.network, self.metrics)
        # No initial rebuild: the BFS/broadcast tree is per-update recovery
        # state, not preprocessing — the backend's cache starts broken, so the
        # first update builds it (without charging rounds at construction).
        self._engine = UpdateEngine(
            self._backend,
            tree,
            rebuild_every=rebuild_every,
            validate=validate,
            metrics=self.metrics,
            initial_rebuild=False,
        )
        self._backend.articulation, self._backend.bridges = articulation_points_and_bridges(
            self._graph
        )

    # ------------------------------------------------------------------ #
    @property
    def tree(self) -> DFSTree:
        """The DFS forest currently stored at every node."""
        return self._engine.tree

    @property
    def graph(self) -> UndirectedGraph:
        return self._graph

    @property
    def rebuild_every(self) -> Optional[int]:
        """The configured broadcast-state rebuild policy."""
        return self._engine.rebuild_every

    @property
    def update_engine(self) -> UpdateEngine:
        """The shared :class:`UpdateEngine` driving this adapter."""
        return self._engine

    def is_valid(self) -> bool:
        """Validate the maintained forest."""
        return self._engine.is_valid()

    def parent_map(self, **kwargs) -> Dict[Vertex, Optional[Vertex]]:
        """Parent map of the maintained DFS forest."""
        return self._engine.parent_map(**kwargs)

    def rounds(self) -> int:
        """Total CONGEST rounds so far."""
        return self.network.rounds

    def messages(self) -> int:
        """Total CONGEST messages so far."""
        return self.network.messages

    # ------------------------------------------------------------------ #
    def insert_edge(self, u: Vertex, v: Vertex) -> DFSTree:
        return self.apply(EdgeInsertion(u, v))

    def delete_edge(self, u: Vertex, v: Vertex) -> DFSTree:
        return self.apply(EdgeDeletion(u, v))

    def insert_vertex(self, v: Vertex, neighbors: Iterable[Vertex] = ()) -> DFSTree:
        return self.apply(VertexInsertion(v, tuple(neighbors)))

    def delete_vertex(self, v: Vertex) -> DFSTree:
        return self.apply(VertexDeletion(v))

    def apply(self, update: Update) -> DFSTree:
        """Apply one update (update stage) and repair the tree (recovery stage)."""
        return self._engine.apply(update)

    def apply_all(self, updates: Sequence[Update]) -> DFSTree:
        """Apply a whole batch through the shared engine (batch metrics, one
        end-of-batch validation)."""
        return self._engine.apply_all(updates)

    # ------------------------------------------------------------------ #
    @property
    def articulation_points(self):
        """Articulation points of the current graph (stored at every node)."""
        return set(self._backend.articulation)

    @property
    def bridges(self):
        """Bridges of the current graph (stored at every node)."""
        return set(self._backend.bridges)
