"""Distributed fully dynamic DFS in synchronous CONGEST(n/D) (Theorem 16) on
the shared :class:`~repro.core.engine.UpdateEngine`.

Model (Section 6.2 of the paper): one processor per graph vertex, communication
only along graph edges, messages of at most ``B = ceil(n/D)`` words per edge per
round, ``O(n)`` memory per node.  Every node stores the current DFS tree ``T``
and its own adjacency list; tree operations are therefore local, and the only
distributed computation is answering the rerooting engine's query batches:

1. a BFS (broadcast) tree rooted at a deterministic initiator is rebuilt when
   the rebuild policy demands it (``O(D)`` rounds, ``O(m)`` messages) — or,
   under the amortized policy, the cached BFS tree of a previous update is
   reused as long as the mutations left it structurally intact;
2. the update itself (up to ``O(n)`` words for a vertex insertion) is
   disseminated with a pipelined broadcast;
3. each batch of ``q ≤ n`` independent queries is answered by a pipelined
   convergecast of the per-node partial answers followed by a broadcast of the
   combined answers (``O(D + q/B)`` rounds);
4. after the tree is updated, the articulation points/bridges summary is
   re-broadcast on rebuild updates so future deletions can pick broadcast
   initiators locally.

**Amortized policy.**  ``rebuild_every=1`` (default) rebuilds the BFS tree and
re-broadcasts the summary on every update (the classic behaviour);
``rebuild_every=k > 1`` (or ``None``) reuses the cached broadcast state, so an
overlay-served update only pays the dissemination and query rounds.  A
mutation that structurally invalidates the cache — a deleted BFS-tree edge or
node — forces a rebuild regardless of the policy (or a *local repair* under
``local_repair=True``).  Query *answers* never depend on the cache (each node
answers from its live adjacency list), so all policies maintain byte-identical
trees.

**Per-component round accounting.**  Once the graph fragments, there is no
edge along which one component could inform another — so a rebuild builds a
BFS tree *per component* (one deterministic root each, flooded concurrently
through :meth:`CongestNetwork.build_bfs_forest`), every pipelined wave is
scheduled per tree of the resulting broadcast forest, and the network's
per-component ledger attributes each tree its own rounds.  Dissemination into
a fragment is therefore charged inside that fragment instead of riding the
initiator's component for free, which is what makes cross-policy round
comparisons meaningful on disconnecting workloads (benchmark E10).
``component_accounting=False`` restores the legacy accounting (a single flood
from the initiator, accounting-only singleton roots elsewhere) for
comparison harnesses.

**Depth-drift cost model.**  Pipelined waves pay the broadcast forest's max
depth per chunk, so a cached tree deeper than a fresh rebuild's charges its
excess depth on every wave.  The backend therefore runs two cost-model
decisions on the shared :class:`~repro.core.maintenance.MaintenanceController`:
a *repair gate* (a local repair whose resulting forest would be deeper than
the fallback rebuild's falls back to that rebuild instead) and a *voluntary
rebuild* (an accumulating ``depth_drift`` account of observed *waves ×
drift*, measured inside the updated component; once it exceeds the modeled
``O(D)`` rebuild cost, the next update rebuilds the component from a
**2-sweep BFS center** — two accounted BFS sweeps pick a root whose
eccentricity is within a factor 2 of the component's true radius, counted
under ``voluntary_rebuilds`` / ``center_sweeps`` /
``max_voluntary_rebuild_root_depth``).  Together they close the
``rebuild_every=None`` regression where pure repair rode a permanently
deeper tree than rebuild-on-invalidation on low-diameter graphs (benchmark
E9); ``voluntary_root="initiator"`` restores the best-observed-initiator
root choice E10 compares the center against.

The driver reports rounds, messages and maximum message size per update so
benchmark E4 can check the ``O(D log^2 n)`` rounds / ``O(nD log^2 n + m)``
messages / ``O(n/D)`` message-size claims.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, List, Optional, Sequence

from repro.backends import native_graph, resolve_backend
from repro.constants import VIRTUAL_ROOT
from repro.core.engine import Backend, UpdateEngine, update_words
from repro.core.maintenance import CostModel, CostSignal, MaintenanceController
from repro.core.queries import Answer, BruteForceQueryService, EdgeQuery, QueryService
from repro.core.updates import (
    EdgeDeletion,
    EdgeInsertion,
    Update,
    VertexDeletion,
    VertexInsertion,
)
from repro.distributed.forest import (
    articulation_points_and_bridges,
    children_index,
    farthest_vertex,
    parent_tree_subtree,
    path_midpoint,
    reroot_parent_tree,
)
from repro.distributed.network import CongestNetwork, recommended_bandwidth
from repro.exceptions import UpdateError
from repro.graph.graph import UndirectedGraph
from repro.graph.traversal import bfs_tree, component_of, static_dfs_forest
from repro.metrics.counters import MetricsRecorder
from repro.tree.dfs_tree import DFSTree

Vertex = Hashable


class DistributedQueryService(QueryService):
    """Answers query batches with one convergecast + broadcast over the network.

    Every node evaluates, from its *local adjacency list only*, the best
    candidate edge for each query in which one of its vertices is a source;
    the per-query partial answers (one word each) are then combined up the BFS
    tree and redistributed.  The local evaluation reuses
    :class:`BruteForceQueryService`, which scans exactly the per-node adjacency
    lists — the same work each node would do on its own.
    """

    def __init__(
        self,
        network: CongestNetwork,
        graph: UndirectedGraph,
        base_tree: DFSTree,
        bfs_parent: Dict[Vertex, Optional[Vertex]],
        bfs_depth: Dict[Vertex, int],
        *,
        metrics: Optional[MetricsRecorder] = None,
    ) -> None:
        self._network = network
        self._local = BruteForceQueryService(graph, base_tree, metrics=None)
        self._bfs_parent = bfs_parent
        self._bfs_depth = bfs_depth
        self._metrics = metrics

    def answer_batch(self, queries: Sequence[EdgeQuery]) -> List[Answer]:
        if self._metrics is not None:
            self._metrics.inc("query_batches")
            self._metrics.inc("queries", len(queries))
        if not queries:
            return []
        answers = self._local.answer_batch(queries)
        # One word of partial answer per query travels up and back down.
        self._network.aggregate_query_round(self._bfs_parent, self._bfs_depth, len(queries))
        return answers


class CongestBackend(Backend):
    """CONGEST backend: owns the network simulator and the cached broadcast
    (BFS) tree.  The cache is maintained incrementally across overlay-served
    updates; when a mutation kills a broadcast-tree edge or node, the orphaned
    subtree is *locally repaired* — reattached through a surviving incident
    edge in ``O(depth-of-subtree)`` rounds — and only a subtree with no
    surviving edge into the rest of the tree (or a dead broadcast root) forces
    the conservative full ``O(D)``-round BFS rebuild.

    **Per-component accounting.**  A rebuild floods one BFS tree per
    connected component (the recovery initiator's component from the
    initiator; every other component keeps its current broadcast root when
    one survives, else floods from its first vertex in insertion order), so
    the cached state is a broadcast *forest* and every wave is charged per
    component by the network's round ledger.
    ``component_accounting=False`` keeps the legacy single-flood rebuild
    (accounting-only singleton roots outside the initiator's component) as
    the comparison baseline of benchmark E10 and the conservativeness
    property tests.

    **Depth-aware voluntary rebuilds.**  Repairs (and joining vertices) may
    leave the cached tree deeper than the tree a fresh BFS would build, and
    every pipelined wave pays the tree's max depth per chunk — so a
    permanently drifted tree charges its excess depth on every later
    broadcast/convergecast.  The backend therefore reports a ``depth_drift``
    :class:`CostSignal` after each update — *observed waves × (current
    component depth − fresh-rebuild depth)*, the excess rounds the stale tree
    charged that update, both measured inside the updated component — into an
    accumulating :class:`CostModel`, and once the account exceeds the modeled
    rebuild cost the controller forces a *voluntary* rebuild
    (``voluntary_rebuilds``), which re-minimises the depths and resets the
    account.  Under ``voluntary_root="center"`` (default) the voluntary
    rebuild runs a **2-sweep BFS center approximation** inside the triggering
    component — two *accounted* sweeps (``center_sweeps``) find a farthest
    vertex ``u`` and a farthest-from-``u`` vertex ``w``, and the final flood
    roots at the midpoint of the ``u → w`` path, whose eccentricity is within
    a factor 2 of the component's true radius (and equals it on trees) —
    strictly shallower than the best *observed* initiator whenever update
    sites hug the periphery.  ``voluntary_root="initiator"`` keeps the legacy
    best-observed-initiator root.  The drift signal itself is computed
    locally without communication: every node stores the graph (updates are
    disseminated in full — the driver already recomputes the
    articulation/bridge summary locally on commit), so each node can evaluate
    the would-be center's BFS depth itself.
    """

    name = "distributed_dfs"
    supports_amortization = True
    rebuild_stage = "post"  # the broadcast tree must span the updated graph

    def __init__(
        self,
        graph: UndirectedGraph,
        network: CongestNetwork,
        metrics: MetricsRecorder,
        *,
        local_repair: bool = True,
        drift_rebuild_cost: Optional[float] = None,
        voluntary_root: str = "center",
        component_accounting: bool = True,
    ) -> None:
        if voluntary_root not in ("center", "initiator"):
            raise ValueError(
                f"voluntary_root must be 'center' or 'initiator', got {voluntary_root!r}"
            )
        self.graph = graph
        self.network = network
        self.metrics = metrics
        self.bfs_parent: Dict[Vertex, Optional[Vertex]] = {}
        self.bfs_depth: Dict[Vertex, int] = {}
        self._cache_broken = True
        self._local_repair = local_repair
        self._drift_rebuild_cost = drift_rebuild_cost
        self._voluntary_root = voluntary_root
        self._component_accounting = component_accounting
        self._pending_orphans: List[Vertex] = []
        self._as_built_depth = 0
        self._committed_tree: Optional[DFSTree] = None
        #: Best (minimum-eccentricity) rebuild initiator observed since the
        #: last rebuild — the root an *initiator-mode* voluntary rebuild
        #: floods from.
        self._drift_initiator: Optional[Vertex] = None
        #: Seed inside the component whose drift account last grew — the
        #: vertex a *center-mode* voluntary rebuild starts its accounted
        #: 2-sweep from.
        self._drift_seed: Optional[Vertex] = None
        self._rebuilt_this_update = False
        self._update_words = 0
        self._rounds_before = 0
        self._messages_before = 0
        self._query_batches_before = 0.0
        self.articulation: set = set()
        self.bridges: set = set()
        # Cost-model maintenance: only repair mode can drift the tree depth
        # (conservative invalidation rebuilds — and therefore re-minimises —
        # on every broadcast-tree death), so only repair mode carries the
        # drift account.
        self.controller = MaintenanceController(metrics=metrics)
        if local_repair:
            self.controller.add(
                CostModel(
                    "depth_drift", self._modeled_rebuild_cost, kind="excess", forces=True
                )
            )

    # ------------------------------------------------------------------ #
    def overlay_budget(self) -> float:
        """Infinite: a stale (but intact) broadcast tree never degrades query
        answers — only the round accounting of its depths, which the
        ``depth_drift`` cost model governs — so the cadence policy rebuilds
        only when the cache is structurally broken."""
        return float("inf")

    def _modeled_rebuild_cost(self) -> float:
        """Rounds a voluntary rebuild costs, in waves of the as-built depth:
        the BFS flood (one round per level) plus the summary re-broadcast a
        rebuild update pays — and, under ``voluntary_root="center"``, the two
        accounted 2-sweep BFS floods that locate the center first (four waves
        instead of two).  The ``drift_rebuild_cost`` knob overrides the model
        (``float("inf")`` disables voluntary rebuilds, the pure-repair
        baseline of benchmark E9)."""
        if self._drift_rebuild_cost is not None:
            return self._drift_rebuild_cost
        waves = 4.0 if self._voluntary_root == "center" else 2.0
        return max(waves * (self._as_built_depth + 1), 1.0)

    def _accounted_center(self, seed: Vertex):
        """Run the 2-sweep center approximation *through the network* inside
        *seed*'s component: BFS from *seed* finds a farthest vertex ``u``, BFS
        from ``u`` finds a farthest vertex ``w``, and the midpoint of the
        ``u → w`` path is the candidate root.  Both sweeps charge their rounds
        to the component (``center_sweeps``); the tie-breaks are the
        deterministic BFS discovery order every node reproduces locally, so no
        extra coordination rounds are needed.  ``O(ecc)`` rounds per sweep.
        Returns ``(midpoint, ecc(seed))`` — the seed's eccentricity falls out
        of the first sweep and saves the caller a recomputation."""
        _, d1 = self.network.build_bfs_tree(seed)
        self.metrics.inc("center_sweeps")
        u = farthest_vertex(d1)
        p2, d2 = self.network.build_bfs_tree(u)
        self.metrics.inc("center_sweeps")
        w = farthest_vertex(d2)
        return path_midpoint(p2, d2, w), max(d1.values(), default=0)

    def _rebuild_roots(self, first: Vertex) -> List[Vertex]:
        """Roots of the rebuild's broadcast forest: *first* for its own
        component plus — under per-component accounting — one root per other
        component: its *current* broadcast root when one survives (so a
        component's earlier centering is not wiped by rebuilds triggered
        elsewhere, which would let the drift account refill immediately), the
        component's first vertex in graph insertion order otherwise.  Legacy
        accounting floods *first* only (the remaining vertices become
        accounting-only singleton roots)."""
        roots = [first]
        if not self._component_accounting:
            return roots
        covered = set(component_of(self.graph, first))
        current_roots = {v for v, p in self.bfs_parent.items() if p is None}
        for v in self.graph.vertices():
            if v not in covered:
                component = component_of(self.graph, v)
                root = next((c for c in component if c in current_roots), v)
                roots.append(root)
                covered.update(component)
        return roots

    def rebuild(self, tree: DFSTree, update: Optional[Update]) -> None:
        """Rebuild the broadcast forest (one accounted BFS flood per
        component).  Recovery rebuilds flood the initiator's component from
        the update's canonical initiator; a *voluntary* rebuild (demanded by
        the ``depth_drift`` cost model) roots the triggering component at the
        2-sweep center (or, in initiator mode, at the best observed
        initiator) instead.  Emits ``service_rebuilds`` (via the engine),
        ``voluntary_rebuilds``, ``center_sweeps`` and
        ``max_voluntary_rebuild_root_depth``."""
        self._rebuilt_this_update = True
        voluntary = (
            self.controller.has_model("depth_drift")
            and self.controller.model("depth_drift").due()
        )
        if voluntary:
            # The accumulated excess rounds the drifted tree charged have
            # caught up with this rebuild's cost: the rebuild is voluntary
            # (demanded by the cost model, not by a broken cache).  It is
            # maintenance rather than update-site recovery, so it may pick
            # its root freely inside the triggering component — otherwise the
            # new tree could be just as deep and the account would refill
            # immediately.
            self.metrics.inc("voluntary_rebuilds")
        if self.graph.num_vertices:
            first = self._voluntary_rebuild_root(tree, update) if voluntary else None
            if first is None:
                first = self._pick_initiator(tree, update)
            self.bfs_parent, self.bfs_depth = self.network.build_bfs_forest(
                self._rebuild_roots(first)
            )
            # Vertices no flood reached (legacy accounting only): track them
            # as additional broadcast roots (accounting only).
            for v in self.graph.vertices():
                if v not in self.bfs_parent:
                    self.bfs_parent[v] = None
                    self.bfs_depth[v] = 0
        else:  # pragma: no cover - the model needs at least one node
            self.bfs_parent, self.bfs_depth = {}, {}
        self._cache_broken = False
        self._pending_orphans.clear()
        self._as_built_depth = max(self.bfs_depth.values(), default=0)
        if voluntary:
            self.metrics.observe_max(
                "voluntary_rebuild_root_depth", self._as_built_depth
            )
        self._drift_initiator = None
        self._drift_seed = None
        self.controller.on_refresh()

    def _voluntary_rebuild_root(
        self, tree: DFSTree, update: Optional[Update]
    ) -> Optional[Vertex]:
        """Root a voluntary rebuild floods the triggering component from:
        the accounted 2-sweep center (center mode) seeded at the vertex the
        drift account was last measured against, or the best observed
        initiator (initiator mode).  None when no remembered seed survives —
        the caller falls back to the update's canonical initiator."""
        if self._voluntary_root == "center":
            seed = self._drift_seed
            if seed is None or not self.graph.has_vertex(seed):
                seed = self._pick_initiator(tree, update)
            if not self.graph.has_vertex(seed):
                return None
            midpoint, seed_ecc = self._accounted_center(seed)
            # Flood from whichever of {accounted midpoint, remembered best}
            # is shallower — evaluated locally, like every depth yardstick.
            _, mid_depth = bfs_tree(self.graph, midpoint)
            if max(mid_depth.values(), default=0) <= seed_ecc:
                return midpoint
            return seed
        if self._drift_initiator is not None and self.graph.has_vertex(self._drift_initiator):
            return self._drift_initiator
        return None

    def cache_invalid(self, update: Update) -> bool:
        """Post-mutation cache check — and the local-repair entry point.

        Called by the engine only when the policy wants to *reuse* the cached
        broadcast tree, i.e. exactly when repair work pays off.  Orphaned
        subtrees recorded by :meth:`mutate` are reattached here, before the
        update itself is disseminated over the (repaired) tree; a subtree with
        no surviving edge into the live tree falls back to the full rebuild.
        """
        pending, self._pending_orphans = self._pending_orphans, []
        if self._cache_broken:
            return True
        if not pending:
            return False
        if not self._local_repair:
            self._cache_broken = True
            return True
        rounds_before = self.network.rounds
        # Collect every orphaned subtree first: a node whose own root path is
        # severed is not a valid reattachment target for a sibling subtree.
        subtrees = []
        still_orphaned: set = set()
        shared_children = children_index(self.bfs_parent)
        for root in pending:
            sub, rel_depth = parent_tree_subtree(self.bfs_parent, root, children=shared_children)
            subtrees.append((root, sub, rel_depth))
            still_orphaned.update(sub)
        repaired_depths: List[int] = []
        repaired = True
        for root, sub, rel_depth in subtrees:
            still_orphaned.difference_update(sub)
            if not self._repair_orphan(root, sub, rel_depth, still_orphaned, update):
                repaired = False
                break
            repaired_depths.append(max(rel_depth.values()))
        # The rounds were genuinely spent either way, but repairs only count
        # when the whole batch succeeds: a fallback rebuild discards every
        # sibling reattachment made earlier in the same update.
        self.metrics.inc("bfs_repair_rounds", self.network.rounds - rounds_before)
        if not repaired:
            self.metrics.inc("bfs_repair_fallbacks")
            self._cache_broken = True
            return True
        for depth in repaired_depths:
            self.metrics.inc("bfs_repairs")
            self.metrics.observe_max("bfs_repair_subtree_depth", depth)
        return False

    def _repair_orphan(
        self,
        root: Vertex,
        sub: List[Vertex],
        rel_depth: Dict[Vertex, int],
        still_orphaned: set,
        update: Update,
    ) -> bool:
        """Reattach the orphaned broadcast subtree *sub* (rooted at *root*).

        Every subtree node scans its local adjacency for a surviving neighbour
        whose own root path is intact (one local round), the candidates are
        combined with a convergecast *inside the subtree* (``O(depth(sub))``
        rounds, one word per edge), and the winner — the candidate with the
        smallest *two-level score*, ties broken by subtree BFS order, then
        adjacency order, so the result is deterministic — re-roots the
        subtree at itself and hangs it off the surviving neighbour.  A final
        one-word broadcast down the re-rooted subtree (``O(depth)`` rounds
        again) distributes the decision and the corrected depths.

        **Two-level candidate selection.**  The score combines the two tree
        levels a candidate ``u`` touches — the live depth of its reattachment
        target plus ``u``'s own depth inside the orphaned subtree
        (``bfs_depth[target] + rel_depth[u]``).  Because the re-rooted height
        from ``u`` is at most ``rel_depth[u] + H`` (``H`` = the subtree's
        height, a shared constant), minimising the score minimises an upper
        bound on the resulting bottom depth — approximating the exact
        min-bottom-depth selection at ``O(1)`` bookkeeping per candidate
        instead of a per-candidate subtree BFS, without changing the repair's
        ``O(depth-of-subtree)`` round accounting (still exactly one
        convergecast and one broadcast over the subtree).

        Returns False when no subtree node has a surviving edge out — the
        subtree is truly disconnected from the live tree and only a full
        rebuild can certify the new component structure — or when the
        **cost-model repair gate** rejects the plan: the repaired component
        would end up deeper than the depth the fallback rebuild would give
        that same component (see :meth:`_component_fallback_depth`).  Accepting
        such a repair converts the rebuild's one-time ``O(D)`` rounds into a
        recurring per-wave drift charge: the ``depth_drift`` account tolerates
        up to one modeled rebuild cost of excess before the voluntary rebuild
        corrects it, so riding the drift costs about *twice* the rebuild the
        repair avoided — rebuilding now is always cheaper.  (This replaces the
        old hard as-built depth bound, which measured drift against the stale
        as-built depth and let repairs ride trees a fresh rebuild would
        beat.)  The gate is disabled together with voluntary rebuilds by
        ``drift_rebuild_cost=inf`` — the pure-repair baseline.
        """
        sub_set = set(sub)
        # Two-level score per candidate: live target depth + depth inside the
        # orphaned subtree.  O(1) per candidate — no per-candidate BFS.
        best = None  # (two-level score, attach vertex, target vertex)
        for u in sub:
            target_depth = None
            target = None
            for w in self.graph.neighbors(u):
                if w in sub_set or w in still_orphaned or w not in self.bfs_depth:
                    continue
                if target_depth is None or self.bfs_depth[w] < target_depth:
                    target_depth, target = self.bfs_depth[w], w
            if target is None:
                continue
            score = target_depth + rel_depth[u]
            if best is None or score < best[0]:
                best = (score, u, target)
        # The candidate convergecast is paid whether or not anything was
        # found: the subtree cannot know it is disconnected without looking.
        old_parent = {v: (None if v == root else self.bfs_parent[v]) for v in sub}
        self.network.pipelined_convergecast(old_parent, rel_depth, 1)
        if best is None:
            return False
        _, attach, target = best
        flipped = reroot_parent_tree(sub, self.bfs_parent, attach)
        # Depth wave: every subtree node is exactly one deeper than its new
        # parent, assigned top-down from the reattachment point.  Planned
        # before committing — the exact re-rooted bottom depth feeds the gate.
        new_children: Dict[Vertex, List[Vertex]] = {}
        for v, p in flipped.items():
            new_children.setdefault(p, []).append(v)
        new_depth: Dict[Vertex, int] = {attach: self.bfs_depth[target] + 1}
        frontier = [attach]
        while frontier:
            nxt: List[Vertex] = []
            for v in frontier:
                for c in new_children.get(v, ()):
                    new_depth[c] = new_depth[v] + 1
                    nxt.append(c)
            frontier = nxt
        if self._drift_rebuild_cost != float("inf"):
            # Per-component gate, matching the drift account's yardstick: the
            # repaired tree is compared against the depth the fallback
            # rebuild would give *this* component — a deep unrelated
            # component must not mask a component-level repair regression
            # (the drift account would charge it per wave regardless).
            members, fresh_depth = self._component_fallback_depth(root, update)
            repaired_max = max(new_depth.values())
            rest_max = max(
                (
                    d
                    for v, d in self.bfs_depth.items()
                    if v in members and v not in sub_set and v not in still_orphaned
                ),
                default=0,
            )
            if max(repaired_max, rest_max) > fresh_depth:
                return False
        self.bfs_parent[attach] = target
        self.bfs_parent.update(flipped)
        self.bfs_depth.update(new_depth)
        new_rel = {v: new_depth[v] - new_depth[attach] for v in sub}
        new_parent = {v: (None if v == attach else self.bfs_parent[v]) for v in sub}
        self.network.pipelined_broadcast(new_parent, new_rel, 1)
        return True

    def _pick_initiator(self, tree: DFSTree, update: Optional[Update]) -> Vertex:
        """The unique node that initiates the recovery broadcast (Section 6.2).

        Deterministic and O(degree): an endpoint of the update, or — for a
        vertex deletion — the first surviving old-tree neighbour in tree
        order.  The fallback takes the graph's first vertex (insertion order)
        instead of stringifying the whole vertex set.
        """
        graph = self.graph
        candidates: List[Vertex] = []
        if isinstance(update, (EdgeInsertion, EdgeDeletion)):
            candidates = [v for v in (update.u, update.v) if graph.has_vertex(v)]
        elif isinstance(update, VertexInsertion):
            candidates = [update.v] if graph.has_vertex(update.v) else []
        elif isinstance(update, VertexDeletion) and update.v in tree:
            candidates = [
                w
                for w in list(tree.children(update.v)) + [tree.parent(update.v)]
                if w is not None and graph.has_vertex(w) and w != VIRTUAL_ROOT
            ]
        if candidates:
            return candidates[0]
        vertices = iter(graph.vertices())
        return next(vertices, VIRTUAL_ROOT)

    # ------------------------------------------------------------------ #
    def mutate(self, update: Update) -> None:
        """Apply the update to the graph and patch the cached broadcast tree.

        A death of a broadcast-tree edge or node no longer breaks the cache
        outright: the severed children are recorded as *pending orphans*, and
        :meth:`cache_invalid` repairs them locally when the policy reuses the
        cache.  Only the death of a broadcast root (no surviving tree above
        its children) still forces the conservative full rebuild.
        """
        self._update_words = update_words(update, self.graph)
        if isinstance(update, EdgeInsertion):
            self.graph.add_edge(update.u, update.v)
        elif isinstance(update, EdgeDeletion):
            self.graph.remove_edge(update.u, update.v)
            if self.bfs_parent.get(update.u) == update.v:
                self._pending_orphans.append(update.u)  # a broadcast-tree edge died
            elif self.bfs_parent.get(update.v) == update.u:
                self._pending_orphans.append(update.v)
        elif isinstance(update, VertexInsertion):
            self.graph.add_vertex_with_edges(update.v, update.neighbors)
            self._attach_to_cache(update.v, update.neighbors)
        elif isinstance(update, VertexDeletion):
            children = [c for c, p in self.bfs_parent.items() if p == update.v]
            was_root = update.v in self.bfs_parent and self.bfs_parent[update.v] is None
            self.graph.remove_vertex(update.v)
            self.bfs_parent.pop(update.v, None)
            self.bfs_depth.pop(update.v, None)
            if children and was_root:
                # No surviving tree above the orphans to reattach into.
                self._cache_broken = True
            else:
                self._pending_orphans.extend(children)
        else:
            raise UpdateError(f"unknown update type {update!r}")

    def _attach_to_cache(self, v: Vertex, neighbors: Iterable[Vertex]) -> None:
        """Hook a joining node into the cached broadcast tree (one local
        message to its first cached neighbour; covered by the dissemination
        broadcast's accounting)."""
        for w in neighbors:
            if w in self.bfs_parent:
                self.bfs_parent[v] = w
                self.bfs_depth[v] = self.bfs_depth[w] + 1
                return
        self.bfs_parent[v] = None  # isolated joiner: its own broadcast root
        self.bfs_depth[v] = 0

    def on_mutated(self, update: Update) -> None:
        """Recovery stage: disseminate the update itself over the (fresh or
        cached) broadcast forest — a pipelined ``O(depth + words/B)``-round
        wave, charged per component."""
        self.network.pipelined_broadcast(self.bfs_parent, self.bfs_depth, self._update_words)

    def make_query_service(self, tree: DFSTree) -> QueryService:
        """A :class:`DistributedQueryService` over the cached broadcast forest
        (one convergecast + broadcast per query batch)."""
        return DistributedQueryService(
            self.network, self.graph, tree, self.bfs_parent, self.bfs_depth, metrics=self.metrics
        )

    # ------------------------------------------------------------------ #
    def begin_update(self, update: Update) -> None:
        """Snapshot round/message/query-batch counters for the per-update
        maxima ``end_update`` flushes."""
        self._rebuilt_this_update = False
        self._rounds_before = self.network.rounds
        self._messages_before = self.network.messages
        self._query_batches_before = self.metrics["query_batches"]

    def on_commit(self, tree: DFSTree) -> None:
        """Recompute the articulation/bridge summary (locally at every node)
        and — on rebuild updates only, the amortized policy's second saving
        besides the BFS construction itself — re-disseminate it with an
        ``O(n)``-word pipelined broadcast so the next deletion can pick
        initiators locally."""
        self._committed_tree = tree
        self.articulation, self.bridges = articulation_points_and_bridges(self.graph)
        if self._rebuilt_this_update and self.graph.num_vertices > 1:
            summary_words = max(len(self.articulation) + len(self.bridges), 1)
            self.network.pipelined_broadcast(
                self.bfs_parent,
                self.bfs_depth,
                min(summary_words, self.graph.num_vertices),
            )

    def _component_fallback_depth(self, vertex: Vertex, update: Update):
        """``(members, depth)``: the vertices of *vertex*'s graph component
        and the depth the *fallback* rebuild would give exactly that
        component — the BFS eccentricity of the update's canonical initiator
        when it lies inside (recovery rebuilds must start at an
        update-adjacent node), else of the root :meth:`_rebuild_roots` would
        pick for it (the surviving current root, or the component's first
        vertex).  The repair gate compares the planned repair against this
        per-component yardstick, the same scope the ``depth_drift`` account
        measures — a deep unrelated component never masks a regression.
        Evaluated locally from the stored graph; no rounds charged."""
        component = component_of(self.graph, vertex)
        members = set(component)
        initiator = self._pick_initiator(self._committed_tree, update)
        if initiator in members:
            root = initiator
        else:
            current_roots = {v for v, p in self.bfs_parent.items() if p is None}
            root = next((c for c in component if c in current_roots), component[0])
        _, depth = bfs_tree(self.graph, root)
        return members, max(depth.values(), default=0)

    def _drift_reference(self, update: Update):
        """The per-component drift yardstick for this update: ``(component,
        fresh_depth)`` where *component* is the updated component's vertex
        list and *fresh_depth* is the depth a voluntary rebuild of that
        component would achieve right now — the 2-sweep center's eccentricity
        in center mode, or the best eccentricity among the update's initiator
        and the remembered best initiator in initiator mode (both remembered
        so the voluntary rebuild can actually reach this depth).  Evaluated
        locally from the stored graph — no rounds are charged, the same local
        full-graph liberty the articulation/bridge summary already takes.
        Returns ``(None, 0)`` when the update left no valid initiator."""
        initiator = self._pick_initiator(self._committed_tree, update)
        if not self.graph.has_vertex(initiator):
            return None, 0
        _, d1 = bfs_tree(self.graph, initiator)
        component = list(d1)
        members = d1.keys()
        # (candidate, eccentricity) pairs; the initiator's eccentricity falls
        # out of the BFS just run.
        evaluated = [(initiator, max(d1.values(), default=0))]
        if self._voluntary_root == "center":
            # The 2-sweep midpoint joins the candidate pool rather than
            # replacing it: on low-diameter graphs an observed initiator can
            # already sit at the center, and the approximation must never
            # make the yardstick (or the rebuild root) worse.  ``d1`` doubles
            # as the approximation's first sweep.
            if self._drift_seed in members and self._drift_seed != initiator:
                _, depth = bfs_tree(self.graph, self._drift_seed)
                evaluated.append((self._drift_seed, max(depth.values(), default=0)))
            u = farthest_vertex(d1)
            p2, d2 = bfs_tree(self.graph, u)
            center = path_midpoint(p2, d2, farthest_vertex(d2))
            if all(center != c for c, _ in evaluated):
                _, depth = bfs_tree(self.graph, center)
                evaluated.append((center, max(depth.values(), default=0)))
        elif self._drift_initiator in members and self._drift_initiator != initiator:
            _, depth = bfs_tree(self.graph, self._drift_initiator)
            evaluated.append((self._drift_initiator, max(depth.values(), default=0)))
        best_depth = None
        best_root = None
        for candidate, ecc in evaluated:
            if best_depth is None or ecc < best_depth:
                best_depth, best_root = ecc, candidate
        if self._voluntary_root == "center":
            self._drift_seed = best_root
        else:
            self._drift_initiator = best_root
        return component, best_depth

    def end_update(self, update: Update) -> None:
        """Flush the per-update round/message maxima and report the
        ``depth_drift`` :class:`CostSignal` — *waves × drift*, both measured
        inside the updated component (see :meth:`_drift_reference`)."""
        self.metrics.observe_max("rounds_per_update", self.network.rounds - self._rounds_before)
        self.metrics.observe_max("messages_per_update", self.network.messages - self._messages_before)
        if self.controller.has_model("depth_drift") and self.bfs_depth:
            # Excess rounds the stale tree charged this update: every
            # pipelined wave (the dissemination broadcast plus a convergecast
            # and a broadcast per query batch) pays the tree's max depth per
            # chunk, so the drift — the updated component's current depth
            # minus what a fresh rebuild of it would give — was charged once
            # per wave against that component's ledger.
            component, fresh = self._drift_reference(update)
            if component is not None:
                current = max(
                    (self.bfs_depth[v] for v in component if v in self.bfs_depth),
                    default=0,
                )
                drift = current - fresh
                if drift > 0:
                    batches = self.metrics["query_batches"] - self._query_batches_before
                    waves = 1 + 2 * batches
                    self.controller.report(CostSignal("depth_drift", waves * drift))


class DistributedDynamicDFS:
    """Maintain a DFS forest in the CONGEST(n/D) model.

    Parameters
    ----------
    backend:
        Storage core of the node-local graph copy: ``"dict"`` (default),
        ``"array"`` (numpy flat/CSR core — accelerates the BFS floods and the
        initial DFS, byte-identical trees) or ``None`` to read the
        ``REPRO_BACKEND`` environment variable.
    rebuild_every:
        ``1`` (default) — rebuild the broadcast tree and re-disseminate the
        forest summary on every update.  ``k > 1`` / ``None`` — reuse the
        cached broadcast state between rebuilds (``None``: rebuild only when a
        mutation breaks the cached tree beyond repair, or the ``depth_drift``
        cost model demands a voluntary rebuild).  All policies maintain
        identical trees.
    local_repair:
        When True (default) a dead broadcast-tree edge/node reattaches the
        orphaned subtree through a surviving incident edge in
        ``O(depth-of-subtree)`` rounds (counted under ``bfs_repairs`` /
        ``bfs_repair_rounds``); a full ``O(D)``-round BFS rebuild happens only
        when the subtree is truly disconnected.  ``False`` restores the
        conservative invalidate-on-any-death behaviour (every tree-edge death
        rebuilds), which benchmarks use as the comparison baseline.
    drift_rebuild_cost:
        Repair mode only: budget (in CONGEST rounds) of the ``depth_drift``
        cost model.  A drifted broadcast tree pays its excess depth on every
        pipelined wave — the backend accumulates that excess (*observed waves
        × depth drift*, inside the updated component) and forces a
        **voluntary rebuild** (``voluntary_rebuilds``) once it exceeds this
        budget, re-minimising the depths.  ``None`` (default) models the
        actual rebuild cost (the flood plus the summary re-broadcast,
        ``~2(D+1)`` — plus the two accounted center sweeps, ``~4(D+1)``,
        under ``voluntary_root="center"``); ``float("inf")`` disables both
        voluntary rebuilds and the cost-model repair gate (the pure-repair
        baseline of benchmark E9, which re-creates the depth-drift regression
        this model fixes).
    voluntary_root:
        ``"center"`` (default) — a voluntary rebuild runs the 2-sweep BFS
        center approximation inside the triggering component (two accounted
        sweeps, ``center_sweeps``) and floods from the midpoint of the
        approximate diameter path, yielding a tree within a factor 2 of the
        component radius (``max_voluntary_rebuild_root_depth``).
        ``"initiator"`` — the legacy policy: flood from the best
        (minimum-eccentricity) initiator observed since the last rebuild.
        Benchmark E10 compares the two.
    component_accounting:
        When True (default) a rebuild floods one BFS tree per connected
        component and every wave is charged within the component that
        executes it (``component_rounds_charged``; see
        :class:`~repro.distributed.network.CongestNetwork`), so round
        comparisons stay meaningful when updates fragment the graph.
        ``False`` restores the legacy accounting — a single flood from the
        initiator with free dissemination to accounting-only singleton roots
        elsewhere — as the conservativeness baseline (benchmark E10 asserts
        per-component accounting never charges less).
    """

    def __init__(
        self,
        graph: UndirectedGraph,
        *,
        backend: Optional[str] = None,
        bandwidth_words: Optional[int] = None,
        rebuild_every: Optional[int] = 1,
        local_repair: bool = True,
        drift_rebuild_cost: Optional[float] = None,
        voluntary_root: str = "center",
        component_accounting: bool = True,
        validate: bool = False,
        metrics: Optional[MetricsRecorder] = None,
    ) -> None:
        if graph.num_vertices == 0:
            raise ValueError("the distributed model needs at least one node")
        UpdateEngine.validate_options("parallel", rebuild_every)  # fail fast
        if drift_rebuild_cost is not None and drift_rebuild_cost <= 0:
            raise ValueError(
                f"drift_rebuild_cost must be a positive budget or None, got {drift_rebuild_cost!r}"
            )
        self._backend_name = resolve_backend(backend)
        self.metrics = metrics or MetricsRecorder("distributed_dfs")
        self._graph = native_graph(graph, self._backend_name, copy=True)
        root = next(iter(self._graph.vertices()))
        self.diameter, auto_bandwidth = recommended_bandwidth(self._graph, root)
        self.bandwidth = bandwidth_words if bandwidth_words is not None else auto_bandwidth
        self.network = CongestNetwork(self._graph, self.bandwidth, metrics=self.metrics)
        with self.metrics.timer("initial_dfs"):
            parent = static_dfs_forest(self._graph)
        tree = DFSTree(parent, root=VIRTUAL_ROOT)
        self._backend = CongestBackend(
            self._graph,
            self.network,
            self.metrics,
            local_repair=local_repair,
            drift_rebuild_cost=drift_rebuild_cost,
            voluntary_root=voluntary_root,
            component_accounting=component_accounting,
        )
        # No initial rebuild: the BFS/broadcast tree is per-update recovery
        # state, not preprocessing — the backend's cache starts broken, so the
        # first update builds it (without charging rounds at construction).
        self._engine = UpdateEngine(
            self._backend,
            tree,
            rebuild_every=rebuild_every,
            validate=validate,
            metrics=self.metrics,
            initial_rebuild=False,
        )
        self._backend.articulation, self._backend.bridges = articulation_points_and_bridges(
            self._graph
        )

    # ------------------------------------------------------------------ #
    @property
    def backend(self) -> str:
        """The resolved storage backend name (``"dict"`` or ``"array"``)."""
        return self._backend_name

    @property
    def tree(self) -> DFSTree:
        """The DFS forest currently stored at every node."""
        return self._engine.tree

    @property
    def graph(self) -> UndirectedGraph:
        """The live graph every node stores a copy of."""
        return self._graph

    @property
    def rebuild_every(self) -> Optional[int]:
        """The configured broadcast-state rebuild policy."""
        return self._engine.rebuild_every

    @property
    def update_engine(self) -> UpdateEngine:
        """The shared :class:`UpdateEngine` driving this adapter."""
        return self._engine

    def add_commit_listener(self, listener) -> None:
        """Register *listener* to run with the committed tree after every
        update (the MVCC snapshot-publication hook; see
        :meth:`UpdateEngine.add_commit_listener`)."""
        self._engine.add_commit_listener(listener)

    def remove_commit_listener(self, listener) -> None:
        """Deregister a commit listener (the service-detach hook; unknown
        listeners are ignored — see
        :meth:`UpdateEngine.remove_commit_listener`)."""
        self._engine.remove_commit_listener(listener)

    def is_valid(self) -> bool:
        """Validate the maintained forest."""
        return self._engine.is_valid()

    def parent_map(self, **kwargs) -> Dict[Vertex, Optional[Vertex]]:
        """Parent map of the maintained DFS forest."""
        return self._engine.parent_map(**kwargs)

    def rounds(self) -> int:
        """Total CONGEST rounds so far."""
        return self.network.rounds

    def messages(self) -> int:
        """Total CONGEST messages so far."""
        return self.network.messages

    def component_rounds(self) -> Dict[Vertex, int]:
        """Snapshot of the per-component round ledger (broadcast-tree root at
        charge time -> rounds that tree spent executing waves).  Sums to at
        least :meth:`rounds` minus idle chunk rounds on connected graphs and
        strictly exceeds :meth:`rounds` once waves span several components."""
        return dict(self.network.component_rounds)

    # ------------------------------------------------------------------ #
    def insert_edge(self, u: Vertex, v: Vertex) -> DFSTree:
        """Insert edge ``(u, v)`` (``O(D + q/B)`` rounds per query batch)."""
        return self.apply(EdgeInsertion(u, v))

    def delete_edge(self, u: Vertex, v: Vertex) -> DFSTree:
        """Delete edge ``(u, v)``; a dead broadcast-tree edge triggers a local
        repair (``bfs_repairs``) or a rebuild."""
        return self.apply(EdgeDeletion(u, v))

    def insert_vertex(self, v: Vertex, neighbors: Iterable[Vertex] = ()) -> DFSTree:
        """Insert vertex *v* with *neighbors* (an ``O(deg)``-word broadcast)."""
        return self.apply(VertexInsertion(v, tuple(neighbors)))

    def delete_vertex(self, v: Vertex) -> DFSTree:
        """Delete vertex *v*; orphaned broadcast subtrees are repaired or the
        forest is rebuilt per component."""
        return self.apply(VertexDeletion(v))

    def apply(self, update: Update) -> DFSTree:
        """Apply one update (update stage) and repair the tree (recovery stage)."""
        return self._engine.apply(update)

    def apply_all(self, updates: Sequence[Update]) -> DFSTree:
        """Apply a whole batch through the shared engine (batch metrics, one
        end-of-batch validation)."""
        return self._engine.apply_all(updates)

    # ------------------------------------------------------------------ #
    @property
    def articulation_points(self):
        """Articulation points of the current graph (stored at every node)."""
        return set(self._backend.articulation)

    @property
    def bridges(self):
        """Bridges of the current graph (stored at every node)."""
        return set(self._backend.bridges)
