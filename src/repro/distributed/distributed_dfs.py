"""Distributed fully dynamic DFS in synchronous CONGEST(n/D) (Theorem 16).

Model (Section 6.2 of the paper): one processor per graph vertex, communication
only along graph edges, messages of at most ``B = ceil(n/D)`` words per edge per
round, ``O(n)`` memory per node.  Every node stores the current DFS tree ``T``
and its own adjacency list; tree operations are therefore local, and the only
distributed computation is answering the rerooting engine's query batches:

1. after every update a BFS tree is rebuilt from a deterministic initiator
   (``O(D)`` rounds, ``O(m)`` messages);
2. the update itself (up to ``O(n)`` words for a vertex insertion) is
   disseminated with a pipelined broadcast;
3. each batch of ``q ≤ n`` independent queries is answered by a pipelined
   convergecast of the per-node partial answers followed by a broadcast of the
   combined answers (``O(D + q/B)`` rounds);
4. after the tree is updated, the articulation points/bridges summary is
   re-broadcast so future deletions can pick broadcast initiators locally.

The driver reports rounds, messages and maximum message size per update so
benchmark E4 can check the ``O(D log^2 n)`` rounds / ``O(nD log^2 n + m)``
messages / ``O(n/D)`` message-size claims.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, List, Optional, Sequence

from repro.constants import VIRTUAL_ROOT
from repro.core.queries import Answer, BruteForceQueryService, EdgeQuery, QueryService
from repro.core.reduction import reduce_update
from repro.core.reroot_parallel import ParallelRerootEngine
from repro.core.updates import (
    EdgeDeletion,
    EdgeInsertion,
    Update,
    VertexDeletion,
    VertexInsertion,
)
from repro.distributed.forest import articulation_points_and_bridges
from repro.distributed.network import CongestNetwork, recommended_bandwidth
from repro.exceptions import NotADFSTree, UpdateError
from repro.graph.graph import UndirectedGraph
from repro.graph.traversal import static_dfs_forest
from repro.graph.validation import check_dfs_tree
from repro.metrics.counters import MetricsRecorder
from repro.tree.dfs_tree import DFSTree

Vertex = Hashable


class DistributedQueryService(QueryService):
    """Answers query batches with one convergecast + broadcast over the network.

    Every node evaluates, from its *local adjacency list only*, the best
    candidate edge for each query in which one of its vertices is a source;
    the per-query partial answers (one word each) are then combined up the BFS
    tree and redistributed.  The local evaluation reuses
    :class:`BruteForceQueryService`, which scans exactly the per-node adjacency
    lists — the same work each node would do on its own.
    """

    def __init__(
        self,
        network: CongestNetwork,
        graph: UndirectedGraph,
        base_tree: DFSTree,
        bfs_parent: Dict[Vertex, Optional[Vertex]],
        bfs_depth: Dict[Vertex, int],
        *,
        metrics: Optional[MetricsRecorder] = None,
    ) -> None:
        self._network = network
        self._local = BruteForceQueryService(graph, base_tree, metrics=None)
        self._bfs_parent = bfs_parent
        self._bfs_depth = bfs_depth
        self._metrics = metrics

    def answer_batch(self, queries: Sequence[EdgeQuery]) -> List[Answer]:
        if self._metrics is not None:
            self._metrics.inc("query_batches")
            self._metrics.inc("queries", len(queries))
        if not queries:
            return []
        answers = self._local.answer_batch(queries)
        # One word of partial answer per query travels up and back down.
        self._network.aggregate_query_round(self._bfs_parent, self._bfs_depth, len(queries))
        return answers


class DistributedDynamicDFS:
    """Maintain a DFS forest in the CONGEST(n/D) model."""

    def __init__(
        self,
        graph: UndirectedGraph,
        *,
        bandwidth_words: Optional[int] = None,
        validate: bool = False,
        metrics: Optional[MetricsRecorder] = None,
    ) -> None:
        if graph.num_vertices == 0:
            raise ValueError("the distributed model needs at least one node")
        self.metrics = metrics or MetricsRecorder("distributed_dfs")
        self._validate = validate
        self._graph = graph.copy()
        root = next(iter(self._graph.vertices()))
        self.diameter, auto_bandwidth = recommended_bandwidth(self._graph, root)
        self.bandwidth = bandwidth_words if bandwidth_words is not None else auto_bandwidth
        self.network = CongestNetwork(self._graph, self.bandwidth, metrics=self.metrics)
        with self.metrics.timer("initial_dfs"):
            parent = static_dfs_forest(self._graph)
        self._tree = DFSTree(parent, root=VIRTUAL_ROOT)
        self._refresh_forest_summary(initial=True)

    # ------------------------------------------------------------------ #
    @property
    def tree(self) -> DFSTree:
        """The DFS forest currently stored at every node."""
        return self._tree

    @property
    def graph(self) -> UndirectedGraph:
        return self._graph

    def is_valid(self) -> bool:
        """Validate the maintained forest."""
        return not check_dfs_tree(self._graph, self._tree.parent_map())

    def rounds(self) -> int:
        """Total CONGEST rounds so far."""
        return self.network.rounds

    def messages(self) -> int:
        """Total CONGEST messages so far."""
        return self.network.messages

    # ------------------------------------------------------------------ #
    def insert_edge(self, u: Vertex, v: Vertex) -> DFSTree:
        return self.apply(EdgeInsertion(u, v))

    def delete_edge(self, u: Vertex, v: Vertex) -> DFSTree:
        return self.apply(EdgeDeletion(u, v))

    def insert_vertex(self, v: Vertex, neighbors: Iterable[Vertex] = ()) -> DFSTree:
        return self.apply(VertexInsertion(v, tuple(neighbors)))

    def delete_vertex(self, v: Vertex) -> DFSTree:
        return self.apply(VertexDeletion(v))

    def apply_all(self, updates: Sequence[Update]) -> DFSTree:
        for upd in updates:
            self.apply(upd)
        return self._tree

    def apply(self, update: Update) -> DFSTree:
        """Apply one update (update stage) and repair the tree (recovery stage)."""
        self.metrics.inc("updates")
        rounds_before = self.network.rounds
        messages_before = self.network.messages

        update_words = self._mutate(update)
        initiator = self._broadcast_initiator(update)

        # Recovery stage: rebuild the BFS (broadcast) tree from the initiator,
        # then disseminate the update itself.
        if self._graph.num_vertices:
            bfs_parent, bfs_depth = self.network.build_bfs_tree(initiator)
            self.network.pipelined_broadcast(bfs_parent, bfs_depth, update_words)
        else:
            bfs_parent, bfs_depth = {initiator: None}, {initiator: 0}

        service = DistributedQueryService(
            self.network, self._graph, self._tree, bfs_parent, bfs_depth, metrics=self.metrics
        )
        reduction = reduce_update(update, self._tree, service, metrics=self.metrics)
        new_parent = self._tree.parent_map()
        for v in reduction.removed_vertices:
            new_parent.pop(v, None)
        new_parent.update(reduction.parent_overrides)
        if reduction.tasks:
            engine = ParallelRerootEngine(
                self._tree,
                service,
                adjacency=self._graph.neighbor_list,
                metrics=self.metrics,
                validate=self._validate,
            )
            new_parent.update(engine.reroot_many(reduction.tasks))
        self._tree = DFSTree(new_parent, root=VIRTUAL_ROOT)

        # Re-disseminate the forest summary (articulation points / bridges),
        # an O(n)-word broadcast, so the next deletion can be handled locally.
        self._refresh_forest_summary(bfs=(bfs_parent, bfs_depth))

        self.metrics.observe_max("rounds_per_update", self.network.rounds - rounds_before)
        self.metrics.observe_max("messages_per_update", self.network.messages - messages_before)
        if self._validate:
            problems = check_dfs_tree(self._graph, self._tree.parent_map())
            if problems:
                raise NotADFSTree("; ".join(problems[:5]))
        return self._tree

    # ------------------------------------------------------------------ #
    def _mutate(self, update: Update) -> int:
        """Apply the update to the graph; return its description size in words."""
        if isinstance(update, EdgeInsertion):
            self._graph.add_edge(update.u, update.v)
            return 2
        if isinstance(update, EdgeDeletion):
            self._graph.remove_edge(update.u, update.v)
            return 2
        if isinstance(update, VertexInsertion):
            self._graph.add_vertex_with_edges(update.v, update.neighbors)
            return 1 + len(update.neighbors)
        if isinstance(update, VertexDeletion):
            degree = self._graph.degree(update.v)
            self._graph.remove_vertex(update.v)
            return 1 + degree
        raise UpdateError(f"unknown update type {update!r}")

    def _broadcast_initiator(self, update: Update) -> Vertex:
        """The unique node that initiates the recovery broadcast (Section 6.2)."""
        candidates: List[Vertex]
        if isinstance(update, (EdgeInsertion, EdgeDeletion)):
            candidates = [v for v in (update.u, update.v) if self._graph.has_vertex(v)]
        elif isinstance(update, VertexInsertion):
            candidates = [update.v]
        else:  # vertex deletion: a surviving neighbour in the old tree
            old_neighbors = [
                w
                for w in list(self._tree.children(update.v)) + [self._tree.parent(update.v)]
                if w is not None and self._graph.has_vertex(w) and w != VIRTUAL_ROOT
            ]
            candidates = old_neighbors or [v for v in self._graph.vertices()]
        if not candidates:
            candidates = list(self._graph.vertices()) or [VIRTUAL_ROOT]
        return min(candidates, key=lambda x: str(x))

    def _refresh_forest_summary(self, *, initial: bool = False, bfs=None) -> None:
        self._articulation, self._bridges = articulation_points_and_bridges(self._graph)
        if initial or bfs is None or self._graph.num_vertices <= 1:
            return
        bfs_parent, bfs_depth = bfs
        summary_words = max(len(self._articulation) + len(self._bridges), 1)
        self.network.pipelined_broadcast(bfs_parent, bfs_depth, min(summary_words, self._graph.num_vertices))

    # ------------------------------------------------------------------ #
    @property
    def articulation_points(self):
        """Articulation points of the current graph (stored at every node)."""
        return set(self._articulation)

    @property
    def bridges(self):
        """Bridges of the current graph (stored at every node)."""
        return set(self._bridges)
