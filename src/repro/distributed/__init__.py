"""Distributed (synchronous CONGEST) environment — Theorem 16."""

from repro.distributed.network import CongestNetwork
from repro.distributed.distributed_dfs import DistributedDynamicDFS, DistributedQueryService
from repro.distributed.forest import articulation_points_and_bridges, two_sweep_center

__all__ = [
    "CongestNetwork",
    "DistributedDynamicDFS",
    "DistributedQueryService",
    "articulation_points_and_bridges",
    "two_sweep_center",
]
