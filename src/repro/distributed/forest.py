"""DFS-forest maintenance helpers for the distributed setting (Section 6.2).

After a deletion, each neighbour of the failed link/vertex must decide locally
whether its component split, which the paper does by having every node know the
articulation points and bridges of the current graph.  The computation itself
is the classical low-link DFS; in the distributed simulation its result is
disseminated with one ``O(n)``-word pipelined broadcast, which the driver
accounts for.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Optional, Set, Tuple

from repro.graph.graph import UndirectedGraph
from repro.graph.traversal import bfs_tree

Vertex = Hashable


def forest_roots(parent: Dict[Vertex, Optional[Vertex]]) -> Dict[Vertex, Vertex]:
    """Map every vertex of a parent-pointer forest to the root of its tree.

    Used by the per-component round ledger: a charge for a pipelined wave is
    attributed to the broadcast tree (identified by its root) that executes
    it.  Path-compressing walk, ``O(n)`` total.
    """
    root_of: Dict[Vertex, Vertex] = {}
    for v in parent:
        w = v
        path: List[Vertex] = []
        while w not in root_of and parent[w] is not None:
            path.append(w)
            w = parent[w]
        root = root_of.get(w, w)
        root_of[w] = root
        for x in path:
            root_of[x] = root
    return root_of


def farthest_vertex(depth: Dict[Vertex, int]) -> Vertex:
    """First vertex (in iteration = BFS discovery order) at maximum depth.

    The deterministic tie-break both sweeps of the 2-sweep center
    approximation rely on: every node sees the same BFS tree, so every node
    picks the same farthest vertex without extra communication.
    """
    best = None
    best_depth = -1
    for v, d in depth.items():
        if d > best_depth:
            best, best_depth = v, d
    return best


def path_midpoint(
    parent: Dict[Vertex, Optional[Vertex]],
    depth: Dict[Vertex, int],
    endpoint: Vertex,
) -> Vertex:
    """Vertex at depth ``ceil(depth(endpoint) / 2)`` on the root path of
    *endpoint* — the approximate center a 2-sweep BFS settles on (walk up
    ``floor(d / 2)`` steps from the far endpoint of the second sweep)."""
    steps = depth[endpoint] // 2
    v = endpoint
    for _ in range(steps):
        v = parent[v]
    return v


def two_sweep_center(graph: UndirectedGraph, seed: Vertex) -> Tuple[Vertex, int]:
    """2-sweep BFS center approximation of *seed*'s connected component.

    Sweep 1 (BFS from *seed*) finds a farthest vertex ``u``; sweep 2 (BFS from
    ``u``) finds a farthest vertex ``w`` and an approximate diameter path
    ``u → w``; the returned center is the midpoint of that path.  Returns
    ``(center, eccentricity_of_center)``.  Because every vertex's eccentricity
    is at most the component diameter ``D ≤ 2·radius``, the center's
    eccentricity is within a factor 2 of the true radius — and in practice the
    midpoint lands near the true center (exactly, on paths and trees).

    This is the *local* (uncharged) evaluation every node can run from its
    stored copy of the graph; the distributed backend charges the two sweeps
    through the network when a voluntary rebuild actually executes them.
    ``O(n + m)`` per call (three BFS traversals of the component).
    """
    _, d1 = bfs_tree(graph, seed)
    u = farthest_vertex(d1)
    p2, d2 = bfs_tree(graph, u)
    w = farthest_vertex(d2)
    center = path_midpoint(p2, d2, w)
    _, d3 = bfs_tree(graph, center)
    return center, max(d3.values(), default=0)


def children_index(parent: Dict[Vertex, Optional[Vertex]]) -> Dict[Vertex, List[Vertex]]:
    """Invert a parent-pointer map into a ``vertex -> children`` index."""
    children: Dict[Vertex, List[Vertex]] = {}
    for v, p in parent.items():
        if p is not None:
            children.setdefault(p, []).append(v)
    return children


def parent_tree_subtree(
    parent: Dict[Vertex, Optional[Vertex]],
    root: Vertex,
    *,
    children: Optional[Dict[Vertex, List[Vertex]]] = None,
) -> Tuple[List[Vertex], Dict[Vertex, int]]:
    """Vertices of the subtree of *root* in a parent-pointer tree, in BFS
    order, together with their depths *relative to root*.

    Used by the broadcast-tree local repair: when a tree edge dies, the
    orphaned subtree is exactly the parent-pointer subtree of the severed
    child, and the relative depths bound the rounds the intra-subtree
    convergecast/broadcast of the repair costs.  *root*'s own (dangling)
    parent pointer is ignored.  Callers extracting several subtrees of the
    same tree pass a shared :func:`children_index` to avoid re-inverting the
    whole parent map per subtree.
    """
    if children is None:
        children = children_index(parent)
    order: List[Vertex] = [root]
    rel_depth: Dict[Vertex, int] = {root: 0}
    i = 0
    while i < len(order):
        v = order[i]
        i += 1
        for c in children.get(v, ()):
            if c not in rel_depth:
                rel_depth[c] = rel_depth[v] + 1
                order.append(c)
    return order, rel_depth


def reroot_parent_tree(
    subtree: List[Vertex],
    parent: Dict[Vertex, Optional[Vertex]],
    new_root: Vertex,
) -> Dict[Vertex, Vertex]:
    """Re-root the parent-pointer tree spanning *subtree* at *new_root*.

    Returns the new parent assignment for every vertex of *subtree* except
    *new_root* (whose parent the caller sets to the reattachment target).
    Only the pointers on the old-root-to-*new_root* path actually flip; the
    caller still owns depth bookkeeping.
    """
    adjacency: Dict[Vertex, List[Vertex]] = {v: [] for v in subtree}
    members = adjacency.keys()
    for v in subtree:
        p = parent.get(v)
        if p is not None and p in members:
            adjacency[v].append(p)
            adjacency[p].append(v)
    new_parent: Dict[Vertex, Vertex] = {}
    frontier = [new_root]
    seen = {new_root}
    while frontier:
        nxt: List[Vertex] = []
        for v in frontier:
            for w in adjacency[v]:
                if w not in seen:
                    seen.add(w)
                    new_parent[w] = v
                    nxt.append(w)
        frontier = nxt
    return new_parent


def articulation_points_and_bridges(graph: UndirectedGraph) -> Tuple[Set[Vertex], Set[frozenset]]:
    """Return ``(articulation_points, bridges)`` of *graph* (iterative Tarjan).

    Works on disconnected graphs; isolated vertices are never articulation
    points.
    """
    visited: Set[Vertex] = set()
    disc: Dict[Vertex, int] = {}
    low: Dict[Vertex, int] = {}
    parent: Dict[Vertex, Vertex] = {}
    articulation: Set[Vertex] = set()
    bridges: Set[frozenset] = set()
    timer = 0

    for start in graph.vertices():
        if start in visited:
            continue
        root_children = 0
        stack: List[Tuple[Vertex, object]] = [(start, iter(graph.neighbor_list(start)))]
        visited.add(start)
        disc[start] = low[start] = timer
        timer += 1
        while stack:
            v, it = stack[-1]
            advanced = False
            for w in it:
                if w not in visited:
                    visited.add(w)
                    parent[w] = v
                    disc[w] = low[w] = timer
                    timer += 1
                    if v == start:
                        root_children += 1
                    stack.append((w, iter(graph.neighbor_list(w))))
                    advanced = True
                    break
                elif w != parent.get(v):
                    low[v] = min(low[v], disc[w])
            if not advanced:
                stack.pop()
                if stack:
                    p = stack[-1][0]
                    low[p] = min(low[p], low[v])
                    if low[v] >= disc[p] and p != start:
                        articulation.add(p)
                    if low[v] > disc[p]:
                        bridges.add(frozenset((p, v)))
        if root_children > 1:
            articulation.add(start)
    return articulation, bridges


def components_after_vertex_removal(graph: UndirectedGraph, v: Vertex) -> List[List[Vertex]]:
    """Connected components of ``graph - v`` among the former neighbours of *v*.

    Each returned list contains the neighbours of *v* that end up in the same
    component; the paper uses this to pick exactly one broadcast initiator per
    new component after a vertex failure.
    """
    neighbors = set(graph.neighbor_list(v))
    remaining = [w for w in graph.vertices() if w != v]
    sub = graph.subgraph(remaining)
    groups: List[List[Vertex]] = []
    seen: Set[Vertex] = set()
    for nb in neighbors:
        if nb in seen:
            continue
        comp: List[Vertex] = []
        frontier = [nb]
        seen.add(nb)
        comp_set = {nb}
        while frontier:
            nxt = []
            for x in frontier:
                for y in sub.neighbors(x):
                    if y not in comp_set:
                        comp_set.add(y)
                        if y in neighbors:
                            seen.add(y)
                        nxt.append(y)
            frontier = nxt
        comp = [w for w in neighbors if w in comp_set]
        groups.append(comp)
    return groups
