"""DFS-forest maintenance helpers for the distributed setting (Section 6.2).

After a deletion, each neighbour of the failed link/vertex must decide locally
whether its component split, which the paper does by having every node know the
articulation points and bridges of the current graph.  The computation itself
is the classical low-link DFS; in the distributed simulation its result is
disseminated with one ``O(n)``-word pipelined broadcast, which the driver
accounts for.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Set, Tuple

from repro.graph.graph import UndirectedGraph

Vertex = Hashable


def articulation_points_and_bridges(graph: UndirectedGraph) -> Tuple[Set[Vertex], Set[frozenset]]:
    """Return ``(articulation_points, bridges)`` of *graph* (iterative Tarjan).

    Works on disconnected graphs; isolated vertices are never articulation
    points.
    """
    visited: Set[Vertex] = set()
    disc: Dict[Vertex, int] = {}
    low: Dict[Vertex, int] = {}
    parent: Dict[Vertex, Vertex] = {}
    articulation: Set[Vertex] = set()
    bridges: Set[frozenset] = set()
    timer = 0

    for start in graph.vertices():
        if start in visited:
            continue
        root_children = 0
        stack: List[Tuple[Vertex, object]] = [(start, iter(graph.neighbor_list(start)))]
        visited.add(start)
        disc[start] = low[start] = timer
        timer += 1
        while stack:
            v, it = stack[-1]
            advanced = False
            for w in it:
                if w not in visited:
                    visited.add(w)
                    parent[w] = v
                    disc[w] = low[w] = timer
                    timer += 1
                    if v == start:
                        root_children += 1
                    stack.append((w, iter(graph.neighbor_list(w))))
                    advanced = True
                    break
                elif w != parent.get(v):
                    low[v] = min(low[v], disc[w])
            if not advanced:
                stack.pop()
                if stack:
                    p = stack[-1][0]
                    low[p] = min(low[p], low[v])
                    if low[v] >= disc[p] and p != start:
                        articulation.add(p)
                    if low[v] > disc[p]:
                        bridges.add(frozenset((p, v)))
        if root_children > 1:
            articulation.add(start)
    return articulation, bridges


def components_after_vertex_removal(graph: UndirectedGraph, v: Vertex) -> List[List[Vertex]]:
    """Connected components of ``graph - v`` among the former neighbours of *v*.

    Each returned list contains the neighbours of *v* that end up in the same
    component; the paper uses this to pick exactly one broadcast initiator per
    new component after a vertex failure.
    """
    neighbors = set(graph.neighbor_list(v))
    remaining = [w for w in graph.vertices() if w != v]
    sub = graph.subgraph(remaining)
    groups: List[List[Vertex]] = []
    seen: Set[Vertex] = set()
    for nb in neighbors:
        if nb in seen:
            continue
        comp: List[Vertex] = []
        frontier = [nb]
        seen.add(nb)
        comp_set = {nb}
        while frontier:
            nxt = []
            for x in frontier:
                for y in sub.neighbors(x):
                    if y not in comp_set:
                        comp_set.add(y)
                        if y in neighbors:
                            seen.add(y)
                        nxt.append(y)
            frontier = nxt
        comp = [w for w in neighbors if w in comp_set]
        groups.append(comp)
    return groups
