"""DFS-forest maintenance helpers for the distributed setting (Section 6.2).

After a deletion, each neighbour of the failed link/vertex must decide locally
whether its component split, which the paper does by having every node know the
articulation points and bridges of the current graph.  The computation itself
is the classical low-link DFS; in the distributed simulation its result is
disseminated with one ``O(n)``-word pipelined broadcast, which the driver
accounts for.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Optional, Set, Tuple

from repro.graph.graph import UndirectedGraph

Vertex = Hashable


def children_index(parent: Dict[Vertex, Optional[Vertex]]) -> Dict[Vertex, List[Vertex]]:
    """Invert a parent-pointer map into a ``vertex -> children`` index."""
    children: Dict[Vertex, List[Vertex]] = {}
    for v, p in parent.items():
        if p is not None:
            children.setdefault(p, []).append(v)
    return children


def parent_tree_subtree(
    parent: Dict[Vertex, Optional[Vertex]],
    root: Vertex,
    *,
    children: Optional[Dict[Vertex, List[Vertex]]] = None,
) -> Tuple[List[Vertex], Dict[Vertex, int]]:
    """Vertices of the subtree of *root* in a parent-pointer tree, in BFS
    order, together with their depths *relative to root*.

    Used by the broadcast-tree local repair: when a tree edge dies, the
    orphaned subtree is exactly the parent-pointer subtree of the severed
    child, and the relative depths bound the rounds the intra-subtree
    convergecast/broadcast of the repair costs.  *root*'s own (dangling)
    parent pointer is ignored.  Callers extracting several subtrees of the
    same tree pass a shared :func:`children_index` to avoid re-inverting the
    whole parent map per subtree.
    """
    if children is None:
        children = children_index(parent)
    order: List[Vertex] = [root]
    rel_depth: Dict[Vertex, int] = {root: 0}
    i = 0
    while i < len(order):
        v = order[i]
        i += 1
        for c in children.get(v, ()):
            if c not in rel_depth:
                rel_depth[c] = rel_depth[v] + 1
                order.append(c)
    return order, rel_depth


def reroot_parent_tree(
    subtree: List[Vertex],
    parent: Dict[Vertex, Optional[Vertex]],
    new_root: Vertex,
) -> Dict[Vertex, Vertex]:
    """Re-root the parent-pointer tree spanning *subtree* at *new_root*.

    Returns the new parent assignment for every vertex of *subtree* except
    *new_root* (whose parent the caller sets to the reattachment target).
    Only the pointers on the old-root-to-*new_root* path actually flip; the
    caller still owns depth bookkeeping.
    """
    adjacency: Dict[Vertex, List[Vertex]] = {v: [] for v in subtree}
    members = adjacency.keys()
    for v in subtree:
        p = parent.get(v)
        if p is not None and p in members:
            adjacency[v].append(p)
            adjacency[p].append(v)
    new_parent: Dict[Vertex, Vertex] = {}
    frontier = [new_root]
    seen = {new_root}
    while frontier:
        nxt: List[Vertex] = []
        for v in frontier:
            for w in adjacency[v]:
                if w not in seen:
                    seen.add(w)
                    new_parent[w] = v
                    nxt.append(w)
        frontier = nxt
    return new_parent


def articulation_points_and_bridges(graph: UndirectedGraph) -> Tuple[Set[Vertex], Set[frozenset]]:
    """Return ``(articulation_points, bridges)`` of *graph* (iterative Tarjan).

    Works on disconnected graphs; isolated vertices are never articulation
    points.
    """
    visited: Set[Vertex] = set()
    disc: Dict[Vertex, int] = {}
    low: Dict[Vertex, int] = {}
    parent: Dict[Vertex, Vertex] = {}
    articulation: Set[Vertex] = set()
    bridges: Set[frozenset] = set()
    timer = 0

    for start in graph.vertices():
        if start in visited:
            continue
        root_children = 0
        stack: List[Tuple[Vertex, object]] = [(start, iter(graph.neighbor_list(start)))]
        visited.add(start)
        disc[start] = low[start] = timer
        timer += 1
        while stack:
            v, it = stack[-1]
            advanced = False
            for w in it:
                if w not in visited:
                    visited.add(w)
                    parent[w] = v
                    disc[w] = low[w] = timer
                    timer += 1
                    if v == start:
                        root_children += 1
                    stack.append((w, iter(graph.neighbor_list(w))))
                    advanced = True
                    break
                elif w != parent.get(v):
                    low[v] = min(low[v], disc[w])
            if not advanced:
                stack.pop()
                if stack:
                    p = stack[-1][0]
                    low[p] = min(low[p], low[v])
                    if low[v] >= disc[p] and p != start:
                        articulation.add(p)
                    if low[v] > disc[p]:
                        bridges.add(frozenset((p, v)))
        if root_children > 1:
            articulation.add(start)
    return articulation, bridges


def components_after_vertex_removal(graph: UndirectedGraph, v: Vertex) -> List[List[Vertex]]:
    """Connected components of ``graph - v`` among the former neighbours of *v*.

    Each returned list contains the neighbours of *v* that end up in the same
    component; the paper uses this to pick exactly one broadcast initiator per
    new component after a vertex failure.
    """
    neighbors = set(graph.neighbor_list(v))
    remaining = [w for w in graph.vertices() if w != v]
    sub = graph.subgraph(remaining)
    groups: List[List[Vertex]] = []
    seen: Set[Vertex] = set()
    for nb in neighbors:
        if nb in seen:
            continue
        comp: List[Vertex] = []
        frontier = [nb]
        seen.add(nb)
        comp_set = {nb}
        while frontier:
            nxt = []
            for x in frontier:
                for y in sub.neighbors(x):
                    if y not in comp_set:
                        comp_set.add(y)
                        if y in neighbors:
                            seen.add(y)
                        nxt.append(y)
            frontier = nxt
        comp = [w for w in neighbors if w in comp_set]
        groups.append(comp)
    return groups
