"""Multi-tenant churn workload for the shard router (benchmark E13).

A fleet workload is a list of :class:`TenantWorkload`\\ s — one independent
graph plus a pre-chunked sequence of update *rounds* per tenant.  The driver
(benchmark or test) walks the rounds in lockstep: round ``i`` of every tenant
is routed as one :meth:`~repro.shard.ShardRouter.apply_many` call, which is
the fleet's aggregate-throughput path (one command per worker per round).

Everything is derived from ``seed`` through the repo's deterministic
generators, so the same call reproduces the same fleet byte-for-byte — in the
router's parent process, in every worker, and in the single-process baseline
the benchmark compares against.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.core.updates import Update
from repro.graph.generators import gnp_random_graph
from repro.graph.graph import UndirectedGraph
from repro.workloads.updates import edge_churn

__all__ = ["TenantWorkload", "multi_tenant_churn", "round_items"]


@dataclass(frozen=True)
class TenantWorkload:
    """One tenant's share of a fleet workload: its graph and update rounds."""

    tenant_id: str
    graph: UndirectedGraph
    rounds: List[List[Update]]

    @property
    def total_updates(self) -> int:
        """Total updates across all rounds of this tenant."""
        return sum(len(r) for r in self.rounds)


def multi_tenant_churn(
    num_tenants: int,
    *,
    n: int = 64,
    rounds: int = 5,
    updates_per_round: int = 4,
    seed: int = 0,
    avg_degree: float = 5.0,
) -> List[TenantWorkload]:
    """Build a fleet of *num_tenants* independent edge-churn tenants.

    Each tenant gets its own connected G(n, p) graph (p tuned for average
    degree *avg_degree*) and a valid edge-churn sequence chunked into *rounds*
    batches of *updates_per_round*; graph and churn seeds vary per tenant, so
    the fleet is heterogeneous but fully reproducible from *seed*.  Benchmark
    E13 uses a denser fleet (``avg_degree=16``), where a per-update rebuild of
    ``D`` costs visibly more than overlay service.
    """
    if num_tenants < 1:
        raise ValueError(f"num_tenants must be >= 1, got {num_tenants!r}")
    if rounds < 1 or updates_per_round < 1:
        raise ValueError("rounds and updates_per_round must be >= 1")
    tenants: List[TenantWorkload] = []
    for t in range(num_tenants):
        graph = gnp_random_graph(
            n, min(avg_degree / max(n - 1, 1), 0.5), seed=seed + 1000 * t, connected=True
        )
        stream = edge_churn(graph, rounds * updates_per_round, seed=seed + 1000 * t + 1)
        chunked = [
            stream[i : i + updates_per_round]
            for i in range(0, len(stream), updates_per_round)
        ]
        tenants.append(
            TenantWorkload(tenant_id=f"tenant-{t}", graph=graph, rounds=chunked)
        )
    return tenants


def round_items(
    tenants: Sequence[TenantWorkload], round_index: int
) -> List[Tuple[str, List[Update]]]:
    """The ``apply_many`` items for round *round_index* of the fleet (tenants
    whose workload is shorter than the round are skipped)."""
    return [
        (t.tenant_id, t.rounds[round_index])
        for t in tenants
        if round_index < len(t.rounds)
    ]
