"""Random and adversarial update-sequence generators.

All generators are deterministic given a seed and *consistent*: they simulate
the updates on a scratch copy of the graph while generating, so a produced
sequence never deletes a missing edge, re-inserts an existing one, etc. — it can
be replayed verbatim against any of the dynamic-DFS implementations.
"""

from __future__ import annotations

import random
from typing import Iterable, List, Optional, Sequence

from repro.core.updates import (
    EdgeDeletion,
    EdgeInsertion,
    Update,
    VertexDeletion,
    VertexInsertion,
)
from repro.graph.graph import UndirectedGraph


class UpdateSequenceGenerator:
    """Stateful generator of valid update sequences for a given graph.

    Parameters
    ----------
    graph:
        The starting graph (copied; the original is never touched).
    seed:
        RNG seed.
    vertex_id_start:
        Ids for inserted vertices are drawn from this counter upward, so they
        never collide with existing vertices (which the standard generators
        number from 0).
    """

    def __init__(self, graph: UndirectedGraph, *, seed: Optional[int] = None, vertex_id_start: int = 10**9) -> None:
        self._graph = graph.copy()
        self._rng = random.Random(seed)
        self._next_vertex = vertex_id_start

    @property
    def graph(self) -> UndirectedGraph:
        """The graph state after every update generated so far."""
        return self._graph

    # ------------------------------------------------------------------ #
    # Single-update generators
    # ------------------------------------------------------------------ #
    def random_edge_deletion(self) -> Optional[EdgeDeletion]:
        """Delete a uniformly random existing edge (None if the graph has no edges)."""
        edges = list(self._graph.edges())
        if not edges:
            return None
        u, v = self._rng.choice(edges)
        self._graph.remove_edge(u, v)
        return EdgeDeletion(u, v)

    def random_edge_insertion(self, attempts: int = 50) -> Optional[EdgeInsertion]:
        """Insert a uniformly random missing edge (None if none found)."""
        verts = list(self._graph.vertices())
        if len(verts) < 2:
            return None
        for _ in range(attempts):
            u, v = self._rng.sample(verts, 2)
            if not self._graph.has_edge(u, v):
                self._graph.add_edge(u, v)
                return EdgeInsertion(u, v)
        return None

    def random_vertex_deletion(self) -> Optional[VertexDeletion]:
        """Delete a uniformly random vertex (None if the graph is empty)."""
        verts = list(self._graph.vertices())
        if not verts:
            return None
        v = self._rng.choice(verts)
        self._graph.remove_vertex(v)
        return VertexDeletion(v)

    def random_vertex_insertion(self, max_degree: int = 5) -> VertexInsertion:
        """Insert a fresh vertex with up to *max_degree* random neighbours."""
        verts = list(self._graph.vertices())
        k = self._rng.randint(0, min(max_degree, len(verts)))
        neighbors = tuple(self._rng.sample(verts, k)) if k else ()
        v = self._next_vertex
        self._next_vertex += 1
        self._graph.add_vertex_with_edges(v, neighbors)
        return VertexInsertion(v, neighbors)

    def random_update(
        self,
        *,
        weights: Optional[dict] = None,
    ) -> Update:
        """One random update; *weights* maps ``{"edge_del", "edge_ins",
        "vertex_del", "vertex_ins"}`` to relative probabilities."""
        weights = weights or {"edge_del": 1.0, "edge_ins": 1.0, "vertex_del": 0.3, "vertex_ins": 0.3}
        while True:
            kinds = list(weights)
            probs = [weights[k] for k in kinds]
            kind = self._rng.choices(kinds, probs)[0]
            upd: Optional[Update]
            if kind == "edge_del":
                upd = self.random_edge_deletion()
            elif kind == "edge_ins":
                upd = self.random_edge_insertion()
            elif kind == "vertex_del":
                upd = self.random_vertex_deletion() if self._graph.num_vertices > 2 else None
            else:
                upd = self.random_vertex_insertion()
            if upd is not None:
                return upd

    def sequence(self, count: int, *, weights: Optional[dict] = None) -> List[Update]:
        """A sequence of *count* random updates."""
        return [self.random_update(weights=weights) for _ in range(count)]


# --------------------------------------------------------------------------- #
# Convenience wrappers used by tests and benchmarks
# --------------------------------------------------------------------------- #
def mixed_updates(graph: UndirectedGraph, count: int, *, seed: Optional[int] = None) -> List[Update]:
    """A mixed sequence of edge and vertex insertions/deletions."""
    return UpdateSequenceGenerator(graph, seed=seed).sequence(count)


def edge_churn(graph: UndirectedGraph, count: int, *, seed: Optional[int] = None) -> List[Update]:
    """Edge-only churn: alternating random deletions and insertions."""
    gen = UpdateSequenceGenerator(graph, seed=seed)
    return gen.sequence(count, weights={"edge_del": 1.0, "edge_ins": 1.0})


def vertex_churn(graph: UndirectedGraph, count: int, *, seed: Optional[int] = None) -> List[Update]:
    """Vertex-only churn: node arrivals and departures (a social-network style
    workload, the motivation in the paper's introduction)."""
    gen = UpdateSequenceGenerator(graph, seed=seed)
    return gen.sequence(count, weights={"vertex_del": 1.0, "vertex_ins": 1.0})


def failure_burst(graph: UndirectedGraph, k: int, *, seed: Optional[int] = None) -> List[Update]:
    """A batch of *k* deletions (edge or vertex failures) for the fault-tolerant
    experiments."""
    gen = UpdateSequenceGenerator(graph, seed=seed)
    out: List[Update] = []
    while len(out) < k:
        if gen.graph.num_vertices > 2 and gen._rng.random() < 0.3:
            upd: Optional[Update] = gen.random_vertex_deletion()
        else:
            upd = gen.random_edge_deletion()
        if upd is None:
            upd = gen.random_vertex_deletion()
        if upd is None:
            break
        out.append(upd)
    return out


def adversarial_comb_updates(teeth: int, tooth_length: int) -> List[Update]:
    """Updates that repeatedly force a long rerooting chain on a comb graph.

    Designed for :func:`repro.graph.generators.comb_with_tip_back_edges`: deleting
    the spine edge ``(0, 1)`` forces the whole comb (minus the first tooth) to
    be rerooted through a chain of tooth-by-tooth reroots in the sequential
    baseline, while the parallel algorithm disintegrates it in ``O(log^2 n)``
    rounds.  The edge is re-inserted after each deletion so the update can be
    repeated.
    """
    updates: List[Update] = []
    for _ in range(max(teeth // 2, 1)):
        updates.append(EdgeDeletion(0, 1))
        updates.append(EdgeInsertion(0, 1))
    return updates
