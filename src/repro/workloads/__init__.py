"""Workload generators: update sequences and named evaluation scenarios."""

from repro.workloads.updates import (
    UpdateSequenceGenerator,
    adversarial_comb_updates,
    edge_churn,
    failure_burst,
    mixed_updates,
    vertex_churn,
)
from repro.workloads.scenarios import SCENARIOS, Scenario, build_scenario
from repro.workloads.multi_tenant import TenantWorkload, multi_tenant_churn, round_items

__all__ = [
    "UpdateSequenceGenerator",
    "mixed_updates",
    "edge_churn",
    "vertex_churn",
    "failure_burst",
    "adversarial_comb_updates",
    "Scenario",
    "SCENARIOS",
    "build_scenario",
    "TenantWorkload",
    "multi_tenant_churn",
    "round_items",
]
