"""Workload generators: update sequences and named evaluation scenarios."""

from repro.workloads.updates import (
    UpdateSequenceGenerator,
    adversarial_comb_updates,
    edge_churn,
    failure_burst,
    mixed_updates,
    vertex_churn,
)
from repro.workloads.scenarios import SCENARIOS, Scenario, build_scenario

__all__ = [
    "UpdateSequenceGenerator",
    "mixed_updates",
    "edge_churn",
    "vertex_churn",
    "failure_burst",
    "adversarial_comb_updates",
    "Scenario",
    "SCENARIOS",
    "build_scenario",
]
