"""Named evaluation scenarios: (graph, update sequence) pairs used by the
benchmarks (EXPERIMENTS.md) and the example applications."""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Dict, List

from repro.core.updates import EdgeDeletion, EdgeInsertion, Update
from repro.graph.generators import (
    broom_graph,
    caterpillar_graph,
    comb_with_tip_back_edges,
    cycle_with_chords,
    gnp_random_graph,
    grid_graph,
    path_graph,
)
from repro.graph.graph import UndirectedGraph
from repro.workloads.updates import (
    adversarial_comb_updates,
    edge_churn,
    failure_burst,
    mixed_updates,
    vertex_churn,
)


@dataclass(frozen=True)
class Scenario:
    """A reproducible workload: a graph plus an update sequence."""

    name: str
    description: str
    graph: UndirectedGraph
    updates: List[Update]

    @property
    def n(self) -> int:
        return self.graph.num_vertices

    @property
    def m(self) -> int:
        return self.graph.num_edges


def _social_network(n: int, seed: int, updates: int) -> Scenario:
    graph = gnp_random_graph(n, min(8.0 / max(n, 1), 0.5), seed=seed, connected=True)
    return Scenario(
        name="social_network_churn",
        description="sparse random graph with node arrivals/departures (membership churn)",
        graph=graph,
        updates=vertex_churn(graph, updates, seed=seed + 1),
    )


def _datacenter_links(n: int, seed: int, updates: int) -> Scenario:
    side = max(int(n ** 0.5), 2)
    graph = grid_graph(side, side)
    return Scenario(
        name="datacenter_link_flaps",
        description="grid topology with link failures and recoveries",
        graph=graph,
        updates=edge_churn(graph, updates, seed=seed),
    )


def _road_closures(n: int, seed: int, updates: int) -> Scenario:
    graph = cycle_with_chords(n, max(n // 10, 1), seed=seed)
    return Scenario(
        name="road_closures",
        description="ring-with-chords topology with mixed closures and new links",
        graph=graph,
        updates=mixed_updates(graph, updates, seed=seed + 7),
    )


def _adversarial_comb(n: int, seed: int, updates: int) -> Scenario:
    teeth = max(n // 10, 4)
    tooth = 9
    # Tip back edges that survive canonical source re-anchoring (each tip
    # reaches only the spine vertex before its own tooth), so the spine
    # deletions keep forcing the Θ(teeth) sequential chain.
    graph = comb_with_tip_back_edges(teeth, tooth)
    ups = adversarial_comb_updates(teeth, tooth)[: max(updates, 2)]
    return Scenario(
        name="adversarial_comb",
        description="comb graph whose spine deletions force long sequential reroot chains",
        graph=graph,
        updates=ups,
    )


def _broom_failures(n: int, seed: int, updates: int) -> Scenario:
    handle = max(n // 2, 4)
    graph = broom_graph(handle, n - handle)
    return Scenario(
        name="broom_failures",
        description="broom graph under random failures (deep path + wide fringe)",
        graph=graph,
        updates=failure_burst(graph, updates, seed=seed),
    )


def _caterpillar_mixed(n: int, seed: int, updates: int) -> Scenario:
    spine = max(n // 4, 4)
    graph = caterpillar_graph(spine, 3)
    return Scenario(
        name="caterpillar_mixed",
        description="caterpillar graph under mixed updates",
        graph=graph,
        updates=mixed_updates(graph, updates, seed=seed + 3),
    )


def _long_path(n: int, seed: int, updates: int) -> Scenario:
    graph = path_graph(n)
    return Scenario(
        name="long_path",
        description="path graph (maximum diameter) under edge churn",
        graph=graph,
        updates=edge_churn(graph, updates, seed=seed + 11),
    )


def _sustained_churn(n: int, seed: int, updates: int) -> Scenario:
    """Long steady edge churn on a sparse random graph.

    This is the workload the amortized rebuild policy is built for: the update
    stream is much longer than ``sqrt(m)``, so a per-update rebuild of ``D``
    pays ``O(m)`` for every update while the amortized policy serves all but
    every ``k``-th update from Theorem 9 overlays.  Used by
    ``benchmarks/bench_batch_updates.py``.
    """
    graph = gnp_random_graph(n, min(6.0 / max(n, 1), 0.5), seed=seed, connected=True)
    return Scenario(
        name="sustained_churn",
        description="sparse random graph under a long steady stream of edge churn "
        "(amortized-rebuild showcase)",
        graph=graph,
        updates=edge_churn(graph, max(updates, 4 * int(graph.num_edges ** 0.5)), seed=seed + 17),
    )


def _fragmenting_churn(n: int, seed: int, updates: int) -> Scenario:
    """Clusters joined by bridges, with the bridges cut (and later restored)
    while edge churn keeps hitting the clusters on *both* sides of the cut.

    This is the workload per-component CONGEST round accounting exists for
    (benchmark E10): whenever a bridge is down the graph is genuinely
    disconnected, updates land in either fragment, and every dissemination or
    repair wave must be charged inside the fragment that executes it — under
    the legacy accounting the non-initiator fragment rode along for free, so
    repair-vs-rebuild comparisons degenerated.  Construction: ``k`` cycle
    clusters with chords (each cluster stays connected under chord churn
    because its cycle is never touched), consecutive clusters joined by one
    bridge; the update stream round-robins over bridges — cut a bridge,
    churn chords in randomly chosen clusters while the graph is split, then
    restore the bridge and move to the next one.
    """
    clusters = 3
    size = max(n // clusters, 8)
    rng = random.Random(seed)
    graph = UndirectedGraph(vertices=range(clusters * size))
    chords: List[List[tuple]] = []
    for c in range(clusters):
        base = c * size
        for i in range(size):
            graph.add_edge(base + i, base + (i + 1) % size)
        cluster_chords: List[tuple] = []
        for _ in range(max(size // 3, 2)):
            i, j = rng.sample(range(size), 2)
            u, v = base + i, base + j
            if not graph.has_edge(u, v):
                graph.add_edge(u, v)
                cluster_chords.append((u, v))
        if not cluster_chords:  # rng collided every draw: pin one chord
            u, v = base, base + size // 2
            graph.add_edge(u, v)
            cluster_chords.append((u, v))
        chords.append(cluster_chords)
    bridges = [((c + 1) * size - 1, (c + 1) * size) for c in range(clusters - 1)]
    for u, v in bridges:
        graph.add_edge(u, v)
    ups: List[Update] = []
    bridge_index = 0
    while len(ups) < updates:
        u, v = bridges[bridge_index % len(bridges)]
        bridge_index += 1
        ups.append(EdgeDeletion(u, v))  # the graph is now disconnected
        for _ in range(3):  # churn both fragments while split
            cluster_chords = chords[rng.randrange(clusters)]
            x, y = cluster_chords[rng.randrange(len(cluster_chords))]
            ups.append(EdgeDeletion(x, y))
            ups.append(EdgeInsertion(x, y))
        ups.append(EdgeInsertion(u, v))  # restore the bridge
    return Scenario(
        name="fragmenting_churn",
        description="bridged clusters whose bridges are cut and restored while "
        "chord churn hits both fragments (per-component accounting showcase)",
        graph=graph,
        updates=ups[:updates],
    )


SCENARIOS: Dict[str, Callable[[int, int, int], Scenario]] = {
    "social_network_churn": _social_network,
    "datacenter_link_flaps": _datacenter_links,
    "road_closures": _road_closures,
    "adversarial_comb": _adversarial_comb,
    "broom_failures": _broom_failures,
    "caterpillar_mixed": _caterpillar_mixed,
    "long_path": _long_path,
    "sustained_churn": _sustained_churn,
    "fragmenting_churn": _fragmenting_churn,
}


def build_scenario(name: str, *, n: int = 200, seed: int = 0, updates: int = 30) -> Scenario:
    """Instantiate a named scenario at the requested size.

    Raises ``KeyError`` with the list of known names for typos.
    """
    try:
        factory = SCENARIOS[name]
    except KeyError:
        raise KeyError(f"unknown scenario {name!r}; choose from {sorted(SCENARIOS)}") from None
    return factory(n, seed, updates)
