#!/usr/bin/env python3
"""Quickstart: maintain a DFS tree of a changing graph.

Builds a small random graph, keeps its DFS tree up to date while edges and
vertices come and go, and shows the model-level costs (query rounds per update)
that the paper's Theorem 13 bounds by O(log^3 n).

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import FullyDynamicDFS, MetricsRecorder
from repro.graph.generators import gnp_random_graph
from repro.metrics.complexity import format_table


def main() -> None:
    graph = gnp_random_graph(200, 0.03, seed=7, connected=True)
    metrics = MetricsRecorder()
    dfs = FullyDynamicDFS(graph, metrics=metrics)
    print(f"initial graph: n={graph.num_vertices}, m={graph.num_edges}")
    print(f"DFS forest roots: {dfs.roots()}\n")

    rows = []
    # A little scripted history: break an edge, add a shortcut, lose a vertex,
    # welcome a new one, repair the broken edge.
    first_edge = next(e for e in graph.edges() if 42 not in e)
    history = [
        ("delete_edge", first_edge),
        ("insert_edge", (0, 150) if not graph.has_edge(0, 150) else (0, 151)),
        ("delete_vertex", (42,)),
        ("insert_vertex", ("newcomer", [0, 7, 99])),
        ("insert_edge", first_edge),
    ]
    for op, args in history:
        before = metrics.as_dict()
        getattr(dfs, op)(*args)
        delta = metrics.snapshot_delta(before)
        rows.append(
            [
                f"{op}{args}",
                int(delta.get("query_rounds", 0)),
                int(delta.get("queries", 0)),
                int(delta.get("traversal_rounds", 0)),
                "yes" if dfs.is_valid() else "NO",
            ]
        )

    print(
        format_table(
            ["update", "query rounds", "queries", "traversal rounds", "valid DFS?"],
            rows,
        )
    )
    print("\nDFS tree is maintained incrementally — no full recomputation happened.")
    print(f"total updates: {int(metrics['updates'])}, "
          f"fallbacks (should be 0): {int(metrics.get('fallback_components', 0))}")


if __name__ == "__main__":
    main()
