#!/usr/bin/env python3
"""Domain scenario: fault-tolerant DFS for a datacenter-style fabric.

A grid/fat-tree-ish topology is preprocessed once (Theorem 14).  When a burst of
k link/switch failures hits, a fresh DFS tree of the surviving network is
produced from the preprocessed structure alone — no rebuild — which is the
fault-tolerant usage pattern: precompute in the quiet period, answer fast when
failures strike.

Run:  python examples/datacenter_fault_tolerance.py
"""

from __future__ import annotations

import time

from repro import FaultTolerantDFS, MetricsRecorder
from repro.graph.generators import grid_graph
from repro.graph.validation import check_dfs_tree
from repro.metrics.complexity import format_table
from repro.workloads.updates import failure_burst


def main() -> None:
    fabric = grid_graph(16, 16)
    print(f"fabric: 16x16 grid, n={fabric.num_vertices}, m={fabric.num_edges}")

    metrics = MetricsRecorder()
    start = time.perf_counter()
    ft = FaultTolerantDFS(fabric, metrics=metrics)
    preprocess_seconds = time.perf_counter() - start
    print(f"preprocessing: {preprocess_seconds * 1000:.1f} ms, "
          f"structure size {ft.structure_size()} entries (O(m))\n")

    rows = []
    for k in (1, 2, 4, 8):
        failures = failure_burst(fabric, k, seed=k)
        start = time.perf_counter()
        tree, survived = ft.query_with_graph(failures)
        elapsed = time.perf_counter() - start
        ok = check_dfs_tree(survived, tree.parent_map()) == []
        roots = len(tree.children(tree.root))
        rows.append(
            [
                k,
                ", ".join(type(f).__name__ for f in failures[:3]) + ("..." if k > 3 else ""),
                f"{elapsed * 1000:.1f}",
                roots,
                "yes" if ok else "NO",
            ]
        )
    print(
        format_table(
            ["k failures", "failure kinds", "recovery ms", "components after", "valid DFS?"],
            rows,
        )
    )
    print("\nThe preprocessed structure was reused for every burst "
          f"(D built {int(metrics['d_builds'])} time).")


if __name__ == "__main__":
    main()
