#!/usr/bin/env python3
"""Domain scenario: the same dynamic-DFS algorithm in restricted environments.

* Semi-streaming (Theorem 15): the graph's edges live in external storage and
  can only be read in passes; the algorithm keeps O(n) state and needs only a
  poly-logarithmic number of passes per update.
* Distributed CONGEST(n/D) (Theorem 16): one node per vertex, messages of at
  most ceil(n/D) words per edge per round; rounds per update scale with the
  network diameter, not with n.

Run:  python examples/streaming_and_distributed.py
"""

from __future__ import annotations

from repro.distributed.distributed_dfs import DistributedDynamicDFS
from repro.graph.generators import cycle_with_chords, grid_graph
from repro.metrics.complexity import format_table
from repro.streaming.semi_streaming_dfs import SemiStreamingDynamicDFS
from repro.workloads.updates import edge_churn


def streaming_demo() -> None:
    print("== semi-streaming: maintaining a DFS tree of an on-disk edge stream ==")
    graph = cycle_with_chords(600, 120, seed=5)
    ss = SemiStreamingDynamicDFS(graph)
    updates = edge_churn(graph, 12, seed=9)
    rows = []
    for upd in updates[:6]:
        before = ss.passes
        ss.apply(upd)
        rows.append([upd.describe(), ss.passes - before, ss.local_space()])
    print(format_table(["update", "stream passes", "local state (vertices)"], rows))
    print(f"valid DFS forest: {ss.is_valid()}; "
          f"worst passes/update so far: {int(ss.metrics['max_passes_per_update'])} "
          f"(trivial recomputation would need ~{graph.num_vertices} passes)\n")


def distributed_demo() -> None:
    print("== distributed CONGEST(n/D): link flaps on two topologies ==")
    rows = []
    for label, graph in (
        ("16x16 grid (large D)", grid_graph(16, 16)),
        ("ring + chords (small D)", cycle_with_chords(256, 256, seed=2)),
    ):
        dist = DistributedDynamicDFS(graph)
        updates = edge_churn(graph, 6, seed=4)
        dist.apply_all(updates)
        rows.append(
            [
                label,
                dist.diameter,
                dist.bandwidth,
                int(dist.metrics["max_rounds_per_update"]),
                int(dist.metrics["max_messages_per_update"]),
                int(dist.network.max_message_words),
                "yes" if dist.is_valid() else "NO",
            ]
        )
    print(
        format_table(
            ["topology", "diameter D", "budget n/D", "rounds/update", "messages/update",
             "max message words", "valid DFS?"],
            rows,
        )
    )
    print("rounds per update follow the diameter; every message stayed within the n/D budget.")


if __name__ == "__main__":
    streaming_demo()
    distributed_demo()
