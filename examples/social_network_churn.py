#!/usr/bin/env python3
"""Domain scenario: membership churn in a social/overlay network.

The paper motivates dynamic DFS with large, constantly changing graphs.  Here a
sparse "friendship" graph experiences node arrivals and departures (the
hardest update type: a vertex may arrive with many edges), and we compare the
dynamic algorithm against recomputing the DFS forest from scratch after every
event — both in wall-clock time and in the model quantities.

Run:  python examples/social_network_churn.py
"""

from __future__ import annotations

import time

from repro import FullyDynamicDFS, MetricsRecorder
from repro.baselines.static_recompute import StaticRecomputeDFS
from repro.metrics.complexity import format_table
from repro.workloads.scenarios import build_scenario


def main() -> None:
    scenario = build_scenario("social_network_churn", n=400, seed=3, updates=40)
    print(f"scenario: {scenario.name} — {scenario.description}")
    print(f"n={scenario.n}, m={scenario.m}, updates={len(scenario.updates)}\n")

    metrics = MetricsRecorder()
    dynamic = FullyDynamicDFS(scenario.graph, metrics=metrics)
    start = time.perf_counter()
    dynamic.apply_all(scenario.updates)
    dynamic_seconds = time.perf_counter() - start

    baseline = StaticRecomputeDFS(scenario.graph)
    start = time.perf_counter()
    baseline.apply_all(scenario.updates)
    static_seconds = time.perf_counter() - start

    n_updates = len(scenario.updates)
    print(
        format_table(
            ["approach", "total seconds", "ms / update", "still a valid DFS forest?"],
            [
                ["fully dynamic (paper)", f"{dynamic_seconds:.3f}",
                 f"{1000 * dynamic_seconds / n_updates:.2f}", "yes" if dynamic.is_valid() else "NO"],
                ["recompute from scratch", f"{static_seconds:.3f}",
                 f"{1000 * static_seconds / n_updates:.2f}", "yes" if baseline.is_valid() else "NO"],
            ],
        )
    )
    print()
    print(
        format_table(
            ["model quantity (dynamic algorithm)", "value"],
            [
                ["query rounds / update", f"{metrics['query_rounds'] / n_updates:.1f}"],
                ["independent queries / update", f"{metrics['queries'] / n_updates:.1f}"],
                ["traversal rounds / update", f"{metrics['traversal_rounds'] / n_updates:.1f}"],
                ["invariant fallbacks", int(metrics.get("fallback_components", 0))],
            ],
        )
    )
    print("\nBoth maintain a correct DFS forest; the dynamic algorithm touches only the")
    print("affected subtrees and answers everything else from the data structure D.")


if __name__ == "__main__":
    main()
