"""E2 — Theorem 14: fault-tolerant DFS for batches of k updates.

Documented in ``docs/benchmarks.md`` (E2).

The preprocessed structure ``D`` is never rebuilt; the cost of answering a
batch grows with ``k`` because queries against the intermediate trees decompose
into more and more ancestor–descendant segments of the original tree
(``O(log^{2(i-1)} n)`` for the i-th update).  The harness reports, per ``k``:
wall-clock time, total query rounds, and the maximum number of base-tree
segments a single query needed — the quantity whose growth drives the
``k log^{2k+1} n`` bound.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import record_table, scale_sizes
from repro.core.fault_tolerant import FaultTolerantDFS
from repro.graph.generators import gnp_random_graph
from repro.metrics.counters import MetricsRecorder
from repro.workloads.updates import mixed_updates


@pytest.mark.benchmark(group="E2-fault-tolerant")
def test_fault_tolerant_batches(benchmark):
    n = 600 if scale_sizes([1], [0])[0] else 200
    graph = gnp_random_graph(n, 4.0 / n, seed=3, connected=True)
    ks = scale_sizes([1, 2, 3, 4, 6, 8], [1, 2, 3])

    times, query_rounds, max_segments = [], [], []
    import time

    ft_metrics = MetricsRecorder()
    ft = FaultTolerantDFS(graph, metrics=ft_metrics)
    for k in ks:
        updates = mixed_updates(graph, k, seed=100 + k)
        before = ft_metrics.as_dict()
        start = time.perf_counter()
        ft.query(updates)
        times.append(round(time.perf_counter() - start, 4))
        delta = ft_metrics.snapshot_delta(before)
        query_rounds.append(delta.get("query_batches", 0))
        max_segments.append(ft_metrics.get("max_d_target_segments_per_query", 1))

    record_table(
        benchmark,
        "E2_fault_tolerant_vs_k",
        ks,
        {
            "seconds": times,
            "query_rounds": query_rounds,
            "max_segments_per_query": max_segments,
        },
    )
    assert ft_metrics["d_builds"] == 1  # preprocessing only, never rebuilt

    updates = mixed_updates(graph, ks[-1], seed=999)
    benchmark(lambda: ft.query(updates))
