"""E3 — Theorem 15: semi-streaming dynamic DFS.

Claim: a DFS tree is maintained with ``O(log^2 n)`` passes over the edge stream
per update and ``O(n)`` local space, whereas recomputing a DFS tree from a
stream needs ``Θ(n)`` passes.  The harness sweeps ``n`` and reports the worst
per-update pass count together with the trivial baseline's pass count (one
pass per vertex).
"""

from __future__ import annotations

import math

import pytest

from benchmarks.conftest import record_table, scale_sizes
from repro.graph.generators import gnp_random_graph, path_graph
from repro.streaming.semi_streaming_dfs import SemiStreamingDynamicDFS
from repro.workloads.updates import edge_churn


@pytest.mark.benchmark(group="E3-streaming")
def test_streaming_passes_per_update(benchmark):
    sizes = scale_sizes([128, 256, 512, 1024], [64, 128])
    worst_passes, mean_passes, trivial = [], [], []
    for n in sizes:
        graph = gnp_random_graph(n, 4.0 / n, seed=2, connected=True)
        ss = SemiStreamingDynamicDFS(graph)
        updates = edge_churn(graph, 8, seed=5)
        ss.apply_all(updates)
        worst_passes.append(ss.metrics["max_passes_per_update"])
        mean_passes.append(round(ss.passes / len(updates), 2))
        trivial.append(n)  # the trivial streaming DFS pays one pass per vertex
        assert ss.metrics["max_passes_per_update"] <= 4 * math.log2(n) ** 2 + 10

    record_table(
        benchmark,
        "E3_passes_per_update",
        sizes,
        {
            "worst_passes_per_update": worst_passes,
            "mean_passes_per_update": mean_passes,
            "trivial_recompute_passes": trivial,
        },
    )

    graph = path_graph(sizes[-1])
    ss = SemiStreamingDynamicDFS(graph)
    mid = sizes[-1] // 2

    def run():
        ss.delete_edge(mid - 1, mid)
        ss.insert_edge(mid - 1, mid)

    benchmark(run)
