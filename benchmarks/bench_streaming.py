"""E3 — Theorem 15: semi-streaming dynamic DFS.

Documented in ``docs/benchmarks.md`` (E3).

Claim: a DFS tree is maintained with ``O(log^2 n)`` passes over the edge stream
per update and ``O(n)`` local space, whereas recomputing a DFS tree from a
stream needs ``Θ(n)`` passes.  The harness sweeps ``n`` and reports the worst
per-update pass count together with the trivial baseline's pass count (one
pass per vertex).
"""

from __future__ import annotations

import math

import pytest

from benchmarks.conftest import record_table, scale_sizes
from repro.graph.generators import gnp_random_graph, path_graph
from repro.streaming.semi_streaming_dfs import SemiStreamingDynamicDFS
from repro.workloads.updates import edge_churn


@pytest.mark.benchmark(group="E3-streaming")
def test_streaming_passes_per_update(benchmark):
    sizes = scale_sizes([128, 256, 512, 1024], [64, 128])
    worst_passes, mean_passes, trivial = [], [], []
    for n in sizes:
        graph = gnp_random_graph(n, 4.0 / n, seed=2, connected=True)
        ss = SemiStreamingDynamicDFS(graph)
        updates = edge_churn(graph, 8, seed=5)
        ss.apply_all(updates)
        worst_passes.append(ss.metrics["max_passes_per_update"])
        mean_passes.append(round(ss.passes / len(updates), 2))
        trivial.append(n)  # the trivial streaming DFS pays one pass per vertex
        assert ss.metrics["max_passes_per_update"] <= 4 * math.log2(n) ** 2 + 10

    record_table(
        benchmark,
        "E3_passes_per_update",
        sizes,
        {
            "worst_passes_per_update": worst_passes,
            "mean_passes_per_update": mean_passes,
            "trivial_recompute_passes": trivial,
        },
    )

    graph = path_graph(sizes[-1])
    ss = SemiStreamingDynamicDFS(graph)
    mid = sizes[-1] // 2

    def run():
        ss.delete_edge(mid - 1, mid)
        ss.insert_edge(mid - 1, mid)

    benchmark(run)


@pytest.mark.benchmark(group="E3-streaming")
def test_streaming_classic_vs_amortized_policy(benchmark):
    """UpdateEngine amortization in the streaming environment: the classic
    policy rebuilds its per-update service state every update and pays one
    pass per query batch; ``rebuild_every=k`` snapshots the stream into ``D``
    with one pass every ``k``-th update and serves the rest pass-free from
    Theorem 9 overlays — with byte-identical trees."""
    from repro.metrics.counters import MetricsRecorder
    from repro.workloads.scenarios import build_scenario

    K = 10
    updates_count = 100
    sizes = scale_sizes([128, 256, 512], [64, 128])
    classic_passes, amortized_passes = [], []
    classic_rebuilds, amortized_rebuilds = [], []
    for n in sizes:
        scenario = build_scenario("sustained_churn", n=n, seed=1, updates=updates_count)
        updates = scenario.updates[:updates_count]
        results = {}
        for k in (1, K):
            metrics = MetricsRecorder()
            ss = SemiStreamingDynamicDFS(scenario.graph, rebuild_every=k, metrics=metrics)
            ss.apply_all(updates)
            results[k] = (ss.parent_map(), metrics["service_rebuilds"], ss.passes)
        assert results[1][0] == results[K][0], f"policies diverged (n={n})"
        assert results[1][1] >= 3 * results[K][1], "expected >=3x fewer service rebuilds"
        assert results[K][2] * 3 <= results[1][2], "expected far fewer stream passes"
        classic_rebuilds.append(results[1][1])
        amortized_rebuilds.append(results[K][1])
        classic_passes.append(round(results[1][2] / updates_count, 2))
        amortized_passes.append(round(results[K][2] / updates_count, 2))

    record_table(
        benchmark,
        "E3_classic_vs_amortized",
        sizes,
        {
            "classic_service_rebuilds": classic_rebuilds,
            f"rebuild_every_{K}_service_rebuilds": amortized_rebuilds,
            "classic_passes_per_update": classic_passes,
            f"rebuild_every_{K}_passes_per_update": amortized_passes,
        },
    )

    scenario = build_scenario("sustained_churn", n=sizes[-1], seed=1, updates=updates_count)

    def run():
        ss = SemiStreamingDynamicDFS(scenario.graph, rebuild_every=K)
        ss.apply_all(scenario.updates[:20])

    benchmark(run)
