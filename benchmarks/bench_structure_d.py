"""E5 — Theorems 8–9: building and querying the data structure D.

Documented in ``docs/benchmarks.md`` (E5).

Claims: ``D`` occupies ``O(m)`` space and is built with ``O(m log n)`` work in
``O(log n)`` parallel depth (sorting adjacency lists); a batch of independent
queries is answered with one post-order range search per source vertex; after
``k`` overlaid updates a query costs ``O(log n + k)`` probes.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import record_table, scale_sizes
from repro.constants import VIRTUAL_ROOT
from repro.core.queries import DQueryService, EdgeQuery
from repro.core.structure_d import StructureD
from repro.graph.generators import gnp_random_graph
from repro.graph.traversal import static_dfs_forest
from repro.metrics.counters import MetricsRecorder
from repro.pram.machine import PRAM
from repro.pram.sort import parallel_merge_sort
from repro.tree.dfs_tree import DFSTree


def _build(n, seed=0):
    graph = gnp_random_graph(n, 6.0 / n, seed=seed, connected=True)
    tree = DFSTree(static_dfs_forest(graph), root=VIRTUAL_ROOT)
    return graph, tree


@pytest.mark.benchmark(group="E5-structure-d")
def test_build_cost_and_query_probes(benchmark):
    sizes = scale_sizes([512, 1024, 2048, 4096], [256, 512])
    build_work, size_ratio, probes_per_query, sort_depth = [], [], [], []
    for n in sizes:
        graph, tree = _build(n)
        metrics = MetricsRecorder()
        d = StructureD(graph, tree, metrics=metrics)
        build_work.append(metrics["d_build_work"])
        size_ratio.append(round(d.size() / (2 * graph.num_edges), 3))

        # Parallel depth of sorting one (the largest) adjacency list.
        hub = max(graph.vertices(), key=graph.degree)
        pram = PRAM()
        parallel_merge_sort(pram, graph.neighbor_list(hub), key=tree.postorder)
        sort_depth.append(pram.depth)

        # One batch of independent subtree queries against the root path.
        service = DQueryService(d, metrics=metrics)
        root = tree.children(VIRTUAL_ROOT)[0]
        target = tuple(tree.subtree_vertices(root)[:10])
        queries = [
            EdgeQuery.from_tree(child, target, prefer_last=True)
            for child in tree.children(root)
        ]
        before = metrics.as_dict()
        service.answer_batch(queries)
        delta = metrics.snapshot_delta(before)
        probes_per_query.append(
            round(delta.get("d_probes", 0) / max(delta.get("d_vertex_queries", 1), 1), 2)
        )

    record_table(
        benchmark,
        "E5_build_and_query",
        sizes,
        {
            "build_work": build_work,
            "size_over_2m": size_ratio,
            "probes_per_vertex_query": probes_per_query,
            "adjacency_sort_depth": sort_depth,
        },
    )

    graph, tree = _build(sizes[-1])
    benchmark(lambda: StructureD(graph, tree))


@pytest.mark.benchmark(group="E5-structure-d")
def test_query_cost_grows_linearly_with_overlayed_updates(benchmark):
    n = scale_sizes([1024], [256])[0]
    graph, tree = _build(n, seed=3)
    ks = scale_sizes([0, 2, 4, 8, 16], [0, 2, 4])
    probes = []
    for k in ks:
        metrics = MetricsRecorder()
        d = StructureD(graph, tree, metrics=metrics)
        verts = [v for v in graph.vertices()][:k]
        for i, v in enumerate(verts):
            # overlay k inserted edges touching a fixed hub vertex
            hub = next(iter(graph.vertices()))
            if v != hub and not graph.has_edge(hub, v):
                d.note_edge_inserted(hub, v)
        hub = next(iter(graph.vertices()))
        target = tuple(tree.ancestor_path(hub, VIRTUAL_ROOT)[1:-1]) or (hub,)
        before = metrics.as_dict()
        for v in list(graph.vertices())[:200]:
            if v == hub:
                continue
            d.neighbor_on_segment(v, target[-1] if target else hub, target[0] if target else hub,
                                  prefer_bottom=True)
        delta = metrics.snapshot_delta(before)
        probes.append(round(delta.get("d_probes", 0) / max(delta.get("d_vertex_queries", 1), 1), 2))
    record_table(benchmark, "E5_probes_vs_k_overlays", [k + 1 for k in ks], {"probes_per_query": probes})

    benchmark(lambda: StructureD(graph, tree))
